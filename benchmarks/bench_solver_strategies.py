"""Solver-strategy benchmark: warm re-solve cost per engine strategy.

Beyond-the-paper evidence for the PR 5 engine: on phased workloads the
``incremental`` strategy re-solves only the dirty slice (an order of
magnitude fewer modeled cycles than ``full``), ``partitioned`` caps the
modeled critical path at the slowest ~8x8 region, and on stationary
mixes incremental re-solves are free.  Also micro-benchmarks the
``reconfigure_epoch`` prior-problem reuse (satellite of the same PR):
stationary epoch loops stop paying the per-epoch problem rebuild.

Appends a ``bench_solver`` entry to ``benchmarks/BENCH.json`` whose
``solve_wall_seconds`` is the regression gate ``tools/bench_compare.py``
enforces in CI (> 25% slower than the committed baseline fails).
"""

import os
import platform
import time
from datetime import date

from conftest import emit, record_bench_entry

from repro.config import default_config
from repro.experiments import format_table, run_solver_study
from repro.nuca.base import build_problem
from repro.sched.reconfigure import reconfigure_epoch
from repro.testing import golden_mix

TILES = (16, 64)
EPOCHS = 4
N_MIXES = 1


def run(runner=None):
    return run_solver_study(
        tiles=TILES, n_mixes=N_MIXES, epochs=EPOCHS, runner=runner
    )


def test_solver_strategies(once, runner):
    result = once(run, runner)
    emit(format_table(
        ["tiles", "strategy", "dynamism", "cold Mcyc", "warm mean Mcyc",
         "warm max Mcyc", "fits 50M", "IPC"],
        result.table_rows(),
        title=f"Solver strategies ({N_MIXES} mix/point, {EPOCHS} epochs)",
    ))

    def point(strategy, dynamism, tiles=64):
        return (strategy, dynamism, tiles)

    # Stationary mixes never dirty a VC: incremental re-solves are free,
    # while full pays the whole pipeline every interval.
    assert result.mean(point("incremental", "stationary"),
                       "warm_mean_mcycles") == 0.0
    assert result.mean(point("full", "stationary"),
                       "warm_mean_mcycles") > 1.0
    # Phased mixes dirty a slice per interval: incremental must beat the
    # full pipeline by a wide margin on warm epochs.
    incr = result.mean(point("incremental", "phased"), "warm_mean_mcycles")
    full = result.mean(point("full", "phased"), "warm_mean_mcycles")
    assert incr < 0.5 * full
    # Every strategy stays within the paper's 50 Mcycle interval at the
    # 64-tile design point.
    for strategy in ("full", "incremental", "partitioned", "hierarchical"):
        for dynamism in ("stationary", "phased"):
            assert result.within_interval(point(strategy, dynamism))

    wall = {
        f"{strategy}_{dynamism}": round(
            result.mean(point(strategy, dynamism), "solve_seconds_total"), 4
        )
        for strategy in ("full", "incremental", "partitioned",
                         "hierarchical")
        for dynamism in ("stationary", "phased")
    }
    record_bench_entry({
        "bench": "bench_solver",
        "chip": "64-tile mesh (scaled_mesh_config)",
        "recorded": date.today().isoformat(),
        # Wall-clock only gates against a baseline from the same host
        # class (tools/bench_compare.py); the *_mcycles metrics are
        # machine-independent and gate everywhere.
        "host": f"{platform.system()}-{platform.machine()}"
                f"-{os.cpu_count()}cpu",
        "metrics": {
            "warm_full_phased_mcycles": round(full, 3),
            "warm_incremental_phased_mcycles": round(incr, 3),
            "warm_partitioned_phased_mcycles": round(
                result.mean(point("partitioned", "phased"),
                            "warm_mean_mcycles"), 3),
        },
        "solve_wall_seconds": wall,
    })


def test_reconfigure_epoch_problem_reuse(once):
    """Micro-bench: stationary epoch loops stop rebuilding the problem."""
    config = default_config()
    mix = golden_mix()
    epochs = 3

    def loop(reuse: bool) -> float:
        start = time.perf_counter()
        problem = None
        for _ in range(epochs):
            _, problem = reconfigure_epoch(
                mix, config, prior_problem=problem if reuse else None
            )
        return time.perf_counter() - start

    build_problem(mix, config)  # warm the process-wide geometry cache
    rebuilt = loop(reuse=False)
    reused = once(loop, True)
    per_epoch_saving = (rebuilt - reused) / epochs
    emit(format_table(
        ["path", "wall s", "per-epoch ms"],
        [("rebuild problem each epoch", rebuilt, 1e3 * rebuilt / epochs),
         ("reuse prior problem", reused, 1e3 * reused / epochs),
         ("saving", rebuilt - reused, 1e3 * per_epoch_saving)],
        title=f"reconfigure_epoch problem reuse (64-tile mix, "
              f"{epochs} epochs)",
    ))
    # The wall assertion is deliberately loose (the solve dominates both
    # paths); the behavioral guarantee — the problem object is reused —
    # is pinned in tests/test_engine.py.
    assert reused <= rebuilt * 1.25
