"""Fig 18: weighted speedup vs reconfiguration period per movement scheme.

Paper shape: CDCS (background invalidations) outperforms bulk
invalidations, and the gap narrows as the reconfiguration interval grows
from 10 Mcycles to 100 Mcycles.
"""

from conftest import emit

from repro.experiments import format_table, run_period_sweep

#: Steady-state CDCS WS over S-NUCA at 64 apps (paper: 1.46; our Fig 11a
#: bench reproduces ~1.5 — the Fig 18 shape only needs a positive level).
STEADY_WS = 1.46


def run(runner=None):
    return run_period_sweep(steady_ws=STEADY_WS, capacity_scale=16, seed=5,
                            runner=runner)


def test_fig18_period_sweep(once, runner):
    result = once(run, runner)
    emit(
        "Fig18 per-reconfiguration penalty (equivalent lost cycles): "
        + ", ".join(f"{k}={v:,.0f}" for k, v in result.penalties.items())
    )
    rows = []
    for period, by_proto in sorted(result.speedups.items()):
        rows.append(
            (
                f"{period // 1_000_000}M",
                by_proto["bulk-inv"],
                by_proto["background-inv"],
                by_proto["instant"],
            )
        )
    emit(format_table(
        ["Period", "Bulk invs", "Background invs", "Instant moves"], rows,
        title="Fig 18: WS vs reconfiguration period",
    ))
    for period, by_proto in result.speedups.items():
        assert by_proto["instant"] >= by_proto["background-inv"] - 1e-9
        assert by_proto["background-inv"] >= by_proto["bulk-inv"] - 1e-9
    periods = sorted(result.speedups)
    gap_small = (
        result.speedups[periods[0]]["instant"]
        - result.speedups[periods[0]]["bulk-inv"]
    )
    gap_large = (
        result.speedups[periods[-1]]["instant"]
        - result.speedups[periods[-1]]["bulk-inv"]
    )
    assert gap_large <= gap_small + 1e-9  # differences diminish (Fig 18)
