"""Phase study: how the reconfiguration period interacts with phase length.

Fig 17/18-flavored dynamics on *phased* workloads: adaptive per-epoch
reconfiguration against a placement frozen at time zero.  The shape that
must hold: adapting helps (gain > 1 at the paper's period), and the gain
shrinks as the period grows past the phase lengths (a runtime that
re-solves slower than the workload changes is barely better than none).
"""

from conftest import emit

from repro.experiments import format_series, format_table, run_phase_study

N_MIXES = 4


def run(runner=None):
    return run_phase_study(n_mixes=N_MIXES, seed=42, runner=runner)


def test_phase_study_period_vs_phase_length(once, runner):
    study = once(run, runner)
    periods = study.periods()
    emit(format_table(
        ["period (Mcyc)", "adaptive/stale IPC", "phase changes"],
        [(f"{p / 1e6:g}", study.mean_gain(p), study.mean_phase_changes(p))
         for p in periods],
        title=f"Phase study ({N_MIXES} phased mixes)",
    ))
    trace = study.trace(periods[0], mix_id=0)
    emit(format_series(
        "adaptive epoch IPC, shortest period (Mcycle, IPC)",
        [(t / 1e6, v) for t, v in trace[:: max(len(trace) // 15, 1)]],
        fmt="{:.2f}",
    ))
    gains = {p: study.mean_gain(p) for p in periods}
    # Reconfiguration pays against phased demand at every swept period...
    assert all(g > 1.0 for g in gains.values())
    # ...and pays *most* when the period is shortest relative to the
    # phases: the sweep's shortest period beats its longest.
    assert gains[periods[0]] > gains[periods[-1]]
    # The dynamics are real: phases actually changed during the runs.
    assert study.mean_phase_changes(periods[0]) >= 1.0
