"""Fig 2: miss curves of the case-study apps (omnet, milc, ilbdc).

Paper's series: omnet ~85 MPKI below 2.5 MB then ~flat near zero; milc
flat (streaming); ilbdc small (512 KB footprint).
"""

import numpy as np
from conftest import emit

from repro.experiments import format_series
from repro.util.units import mb
from repro.workloads import get_profile


def fig2_series():
    sizes = np.linspace(0, mb(4), 17)
    out = {}
    omnet = get_profile("omnet")
    milc = get_profile("milc")
    ilbdc = get_profile("ilbdc")
    out["omnet"] = [(s / mb(1), float(omnet.private_curve(s))) for s in sizes]
    out["milc"] = [(s / mb(1), float(milc.private_curve(s))) for s in sizes]
    out["ilbdc"] = [
        (s / mb(1), float(ilbdc.shared_curve(s) + ilbdc.private_curve(s)))
        for s in sizes
    ]
    return out


def test_fig2_miss_curves(once):
    series = once(fig2_series)
    for app, points in series.items():
        emit(format_series(f"Fig2 {app} (MPKI vs MB)", points, fmt="{:.1f}"))
    omnet = dict(series["omnet"])
    assert omnet[0.0] > 80  # ~85 MPKI
    assert omnet[3.0] < 5  # fits at 2.5 MB
    milc_vals = [v for _, v in series["milc"]]
    assert max(milc_vals) == min(milc_vals)  # streaming: flat
    ilbdc = dict(series["ilbdc"])
    assert ilbdc[1.0] < 0.3 * ilbdc[0.0]  # 512 KB footprint
