"""Fig 14: 4-app mixes — weighted-speedup distribution and traffic.

Paper shape: CDCS 28% gmean, Jigsaw+R 17%, Jigsaw+C 6%; on-chip (L2-LLC)
traffic dominates Jigsaw's network latency at this occupancy because its
allocator hands out the whole (plentiful) LLC.
"""

from conftest import emit

from repro.config import default_config
from repro.nuca import SCHEMES
from repro.experiments import format_breakdown, format_table, run_sweep

N_MIXES = 30


def run(runner=None):
    return run_sweep(default_config(), n_apps=4, n_mixes=N_MIXES, seed=42,
                     runner=runner)


def test_fig14_four_app_mixes(once, runner):
    sweep = once(run, runner)
    schemes = list(SCHEMES)
    rows = [(s, sweep.gmean_speedup(s), sweep.max_speedup(s)) for s in schemes]
    emit(format_table(
        ["Scheme", "gmean WS", "max WS"], rows,
        title=f"Fig 14: WS over S-NUCA ({N_MIXES} x 4-app mixes)",
    ))
    cdcs_traffic = sum(sweep.mean_traffic("CDCS").values())
    for s in ["S-NUCA"] + schemes:
        emit(format_breakdown(
            f"Fig 14 traffic/instr vs CDCS [{s}]",
            {k: v / cdcs_traffic for k, v in sweep.mean_traffic(s).items()},
        ))
    g = {s: sweep.gmean_speedup(s) for s in schemes}
    assert g["CDCS"] > g["Jigsaw+R"] > g["Jigsaw+C"]
    # Jigsaw's L2-LLC traffic exceeds CDCS's at low occupancy (over-sized,
    # far-flung VCs), while its LLC-Mem traffic is comparable.
    jig = sweep.mean_traffic("Jigsaw+R")
    cdcs = sweep.mean_traffic("CDCS")
    assert jig["L2-LLC"] > cdcs["L2-LLC"]
