"""Runner throughput: jobs/sec for the serial, pool, and mega-batch paths.

The shape is deliberately the regime the mega-batch runner targets —
many small same-chip mixes (Fig 14's 4-app sweep), where the per-job
path is bounded by per-mix kernel dispatch rather than solver
arithmetic.  Three runners map the *same* job list:

* **serial** — ``ProcessPoolRunner(jobs=1)``: the PR 1 baseline, one
  job at a time, in process;
* **pool** — ``ProcessPoolRunner(jobs=2)``: the PR 1 runner fanned out
  (on a small CI box this mostly measures pickling overhead);
* **mega** — ``MegaBatchRunner(jobs=1)``: all mixes stacked on one
  leading batch axis through the kernels, bitwise-identical per slice.

*cold* is the first map on a fresh runner; *warm* is the median of
``WARM_ROUNDS`` further maps of the same jobs (medians because a 1–2
CPU CI box jitters ±25% on single measurements).  Caching is off
(``store=None``): a cached rerun would measure pickle loads, not the
runner.  Runners execute in serial → pool → mega order so the serial
baseline is never pre-warmed by the mega pass it is compared against.

The ``*_jobs_per_sec`` metrics are machine-relative, so
``tools/bench_compare.py`` gates them only on a matching host
fingerprint (higher is better: a candidate *below* baseline fails).
"""

import os
import platform
import statistics
import time
from datetime import date

from conftest import emit, record_bench_entry

from repro.config import default_config
from repro.experiments.sweeps import sweep_jobs
from repro.runner import MegaBatchRunner, ProcessPoolRunner

N_MIXES = 48
N_APPS = 4
WARM_ROUNDS = 3


def _measure(runner, jobs):
    """(cold jobs/s, warm jobs/s, last payloads) for one runner."""
    try:
        t0 = time.perf_counter()
        payloads = runner.map(jobs)
        cold = len(jobs) / (time.perf_counter() - t0)
        warm_rates = []
        for _ in range(WARM_ROUNDS):
            t0 = time.perf_counter()
            payloads = runner.map(jobs)
            warm_rates.append(len(jobs) / (time.perf_counter() - t0))
        return cold, statistics.median(warm_rates), payloads
    finally:
        close = getattr(runner, "close", None)
        if close is not None:
            close()


def run():
    jobs = sweep_jobs(default_config(), n_apps=N_APPS, n_mixes=N_MIXES,
                      seed=42)
    results = {}
    payloads = {}
    for name, runner in [
        ("serial", ProcessPoolRunner(jobs=1)),
        ("pool", ProcessPoolRunner(jobs=2)),
        ("mega", MegaBatchRunner(jobs=1)),
    ]:
        cold, warm, got = _measure(runner, jobs)
        results[name] = (cold, warm)
        payloads[name] = got
    return results, payloads


def test_runner_throughput(once):
    results, payloads = once(run)

    # The speedup must not come from computing something else: every
    # mega payload is bitwise the serial per-mix payload.
    assert payloads["mega"] == payloads["serial"]
    assert payloads["pool"] == payloads["serial"]

    rows = [(name, cold, warm) for name, (cold, warm) in results.items()]
    lines = [f"Runner throughput ({N_MIXES} x {N_APPS}-app st mixes)"]
    for name, cold, warm in rows:
        lines.append(f"  {name:<8} cold {cold:7.1f} jobs/s   "
                     f"warm {warm:7.1f} jobs/s")
    speedup = results["mega"][1] / results["serial"][1]
    lines.append(f"  mega warm / serial warm = {speedup:.1f}x")
    emit("\n".join(lines))

    record_bench_entry({
        "bench": "bench_runner_throughput",
        "chip": f"{N_MIXES} x {N_APPS}-app single-threaded mixes (fig14 shape)",
        "recorded": date.today().isoformat(),
        "host": f"{platform.system()}-{platform.machine()}-"
                f"{os.cpu_count()}cpu",
        "metrics": {
            "serial_cold_jobs_per_sec": round(results["serial"][0], 2),
            "serial_warm_jobs_per_sec": round(results["serial"][1], 2),
            "pool_cold_jobs_per_sec": round(results["pool"][0], 2),
            "pool_warm_jobs_per_sec": round(results["pool"][1], 2),
            "mega_cold_jobs_per_sec": round(results["mega"][0], 2),
            "mega_warm_jobs_per_sec": round(results["mega"][1], 2),
            "warm_speedup_over_serial": round(speedup, 2),
        },
        "notes": f"store=None; cold = first map on a fresh runner, warm = "
                 f"median of {WARM_ROUNDS} further maps of the same jobs; "
                 f"payloads asserted bitwise-equal across runners",
    })

    # Generous floor — the committed BENCH.json entry records the real
    # ratio (>= 10x on the reference host) and bench_compare gates the
    # absolute rates against it per host fingerprint.
    assert speedup >= 5.0
