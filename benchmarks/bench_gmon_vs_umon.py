"""Sec IV-G / VI-C: GMON vs UMON monitoring quality.

Paper claims: a conventional UMON needs 512 ways for 64 KB grain on 32 MB;
1K-line 64-way GMONs match the performance of 256-way UMONs; 64-way UMONs
lose ~3% from poor resolution.
"""

from conftest import emit

from repro.cache.monitor import required_umon_ways
from repro.experiments import format_table, run_monitor_comparison
from repro.util.units import kb, mb
from repro.workloads import get_profile

APPS = ("astar", "omnet", "gcc")


def run(runner=None):
    out = {}
    for app in APPS:
        out[app] = run_monitor_comparison(
            get_profile(app), llc_bytes=mb(32), accesses=40_000,
            runner=runner,
        )
    return out


def test_gmon_vs_umon(once, runner):
    assert required_umon_ways(mb(32), kb(64)) == 512  # the Sec IV-G example
    results = once(run, runner)
    rows = []
    for app, accs in results.items():
        for acc in accs:
            rows.append(
                (app, f"{acc.monitor_kind}-{acc.ways}",
                 acc.mean_abs_error, acc.small_size_error)
            )
    emit(format_table(
        ["App", "Monitor", "miss-ratio MAE", "small-size MAE"], rows,
        title="GMON vs UMON: monitored-curve error vs ground truth",
    ))
    for app, accs in results.items():
        by = {f"{a.monitor_kind}-{a.ways}": a for a in accs}
        gmon = by["GMON-64"]
        umon64 = by["UMON-64"]
        umon256 = by["UMON-256"]
        # GMON-64 matches UMON-256-class accuracy at small sizes, where
        # allocation decisions live, and beats UMON-64's resolution there.
        assert gmon.small_size_error <= umon64.small_size_error + 0.05, app
        assert gmon.small_size_error <= umon256.small_size_error + 0.10, app
