"""Sec VI-C: CDCS vs expensive placement comparators.

Paper findings: ILP data placement gains ~0.5% over CDCS but takes
~219 Mcycles (Gurobi); a 5000-round annealed thread placer gains ~0.6% at
~6.3 Gcycles; METIS-style graph partitioning does not beat CDCS (+2.5%
network latency).  The shape: comparators are at most marginally better
and vastly more expensive.
"""

from conftest import emit

from repro.config import default_config
from repro.experiments import format_table, run_placer_comparison


def run(runner=None):
    return run_placer_comparison(
        default_config(), n_apps=32, seed=42, mix_id=0, anneal_rounds=5000,
        runner=runner,
    )


def test_placer_comparison(once, runner):
    outcomes = once(run, runner)
    rows = [
        (o.name, o.weighted_speedup, o.onchip_cost / 1e3, o.wall_seconds)
        for o in outcomes
    ]
    emit(format_table(
        ["Placer", "WS", "Eq2 cost (k)", "wall s"], rows,
        title="Sec VI-C: placement quality vs cost (one 32-app mix)",
    ))
    by_name = {o.name: o for o in outcomes}
    cdcs = by_name["CDCS"]
    lp = by_name["LP data placement"]
    anneal = by_name["Simulated annealing"]
    graph = by_name["Graph partitioning"]
    # LP optimizes Eq 2 exactly: it can't be worse on on-chip cost, and its
    # WS advantage should be marginal (paper: +0.5%).
    assert lp.onchip_cost <= cdcs.onchip_cost * 1.001
    assert lp.weighted_speedup <= cdcs.weighted_speedup * 1.05
    # Annealing ends within a few percent of CDCS (paper: +0.6%).
    assert anneal.weighted_speedup >= cdcs.weighted_speedup * 0.93
    # Graph partitioning does not beat CDCS (paper: it's worse).
    assert graph.weighted_speedup <= cdcs.weighted_speedup * 1.02
