"""Fig 16: under-committed multithreaded mixes — four 8-thread apps (32
threads on 64 cores) — plus the mgrid/md/ilbdc/nab case study.

Paper shape: CDCS increases its advantage over Jigsaw+C (more freedom to
place threads); in the case study CDCS spreads private-heavy mgrid across
the chip and tightly clusters the shared-heavy processes.
"""

from conftest import emit

from repro.config import default_config
from repro.nuca import SCHEMES
from repro.experiments import evaluate_mix, format_table, run_sweep
from repro.experiments.sweeps import SweepResult
from repro.model import AnalyticSystem
from repro.workloads import fig16_case_study_mix

N_MIXES = 30


def run_sweep_fig16(runner=None):
    return run_sweep(
        default_config(), n_apps=4, n_mixes=N_MIXES, seed=42,
        multithreaded=True, runner=runner,
    )


def run_case_study_fig16b():
    config = default_config()
    system = AnalyticSystem(config)
    result = SweepResult(n_apps=4, n_mixes=1)
    evaluations = evaluate_mix(
        config, fig16_case_study_mix(), result, seed=1, system=system
    )
    return result, evaluations


def test_fig16a_undercommitted_mt(once, runner):
    sweep = once(run_sweep_fig16, runner)
    schemes = list(SCHEMES)
    rows = [(s, sweep.gmean_speedup(s), sweep.max_speedup(s)) for s in schemes]
    emit(format_table(
        ["Scheme", "gmean WS", "max WS"], rows,
        title=f"Fig 16a: WS over S-NUCA ({N_MIXES} x 4x8-thread mixes)",
    ))
    g = {s: sweep.gmean_speedup(s) for s in schemes}
    assert g["CDCS"] >= g["Jigsaw+C"]
    assert g["CDCS"] > g["R-NUCA"]


def test_fig16b_case_study(once):
    result, evaluations = once(run_case_study_fig16b)
    cdcs = evaluations["CDCS"]
    # mgrid (process 0) is private-heavy and intensive: spread out.
    # md/ilbdc/nab (1-3) are shared-heavy: tightly clustered (Fig 16b).
    by_process = {}
    topo_width = 8
    for t in cdcs.threads:
        by_process.setdefault(t.process_id, []).append(t.core)

    def spread(cores):
        xs = [c % topo_width for c in cores]
        ys = [c // topo_width for c in cores]
        cx, cy = sum(xs) / len(xs), sum(ys) / len(ys)
        return sum(abs(x - cx) + abs(y - cy) for x, y in zip(xs, ys)) / len(cores)

    mgrid_spread = spread(by_process[0])
    shared_spreads = [spread(by_process[p]) for p in (1, 2, 3)]
    emit(f"Fig 16b thread spread (mean |dist to centroid|): "
         f"mgrid={mgrid_spread:.2f}, shared-heavy="
         + ", ".join(f"{s:.2f}" for s in shared_spreads))
    assert mgrid_spread > min(shared_spreads)
