"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports (values are from our simulated
substrate — see docs/REPRODUCING.md for the paper-vs-measured record).
Heavy experiments run once per benchmark (`pedantic`, one round).

Sweep-shaped benchmarks submit their points through
``repro.runner.ProcessPoolRunner`` (the ``runner`` fixture).  Two
environment variables control it:

* ``REPRO_JOBS=N`` — fan jobs out over N worker processes (default 1;
  results are identical at any N, only the wall clock changes);
* ``REPRO_CACHE_DIR=path`` — enable the content-hashed result cache, so a
  re-run recomputes only changed points.  Off by default: a cached
  benchmark's timing measures pickle loads, not simulation.

Emitted tables go to stderr *and* are appended to
``benchmarks/benchmark_results.txt`` so the regenerated figures survive
pytest's output capture.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.runner import ProcessPoolRunner
from repro.testing import make_runner

__all__ = ["emit", "make_runner", "record_bench_entry"]

RESULTS_PATH = Path(__file__).parent / "benchmark_results.txt"
BENCH_JSON = Path(__file__).parent / "BENCH.json"


def pytest_sessionstart(session):
    RESULTS_PATH.write_text("")


def emit(text: str) -> None:
    """Record one block of regenerated figure/table output."""
    print(text, file=sys.stderr)
    with RESULTS_PATH.open("a") as fh:
        fh.write(text + "\n")


def record_bench_entry(entry: dict) -> None:
    """Append *entry* to the BENCH.json history (latest last).

    Entries need a ``bench`` name; ``tools/bench_compare.py`` gates the
    latest entry per name against the baseline (``*second*`` leaves on
    matching hosts, ``*mcycle*`` leaves everywhere).
    """
    history = {"entries": []}
    if BENCH_JSON.exists():
        try:
            history = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            pass
    history.setdefault("entries", []).append(entry)
    BENCH_JSON.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def runner() -> ProcessPoolRunner:
    """A fresh runner per benchmark (stats stay per-figure)."""
    return make_runner()


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under timing."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
