"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports (values are from our simulated
substrate — see EXPERIMENTS.md for the paper-vs-measured record).  Heavy
experiments run once per benchmark (`pedantic`, one round).

Emitted tables go to stderr *and* are appended to
``benchmarks/benchmark_results.txt`` so the regenerated figures survive
pytest's output capture.
"""

import sys
from pathlib import Path

import pytest

RESULTS_PATH = Path(__file__).parent / "benchmark_results.txt"


def pytest_sessionstart(session):
    RESULTS_PATH.write_text("")


def emit(text: str) -> None:
    """Record one block of regenerated figure/table output."""
    print(text, file=sys.stderr)
    with RESULTS_PATH.open("a") as fh:
        fh.write(text + "\n")


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under timing."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
