"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports (values are from our simulated
substrate — see docs/REPRODUCING.md for the paper-vs-measured record).
Heavy experiments run once per benchmark (`pedantic`, one round).

Sweep-shaped benchmarks submit their points through
``repro.runner.ProcessPoolRunner`` (the ``runner`` fixture).  Two
environment variables control it:

* ``REPRO_JOBS=N`` — fan jobs out over N worker processes (default 1;
  results are identical at any N, only the wall clock changes);
* ``REPRO_CACHE_DIR=path`` — enable the content-hashed result cache, so a
  re-run recomputes only changed points.  Off by default: a cached
  benchmark's timing measures pickle loads, not simulation.

Emitted tables go to stderr *and* are appended to
``benchmarks/benchmark_results.txt`` so the regenerated figures survive
pytest's output capture.
"""

import os
import sys
from pathlib import Path

import pytest

from repro.runner import ProcessPoolRunner, ResultStore

RESULTS_PATH = Path(__file__).parent / "benchmark_results.txt"


def pytest_sessionstart(session):
    RESULTS_PATH.write_text("")


def emit(text: str) -> None:
    """Record one block of regenerated figure/table output."""
    print(text, file=sys.stderr)
    with RESULTS_PATH.open("a") as fh:
        fh.write(text + "\n")


def make_runner() -> ProcessPoolRunner:
    """Build the benchmark runner from REPRO_JOBS / REPRO_CACHE_DIR."""
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_CACHE_DIR", "")
    store = ResultStore(cache_dir) if cache_dir else None
    return ProcessPoolRunner(jobs=jobs, store=store)


@pytest.fixture
def runner() -> ProcessPoolRunner:
    """A fresh runner per benchmark (stats stay per-figure)."""
    return make_runner()


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under timing."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
