"""Fig 15: 50 mixes of eight 8-thread SPECOMP2012-like apps (64 threads).

Paper shape: trends reverse vs single-threaded mixes — Jigsaw works
*better* with clustered placement than random (J+C 19% vs J+R 14%), and
CDCS (21%) still leads by adapting per process; R-NUCA 9%.
"""

from conftest import emit

from repro.config import default_config
from repro.nuca import SCHEMES
from repro.experiments import format_breakdown, format_table, run_sweep

N_MIXES = 30


def run(runner=None):
    return run_sweep(
        default_config(), n_apps=8, n_mixes=N_MIXES, seed=42,
        multithreaded=True, runner=runner,
    )


def test_fig15_multithreaded(once, runner):
    sweep = once(run, runner)
    schemes = list(SCHEMES)
    rows = [(s, sweep.gmean_speedup(s), sweep.max_speedup(s)) for s in schemes]
    emit(format_table(
        ["Scheme", "gmean WS", "max WS"], rows,
        title=f"Fig 15: WS over S-NUCA ({N_MIXES} x 8x8-thread mixes)",
    ))
    cdcs_traffic = sum(sweep.mean_traffic("CDCS").values())
    for s in ["S-NUCA"] + schemes:
        emit(format_breakdown(
            f"Fig 15b traffic/instr vs CDCS [{s}]",
            {k: v / cdcs_traffic for k, v in sweep.mean_traffic(s).items()},
        ))
    g = {s: sweep.gmean_speedup(s) for s in schemes}
    # The reversal: clustered beats random for multithreaded Jigsaw.
    assert g["Jigsaw+C"] > g["Jigsaw+R"]
    assert g["CDCS"] >= g["Jigsaw+C"] - 0.01  # CDCS matches/beats J+C
    assert g["CDCS"] > g["R-NUCA"]
