"""Fig 13: under-committed systems — 1 to 64 single-threaded apps.

Paper shape: CDCS maintains high weighted speedups across the whole range
(28% gmean at 4 apps); Jigsaw+C works poorly on 1-8 app mixes (6% at
4 apps) and Jigsaw+R sits in between (17% at 4 apps).
"""

from conftest import emit

from repro.config import default_config
from repro.nuca import SCHEMES
from repro.experiments import format_table, run_sweep

OCCUPANCIES = (1, 2, 4, 8, 16, 32, 64)
N_MIXES = 15


def run(runner=None):
    config = default_config()
    out = {}
    for n_apps in OCCUPANCIES:
        out[n_apps] = run_sweep(config, n_apps=n_apps, n_mixes=N_MIXES,
                                seed=42, runner=runner)
    return out


def test_fig13_undercommitted(once, runner):
    sweeps = once(run, runner)
    schemes = list(SCHEMES)
    rows = []
    for n_apps, sweep in sweeps.items():
        rows.append(
            (f"{n_apps} apps", *(sweep.gmean_speedup(s) for s in schemes))
        )
    emit(format_table(
        ["Mix size"] + schemes, rows,
        title=f"Fig 13: gmean WS vs occupancy ({N_MIXES} mixes/point)",
    ))
    # CDCS leads everywhere; Jigsaw+C is weakest among partitioned schemes
    # at low occupancy (paper Sec VI-A).
    for n_apps, sweep in sweeps.items():
        assert sweep.gmean_speedup("CDCS") >= sweep.gmean_speedup("Jigsaw+R") - 0.02
    four = sweeps[4]
    assert four.gmean_speedup("CDCS") > four.gmean_speedup("Jigsaw+C") + 0.03
    assert four.gmean_speedup("Jigsaw+R") > four.gmean_speedup("Jigsaw+C")
