"""Fig 12: factor analysis of CDCS techniques at 64 apps and 4 apps.

Paper shape: at 64 apps capacity is scarce — latency-aware allocation (+L)
helps little while thread (+T) and data (+D) placement compound into +LTD;
at 4 apps capacity is plentiful — +L provides most of CDCS's gain.
"""

from conftest import emit

from repro.config import default_config
from repro.experiments import format_table, run_factor_analysis

N_MIXES = 25


def run(n_apps, runner=None):
    return run_factor_analysis(
        default_config(), n_apps=n_apps, n_mixes=N_MIXES, seed=42,
        runner=runner,
    )


def test_fig12a_64_apps(once, runner):
    result = once(run, 64, runner)
    gmeans = result.gmeans()
    emit(format_table(
        ["Variant", "gmean WS"], list(gmeans.items()),
        title=f"Fig 12a: factor analysis, {N_MIXES} x 64-app mixes",
    ))
    assert gmeans["+LTD"] >= gmeans["+T"] - 1e-3
    assert gmeans["+LTD"] >= gmeans["+D"] - 1e-3
    assert gmeans["+LTD"] > gmeans["Jigsaw+R"]
    # Capacity-scarce: +L adds little by itself (paper Fig 12a).
    assert abs(gmeans["+L"] - gmeans["Jigsaw+R"]) < 0.05


def test_fig12b_4_apps(once, runner):
    result = once(run, 4, runner)
    gmeans = result.gmeans()
    emit(format_table(
        ["Variant", "gmean WS"], list(gmeans.items()),
        title=f"Fig 12b: factor analysis, {N_MIXES} x 4-app mixes",
    ))
    # Capacity-plentiful: latency-aware allocation carries the gain.
    assert gmeans["+L"] > gmeans["Jigsaw+R"] + 0.01
    assert gmeans["+LTD"] > gmeans["Jigsaw+R"]
