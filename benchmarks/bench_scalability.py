"""Scalability sweep: CDCS from 16 to 256 tiles at fixed per-tile load.

Beyond-the-paper evidence: the paper stops at 64 tiles; this driver grows
the mesh to 4x that area and pins the scaling story — per-tile IPC and
mean hops stay within a modest band of the 64-tile point (co-scheduling
keeps data local as the chip grows), while the modeled epoch-solve
runtime grows superlinearly and overruns the 50 Mcycle reconfiguration
interval at 256 tiles: the runtime, not cache locality, is the first
scaling wall.  (PR 5's reconfiguration engine knocks that wall down —
``bench_solver_strategies.py`` measures the incremental/partitioned
strategies that keep 256-1024-tile meshes inside the interval; this
driver keeps pinning the single-shot ``full`` baseline.)
"""

from conftest import emit

from repro.experiments import format_table, run_scalability

TILES = (16, 64, 144, 256)
N_MIXES = 2


def run(runner=None):
    return run_scalability(tiles=TILES, n_mixes=N_MIXES, seed=42,
                           runner=runner)


def test_scalability_sweep(once, runner):
    result = once(run, runner)
    emit(format_table(
        ["tiles", "apps", "IPC", "IPC/tile", "hops", "runtime Mcyc",
         "solve ms"],
        result.table_rows(),
        title=f"Scalability sweep ({N_MIXES} mixes/point, fully committed)",
    ))
    per_tile = {t: result.mean(t, "ipc_per_tile") for t in TILES}
    # Locality holds as the mesh grows: per-tile IPC at 256 tiles stays
    # within 25% of the 64-tile design point (measured ~93%), and mean
    # hops stay in the same sub-hop band instead of growing with the edge.
    assert per_tile[256] > 0.75 * per_tile[64]
    assert result.mean(256, "mean_hops") < 2.0 * result.mean(64, "mean_hops")
    # Aggregate throughput actually scales (more tiles, more retired work).
    assert result.mean(256, "aggregate_ipc") > 2.5 * result.mean(64, "aggregate_ipc")
    # Runtime: at 144 tiles the solve still fits the paper's 50 Mcycle
    # interval; at 256 it no longer does (~80 Mcycles measured) — the
    # single-core epoch solve, not cache locality, is what caps the mesh.
    # Pin both sides of that finding.
    assert result.mean(144, "model_mcycles") < 50.0
    assert 50.0 < result.mean(256, "model_mcycles") < 200.0
