"""Fig 17: aggregate IPC through one reconfiguration, per movement scheme.

Paper shape: bulk invalidations pause the whole chip (~100 Kcycles dip to
near zero); demand moves + background invalidations track instant moves
closely (smooth reconfiguration).
"""

from conftest import emit

from repro.experiments import (
    PROTOCOLS,
    format_series,
    reconfig_trace_jobs,
)
from repro.runner import run_jobs

RECONFIG_AT = 300_000.0
HORIZON = 900_000.0
SCALE = 16


def run(runner=None):
    jobs = reconfig_trace_jobs(
        reconfig_at=RECONFIG_AT, horizon=HORIZON, capacity_scale=SCALE,
        seed=5,
    )
    return dict(zip(PROTOCOLS, run_jobs(jobs, runner)))


def test_fig17_reconfiguration_trace(once, runner):
    traces = once(run, runner)
    for name, trace in traces.items():
        decim = trace.trace[:: max(len(trace.trace) // 18, 1)]
        emit(format_series(
            f"Fig17 {name} (cycle, aggregate IPC)",
            [(t / 1e6, ipc) for t, ipc in decim], fmt="{:.2f}",
        ))
        emit(
            f"Fig17 {name}: before={trace.ipc_before:.2f} "
            f"during={trace.ipc_during:.2f} after={trace.ipc_after:.2f} "
            f"demand_moves={trace.demand_moves} "
            f"bg_inv={trace.background_invalidations} "
            f"bulk_inv={trace.bulk_invalidations}"
        )
    bulk = traces["bulk-inv"]
    background = traces["background-inv"]
    instant = traces["instant"]
    assert bulk.ipc_during < 0.75 * bulk.ipc_before  # the pause dip
    assert background.ipc_during > 0.8 * background.ipc_before  # smooth
    assert instant.ipc_during > 0.8 * instant.ipc_before
    assert background.bulk_invalidations == 0
    assert bulk.demand_moves == 0
