"""Kernel microbenchmarks: vectorized epoch kernels vs the scalar path.

PR 2's tentpole claim — the inner epoch loop is array math now — is
measured here, not asserted in prose:

* **miss-curve batch**: all VCs' curves on the allocation grid in one
  :class:`MissCurveBatch` call vs one ``np.interp`` per curve;
* **placement scoring**: Sec IV-D candidate scoring as matrix passes vs
  per-candidate window loops;
* **sharing fixed point**: the lockstep bisection vs per-stream nested
  bisection;
* **end-to-end**: one fig11 (64-app) and one fig15 (multithreaded) sweep
  point through ``repro.kernels.scalar_reference`` vs the default path.

The acceptance gate (>= 3x on batched miss-curve evaluation and placement
scoring) is asserted.  Results are appended to
``benchmarks/benchmark_results.txt`` and recorded as a JSON entry in
``benchmarks/BENCH.json`` so the speedup history survives refactors.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import emit, record_bench_entry

from repro.cache.miss_curve import MissCurveBatch
from repro.config import default_config
from repro.experiments.sweeps import SweepResult, evaluate_mix
from repro.kernels import scalar_reference
from repro.nuca.base import build_problem
from repro.nuca.sharing import (
    shared_cache_occupancies,
    shared_cache_occupancies_batch,
)
from repro.sched.allocation import allocate_latency_aware
from repro.sched.vc_placement import (
    place_optimistic_scalar,
    place_optimistic_vectorized,
)
from repro.testing import golden_mix
from repro.workloads.mixes import random_multithreaded_mix


def _best_of(fn, repeats: int = 3) -> float:
    """Best wall-clock of *repeats* runs (reduces scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_speedups(once):
    config = default_config()
    problem = build_problem(config=config, mix=golden_mix())
    curves = [vc.miss_curve for vc in problem.vcs]
    quanta = problem.total_bytes // problem.quantum
    grid = np.arange(quanta + 1, dtype=np.float64) * problem.quantum

    def run() -> dict:
        speedups: dict[str, float] = {}

        # 1. Batched miss-curve evaluation: all VCs' allocations probed in
        # one call vs the scalar loop (the Eq 1 / sharing inner step).
        # Repeat the probe 50x so the measurement isn't pure call overhead
        # (one bisection runs thousands of these).
        batch = MissCurveBatch(curves)
        rng = np.random.default_rng(0)
        allocations = rng.uniform(0.0, problem.total_bytes, len(curves))
        scalar_t = _best_of(
            lambda: [
                [float(c(x)) for c, x in zip(curves, allocations)]
                for _ in range(50)
            ]
        )
        batch_t = _best_of(lambda: [batch(allocations) for _ in range(50)])
        assert np.array_equal(
            batch(allocations),
            np.array([float(c(x)) for c, x in zip(curves, allocations)]),
        )
        speedups["miss_curve_batch"] = scalar_t / batch_t
        assert np.array_equal(
            batch.at_grid(grid), np.vstack([np.asarray(c(grid)) for c in curves])
        )

        # 2. Placement candidate scoring (Sec IV-D).
        vc_sizes = allocate_latency_aware(problem)
        scalar_t = _best_of(
            lambda: place_optimistic_scalar(problem, vc_sizes), repeats=2
        )
        vector_t = _best_of(
            lambda: place_optimistic_vectorized(problem, vc_sizes), repeats=2
        )
        assert (
            place_optimistic_vectorized(problem, vc_sizes).centers
            == place_optimistic_scalar(problem, vc_sizes).centers
        )
        speedups["placement_scoring"] = scalar_t / vector_t

        # 3. LRU-sharing fixed point (S-NUCA/R-NUCA capacity division).
        capacity = float(problem.total_bytes)
        fns = [c.__call__ for c in curves]
        scalar_t = _best_of(
            lambda: shared_cache_occupancies(fns, capacity), repeats=2
        )
        batch_t = _best_of(
            lambda: shared_cache_occupancies_batch(batch, capacity), repeats=2
        )
        speedups["sharing_fixed_point"] = scalar_t / batch_t

        # 4. End-to-end sweep points (fig11 single-threaded, fig15 MT).
        def point(multithreaded: bool) -> None:
            if multithreaded:
                mix = random_multithreaded_mix(8, 7, 0)
            else:
                mix = golden_mix()
            evaluate_mix(
                config, mix, SweepResult(n_apps=64, n_mixes=1), seed=0
            )

        for label, multithreaded in (("fig11_point", False), ("fig15_point", True)):
            vector_t = _best_of(lambda: point(multithreaded), repeats=2)
            with scalar_reference():
                scalar_t = _best_of(lambda: point(multithreaded), repeats=1)
            speedups[label] = scalar_t / vector_t
        return speedups

    speedups = once(run)
    rows = "\n".join(
        f"  {name:22s} {ratio:6.1f}x" for name, ratio in speedups.items()
    )
    emit(f"Kernel speedups (vectorized vs scalar reference):\n{rows}")

    record_bench_entry(
        {
            "bench": "bench_kernels",
            "chip": "64-tile mesh (default_config)",
            "speedups": {k: round(v, 2) for k, v in speedups.items()},
            "recorded": time.strftime("%Y-%m-%d"),
        }
    )

    # Acceptance gate: >= 3x on batched miss-curve eval + placement scoring.
    assert speedups["miss_curve_batch"] >= 3.0, speedups
    assert speedups["placement_scoring"] >= 3.0, speedups
    # End-to-end sweep points must win too (smaller factor: they include
    # the still-sequential hull walks and trade scans).
    assert speedups["fig11_point"] > 1.5, speedups
    assert speedups["fig15_point"] > 1.5, speedups
