"""Hierarchical scale points: the PR 7 acceptance gate as a benchmark.

One end-to-end ``scalability_point`` per mesh size with the
``hierarchical`` strategy, plus the lazy-geometry allocation account for
that solve.  Asserted here and recorded as a ``bench_solver_scale_points``
entry in ``benchmarks/BENCH.json``:

* the modeled critical path (slowest leaf + per-level anytime stitches)
  fits the paper's 50 Mcycle reconfiguration interval at 4096 tiles —
  where the flat full solve measured 1201.6 Mcyc at 1024 already;
* no dense O(N²) geometry block is ever allocated — the peak single
  allocation stays a fraction of one dense int32 matrix.

The 16384-tile point (the ≤ ~10%-of-dense memory target) takes ~40 s of
solve wall, so it only runs with ``REPRO_BENCH_XL=1``; CI measures the
4096-tile point per run and ``tools/bench_compare.py`` gates the
``*_mcycles`` and ``*_mib`` metrics (machine-independent) everywhere and
the ``*_seconds`` metrics on matching hosts.
"""

import os
import platform
from datetime import date

from conftest import emit, record_bench_entry

from repro.experiments import format_table
from repro.experiments.scalability import (
    scalability_point,
    scaled_mesh_config,
)
from repro.geometry import (
    dense_geometry_bytes,
    geometry_allocation_stats,
    reset_geometry_allocation_stats,
)

TILES = 4096
XL_TILES = 16384
RUN_XL = os.environ.get("REPRO_BENCH_XL") == "1"


def _measure(tiles: int) -> dict:
    """One hierarchical point + the geometry allocations it caused.

    The allocation reset keeps already-built caches warm (and uncounted),
    so a warm re-run under-reports — fine for the gate, which is an
    upper bound; the committed entry comes from a cold process.
    """
    reset_geometry_allocation_stats()
    record = scalability_point(tiles, seed=42, mix_id=0,
                               strategy="hierarchical")
    stats = geometry_allocation_stats()
    dense_ref = dense_geometry_bytes(tiles)
    return {
        "record": record,
        "stats": stats,
        "cached_mib": stats.cached_mib(),
        "peak_block_mib": stats.peak_block_bytes / 2**20,
        "dense_ref_mib": dense_ref / 2**20,
        "dense_ratio": stats.cached_bytes / dense_ref,
    }


def _assert_point(tiles: int, measured: dict, interval_mcycles: float):
    record, stats = measured["record"], measured["stats"]
    assert record["strategy"] == "hierarchical"
    # The acceptance gate: modeled critical path inside the interval.
    assert record["modeled_mcycles"] < interval_mcycles
    assert record["step_mcycles"]["stitch"] > 0.0
    # No dense O(N²) block anywhere: the largest single allocation
    # (transients included) is a fraction of one dense int32 matrix.
    assert stats.peak_block_bytes < tiles * tiles * 4 // 2


def test_hierarchical_scale_points(once):
    interval = (scaled_mesh_config(TILES).scheduler
                .reconfigure_interval_cycles / 1e6)
    points = {TILES: once(_measure, TILES)}
    if RUN_XL:
        points[XL_TILES] = _measure(XL_TILES)

    rows = []
    metrics = {"interval_mcycles": interval}
    for tiles, measured in points.items():
        _assert_point(tiles, measured, interval)
        record, stats = measured["record"], measured["stats"]
        rows.append((
            tiles, record["n_apps"],
            round(record["modeled_mcycles"], 2),
            round(record["step_mcycles"]["stitch"], 2),
            round(record["solve_seconds_total"], 2),
            round(measured["cached_mib"], 1),
            round(measured["peak_block_mib"], 1),
            f"{measured['dense_ratio']:.1%}",
        ))
        prefix = f"hierarchical_{tiles}t"
        metrics[f"{prefix}_critical_path_mcycles"] = round(
            record["modeled_mcycles"], 3)
        metrics[f"{prefix}_stitch_mcycles"] = round(
            record["step_mcycles"]["stitch"], 3)
        metrics[f"{prefix}_solve_wall_seconds"] = round(
            record["solve_seconds_total"], 2)
        metrics[f"geometry_{tiles}t_cached_mib"] = round(
            measured["cached_mib"], 1)
        metrics[f"geometry_{tiles}t_peak_block_mib"] = round(
            measured["peak_block_mib"], 1)
        metrics[f"geometry_{tiles}t_dense_matrices"] = stats.dense_matrices
        metrics[f"geometry_{tiles}t_lazy_rows"] = stats.lazy_rows

    if RUN_XL:
        # The headline memory target: what the 16384-tile solve retains
        # is at most ~10% of the dense matrix trio it replaced.
        assert points[XL_TILES]["dense_ratio"] <= 0.10

    emit(format_table(
        ["tiles", "apps", "critical Mcyc", "stitch Mcyc", "solve s",
         "cached MiB", "peak block MiB", "of dense"],
        rows,
        title=f"Hierarchical scale points "
              f"(interval {interval:.0f} Mcyc"
              f"{'' if RUN_XL else '; REPRO_BENCH_XL=1 adds 16384t'})",
    ))

    record_bench_entry({
        "bench": "bench_solver_scale_points",
        "chip": "4096-tile (64x64)"
                + (" and 16384-tile (128x128)" if RUN_XL else "")
                + " meshes, scaled_mesh_config, hierarchical strategy",
        "recorded": date.today().isoformat(),
        "host": f"{platform.system()}-{platform.machine()}"
                f"-{os.cpu_count()}cpu",
        "metrics": metrics,
        "notes": "PR 7 acceptance record: hierarchical critical path "
                 "(slowest leaf + per-level anytime stitches, "
                 "STITCH_OPS_BUDGET capped) vs the 50 Mcycle interval, "
                 "with the lazy-geometry allocation account for the same "
                 "solve. *_mcycles and *_mib metrics are deterministic "
                 "and gate on any machine; *_seconds gate on matching "
                 "hosts only.",
    })
