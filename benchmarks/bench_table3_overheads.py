"""Table 3: CDCS reconfiguration runtime analysis.

Paper rows (Mcycles per invocation):

    threads/cores        16/16  16/64  64/64
    capacity allocation   0.30   0.30   1.20
    thread placement      0.29   0.80   3.44
    data placement        0.13   0.36   1.85
    total                 0.72   1.46   6.49
    overhead @ 25 ms      0.09%  0.05%  0.20%
"""

from conftest import emit

from repro.experiments import format_table, run_table3


def test_table3_runtime(once):
    rows = once(run_table3, seed=42, repeats=3)
    table_rows = []
    for row in rows:
        table_rows.append(
            (
                f"{row.threads}/{row.cores}",
                row.step_mcycles["allocation"],
                row.step_mcycles["vc_placement"],
                row.step_mcycles["thread_placement"],
                row.step_mcycles["data_placement"],
                row.total_mcycles,
                f"{row.overhead_percent(25.0):.3f}%",
            )
        )
    emit(format_table(
        ["thr/cores", "alloc", "vc place", "thr place", "data place",
         "total Mcyc", "ovh@25ms"],
        table_rows,
        title="Table 3: reconfiguration runtime per step",
    ))
    by_point = {(r.threads, r.cores): r for r in rows}
    # Scaling shape: runtime grows with threads and tiles; the placement
    # steps (quadratic) dominate at 64/64.
    assert by_point[(64, 64)].total_mcycles > by_point[(16, 64)].total_mcycles
    assert by_point[(16, 64)].total_mcycles > by_point[(16, 16)].total_mcycles
    big = by_point[(64, 64)]
    placement = (
        big.step_mcycles["thread_placement"]
        + big.step_mcycles["data_placement"]
        + big.step_mcycles["vc_placement"]
    )
    assert placement > big.step_mcycles["allocation"]
    # Overheads stay well under 1% at 25 ms (paper: 0.2% at 64/64).
    assert big.overhead_percent(25.0) < 1.0
