"""Table 1 / Fig 1: the 36-tile case study (Sec II-B).

Paper rows (per-app and weighted speedups over S-NUCA):

    R-NUCA    1.09  0.99  1.15  | WS 1.08
    Jigsaw+C  2.88  1.40  1.21  | WS 1.48
    Jigsaw+R  3.99  1.20  1.21  | WS 1.47
    CDCS      4.00  1.40  1.20  | WS 1.56
"""

from conftest import emit

from repro.experiments import format_table, render_chip_map, run_case_study


def test_table1_case_study(once):
    result = once(run_case_study)
    emit(
        format_table(
            ["Scheme", "omnet", "ilbdc", "milc", "WS"],
            result.table1(),
            title="Table 1: case-study speedups over S-NUCA (36 tiles)",
        )
    )
    emit(render_chip_map(result, "CDCS"))
    ws = result.weighted
    assert ws["CDCS"] > ws["Jigsaw+C"]
    assert ws["CDCS"] > ws["R-NUCA"]
    assert result.app_speedups["CDCS"]["omnet"] > 3.0
