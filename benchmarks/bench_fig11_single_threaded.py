"""Fig 11: 50 mixes of 64 SPECCPU2006-like apps on the 64-core CMP.

Panels and paper numbers to reproduce in *shape*:

  (a) weighted-speedup inverse CDF — gmeans: CDCS 1.46 (max 1.76),
      Jigsaw+R 1.38, Jigsaw+C 1.34, R-NUCA 1.18;
  (b) on-chip LLC network latency vs CDCS: S-NUCA 11x, J+C 2x, J+R 1.51x;
  (c) off-chip latency vs CDCS: S-NUCA +23%, R-NUCA +46%;
  (d) NoC traffic vs CDCS: S-NUCA ~3x;
  (e) energy/instr vs CDCS: S-NUCA ~1.3-1.4x (CDCS saves 36% of system
      energy over S-NUCA).
"""

from conftest import emit

from repro.config import default_config
from repro.nuca import SCHEMES
from repro.experiments import format_breakdown, format_table, run_sweep

N_MIXES = 50


def run(runner=None):
    return run_sweep(default_config(), n_apps=64, n_mixes=N_MIXES, seed=42,
                     runner=runner)


def test_fig11_panels(once, runner):
    sweep = once(run, runner)
    schemes = list(SCHEMES)
    rows = [
        (s, sweep.gmean_speedup(s), sweep.max_speedup(s)) for s in schemes
    ]
    emit(format_table(["Scheme", "gmean WS", "max WS"], rows,
                      title=f"Fig 11a: weighted speedup over S-NUCA "
                            f"({N_MIXES} x 64-app mixes)"))
    cdf = sweep.speedup_cdf("CDCS")
    emit(f"Fig 11a CDCS inverse-CDF deciles: "
         + ", ".join(f"{v:.2f}" for v in cdf[:: max(len(cdf) // 10, 1)]))

    cdcs_onchip = sweep.mean_onchip("CDCS")
    cdcs_offchip = sweep.mean_offchip("CDCS")
    lat_rows = [
        (
            s,
            sweep.mean_onchip(s) / cdcs_onchip,
            sweep.mean_offchip(s) / cdcs_offchip,
        )
        for s in ["S-NUCA"] + schemes
    ]
    emit(format_table(
        ["Scheme", "on-chip vs CDCS", "off-chip vs CDCS"], lat_rows,
        title="Fig 11b/c: LLC network + off-chip latency normalized to CDCS",
    ))

    cdcs_traffic = sum(sweep.mean_traffic("CDCS").values())
    for s in ["S-NUCA"] + schemes:
        t = sweep.mean_traffic(s)
        emit(format_breakdown(
            f"Fig 11d traffic/instr vs CDCS [{s}]",
            {k: v / cdcs_traffic for k, v in t.items()},
        ))

    cdcs_energy = sum(sweep.mean_energy("CDCS").values())
    for s in ["S-NUCA"] + schemes:
        e = sweep.mean_energy(s)
        emit(format_breakdown(
            f"Fig 11e energy/instr vs CDCS [{s}]",
            {k: v / cdcs_energy for k, v in e.items()},
        ))

    # Shape assertions (paper's orderings).
    g = {s: sweep.gmean_speedup(s) for s in schemes}
    assert g["CDCS"] > g["Jigsaw+R"] > g["Jigsaw+C"] > g["R-NUCA"] > 1.0
    snuca_onchip = sweep.mean_onchip("S-NUCA")
    assert snuca_onchip / cdcs_onchip > 5.0  # paper: 11x
    assert sweep.mean_offchip("R-NUCA") / cdcs_offchip > 1.2  # paper: 1.46x
    snuca_traffic = sum(sweep.mean_traffic("S-NUCA").values())
    assert snuca_traffic / cdcs_traffic > 2.0  # paper: ~3x
    snuca_energy = sum(sweep.mean_energy("S-NUCA").values())
    assert snuca_energy / cdcs_energy > 1.15  # paper: ~1.56x (36% savings)
