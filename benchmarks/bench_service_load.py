"""Service-load benchmark: the control plane under concurrent tenants.

Beyond-the-paper evidence for the PR 6 control plane: N chips streaming
telemetry through one :class:`~repro.service.server.CoSchedService`
concurrently, measured the way a serving system is — requests/sec and
p50/p99 placement latency — with the determinism contract (no
degradations, no rejections on a healthy run) asserted alongside.

Appends a ``bench_service`` entry to ``benchmarks/BENCH.json``.  The
``service_wall_seconds`` leaves gate against a same-host baseline via
``tools/bench_compare.py``; the latency/throughput numbers are recorded
for trend-watching but deliberately avoid the gated key patterns (they
are scheduling-noise sensitive at this scale).
"""

import os
import platform
from datetime import date

from conftest import emit, record_bench_entry

from repro.experiments import format_table
from repro.service import LoadSpec, run_load

CHIPS = 4
EPOCHS = 5
TILES = 16


def run_session(strategy: str, dynamism: str):
    return run_load(LoadSpec(
        chips=CHIPS, epochs=EPOCHS, tiles=TILES,
        strategy=strategy, dynamism=dynamism,
    ))


def test_service_load(once):
    report = once(run_session, "incremental", "phased")
    full = run_session("full", "phased")

    emit(format_table(
        ["strategy", "dynamism", "requests", "ok", "degraded", "rejected",
         "req/s", "p50 ms", "p99 ms"],
        [
            ("incremental", "phased", report.requests, report.ok,
             report.degraded, sum(report.rejected.values()),
             round(report.requests_per_sec, 1),
             round(report.p50_latency_ms, 2),
             round(report.p99_latency_ms, 2)),
            ("full", "phased", full.requests, full.ok, full.degraded,
             sum(full.rejected.values()),
             round(full.requests_per_sec, 1),
             round(full.p50_latency_ms, 2),
             round(full.p99_latency_ms, 2)),
        ],
        title=f"Service load ({CHIPS} chips x {EPOCHS} epochs, "
              f"{TILES} tiles)",
    ))

    # A healthy session serves every request fresh: nothing degrades,
    # nothing is rejected, every chip gets one placement per epoch.
    for session in (report, full):
        assert session.requests == CHIPS * EPOCHS
        assert session.ok == session.requests
        assert session.degraded == 0
        assert session.rejected == {}
    assert report.p50_latency_ms <= report.p99_latency_ms
    assert report.requests_per_sec > 0

    record_bench_entry({
        "bench": "bench_service",
        "chip": f"{CHIPS}x {TILES}-tile mesh tenants",
        "recorded": date.today().isoformat(),
        "host": f"{platform.system()}-{platform.machine()}"
                f"-{os.cpu_count()}cpu",
        "metrics": {
            "requests": report.requests,
            "incremental_req_per_s": round(report.requests_per_sec, 1),
            "incremental_p50_latency_ms": round(report.p50_latency_ms, 3),
            "incremental_p99_latency_ms": round(report.p99_latency_ms, 3),
            "full_req_per_s": round(full.requests_per_sec, 1),
            "full_p50_latency_ms": round(full.p50_latency_ms, 3),
            "full_p99_latency_ms": round(full.p99_latency_ms, 3),
        },
        "service_wall_seconds": {
            "incremental_phased": round(report.wall_seconds, 4),
            "full_phased": round(full.wall_seconds, 4),
        },
    })
