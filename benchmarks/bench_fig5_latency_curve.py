"""Fig 5: access latency vs capacity allocation for one VC.

The off-chip component falls with capacity, the on-chip component rises,
and the total has an interior "sweet spot" — the observation latency-aware
allocation (Sec IV-C) is built on.
"""

import numpy as np
from conftest import emit

from repro.config import default_config
from repro.experiments import format_series
from repro.nuca import build_problem
from repro.sched import latency_curve, miss_only_curve
from repro.workloads import get_profile, make_mix


def fig5_series():
    config = default_config()
    problem = build_problem(make_mix(["omnet"]), config)
    omnet = get_profile("omnet")
    total = latency_curve(problem, omnet.private_curve, omnet.llc_apki)
    offchip = miss_only_curve(problem, omnet.private_curve, omnet.llc_apki)
    onchip = total - offchip
    quanta = np.arange(len(total)) * problem.quantum / (1024 * 1024)
    stride = 16
    return {
        "total": list(zip(quanta[::stride], total[::stride])),
        "off-chip": list(zip(quanta[::stride], offchip[::stride])),
        "on-chip": list(zip(quanta[::stride], onchip[::stride])),
        "sweet_spot_mb": float(quanta[int(np.argmin(total))]),
    }


def test_fig5_latency_vs_capacity(once):
    series = once(fig5_series)
    for name in ("off-chip", "on-chip", "total"):
        emit(format_series(f"Fig5 {name} (latency vs MB)", series[name],
                           fmt="{:.0f}"))
    emit(f"Fig5 sweet spot: {series['sweet_spot_mb']:.2f} MB")
    off = [v for _, v in series["off-chip"]]
    on = [v for _, v in series["on-chip"]]
    total = [v for _, v in series["total"]]
    assert off[0] > off[-1]  # off-chip falls
    assert on[-1] > on[0]  # on-chip rises
    best = min(range(len(total)), key=total.__getitem__)
    assert 0 < best < len(total) - 1  # interior sweet spot
    # omnet's sweet spot sits at its 2.5 MB working set.
    assert 2.0 <= series["sweet_spot_mb"] <= 3.2
