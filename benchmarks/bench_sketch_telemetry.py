"""Sketch-telemetry benchmark: bytes per epoch and warm dirty detection.

Beyond-the-paper evidence for the sketch telemetry stack
(:mod:`repro.cache.sketch` + ``DeltaTelemetry``) at the 1024-tile scale
point:

* **bytes per epoch** — an 8-epoch schedule with one phase flip, priced
  through :func:`repro.service.messages.telemetry_bytes`: full telemetry
  ships every curve every epoch; the delta stream ships one full problem
  at first contact, ~128-byte digests on the seven stationary
  boundaries, and only the flipped VCs at the flip.  The acceptance bar
  is a >= 5x reduction.
* **warm dirty detection** — `IncrementalSolve.dirty_vcs` (exact curves)
  vs `dirty_vcs_from_sketches` (one vectorized pass over the memoized
  sketch banks) on the same (prev, current) problem pair, both warm.
  The pair is rebuilt with fresh curve objects first — telemetry that
  crossed a wire never shares object identity with the previous epoch,
  so neither detector gets same-object shortcuts.  The acceptance bar
  is >= 3x faster.

Appends a ``bench_sketch_telemetry`` entry to ``benchmarks/BENCH.json``:
the ``*_bytes_per_epoch`` leaves gate unconditionally (deterministic
message sizes, lower is better) and the ``*_seconds`` leaves gate on
matching hosts, both via ``tools/bench_compare.py``.
"""

import os
import platform
import time
from dataclasses import replace
from datetime import date

from conftest import emit, record_bench_entry

from repro.cache.miss_curve import MissCurve
from repro.cache.sketch import problem_sketch_bank
from repro.experiments import format_table
from repro.experiments.scalability import scaled_mesh_config
from repro.nuca.base import build_problem
from repro.sched.engine import IncrementalSolve
from repro.service.messages import (
    PlacementRequest,
    build_delta,
    telemetry_bytes,
)
from repro.workloads.mixes import random_phased_mix, snapshot_mix

TILES = 1024
SEED = 42
EPOCHS = 8
DETECTION_REPS = 3


def _problem_pair():
    """The epoch problems A (base) and B (after a phase flip) at scale.

    B comes from snapshotting the same phased mix with one in eight
    processes advanced deep into its schedule — the epoch boundary the
    incremental engine is built for, where a slice of the chip flips
    phase and the rest holds still.
    """
    config = scaled_mesh_config(TILES)
    mix = random_phased_mix(TILES, SEED, mix_id=0)
    problem_a = build_problem(mix, config)
    flipped = snapshot_mix(
        mix,
        {
            proc.process_id: (
                1.0e9 + 1.7e8 * proc.process_id
                if proc.process_id % 8 == 0
                else 0.0
            )
            for proc in mix.processes
        },
    )
    problem_b = build_problem(flipped, config, problem_a.topology)
    return problem_a, problem_b


def _fresh_curve_twin(problem):
    """A content-identical problem whose curves are fresh objects.

    Deserialized telemetry never shares curve objects with the previous
    epoch's problem, so detection timing must not benefit from
    same-object fast paths on either side.
    """
    vcs = [
        replace(
            vc,
            miss_curve=MissCurve(
                vc.miss_curve.sizes.copy(), vc.miss_curve.values.copy()
            ),
        )
        for vc in problem.vcs
    ]
    return replace(problem, vcs=vcs)


def test_sketch_telemetry(once):
    problem_a, problem_b = once(_problem_pair)

    # -- bytes per epoch over an 8-epoch schedule (one flip) -----------------
    schedule = [problem_a] * (EPOCHS // 2) + [problem_b] * (EPOCHS // 2)
    full_bytes = 0
    delta_bytes = 0
    base = None
    for epoch, problem in enumerate(schedule):
        full_request = PlacementRequest(
            chip_id="bench", problem=problem, epoch=epoch
        )
        full_bytes += telemetry_bytes(full_request)
        delta = (
            build_delta(base, problem, "bench", epoch=epoch)
            if base is not None
            else None
        )
        delta_bytes += telemetry_bytes(
            delta if delta is not None else full_request
        )
        base = problem
    full_per_epoch = full_bytes / EPOCHS
    delta_per_epoch = delta_bytes / EPOCHS
    reduction = full_bytes / delta_bytes

    # -- warm dirty detection: exact curves vs sketch banks ------------------
    fresh_a = _fresh_curve_twin(problem_a)
    fresh_b = _fresh_curve_twin(problem_b)
    strategy = IncrementalSolve(dirty_threshold=0.05, use_sketches=True)
    problem_sketch_bank(fresh_a, strategy.sketch_bytes)  # warm the banks
    problem_sketch_bank(fresh_b, strategy.sketch_bytes)
    strategy.dirty_vcs(fresh_a, fresh_b)  # warm both code paths
    strategy.dirty_vcs_from_sketches(fresh_a, fresh_b)

    start = time.perf_counter()
    for _ in range(DETECTION_REPS):
        exact_dirty = strategy.dirty_vcs(fresh_a, fresh_b)
    exact_seconds = (time.perf_counter() - start) / DETECTION_REPS
    start = time.perf_counter()
    for _ in range(DETECTION_REPS):
        sketch_dirty = strategy.dirty_vcs_from_sketches(fresh_a, fresh_b)
    sketch_seconds = (time.perf_counter() - start) / DETECTION_REPS
    speedup = exact_seconds / sketch_seconds

    emit(format_table(
        ["metric", "full/exact", "delta/sketch", "ratio"],
        [
            ("telemetry B/epoch", full_per_epoch, delta_per_epoch,
             f"{reduction:.1f}x smaller"),
            ("dirty detection s", exact_seconds, sketch_seconds,
             f"{speedup:.1f}x faster"),
            ("dirty VCs at flip", len(exact_dirty), len(sketch_dirty),
             "superset" if exact_dirty <= sketch_dirty else "BROKEN"),
        ],
        title=f"Sketch telemetry at {TILES} tiles "
              f"({EPOCHS}-epoch schedule, one phase flip)",
    ))

    # Acceptance bars (ISSUE 10): the delta stream must cut telemetry
    # bytes >= 5x and warm dirty detection must be >= 3x faster.
    assert reduction >= 5.0
    assert speedup >= 3.0
    # Soundness: the sketch dirty set never misses a moved VC.
    assert exact_dirty <= sketch_dirty

    record_bench_entry({
        "bench": "bench_sketch_telemetry",
        "chip": f"{TILES}-tile mesh (scaled_mesh_config)",
        "recorded": date.today().isoformat(),
        "host": f"{platform.system()}-{platform.machine()}"
                f"-{os.cpu_count()}cpu",
        "metrics": {
            # Deterministic message sizes: gate unconditionally, lower is
            # better (tools/bench_compare.py telemetry_metrics).
            "full_bytes_per_epoch": round(full_per_epoch, 1),
            "delta_bytes_per_epoch": round(delta_per_epoch, 1),
            "bytes_reduction_x": round(reduction, 2),
        },
        "detection_wall_seconds": {
            "exact_dirty_seconds": round(exact_seconds, 5),
            "sketch_dirty_seconds": round(sketch_seconds, 5),
        },
        "detection_speedup_x": round(speedup, 2),
    })
