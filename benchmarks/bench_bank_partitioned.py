"""Sec IV-I / VI-C: CDCS on a bank-granularity NUCA (no fine partitioning).

With 4 x 128 KB banks per tile and whole-bank allocation, the paper reports
36% gmean WS (vs 46% with partitioned banks) on 64-app mixes — coarser
allocation costs performance but CDCS still works.
"""

from conftest import emit

from repro.config import default_config
from repro.experiments import format_table, run_sweep
from repro.util.units import kb

N_MIXES = 15


def run():
    fine = default_config()
    # 4 small banks/tile modeled as a 128 KB allocation quantum over the
    # same tile grid: data placement can only move whole small banks.
    from dataclasses import replace

    coarse = replace(
        fine.with_banks(kb(512), 4),
        scheduler=replace(fine.scheduler, allocation_quantum=kb(128)),
    )
    fine_sweep = run_sweep(fine, n_apps=64, n_mixes=N_MIXES, seed=42)
    coarse_sweep = run_sweep(coarse, n_apps=64, n_mixes=N_MIXES, seed=42)
    return fine_sweep, coarse_sweep


def test_bank_granularity_ablation(once):
    fine, coarse = once(run)
    rows = [
        ("partitioned (64 KB grain)", fine.gmean_speedup("CDCS"),
         fine.max_speedup("CDCS")),
        ("bank-granular (128 KB grain)", coarse.gmean_speedup("CDCS"),
         coarse.max_speedup("CDCS")),
    ]
    emit(format_table(
        ["CDCS variant", "gmean WS", "max WS"], rows,
        title="Bank-partitioned NUCA ablation (64-app mixes)",
    ))
    # Coarser allocation loses some gain but stays well above S-NUCA
    # (paper: 36% vs 46%).
    assert coarse.gmean_speedup("CDCS") > 1.1
    assert fine.gmean_speedup("CDCS") >= coarse.gmean_speedup("CDCS") - 0.02
