"""Watch one reconfiguration happen, per movement protocol (Fig 17).

Runs the trace-driven simulator through a live reconfiguration under the
three data-movement schemes and prints an ASCII IPC-over-time plot: bulk
invalidations pause the chip (the deep notch), CDCS's demand moves +
background invalidations sail through.

Run:  python examples/reconfiguration_trace.py
"""

from repro.experiments import PROTOCOLS, run_reconfig_trace

RECONFIG_AT = 300_000.0
HORIZON = 900_000.0


def ascii_plot(trace, width=72, height=10):
    points = trace[: width]
    top = max(ipc for _, ipc in points) or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = top * level / height
        row = "".join(
            "#" if ipc >= threshold else " " for _, ipc in points
        )
        rows.append(f"{threshold:5.1f} |{row}")
    axis = "      +" + "-" * len(points)
    return "\n".join(rows + [axis])


def main() -> None:
    for name in PROTOCOLS:
        result = run_reconfig_trace(
            name, reconfig_at=RECONFIG_AT, horizon=HORIZON,
            capacity_scale=16, seed=5,
        )
        print(f"=== {name} ===")
        print(ascii_plot(result.trace))
        print(
            f"aggregate IPC: before={result.ipc_before:.2f}, "
            f"during reconfig={result.ipc_during:.2f}, "
            f"after={result.ipc_after:.2f}"
        )
        print(
            f"demand moves={result.demand_moves}, background "
            f"invalidations={result.background_invalidations}, bulk "
            f"invalidations={result.bulk_invalidations}\n"
        )
    print("Paper Fig 17: bulk invalidations pause the chip ~100 Kcycles; "
          "background invalidations track instant moves closely.")


if __name__ == "__main__":
    main()
