"""The unified experiment API: registry, Session, typed export.

Runs two registered experiments — the Fig 14 sweep and the GMON/UMON
monitor comparison — as ONE batched job fan-out through a shared
`repro.api.Session`, then shows the three faces of the typed result:

* the classic fixed-width tables (`render(record, "table")`),
* machine-readable JSON (what `python -m repro run fig14 --format json`
  prints),
* the rich legacy result object on `record.result`.

Sweep-shaped, so it takes the runner flags: `--mixes N` (default 2),
`--jobs N`, `--cache-dir DIR` — rerun with a warm cache and the batch
executes zero jobs.

Run from the repo root:  PYTHONPATH=src python examples/session_and_export.py
"""

from __future__ import annotations

import argparse
import json

from repro.api import Session
from repro.experiments.results import RunRecord, render
from repro.experiments.spec import all_specs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mixes", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache-dir", default=None)
    args = parser.parse_args()

    print("The registry knows every experiment:")
    for spec in all_specs():
        print(f"  {spec.name:12s} {spec.figure}: {spec.summary}")

    session = Session(jobs=args.jobs, cache_dir=args.cache_dir)
    fig14, gmon = session.run_batch([
        ("fig14", {"mixes": args.mixes}),
        ("gmon", {}),
    ])
    print(f"\nBatch ran as one fan-out: {session.stats.summary()}\n")

    print(render(fig14, "table"))
    print()
    print(render(gmon, "table"))

    # The JSON face round-trips losslessly: this is the wire format
    # external tooling consumes (`--format json` on the CLI).
    wire = json.loads(render(fig14, "json"))
    assert RunRecord.from_dict(wire) == fig14
    print(f"\nJSON export: {len(wire['tables'])} table(s), "
          f"params {wire['params']}")

    # The rich result object is still there for programmatic analysis.
    sweep = fig14.result
    print(f"CDCS gmean WS over {sweep.n_mixes} mixes: "
          f"{sweep.gmean_speedup('CDCS'):.3f} "
          f"(max {sweep.max_speedup('CDCS'):.3f})")


if __name__ == "__main__":
    main()
