"""The Sec II-B case study in full: Table 1 plus Fig 1-style chip maps.

Renders, for each scheme, which thread runs on each tile and which process
dominates each tile's bank — the ASCII analogue of the paper's Fig 1
panels — and explains *why* each scheme lands where it does.

Run:  python examples/case_study_36core.py
"""

from repro.experiments import format_table, render_chip_map, run_case_study


def main() -> None:
    result = run_case_study()

    print(format_table(
        ["Scheme", "omnet", "ilbdc", "milc", "WS"],
        result.table1(),
        title="Table 1: per-app and weighted speedups over S-NUCA",
    ))
    print()

    commentary = {
        "R-NUCA": (
            "R-NUCA maps private data to each thread's local bank (fast, "
            "but omnet gets <512 KB and keeps missing) and spreads shared "
            "data chip-wide."
        ),
        "Jigsaw+C": (
            "Jigsaw sizes VCs well (omnet's 2.5 MB fits) but the clustered "
            "scheduler packs the six omnets together: their VCs fight for "
            "the same banks and data lands far away (Fig 1b)."
        ),
        "Jigsaw+R": (
            "Random placement happens to spread the omnets, so their data "
            "sits closer (Fig 1c) — but ilbdc's threads scatter and its "
            "shared VC gets farther."
        ),
        "CDCS": (
            "CDCS spreads the omnets deliberately *and* clusters each "
            "ilbdc around its shared data (Fig 1d): both get what they "
            "need."
        ),
    }
    for scheme in ("R-NUCA", "Jigsaw+C", "Jigsaw+R", "CDCS"):
        print(render_chip_map(result, scheme))
        print(f"  -> {commentary[scheme]}\n")

    cdcs = result.evaluations["CDCS"]
    omnet_threads = [t for t in cdcs.threads if t.app == "omnet"]
    print(
        "CDCS omnet data distance: "
        f"{sum(t.mean_hops for t in omnet_threads) / len(omnet_threads):.2f} "
        "hops on average (paper Fig 1d: ~1.2 hops)"
    )


if __name__ == "__main__":
    main()
