"""Quickstart: evaluate the five NUCA schemes on one workload mix.

Builds the paper's 36-tile case-study chip, runs S-NUCA / R-NUCA /
Jigsaw+C / Jigsaw+R / CDCS on the omnet+milc+ilbdc mix, and prints
per-app and weighted speedups (Table 1 of the paper).

Run:  python examples/quickstart.py
"""

from repro import (
    AnalyticSystem,
    case_study_config,
    per_app_speedups,
    standard_schemes,
    weighted_speedup,
)
from repro.workloads import case_study_mix


def main() -> None:
    config = case_study_config()  # 6x6 tiles, 512 KB/bank (Sec II-B)
    mix = case_study_mix()  # omnet x6, milc x14, ilbdc x2 (8 threads)
    system = AnalyticSystem(config)

    print(f"Chip: {config.tiles} tiles, {config.llc_bytes >> 20} MB LLC")
    print(f"Mix:  {mix.total_threads} threads over "
          f"{len(mix.processes)} processes\n")

    alone = system.alone_performance(mix)
    evaluations = {
        scheme.name: system.evaluate(mix, scheme)
        for scheme in standard_schemes(seed=1)
    }
    baseline = evaluations["S-NUCA"]

    header = f"{'Scheme':10s} {'omnet':>7s} {'ilbdc':>7s} {'milc':>7s} {'WS':>6s}"
    print(header)
    print("-" * len(header))
    for name, evaluation in evaluations.items():
        if name == "S-NUCA":
            continue
        apps = per_app_speedups(evaluation, baseline)
        ws = weighted_speedup(evaluation, baseline, alone)
        print(
            f"{name:10s} {apps['omnet']:7.2f} {apps['ilbdc']:7.2f} "
            f"{apps['milc']:7.2f} {ws:6.2f}"
        )
    print("\n(paper Table 1: R-NUCA 1.08, Jigsaw+C 1.48, "
          "Jigsaw+R 1.47, CDCS 1.56)")


if __name__ == "__main__":
    main()
