"""Multithreaded co-scheduling: clustering vs spreading (Fig 16b).

Runs the paper's Fig 16b mix — private-heavy mgrid plus three shared-heavy
OpenMP apps (md, ilbdc, nab), 32 threads on 64 cores — and shows how CDCS
*simultaneously* spreads mgrid's threads (avoiding capacity contention
between their private VCs) and clusters each shared-heavy process around
its shared data, where fixed policies must pick one or the other.

Run:  python examples/multithreaded_coscheduling.py
"""

from repro import AnalyticSystem, default_config, weighted_speedup
from repro.nuca import standard_schemes
from repro.workloads import fig16_case_study_mix


def thread_spread(cores, width):
    xs = [c % width for c in cores]
    ys = [c // width for c in cores]
    cx, cy = sum(xs) / len(xs), sum(ys) / len(ys)
    return sum(abs(x - cx) + abs(y - cy) for x, y in zip(xs, ys)) / len(cores)


def main() -> None:
    config = default_config()
    mix = fig16_case_study_mix()
    system = AnalyticSystem(config)
    alone = system.alone_performance(mix)

    evaluations = {
        s.name: system.evaluate(mix, s) for s in standard_schemes(seed=1)
    }
    baseline = evaluations["S-NUCA"]

    print("Fig 16b mix: mgrid (private-heavy) + md/ilbdc/nab (shared-heavy),"
          " 8 threads each on 64 cores\n")
    print(f"{'Scheme':10s} {'WS':>6s}   thread spread per process "
          f"(mgrid | md | ilbdc | nab)")
    for name, evaluation in evaluations.items():
        if name == "S-NUCA":
            continue
        ws = weighted_speedup(evaluation, baseline, alone)
        by_process = {}
        for t in evaluation.threads:
            by_process.setdefault(t.process_id, []).append(t.core)
        spreads = " | ".join(
            f"{thread_spread(by_process[p], config.mesh_width):4.2f}"
            for p in sorted(by_process)
        )
        print(f"{name:10s} {ws:6.2f}   {spreads}")

    cdcs = evaluations["CDCS"]
    by_process = {}
    for t in cdcs.threads:
        by_process.setdefault(t.process_id, []).append(t.core)
    mgrid = thread_spread(by_process[0], config.mesh_width)
    others = [thread_spread(by_process[p], config.mesh_width) for p in (1, 2, 3)]
    print(
        f"\nCDCS spreads mgrid (spread {mgrid:.2f}) wider than the "
        f"shared-heavy apps (min {min(others):.2f}) — the Fig 16b behavior: "
        "per-process policy, not one-size-fits-all."
    )


if __name__ == "__main__":
    main()
