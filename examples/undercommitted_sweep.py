"""Under-committed systems: why latency-aware allocation matters (Fig 13).

Sweeps the number of single-threaded apps on the 64-core chip from 2 to 64
and reports each scheme's gmean weighted speedup.  At low occupancy the
LLC is plentiful: Jigsaw's miss-driven allocator hands every app a huge,
far-flung VC and loses to CDCS, whose latency-aware allocation leaves
capacity unused on purpose (Sec IV-C / Fig 12b).

Run:  python examples/undercommitted_sweep.py  [--mixes N] [--jobs N]
      [--cache-dir DIR]

The sweep fans out through the PR-1 runner exactly like the CLI
(``python -m repro fig13 --jobs 4``): each mix is one cached job, so
re-runs with a warm --cache-dir execute nothing.
"""

import argparse

from repro.config import default_config
from repro.experiments import run_sweep
from repro.runner import ProcessPoolRunner, ResultStore


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mixes", type=int, default=8,
                        help="random mixes per occupancy point")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (results identical at any N)")
    parser.add_argument("--cache-dir", default="",
                        help="content-hashed result cache directory "
                             "(empty: no caching)")
    args = parser.parse_args()

    store = ResultStore(args.cache_dir) if args.cache_dir else None
    runner = ProcessPoolRunner(jobs=args.jobs, store=store)

    config = default_config()
    schemes = ("R-NUCA", "Jigsaw+C", "Jigsaw+R", "CDCS")
    print(f"{'apps':>5s}  " + "  ".join(f"{s:>9s}" for s in schemes))
    for n_apps in (2, 4, 8, 16, 32, 64):
        sweep = run_sweep(config, n_apps=n_apps, n_mixes=args.mixes,
                          seed=42, runner=runner)
        row = "  ".join(
            f"{sweep.gmean_speedup(s):9.3f}" for s in schemes
        )
        print(f"{n_apps:5d}  {row}")
    print("\nPaper Fig 13 shape: CDCS stays high across the range; "
          "Jigsaw+C is weakest at 1-8 apps (6% at 4 apps vs CDCS's 28%).")


if __name__ == "__main__":
    main()
