"""Using the library on *your own* chip and workload.

Shows the extension points a downstream user needs:

1. a custom chip (here: a 4x8 mesh — and a torus, exercising the
   arbitrary-topology claim of Sec IV-B);
2. a custom application profile built from a measured/synthetic miss curve;
3. running CDCS and reading the placement it produced.

Run:  python examples/custom_chip_and_workload.py
"""

from repro import AnalyticSystem, Cdcs, SNuca, weighted_speedup
from repro.cache.miss_curve import MissCurve, cliff_curve
from repro.config import SystemConfig
from repro.geometry import Torus
from repro.nuca import build_problem
from repro.util.units import kb, mb
from repro.workloads.mixes import Mix, ProcessSpec
from repro.workloads.profiles import MAX_LLC, AppProfile


def my_database() -> AppProfile:
    """A hand-built profile: a B-tree-ish working set with two plateaus."""
    curve = MissCurve(
        sizes=[0, kb(256), kb(512), mb(2), mb(4), MAX_LLC],
        values=[40.0, 38.0, 22.0, 20.0, 4.0, 3.0],
    )
    return AppProfile(
        name="mydb", base_cpi=1.2, llc_apki=45.0, private_curve=curve,
    )


def my_stream() -> AppProfile:
    """A scan-heavy companion that should get (almost) no cache."""
    return AppProfile(
        name="myscan", base_cpi=0.9, llc_apki=30.0,
        private_curve=cliff_curve(MAX_LLC, 28.0, MAX_LLC, 27.0),
    )


def main() -> None:
    config = SystemConfig(mesh_width=8, mesh_height=4)
    processes = []
    profiles = [my_database(), my_database(), my_stream(), my_stream()]
    next_thread = 0
    for pid, profile in enumerate(profiles):
        processes.append(ProcessSpec(pid, profile, next_thread))
        next_thread += profile.threads
    mix = Mix(tuple(processes))

    system = AnalyticSystem(config)
    snuca = system.evaluate(mix, SNuca(seed=1))
    cdcs_scheme = Cdcs(seed=1)
    problem = build_problem(mix, config)
    outcome = cdcs_scheme.run(problem)
    cdcs = system.evaluate_solution(mix, problem, outcome)

    print(f"Custom chip: {config.mesh_width}x{config.mesh_height} mesh, "
          f"{config.llc_bytes >> 20} MB LLC")
    print(f"CDCS vs S-NUCA weighted speedup: "
          f"{weighted_speedup(cdcs, snuca):.2f}\n")

    print("CDCS's capacity decisions (bytes per VC):")
    for vc_id, size in sorted(outcome.solution.vc_sizes.items()):
        if size > 0 and vc_id < 1 << 20:
            app = profiles[vc_id].name if vc_id < len(profiles) else "?"
            banks = len(outcome.solution.vc_allocation.get(vc_id, {}))
            print(f"  thread {vc_id} ({app:7s}): {size / mb(1):5.2f} MB "
                  f"across {banks} banks")

    # Same workload on a torus: CDCS only needs a distance function.
    torus_problem = build_problem(mix, config, topology=Torus(8, 4))
    torus_outcome = cdcs_scheme.run(torus_problem)
    torus_eval = system.evaluate_solution(mix, torus_problem, torus_outcome)
    print(f"\nSame mix on an 8x4 torus: CDCS WS = "
          f"{weighted_speedup(torus_eval, snuca):.2f} "
          "(wraparound links shorten average distances)")


if __name__ == "__main__":
    main()
