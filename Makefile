# Developer entry points.  Everything runs from the repo root with the
# src/ layout on PYTHONPATH; no installation step exists or is needed.

PY      := python
PYPATH  := PYTHONPATH=src
JOBS    ?= 2

.PHONY: test test-fast test-locks coverage lint analyze bench-smoke run-smoke bench bench-kernels bench-runner bench-solver bench-solver-scale bench-sketch bench-compare docs-check check clean

## Tier-1 verification: the full unit/integration suite, then the docs
## checker — stale docs fail `make test` locally, not just in review.
test:
	$(PYPATH) $(PY) -m pytest -x -q
	$(PYPATH) $(PY) tools/docs_check.py

## The same suite minus the slow end-to-end tests.
test-fast:
	$(PYPATH) $(PY) -m pytest -x -q -m "not slow"

## The concurrency suites under the REPRO_CHECK_LOCKS=1 harness: every
## access to registered shared state asserts its owning lock is held
## (see docs/ANALYSIS.md).  The flag is read at interpreter start, so
## it must be in the environment of the pytest process itself.
test-locks:
	$(PYPATH) REPRO_CHECK_LOCKS=1 $(PY) -m pytest -x -q \
	    tests/test_runtime_guards.py tests/test_service_concurrency.py \
	    tests/test_lazy_geometry.py tests/test_shared_pool.py

## Coverage gate on the scheduler + control-plane + cache + geometry
## layers: the fast suite under pytest-cov with an 80% line floor on
## repro.sched, repro.service, repro.cache (miss curves, monitors, and
## the telemetry sketches) and repro.geometry (the lazy-matrix machinery
## must stay pinned).  Skips with a notice where pytest-cov is not
## installed (the CI coverage job installs it; see requirements-dev.txt).
coverage:
	@$(PYPATH) $(PY) -c "import pytest_cov" >/dev/null 2>&1 || \
	    { echo "make coverage: pytest-cov not found (pip install pytest-cov); skipping"; exit 0; } ; \
	$(PYPATH) $(PY) -m pytest -q -m "not slow" \
	    --cov=repro.sched --cov=repro.service --cov=repro.cache \
	    --cov=repro.geometry \
	    --cov-report=term-missing --cov-fail-under=80

## repro-analyze: the repo-specific invariant checkers (determinism,
## lock discipline, shared-view immutability, async discipline) over
## src/.  Zero new findings against the committed baseline or it fails;
## docs/ANALYSIS.md catalogues the rules and the suppression policy.
analyze:
	$(PY) -m tools.analyze src

## Static checks: the invariant suite always, then ruff lint rules +
## formatter drift (see ruff.toml).  Ruff skips with a notice where it
## is not installed (the CI lint step installs it; the simulation
## itself never depends on it).
lint: analyze
	@command -v ruff >/dev/null 2>&1 || \
	    { echo "make lint: ruff not found (pip install ruff); skipping"; exit 0; } ; \
	ruff check src tests benchmarks tools examples && \
	ruff format --check src tests benchmarks tools examples

## Fast end-to-end smoke of the parallel runner + caching through the CLI
## and one real benchmark driver.  The trap guarantees the scratch cache
## is removed — and any shared-memory segment a killed run might strand
## — even when an invocation fails mid-run (CI runners stay clean);
## both CLI runs share one shell so the trap covers them all.
bench-smoke:
	rm -rf .repro-smoke-cache
	trap 'rm -rf .repro-smoke-cache; rm -f /dev/shm/repro-* 2>/dev/null || true' EXIT; \
	$(PYPATH) $(PY) -m repro fig14 --mixes 2 --jobs $(JOBS) \
	    --cache-dir .repro-smoke-cache && \
	$(PYPATH) $(PY) -m repro fig14 --mixes 2 --jobs $(JOBS) \
	    --cache-dir .repro-smoke-cache
	$(PYPATH) REPRO_JOBS=$(JOBS) $(PY) -m pytest \
	    benchmarks/bench_fig14_four_apps.py benchmarks/bench_gmon_vs_umon.py -q

## One registry-driven CLI invocation with structured output: proves the
## `run <name> --format json` path end to end in seconds (CI fast job).
run-smoke:
	$(PYPATH) $(PY) -m repro run table1 --format json --no-cache

## The full paper-figure benchmark suite (slow; honest timings, no cache).
bench:
	$(PYPATH) REPRO_JOBS=$(JOBS) $(PY) -m pytest benchmarks/bench_*.py -q

## Kernel microbenchmarks: vectorized vs scalar-reference speedups
## (asserts the >= 3x floor; records an entry in benchmarks/BENCH.json).
bench-kernels:
	$(PYPATH) $(PY) -m pytest benchmarks/bench_kernels.py -q

## Runner throughput: serial vs pool vs mega-batch jobs/sec over the
## fig14-shaped sweep (warm mega >= 10x serial on the reference host).
## Appends a bench_runner_throughput entry to benchmarks/BENCH.json;
## the trap sweeps any segment an interrupted run might strand.
bench-runner:
	trap 'rm -f /dev/shm/repro-* 2>/dev/null || true' EXIT; \
	$(PYPATH) $(PY) -m pytest benchmarks/bench_runner_throughput.py -q

## Solver-strategy smoke: warm incremental/partitioned re-solve cost vs
## the full pipeline + the reconfigure_epoch problem-reuse micro-bench.
## Appends a bench_solver entry to benchmarks/BENCH.json (the artifact
## tools/bench_compare.py gates against the committed baseline).
bench-solver:
	$(PYPATH) REPRO_JOBS=$(JOBS) $(PY) -m pytest \
	    benchmarks/bench_solver_strategies.py -q

## Hierarchical scale points: a 4096-tile hierarchical solve end to end
## (REPRO_BENCH_XL=1 adds the ~40 s 16384-tile point) with the
## lazy-geometry allocation account.  Appends a bench_solver_scale_points
## entry (critical-path Mcycles + geometry MiB) to benchmarks/BENCH.json.
bench-solver-scale:
	$(PYPATH) $(PY) -m pytest benchmarks/bench_solver_scale.py -q

## Sketch-telemetry bench: delta-stream bytes per epoch vs full dumps
## (>= 5x smaller) and warm sketch dirty detection vs exact curves
## (>= 3x faster) at 1024 tiles.  Appends a bench_sketch_telemetry
## entry to benchmarks/BENCH.json.
bench-sketch:
	$(PYPATH) $(PY) -m pytest benchmarks/bench_sketch_telemetry.py -q

## Fail if the latest bench_solver / bench_solver_scale_points /
## bench_runner_throughput / bench_sketch_telemetry entries regressed
## >25% against the previous ones — wall seconds and jobs/sec on
## matching hosts, modeled Mcycles, geometry MiB, and telemetry
## bytes/epoch everywhere (pass BASELINE=path to diff against a saved
## BENCH.json).
bench-compare:
	$(PY) tools/bench_compare.py --bench bench_solver \
	    $(if $(BASELINE),--baseline $(BASELINE),)
	$(PY) tools/bench_compare.py --bench bench_solver_scale_points \
	    $(if $(BASELINE),--baseline $(BASELINE),)
	$(PY) tools/bench_compare.py --bench bench_runner_throughput \
	    $(if $(BASELINE),--baseline $(BASELINE),)
	$(PY) tools/bench_compare.py --bench bench_sketch_telemetry \
	    $(if $(BASELINE),--baseline $(BASELINE),)

## Fail if README/docs code blocks reference CLI flags, experiments,
## modules, or files that do not exist.
docs-check:
	$(PYPATH) $(PY) tools/docs_check.py

check: test lint docs-check

clean:
	rm -rf .repro-cache .repro-smoke-cache benchmarks/benchmark_results.txt
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
