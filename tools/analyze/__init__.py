"""repro-analyze: repo-specific invariant checkers (``make analyze``).

Four AST-based rules, each encoding an invariant this reproduction
depends on (see docs/ANALYSIS.md for the catalogue and the suppression
policy):

* ``determinism``       — no hidden global state feeding results
* ``lock-discipline``   — registered shared state accessed under its lock
* ``shared-view``       — published arrays never mutated in place
* ``async-discipline``  — service coroutines never block the loop

Run as ``python -m tools.analyze [paths...]`` from the repo root (the
default path is ``src``).  Exit codes: 0 clean (or fully baselined),
1 new findings, 2 usage/configuration error.
"""

from __future__ import annotations

from .asyncdiscipline import AsyncDisciplineRule
from .core import (
    Finding,
    ModuleSource,
    Rule,
    iter_python_files,
    load_baseline,
    write_baseline,
)
from .determinism import DeterminismRule
from .immutability import SharedViewRule
from .locks import ATOMIC_STATE, GUARDED_STATE, LockDisciplineRule

#: rule name -> rule instance; docs_check cross-checks this against the
#: rule table in docs/ANALYSIS.md.
RULES: dict[str, Rule] = {
    rule.name: rule
    for rule in (
        DeterminismRule(),
        LockDisciplineRule(),
        SharedViewRule(),
        AsyncDisciplineRule(),
    )
}

__all__ = [
    "ATOMIC_STATE",
    "GUARDED_STATE",
    "Finding",
    "ModuleSource",
    "RULES",
    "Rule",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
]
