"""Rule ``shared-view``: arrays shared across jobs are never mutated.

The geometry memo, the shm attachment views, and the
:class:`MissCurveBatch` banks all hand the *same* ndarray to many
consumers (threads, asyncio tasks, forked workers).  One in-place write
through any alias silently corrupts every other reader — the classic
action-at-a-distance bug the runtime ``flags.writeable = False`` freeze
turns into a loud ValueError.  This rule catches the same class of bug
before the code ever runs, including on paths tests do not cover.

Detection is a per-function, statement-order taint walk:

* **sources** — calls to ``shared_geometry_matrices(...)`` /
  ``attach(...)``, and attribute reads of the published surfaces
  (``.distance_matrix`` / ``.order_matrix`` / ``.sorted_distance_matrix``
  on topologies; ``.lengths`` / ``.sizes2d`` / ``.values2d`` on curve
  batches).
* **propagation** — plain assignment, subscripting (views of views),
  ``.ravel()`` / ``.reshape()`` / ``.T`` / ``astype(copy=False)``.
* **untaint** — rebinding to ``.copy()`` / ``np.array(...)`` /
  arithmetic results (fresh allocations).
* **sinks** — augmented assignment, subscript/attribute assignment,
  mutating ndarray methods (``fill``/``sort``/``put``/...), ``out=`` a
  tainted array, ``np.copyto``/``np.place``/``np.put`` with a tainted
  first argument, and ufunc ``.at``.

Legitimate writable needs take a private copy at the consumer
(copy-on-write at the offender), which also untaints the name.
"""

from __future__ import annotations

import ast

from .core import Finding, ModuleSource, Rule, dotted_name

#: Calls whose result is a shared (frozen) array or a dict of them.
SOURCE_CALLS = {"shared_geometry_matrices", "attach"}

#: Attribute reads that surface shared arrays.
SOURCE_ATTRS = {
    "distance_matrix",
    "order_matrix",
    "sorted_distance_matrix",
    "lengths",
    "sizes2d",
    "values2d",
}

#: Methods that return a (possibly) aliasing view — taint flows through.
_VIEW_METHODS = {"ravel", "reshape", "astype", "view", "squeeze", "transpose"}

#: ndarray methods that mutate in place.
_MUTATING_METHODS = {
    "fill",
    "sort",
    "partition",
    "put",
    "itemset",
    "resize",
    "setfield",
    "byteswap",
}

#: numpy module-level functions that write into their first argument.
_MUTATING_FUNCS = {"copyto", "place", "put", "putmask"}

#: Rebinding to one of these clears taint (fresh allocation).
_FRESH_CALLS = {"copy", "array", "ascontiguousarray", "empty_like"}


def _base_name(node: ast.AST) -> str | None:
    """Leftmost Name of a Name/Attribute/Subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _FunctionTaint:
    """Statement-order taint walk over one function (or module) body."""

    def __init__(self, rule: "SharedViewRule", module: ModuleSource):
        self.rule = rule
        self.module = module
        self.tainted: set[str] = set()
        self.findings: list[Finding] = []

    # -- taint classification ------------------------------------------------

    def _is_source(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name and name.split(".")[-1] in SOURCE_CALLS:
                return True
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr in _VIEW_METHODS
            ):
                return self._is_tainted(expr.func.value)
            return False
        if isinstance(expr, ast.Attribute) and expr.attr in SOURCE_ATTRS:
            return True
        if isinstance(expr, ast.Subscript):
            return self._is_source(expr.value) or self._is_tainted(
                expr.value
            )
        if isinstance(expr, ast.Name):
            return expr.id in self.tainted
        return False

    def _is_tainted(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.tainted
        if isinstance(expr, (ast.Attribute, ast.Subscript)):
            if isinstance(expr, ast.Attribute) and expr.attr in SOURCE_ATTRS:
                return True
            return self._is_tainted(expr.value)
        if isinstance(expr, ast.Call):
            return self._is_source(expr)
        return False

    def _is_fresh(self, expr: ast.AST) -> bool:
        """Fresh allocation: rebinding to this clears taint."""
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name and name.split(".")[-1] in _FRESH_CALLS:
                return True
        return isinstance(expr, ast.BinOp)

    # -- statement walk ------------------------------------------------------

    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._check_expr(stmt.value)
            for target in stmt.targets:
                self._assign(target, stmt.value, stmt)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._check_expr(stmt.value)
            self._assign(stmt.target, stmt.value, stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._check_expr(stmt.value)
            if self._is_tainted(stmt.target):
                self._flag(
                    stmt,
                    "augmented assignment mutates a shared array in "
                    "place; take a private .copy() first",
                )
        elif isinstance(stmt, ast.Expr):
            self._check_expr(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_expr(stmt.iter)
            if isinstance(stmt.target, ast.Name) and self._is_tainted(
                stmt.iter
            ):
                self.tainted.add(stmt.target.id)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, (ast.While, ast.If)):
            self._check_expr(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check_expr(item.context_expr)
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self._check_expr(stmt.value)
        # Nested function/class definitions get their own walker via the
        # rule's outer loop; do not descend here.

    def _assign(
        self, target: ast.AST, value: ast.AST, stmt: ast.stmt
    ) -> None:
        if isinstance(target, ast.Name):
            if self._is_fresh(value):
                self.tainted.discard(target.id)
            elif self._is_source(value) or self._is_tainted(value):
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            if isinstance(target, ast.Subscript) and self._is_tainted(
                target.value
            ):
                self._flag(
                    stmt,
                    "slice/index assignment writes into a shared array; "
                    "take a private .copy() first",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, value, stmt)

    def _check_expr(self, expr: ast.AST) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            self._check_call(node)

    def _check_call(self, call: ast.Call) -> None:
        name = dotted_name(call.func)
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            owner = call.func.value
            if attr in _MUTATING_METHODS and self._is_tainted(owner):
                self._flag(
                    call,
                    f".{attr}() mutates a shared array in place; take a "
                    f"private .copy() first",
                )
            # ufunc .at: np.add.at(shared, idx, v)
            if (
                attr == "at"
                and call.args
                and self._is_tainted(call.args[0])
            ):
                self._flag(
                    call,
                    "ufunc .at() scatters into a shared array; take a "
                    "private .copy() first",
                )
        if (
            name
            and name.split(".")[-1] in _MUTATING_FUNCS
            and call.args
            and self._is_tainted(call.args[0])
        ):
            self._flag(
                call,
                f"{name}() writes into a shared array; take a private "
                f".copy() first",
            )
        for kw in call.keywords:
            if kw.arg == "out" and self._is_tainted(kw.value):
                self._flag(
                    call,
                    "out= targets a shared array; allocate a private "
                    "output buffer",
                )

    def _flag(self, node: ast.AST, message: str) -> None:
        self.rule._emit(self.findings, self.module, node, message)


class SharedViewRule(Rule):
    name = "shared-view"
    invariant = (
        "arrays published by the geometry memo, shm attach, or miss-curve "
        "banks are never mutated in place; writers take private copies"
    )

    def check(self, module: ModuleSource) -> list[Finding]:
        if "repro/" not in module.rel:
            return []
        out: list[Finding] = []
        # One taint walk per function body (plus module top level); taint
        # does not flow across function boundaries — the freeze harness
        # covers inter-procedural aliasing at runtime.
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walker = _FunctionTaint(self, module)
                walker.run(node.body)
                out.extend(walker.findings)
        walker = _FunctionTaint(self, module)
        walker.run(
            [
                stmt
                for stmt in module.tree.body
                if not isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                )
            ]
        )
        out.extend(walker.findings)
        return out
