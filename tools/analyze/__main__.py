"""CLI for repro-analyze.  See ``tools/analyze/__init__`` and
docs/ANALYSIS.md.

Usage::

    python -m tools.analyze                    # analyze src/ (the gate)
    python -m tools.analyze src tests/foo.py   # explicit paths
    python -m tools.analyze --rules determinism,shared-view src
    python -m tools.analyze --list-rules
    python -m tools.analyze --write-baseline   # accept current findings

Exit codes: 0 clean or fully baselined, 1 new findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import (
    RULES,
    ModuleSource,
    iter_python_files,
    load_baseline,
    write_baseline,
)
from .core import REPO

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="repo-specific invariant checkers (docs/ANALYSIS.md)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: src/)",
    )
    parser.add_argument(
        "--rules",
        default="",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline file of tolerated finding keys",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print rule names and invariants, then exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(name) for name in RULES)
        for name, rule in sorted(RULES.items()):
            print(f"{name:<{width}}  {rule.invariant}")
        return 0

    if args.rules:
        selected = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in selected if r not in RULES]
        if unknown:
            print(
                f"repro-analyze: unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(RULES))})",
                file=sys.stderr,
            )
            return 2
        rules = [RULES[r] for r in selected]
    else:
        rules = list(RULES.values())

    paths = args.paths or [REPO / "src"]
    files = iter_python_files(paths)
    if not files:
        print(
            f"repro-analyze: no Python files under "
            f"{', '.join(str(p) for p in paths)}",
            file=sys.stderr,
        )
        return 2

    findings = []
    for path in files:
        try:
            module = ModuleSource(path)
            module.tree  # parse eagerly so syntax errors fail loudly
        except SyntaxError as exc:
            print(f"repro-analyze: cannot parse {path}: {exc}", file=sys.stderr)
            return 2
        for rule in rules:
            findings.extend(rule.check(module))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(
            f"repro-analyze: wrote {len(findings)} finding(s) to "
            f"{args.baseline}"
        )
        return 0

    try:
        baseline = (
            set() if args.no_baseline else load_baseline(args.baseline)
        )
    except ValueError as exc:
        print(f"repro-analyze: {exc}", file=sys.stderr)
        return 2

    new = [f for f in findings if f.key() not in baseline]
    old = len(findings) - len(new)
    for finding in new:
        print(finding.render())
    stale = baseline - {f.key() for f in findings}
    summary = (
        f"repro-analyze: {len(files)} file(s), "
        f"{len(rules)} rule(s): {len(new)} new finding(s)"
    )
    if old:
        summary += f", {old} baselined"
    if stale:
        summary += (
            f", {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} (re-run "
            f"--write-baseline to prune)"
        )
    print(summary)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
