"""Rule ``determinism``: results must not depend on hidden global state.

Three sub-checks, all protecting the bitwise-reproducibility contract
(`--jobs N` == serial, vectorized == scalar, mega-batch == per-job):

1. **global RNG** — any ``random.*`` or ``np.random.*`` *global-state*
   call outside ``repro/util/rng.py`` is flagged.  Explicitly seeded
   constructors (``default_rng``, ``SeedSequence``, generator classes)
   are fine anywhere; the global stream is only ever reseeded through
   :func:`repro.util.rng.reseed_global`, the one sanctioned site both
   the per-job and mega-batch paths share.
2. **wall clock** — ``time.time``/``perf_counter``/``monotonic`` (and
   ``datetime.now``) reachable from the kernel/sched/nuca/cache/geometry
   layers.  Wall time may be *reported* (solver wall-clock tables) but
   never consumed by a decision; reporting sites carry a reviewed
   ``# repro: allow[determinism]``.
3. **unordered iteration** — iterating a ``set``/``frozenset``
   expression (including unions/intersections) in the placement layers,
   where iteration order feeds placement order.  Wrap in ``sorted()``
   or suppress with a comment arguing order-insensitivity (pure
   reductions like ``max``).
"""

from __future__ import annotations

import ast

from .core import Finding, ModuleSource, Rule, dotted_name

#: The one sanctioned global-reseed helper (both the per-job and the
#: mega-batch slice paths call it); its home module may touch the global
#: RNG freely.
SANCTIONED_RESEED = "repro.util.rng.reseed_global"
SANCTIONED_RNG_MODULES = ("repro/util/rng.py",)

#: ``np.random`` attributes that take explicit seeds and never touch the
#: global stream — allowed everywhere.
_SAFE_NP_RANDOM = {
    "default_rng",
    "SeedSequence",
    "Generator",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

_CLOCK_CALLS = {
    "time": {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    },
    "datetime": {"now", "utcnow", "today"},
}

#: Layers whose results are modeled, not measured: wall-clock reads and
#: unordered iteration here are findings (path-suffix match).
CLOCK_SCOPE = (
    "repro/kernels.py",
    "repro/sched/",
    "repro/nuca/",
    "repro/cache/",
    "repro/geometry/",
)
SET_ITER_SCOPE = CLOCK_SCOPE + ("repro/placers/",)


def _in_scope(rel: str, scope: tuple[str, ...]) -> bool:
    return any(marker in rel for marker in scope)


class _ImportMap(ast.NodeVisitor):
    """Local names bound to the modules the sub-checks care about."""

    def __init__(self):
        self.random_mods: set[str] = set()
        self.np_mods: set[str] = set()
        self.np_random_mods: set[str] = set()
        self.time_mods: set[str] = set()
        self.datetime_names: set[str] = set()
        #: local name -> original name, for ``from random import seed``.
        self.from_random: dict[str, str] = {}
        self.from_time: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_mods.add(bound)
            elif alias.name == "numpy":
                self.np_mods.add(bound)
            elif alias.name == "numpy.random":
                self.np_random_mods.add(alias.asname or "numpy")
            elif alias.name == "time":
                self.time_mods.add(bound)
            elif alias.name == "datetime":
                self.datetime_names.add(bound)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "random":
                self.from_random[bound] = alias.name
            elif node.module == "numpy" and alias.name == "random":
                self.np_random_mods.add(bound)
            elif node.module == "time":
                self.from_time[bound] = alias.name
            elif node.module == "datetime" and alias.name == "datetime":
                self.datetime_names.add(bound)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class DeterminismRule(Rule):
    name = "determinism"
    invariant = (
        "results derive only from explicit seeds: no global RNG outside "
        "repro.util.rng, no wall clock or unordered-set iteration in the "
        "modeled layers"
    )

    def check(self, module: ModuleSource) -> list[Finding]:
        rel = module.rel
        if "repro/" not in rel:
            return []
        imports = _ImportMap()
        imports.visit(module.tree)
        out: list[Finding] = []
        sanctioned_rng = any(rel.endswith(m) for m in SANCTIONED_RNG_MODULES)
        check_clock = _in_scope(rel, CLOCK_SCOPE)
        check_sets = _in_scope(rel, SET_ITER_SCOPE)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                if not sanctioned_rng:
                    self._check_rng(out, module, node, imports)
                if check_clock:
                    self._check_clock(out, module, node, imports)
            if check_sets:
                if isinstance(node, (ast.For, ast.comprehension)):
                    self._check_set_iter(out, module, node)
                if isinstance(node, ast.Call):
                    self._check_set_materialize(out, module, node)
        return out

    # -- sub-checks ----------------------------------------------------------

    def _check_rng(self, out, module, node: ast.Call, imports) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        if parts[0] in imports.random_mods and len(parts) == 2:
            self._emit(
                out,
                module,
                node,
                f"global-RNG call {name}(): thread explicit seeds via "
                f"repro.util.rng (reseeding belongs in {SANCTIONED_RESEED})",
            )
        elif parts[0] in imports.from_random:
            original = imports.from_random[parts[0]]
            self._emit(
                out,
                module,
                node,
                f"global-RNG call {parts[0]}() (random.{original}): use "
                f"repro.util.rng generators instead",
            )
        elif (
            len(parts) == 3
            and parts[0] in imports.np_mods
            and parts[1] == "random"
            and parts[2] not in _SAFE_NP_RANDOM
        ) or (
            len(parts) == 2
            and parts[0] in imports.np_random_mods
            and parts[1] not in _SAFE_NP_RANDOM
        ):
            self._emit(
                out,
                module,
                node,
                f"numpy global-RNG call {name}(): use "
                f"repro.util.rng.make_rng/child_rng (reseeding belongs in "
                f"{SANCTIONED_RESEED})",
            )

    def _check_clock(self, out, module, node: ast.Call, imports) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        flagged = (
            (
                len(parts) == 2
                and parts[0] in imports.time_mods
                and parts[1] in _CLOCK_CALLS["time"]
            )
            or (
                parts[0] in imports.from_time
                and imports.from_time[parts[0]] in _CLOCK_CALLS["time"]
            )
            or (
                len(parts) >= 2
                and parts[0] in imports.datetime_names
                and parts[-1] in _CLOCK_CALLS["datetime"]
            )
        )
        if flagged:
            self._emit(
                out,
                module,
                node,
                f"wall-clock call {name}() in a modeled layer: decisions "
                f"must depend on modeled cycles, not host time (reporting-"
                f"only sites carry an allow comment)",
            )

    def _check_set_iter(self, out, module, node) -> None:
        iter_expr = node.iter
        if _is_set_expr(iter_expr):
            self._emit(
                out,
                module,
                iter_expr,
                "iteration over an unordered set in a placement layer: "
                "wrap in sorted(...) so iteration order cannot leak into "
                "placement order",
            )

    def _check_set_materialize(self, out, module, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate")
            and node.args
            and _is_set_expr(node.args[0])
        ):
            self._emit(
                out,
                module,
                node,
                f"{node.func.id}() over an unordered set in a placement "
                f"layer: insert sorted(...) to pin the order",
            )
