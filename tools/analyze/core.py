"""Shared machinery of ``repro-analyze`` (see ``tools/analyze/__init__``).

The suite is deliberately repo-specific: every rule encodes one invariant
this reproduction actually depends on (deterministic RNG use, lock
discipline over process-wide caches, immutability of shared array views,
non-blocking async bodies).  A general linter cannot know which state is
shared or which call sites are sanctioned; the rules here carry that
knowledge as explicit registries.

Mechanics shared by all rules:

* **modules** — each analyzed file is parsed once into a
  :class:`ModuleSource` (text, lines, AST, repo-relative posix path).
* **suppressions** — a ``# repro: allow[rule]`` comment on the flagged
  line (or the line directly above it) silences that rule there.  Every
  suppression is a reviewed, documented exception; docs/ANALYSIS.md
  explains when one is legitimate.
* **baseline** — findings whose keys appear in the committed baseline
  file (``tools/analyze/baseline.json``) are reported as baselined, not
  failures: the gate is "no *new* findings".  Keys are
  ``rule::path::source-line-text`` so they survive unrelated line-number
  churn.  A clean tree keeps an empty baseline.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent

#: ``# repro: allow[rule]`` / ``# repro: allow[rule1,rule2]``.
_ALLOW = re.compile(r"#\s*repro:\s*allow\[([a-z0-9_,\s-]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative posix path
    line: int  # 1-indexed
    message: str
    snippet: str  # stripped source line, the stable part of the key

    def key(self) -> str:
        """Baseline identity: stable across unrelated line-number churn."""
        return f"{self.rule}::{self.path}::{self.snippet}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class ModuleSource:
    """One parsed source file, as every rule sees it."""

    def __init__(self, path: Path, repo: Path = REPO):
        self.path = path
        try:
            self.rel = path.resolve().relative_to(repo).as_posix()
        except ValueError:  # outside the repo (fixture trees in tests)
            self.rel = path.as_posix()
        self.text = path.read_text()
        self.lines = self.text.splitlines()

    @cached_property
    def tree(self) -> ast.AST:
        return ast.parse(self.text, filename=str(self.path))

    @cached_property
    def allowed(self) -> dict[str, set[int]]:
        """rule name -> set of line numbers where it is suppressed."""
        allowed: dict[str, set[int]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            m = _ALLOW.search(line)
            if not m:
                continue
            for rule in m.group(1).split(","):
                rule = rule.strip()
                # The comment covers its own line and, when it stands
                # alone, the statement on the next line.
                allowed.setdefault(rule, set()).update((lineno, lineno + 1))
        return allowed

    def is_allowed(self, rule: str, line: int) -> bool:
        return line in self.allowed.get(rule, ())

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 0)
        return Finding(rule, self.rel, line, message, self.snippet(line))


class Rule:
    """Base interface: one named checker over one module at a time."""

    #: Unique rule id, used in ``allow[...]`` comments and baselines.
    name: str = ""
    #: One-line statement of the invariant the rule protects
    #: (cross-checked against the rule table in docs/ANALYSIS.md).
    invariant: str = ""

    def check(self, module: ModuleSource) -> list[Finding]:
        raise NotImplementedError

    def _emit(
        self,
        out: list[Finding],
        module: ModuleSource,
        node: ast.AST,
        message: str,
    ) -> None:
        """Append a finding unless an allow-comment suppresses it."""
        finding = module.finding(self.name, node, message)
        if not module.is_allowed(self.name, finding.line):
            out.append(finding)


def parents_of(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """child node -> parent node, for lexical-enclosure walks."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def enclosing(
    node: ast.AST, parents: dict[ast.AST, ast.AST], *types
) -> list[ast.AST]:
    """Ancestors of *node* (innermost first) matching *types*."""
    found = []
    current = parents.get(node)
    while current is not None:
        if isinstance(current, types):
            found.append(current)
        current = parents.get(current)
    return found


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def load_baseline(path: Path) -> set[str]:
    """The committed finding keys the gate tolerates (empty when clean)."""
    if not path.exists():
        return set()
    data = json.loads(path.read_text())
    if not isinstance(data, list) or not all(
        isinstance(k, str) for k in data
    ):
        raise ValueError(f"{path}: baseline must be a JSON list of keys")
    return set(data)


def write_baseline(path: Path, findings: list[Finding]) -> None:
    keys = sorted({f.key() for f in findings})
    path.write_text(json.dumps(keys, indent=2) + "\n")
