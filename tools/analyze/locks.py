"""Rule ``lock-discipline``: guarded process-wide state stays guarded.

The repo has a small amount of deliberately process-wide mutable state
(geometry memos, shm attachment refcounts, kernel dispatch flags).  Each
piece is registered here with its owning lock; the checker then enforces
that **every lexical mention** of the guarded name sits either inside a
``with <lock>:`` block or inside one of its registered lock-free
accessors.  The registry — not the checker — is where a new piece of
shared state gets reviewed: adding state without registering it is
invisible to the tool, so docs/ANALYSIS.md requires registration in the
same change that introduces the state.

A second registry lists *documented-atomic* globals: state that is
intentionally unlocked because every access is a single GIL-atomic
load/store (one-way booleans, monotonic memo dicts whose values are
immutable).  For those the checker only verifies the registry is not
stale (the name still exists in the owning module), keeping the written
justification honest.

The static check is lexical, not a happens-before proof; the runtime
harness (``REPRO_CHECK_LOCKS=1`` + :mod:`repro.util.guards`) covers the
dynamic side by asserting lock ownership on every access.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .core import (
    Finding,
    ModuleSource,
    Rule,
    dotted_name,
    enclosing,
    parents_of,
)


@dataclass(frozen=True)
class GuardedGlobal:
    """Module-level state whose every access must hold *lock*."""

    module: str  # repo-relative path suffix owning the state
    name: str  # the module-level global
    lock: str  # lock object in the same module
    #: Functions allowed to touch the state without the lock (reviewed
    #: lock-free fast paths, e.g. GIL-atomic single-bool reads).
    accessors: tuple[str, ...] = ()


@dataclass(frozen=True)
class AtomicGlobal:
    """Unlocked-on-purpose state; *why* records the reviewed argument."""

    module: str
    name: str
    why: str


GUARDED_STATE: tuple[GuardedGlobal, ...] = (
    GuardedGlobal(
        module="repro/geometry/mesh.py",
        name="_SHARED_GEOMETRY_CACHE",
        lock="_GEOMETRY_LOCK",
    ),
    GuardedGlobal(
        module="repro/geometry/mesh.py",
        name="_GEOMETRY_STATS",
        lock="_GEOMETRY_LOCK",
        # Stats snapshots/resets are reviewed helpers that take the lock
        # themselves; no lock-free accessors.
    ),
    GuardedGlobal(
        module="repro/runner/shm.py",
        name="_ATTACHMENTS",
        lock="_ATTACH_LOCK",
    ),
    GuardedGlobal(
        module="repro/cache/sketch.py",
        name="_GRID_CACHE",
        lock="_GRID_LOCK",
    ),
    GuardedGlobal(
        module="repro/kernels.py",
        name="_VECTORIZED",
        lock="_KERNEL_STATE_LOCK",
        accessors=("use_vectorized", "use_mega_batch"),
    ),
    GuardedGlobal(
        module="repro/kernels.py",
        name="_MEGA_BATCH",
        lock="_KERNEL_STATE_LOCK",
        accessors=("use_mega_batch",),
    ),
)

ATOMIC_STATE: tuple[AtomicGlobal, ...] = (
    AtomicGlobal(
        module="repro/geometry/mesh.py",
        name="_dense_tile_limit",
        why="single-int toggle flipped only by the dense_geometry_limit "
        "test context manager; reads are GIL-atomic and production code "
        "never writes it",
    ),
    AtomicGlobal(
        module="repro/runner/shm.py",
        name="_BROKEN",
        why="one-way False->True flip; a single bool store is GIL-atomic "
        "and a stale read only costs one extra shm attempt",
    ),
    AtomicGlobal(
        module="repro/sched/allocation.py",
        name="_HULL_CACHE",
        why="monotonic memo of immutable tuples; dict get/set are "
        "GIL-atomic and losing a race just recomputes the same value",
    ),
    AtomicGlobal(
        module="repro/sched/allocation.py",
        name="_WALK_CACHE",
        why="monotonic memo of immutable tuples; same argument as "
        "_HULL_CACHE",
    ),
    AtomicGlobal(
        module="repro/experiments/sweeps.py",
        name="_SYSTEM_CACHE",
        why="per-process memo keyed by config digest; values are "
        "immutable once built and races recompute identical systems",
    ),
    AtomicGlobal(
        module="repro/runner/mega.py",
        name="_BATCHABLE",
        why="populated only by import-time @batchable registration, "
        "read-only afterwards",
    ),
    AtomicGlobal(
        module="repro/experiments/spec.py",
        name="_REGISTRY",
        why="populated only by import-time register() calls, read-only "
        "afterwards",
    ),
)


def _with_locks(node: ast.AST, parents) -> set[str]:
    """Names of every lock held lexically around *node* (with-blocks)."""
    held: set[str] = set()
    for block in enclosing(node, parents, ast.With, ast.AsyncWith):
        for item in block.items:
            name = dotted_name(item.context_expr)
            if name:
                held.add(name.split(".")[-1])
    return held


def _enclosing_function(node: ast.AST, parents) -> str | None:
    funcs = enclosing(
        node, parents, ast.FunctionDef, ast.AsyncFunctionDef
    )
    return funcs[0].name if funcs else None


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    invariant = (
        "every access to registered process-wide state is lexically "
        "inside its owning with-lock block or a registered accessor"
    )

    def check(self, module: ModuleSource) -> list[Finding]:
        guarded = [g for g in GUARDED_STATE if module.rel.endswith(g.module)]
        atomic = [a for a in ATOMIC_STATE if module.rel.endswith(a.module)]
        if not guarded and not atomic:
            return []
        out: list[Finding] = []
        parents = parents_of(module.tree)
        seen: set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Name):
                continue
            seen.add(node.id)
            for entry in guarded:
                if node.id == entry.name:
                    self._check_access(out, module, node, parents, entry)
        # Stale-registry guard: state that was removed or renamed must be
        # deregistered in the same change, or the registry rots.
        for entry in guarded:
            if entry.name not in seen:
                out.append(
                    module.finding(
                        self.name,
                        module.tree,
                        f"stale registry entry: {entry.name} no longer "
                        f"exists in {entry.module}",
                    )
                )
        for entry in atomic:
            if entry.name not in seen:
                out.append(
                    module.finding(
                        self.name,
                        module.tree,
                        f"stale atomic-state entry: {entry.name} no "
                        f"longer exists in {entry.module}",
                    )
                )
        return out

    def _check_access(
        self,
        out: list[Finding],
        module: ModuleSource,
        node: ast.Name,
        parents,
        entry: GuardedGlobal,
    ) -> None:
        func = _enclosing_function(node, parents)
        if func is None:
            # Module-scope mention: the defining assignment (or the
            # guarded_mapping() wrapper construction) — the only legal
            # unlocked touch, since imports are single-threaded.
            return
        if func in entry.accessors:
            return
        if entry.lock in _with_locks(node, parents):
            return
        self._emit(
            out,
            module,
            node,
            f"access to {entry.name} outside 'with {entry.lock}:' "
            f"(registered accessors: "
            f"{', '.join(entry.accessors) or 'none'})",
        )
