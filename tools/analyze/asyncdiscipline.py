"""Rule ``async-discipline``: the service event loop never blocks.

:mod:`repro.service` multiplexes every chip's admission control on one
asyncio loop; a single blocking call in a coroutine stalls *all* chips
at once (and invalidates the latency distributions the service studies
report).  Solver work must hop to the executor
(``loop.run_in_executor``) — passing a sync function *reference* there
is fine and naturally invisible to this rule, which only flags direct
*calls*:

* ``time.sleep(...)`` (use ``await asyncio.sleep``),
* blocking file I/O (``open``, ``Path.read_text``/``write_text``/...),
* solver entry points (``solve``, ``run_epoch``,
  ``run_reconfigured``, ``reconfigure_epoch``) invoked directly from a
  coroutine body.

Only the innermost function matters: a sync ``def`` nested inside an
``async def`` runs wherever it is called from, so its body is not
flagged here.
"""

from __future__ import annotations

import ast

from .core import Finding, ModuleSource, Rule, dotted_name, parents_of

SCOPE = ("repro/service/",)

#: Direct calls that block the loop (dotted suffix match).
_BLOCKING_CALLS = {
    "time.sleep": "use 'await asyncio.sleep(...)' instead",
    "open": "blocking file I/O on the event loop; move it to the "
    "executor",
    "read_text": "blocking file I/O on the event loop; move it to the "
    "executor",
    "write_text": "blocking file I/O on the event loop; move it to the "
    "executor",
    "read_bytes": "blocking file I/O on the event loop; move it to the "
    "executor",
    "write_bytes": "blocking file I/O on the event loop; move it to the "
    "executor",
}

#: CPU-bound solver/simulator entry points; calling one inline stalls
#: every chip sharing the loop.  Route through loop.run_in_executor.
_SOLVER_CALLS = {
    "solve",
    "run_epoch",
    "run_reconfigured",
    "reconfigure_epoch",
}


def _innermost_function(node, parents):
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


class AsyncDisciplineRule(Rule):
    name = "async-discipline"
    invariant = (
        "coroutine bodies in repro.service never call blocking I/O, "
        "time.sleep, or solver entry points directly; CPU work rides "
        "the executor"
    )

    def check(self, module: ModuleSource) -> list[Finding]:
        if not any(marker in module.rel for marker in SCOPE):
            return []
        out: list[Finding] = []
        parents = parents_of(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = _innermost_function(node, parents)
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            leaf = name.split(".")[-1]
            for pattern, advice in _BLOCKING_CALLS.items():
                if name == pattern or (
                    "." not in pattern and leaf == pattern
                ):
                    self._emit(
                        out,
                        module,
                        node,
                        f"blocking call {name}() inside 'async def "
                        f"{func.name}': {advice}",
                    )
                    break
            else:
                if leaf in _SOLVER_CALLS and "." in name:
                    self._emit(
                        out,
                        module,
                        node,
                        f"solver call {name}() inside 'async def "
                        f"{func.name}' blocks every chip on this loop; "
                        f"route it through loop.run_in_executor",
                    )
        return out
