"""Diff a BENCH.json against a baseline; fail on perf/memory regressions.

``benchmarks/BENCH.json`` is an append-only history of benchmark entries
(each with a ``bench`` name and nested numeric metrics).  CI runs the
solver benchmark (``make bench-solver``), which appends a fresh entry,
then calls this tool to compare it against the committed baseline::

    cp benchmarks/BENCH.json /tmp/baseline.json   # before the bench run
    make bench-solver
    python tools/bench_compare.py --baseline /tmp/baseline.json

Without ``--baseline``, the candidate file is compared against itself:
the latest entry per bench name vs the previous entry of the same name
(useful locally, where the committed entry is still in the file).

Five metric classes gate, all at ``--max-regression`` (default 25%):

* **wall-clock** — numeric leaves whose key path contains ``second``
  (e.g. ``solve_wall_seconds.full_phased``).  Wall time is machine
  relative, so these only gate when both entries carry the same ``host``
  fingerprint (recorded by the bench); a baseline from a different
  machine is reported, not gated — otherwise a slower CI runner would
  fail builds with zero code change.  Values below ``--min-seconds`` are
  ignored (timer noise dominates sub-10ms measurements).
* **modeled cycles** — leaves whose path contains ``mcycles``.  These
  are deterministic op counts, identical on any machine, so they gate
  unconditionally: a >25% growth is an algorithmic regression, not skew.
* **peak memory** — leaves whose path contains ``mib`` (the lazy-geometry
  allocation account, e.g. ``geometry_16384t_cached_mib``).  Allocation
  sizes are as deterministic as op counts, so these also gate
  unconditionally: a growing footprint means some path started
  materializing geometry it previously left lazy.
* **throughput** — leaves whose path contains ``jobs_per_sec`` (the
  runner throughput bench).  Higher is better, so the gate is inverted:
  a candidate *below* ``baseline * (1 - max_regression)`` fails.  Like
  wall clock, throughput is machine relative and only gates on a
  matching ``host`` fingerprint.
* **telemetry bytes** — leaves whose path contains ``bytes_per_epoch``
  (the sketch-telemetry bench).  Message sizes are deterministic
  functions of the workload, so these gate unconditionally, lower is
  better: growth means the delta stream started shipping payloads it
  previously elided.

Metrics absent from either side are reported but never fail (benches
grow metrics over time).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_CANDIDATE = Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH.json"


def numeric_leaves(obj, prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts to {dotted.path: value} for numeric leaves."""
    out: dict[str, float] = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(numeric_leaves(value, path))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix] = float(obj)
    return out


def latest_entries(path: Path) -> dict[str, list[dict]]:
    """bench name -> entries in file order (oldest first)."""
    data = json.loads(path.read_text())
    grouped: dict[str, list[dict]] = {}
    for entry in data.get("entries", []):
        name = entry.get("bench")
        if name:
            grouped.setdefault(name, []).append(entry)
    return grouped


def wall_metrics(entry: dict) -> dict[str, float]:
    """Machine-relative wall time: leaves whose path mentions seconds."""
    return {
        path: value
        for path, value in numeric_leaves(entry).items()
        if "second" in path.lower()
    }


def throughput_metrics(entry: dict) -> dict[str, float]:
    """Machine-relative throughput: leaves mentioning jobs_per_sec."""
    return {
        path: value
        for path, value in numeric_leaves(entry).items()
        if "jobs_per_sec" in path.lower()
    }


def mcycle_metrics(entry: dict) -> dict[str, float]:
    """Machine-independent modeled cycles: leaves mentioning mcycles."""
    return {
        path: value
        for path, value in numeric_leaves(entry).items()
        if "mcycle" in path.lower()
    }


def telemetry_metrics(entry: dict) -> dict[str, float]:
    """Machine-independent message sizes: leaves mentioning bytes_per_epoch."""
    return {
        path: value
        for path, value in numeric_leaves(entry).items()
        if "bytes_per_epoch" in path.lower()
    }


def memory_metrics(entry: dict) -> dict[str, float]:
    """Machine-independent allocation sizes: leaves mentioning mib."""
    return {
        path: value
        for path, value in numeric_leaves(entry).items()
        if "mib" in path.lower()
    }


def _gate(
    candidate: dict[str, float],
    baseline: dict[str, float],
    max_regression: float,
    unit: str,
    noise_floor: float = 0.0,
    higher_is_better: bool = False,
) -> list[str]:
    problems = []
    for path, value in sorted(candidate.items()):
        reference = baseline.get(path)
        if reference is None:
            print(f"  new metric {path} = {value:.4f}{unit} (no baseline)")
            continue
        if reference < noise_floor and value < noise_floor:
            continue  # both under the noise floor
        if higher_is_better:
            limit = reference * (1.0 - max_regression)
            failed = value < limit
            limit_text = f"-{max_regression:.0%}"
        else:
            limit = reference * (1.0 + max_regression)
            failed = value > limit
            limit_text = f"+{max_regression:.0%}"
        ratio = value / reference if reference > 0 else float("inf")
        status = "FAIL" if failed else "ok"
        print(
            f"  {path}: {reference:.4f}{unit} -> {value:.4f}{unit} "
            f"({ratio:.0%} of baseline) [{status}]"
        )
        if failed:
            problems.append(
                f"{path} regressed {ratio - 1.0:+.0%} "
                f"({reference:.4f}{unit} -> {value:.4f}{unit}, limit "
                f"{limit_text})"
            )
    return problems


def compare(
    candidate: dict,
    baseline: dict,
    max_regression: float,
    min_seconds: float,
) -> list[str]:
    """Regression messages for one (candidate, baseline) entry pair."""
    problems = _gate(
        mcycle_metrics(candidate), mcycle_metrics(baseline),
        max_regression, " Mcyc",
    )
    problems += _gate(
        memory_metrics(candidate), memory_metrics(baseline),
        max_regression, " MiB",
    )
    problems += _gate(
        telemetry_metrics(candidate), telemetry_metrics(baseline),
        max_regression, " B/epoch",
    )
    base_host = baseline.get("host")
    cand_host = candidate.get("host")
    if base_host == cand_host:
        problems += _gate(
            wall_metrics(candidate), wall_metrics(baseline),
            max_regression, "s", noise_floor=min_seconds,
        )
        problems += _gate(
            throughput_metrics(candidate), throughput_metrics(baseline),
            max_regression, " jobs/s", higher_is_better=True,
        )
    else:
        print(
            f"  host differs ({base_host!r} -> {cand_host!r}): "
            f"wall-clock/throughput metrics reported, not gated"
        )
        _gate(
            wall_metrics(candidate), wall_metrics(baseline),
            float("inf"), "s", noise_floor=min_seconds,
        )
        _gate(
            throughput_metrics(candidate), throughput_metrics(baseline),
            float("inf"), " jobs/s", higher_is_better=True,
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on >N%% wall-clock, modeled-cycle, or "
                    "peak-memory regressions between BENCH.json entries.",
    )
    parser.add_argument(
        "--candidate", type=Path, default=DEFAULT_CANDIDATE,
        help="BENCH.json holding the fresh entries (default: the repo's)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline BENCH.json; omitted = previous entry of the same "
             "bench inside the candidate file",
    )
    parser.add_argument(
        "--bench", default=None,
        help="only gate this bench name (default: every name present)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed fractional wall-clock growth (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.01,
        help="ignore metrics where both sides are below this (noise floor)",
    )
    args = parser.parse_args(argv)

    candidate_groups = latest_entries(args.candidate)
    if args.bench is not None:
        candidate_groups = {
            name: entries
            for name, entries in candidate_groups.items()
            if name == args.bench
        }
        if not candidate_groups:
            print(f"bench-compare: no entries named {args.bench!r} in "
                  f"{args.candidate}", file=sys.stderr)
            return 1

    baseline_groups = (
        latest_entries(args.baseline) if args.baseline is not None else None
    )
    problems: list[str] = []
    compared = 0
    for name, entries in sorted(candidate_groups.items()):
        if baseline_groups is not None:
            base_entries = baseline_groups.get(name, [])
            if not base_entries:
                print(f"{name}: no baseline entry — skipping")
                continue
            baseline_entry = base_entries[-1]
            candidate_entry = entries[-1]
            if baseline_entry == candidate_entry:
                # The bench did not run since the baseline was copied;
                # nothing new to gate.
                print(f"{name}: candidate identical to baseline — skipping")
                continue
        else:
            if len(entries) < 2:
                print(f"{name}: only one entry — skipping")
                continue
            baseline_entry, candidate_entry = entries[-2], entries[-1]
        print(f"{name} ({baseline_entry.get('recorded', '?')} -> "
              f"{candidate_entry.get('recorded', '?')}):")
        problems += compare(
            candidate_entry, baseline_entry,
            args.max_regression, args.min_seconds,
        )
        compared += 1

    if problems:
        print(f"bench-compare: {len(problems)} regression(s)",
              file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"bench-compare: OK ({compared} bench(es) gated)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
