"""Check that the documentation only references things that exist.

Scans the fenced code blocks (and inline code spans) of README.md,
docs/*.md, and examples/README.md for three kinds of claims, and fails if
any is stale:

* ``python -m repro <experiment> --flag ...`` invocations — the experiment
  must be a real CLI choice (the grammar is discovered from the generated
  parser, including ``run <name>`` and per-spec flags) and every
  ``--flag`` a real argparse option;
* dotted module/function paths (``repro.runner.pool``,
  ``repro.experiments.run_sweep``,
  ``repro.sched.cost_model.latency_curves_batch``) — the longest module
  prefix must import and any remaining attribute chain must resolve;
* repo file paths (``benchmarks/bench_fig11_single_threaded.py``,
  ``src/repro/...``) — must exist (shell globs are expanded).

Three structural checks ride along: the documented CLI grammar is probed
against the generated parser, the experiment registry is cross-checked
against docs/REPRODUCING.md's "Experiment registry" index (every
registered spec documented and vice versa), and every vectorized-kernel
module must keep the "Shape conventions" section of its docstring (the
array shapes/dtypes contract documented in docs/PERFORMANCE.md).

Run via ``make docs-check`` (needs ``PYTHONPATH=src``); exits non-zero
with one line per problem.
"""

from __future__ import annotations

import argparse
import glob
import importlib
import re
import shlex
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
# Run as `python tools/docs_check.py`, sys.path[0] is tools/; the repo
# root must be importable for the tools.analyze cross-check below.
if str(REPO) not in sys.path:
    sys.path.insert(0, str(REPO))

DOC_FILES = [
    REPO / "README.md",
    *sorted((REPO / "docs").glob("*.md")),
    REPO / "examples" / "README.md",
]

#: Modules whose docstrings must document their array shapes/dtypes (the
#: kernel layer of PR 2; see docs/PERFORMANCE.md).
SHAPE_CONVENTION_MODULES = [
    "repro.cache.miss_curve",
    "repro.geometry.mesh",
    "repro.geometry.placement_math",
    "repro.noc.traffic",
    "repro.sched.cost_model",
    "repro.sched.refinement",
    "repro.sched.thread_placement",
    "repro.sched.vc_placement",
    "repro.sim.engine",
]

_FENCE = re.compile(r"```.*?\n(.*?)```", re.S)
_INLINE = re.compile(r"`([^`\n]+)`")
_MODULE = re.compile(r"^repro(\.[A-Za-z_][A-Za-z0-9_]*)+$")
_PATHISH = re.compile(
    r"^(?:src|docs|benchmarks|tests|examples|tools)/[\w./*\-]+$"
)

#: Documented build outputs that legitimately do not exist on a fresh
#: clone (gitignored; produced by running benchmarks / the CLI).
_BUILD_OUTPUTS = {
    "benchmarks/benchmark_results.txt",
}


def _cli_grammar() -> tuple[dict[str, set[str]], set[str]]:
    """(per-command flag sets, experiment names) discovered from the
    real parser and registry — never a hand-maintained list."""
    import repro.__main__ as cli
    from repro.experiments.spec import spec_names

    parser = cli.build_parser()
    commands: dict[str, set[str]] = {}
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, subparser in action.choices.items():
                commands[name] = {
                    s
                    for sub_action in subparser._actions
                    for s in sub_action.option_strings
                    if s.startswith("--")
                }
    return commands, set(spec_names())


def check_cli_commands(text: str, origin: str, problems: list[str]) -> None:
    commands, experiments = _cli_grammar()
    all_flags = set().union(*commands.values())
    for line in text.splitlines():
        line = line.strip()
        m = re.search(r"python -m repro\b(.*)", line)
        if not m:
            continue
        rest = m.group(1).split("#", 1)[0]  # drop trailing comments
        try:
            tokens = shlex.split(rest)
        except ValueError:
            tokens = rest.split()
        if not tokens:
            continue
        exp = tokens[0]
        # A prose mention ("the `python -m repro` CLI") or a placeholder
        # ("python -m repro ...") makes no checkable claim about names.
        if re.match(r"^[a-z][a-z0-9_-]*$", exp) and exp not in commands:
            problems.append(
                f"{origin}: unknown experiment {exp!r} in: {line}"
            )
        if exp == "run" and len(tokens) > 1:
            name = tokens[1]
            if (re.match(r"^[a-z][a-z0-9_-]*$", name)
                    and name not in experiments):
                problems.append(
                    f"{origin}: run references unregistered experiment "
                    f"{name!r} in: {line}"
                )
        # Flags are checked against the named subcommand's own grammar
        # (a valid flag documented on the wrong experiment is stale too);
        # prose/placeholder lines fall back to the union of all flags.
        known_flags = commands.get(exp, all_flags)
        for tok in tokens[1:]:
            if tok.startswith("--"):
                flag = tok.split("=", 1)[0]
                if flag not in known_flags:
                    problems.append(
                        f"{origin}: flag {flag!r} is not an option of "
                        f"`python -m repro {exp}` in: {line}"
                    )


def resolve_dotted_path(span: str) -> str | None:
    """Resolve ``repro.a.b.c`` as module, or module + attribute chain.

    Returns None on success, or a one-line problem description.  Tries the
    longest importable module prefix, then getattrs the remaining names —
    so function and class references (``repro.experiments.run_sweep``,
    ``repro.cache.miss_curve.MissCurveBatch``) validate, not just modules.
    """
    parts = span.split(".")
    module = None
    for cut in range(len(parts), 0, -1):
        try:
            module = importlib.import_module(".".join(parts[:cut]))
            break
        except ImportError:
            continue
    if module is None:
        return f"module {span!r} does not import"
    obj = module
    for leaf in parts[cut:]:
        if not hasattr(obj, leaf):
            return (
                f"{span!r}: {'.'.join(parts[:cut])!r} imports but has no "
                f"attribute chain {'.'.join(parts[cut:])!r}"
            )
        obj = getattr(obj, leaf)
    return None


def check_modules_and_paths(
    text: str, origin: str, problems: list[str]
) -> None:
    for span in _INLINE.findall(text) + text.split():
        span = span.strip().rstrip(".,;:)")
        if _MODULE.match(span):
            problem = resolve_dotted_path(span)
            if problem is not None:
                problems.append(f"{origin}: {problem}")
        elif _PATHISH.match(span):
            if span in _BUILD_OUTPUTS:
                continue
            if "*" in span:
                if not glob.glob(str(REPO / span)):
                    problems.append(
                        f"{origin}: glob {span!r} matches no files"
                    )
            elif not (REPO / span).exists():
                problems.append(f"{origin}: path {span!r} does not exist")


def check_file(path: Path, problems: list[str]) -> None:
    text = path.read_text()
    origin = path.relative_to(REPO).as_posix()
    for block in _FENCE.findall(text):
        check_cli_commands(block, origin, problems)
        check_modules_and_paths(block, origin, problems)
    # Inline code spans outside fences also make claims; strip the fences
    # first so their contents are not double-counted.
    prose = _FENCE.sub("", text)
    check_cli_commands(prose, origin, problems)
    check_modules_and_paths(prose, origin, problems)


def verify_flag_list() -> list[str]:
    """Probe the generated parser: the documented grammar must parse."""
    import repro.__main__ as cli
    from repro.experiments.spec import spec_names

    probe = [
        ["list"],
        ["list", "--json"],
        ["run", "fig14", "--param", "mixes=1", "--seed", "1", "--jobs",
         "1", "--cache-dir", "x", "--no-cache", "--format", "json",
         "--out", "x.json"],
        ["scalability", "--tiles", "16,64", "--mixes", "1"],
        *([name] for name in spec_names()),
    ]
    problems = []
    parser = cli.build_parser()
    for argv in probe:
        try:
            parser.parse_args(argv)
        except SystemExit:  # argparse rejects unknown flags with exit 2
            problems.append(
                f"tools/docs_check.py: CLI parser rejected {argv} — the "
                f"registry and repro.__main__ disagree"
            )
    return problems


def check_experiment_index() -> list[str]:
    """Every registered spec appears in docs/REPRODUCING.md's experiment
    registry index, and the index names no unregistered experiment."""
    from repro.experiments.spec import spec_names

    path = REPO / "docs" / "REPRODUCING.md"
    text = path.read_text()
    marker = "## Experiment registry"
    if marker not in text:
        return [
            f"docs/REPRODUCING.md: missing the {marker!r} section "
            f"(the registry index docs-check cross-checks)"
        ]
    section = text.split(marker, 1)[1].split("\n## ", 1)[0]
    documented = set(re.findall(r"^\|\s*`([a-z0-9_]+)`", section, re.M))
    registered = set(spec_names())
    problems = []
    for name in sorted(registered - documented):
        problems.append(
            f"docs/REPRODUCING.md: registered experiment {name!r} is "
            f"missing from the experiment registry index"
        )
    for name in sorted(documented - registered):
        problems.append(
            f"docs/REPRODUCING.md: experiment registry index lists "
            f"{name!r}, which is not registered"
        )
    return problems


def check_analysis_rules() -> list[str]:
    """docs/ANALYSIS.md's rule catalogue matches the registered checkers.

    Both directions: every rule in ``tools.analyze.RULES`` has a table
    row (named and carrying the rule's invariant text), and the table
    names no unregistered rule — so the catalogue cannot drift from the
    code the way hand-maintained rule lists do.
    """
    from tools.analyze import RULES

    path = REPO / "docs" / "ANALYSIS.md"
    if not path.exists():
        return ["docs/ANALYSIS.md: missing (the repro-analyze catalogue)"]
    text = path.read_text()
    marker = "## Rule catalogue"
    if marker not in text:
        return [
            f"docs/ANALYSIS.md: missing the {marker!r} section "
            f"(the rule table docs-check cross-checks)"
        ]
    section = text.split(marker, 1)[1].split("\n## ", 1)[0]
    documented = set(re.findall(r"^\|\s*`([a-z-]+)`", section, re.M))
    registered = set(RULES)
    problems = []
    for name in sorted(registered - documented):
        problems.append(
            f"docs/ANALYSIS.md: registered rule {name!r} is missing "
            f"from the rule catalogue"
        )
    for name in sorted(documented - registered):
        problems.append(
            f"docs/ANALYSIS.md: rule catalogue lists {name!r}, which "
            f"tools.analyze does not register"
        )
    for name in sorted(registered & documented):
        if RULES[name].invariant not in section:
            problems.append(
                f"docs/ANALYSIS.md: row for {name!r} does not carry the "
                f"rule's registered invariant text verbatim"
            )
    return problems


def check_shape_conventions() -> list[str]:
    """Kernel modules must document their array shapes and dtypes."""
    problems = []
    for name in SHAPE_CONVENTION_MODULES:
        try:
            module = importlib.import_module(name)
        except ImportError as exc:
            problems.append(
                f"tools/docs_check.py: kernel module {name!r} does not "
                f"import ({exc})"
            )
            continue
        doc = module.__doc__ or ""
        if "Shape conventions" not in doc:
            problems.append(
                f"{name}: docstring lost its 'Shape conventions' section "
                f"(document the array shapes/dtypes flowing through the "
                f"kernels; see docs/PERFORMANCE.md)"
            )
    return problems


def main() -> int:
    problems: list[str] = []
    problems += verify_flag_list()
    problems += check_experiment_index()
    problems += check_analysis_rules()
    problems += check_shape_conventions()
    for doc in DOC_FILES:
        if not doc.exists():
            problems.append(f"missing documentation file: {doc.name}")
            continue
        check_file(doc, problems)
    if problems:
        print(f"docs-check: {len(problems)} problem(s)", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"docs-check: OK ({len(DOC_FILES)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
