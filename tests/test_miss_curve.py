"""Miss curves: interpolation, hulls, constructors (repro.cache.miss_curve)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.miss_curve import (
    MissCurve,
    cliff_curve,
    exponential_curve,
    flat_curve,
)
from repro.util.units import mb


def test_interpolation_and_clamping():
    curve = MissCurve([0, 100], [10.0, 0.0])
    assert curve(50) == pytest.approx(5.0)
    assert curve(0) == 10.0
    assert curve(1000) == 0.0  # clamp right
    assert curve(-5) == 10.0  # clamp left (via np.interp)


def test_validation_rejects_bad_input():
    with pytest.raises(ValueError):
        MissCurve([], [])
    with pytest.raises(ValueError):
        MissCurve([0, 0], [1, 1])  # not strictly increasing
    with pytest.raises(ValueError):
        MissCurve([0, 1], [1, -1])  # negative rate
    with pytest.raises(ValueError):
        MissCurve([0, 1], [1])  # length mismatch


def test_flat_curve_is_capacity_insensitive():
    curve = flat_curve(mb(32), 25.0)
    assert curve(0) == curve(mb(16)) == curve(mb(32)) == 25.0


def test_cliff_curve_shape():
    curve = cliff_curve(mb(32), 85.0, mb(2.5), 3.0)
    assert curve(0) == 85.0
    assert curve(mb(2.0)) == 85.0  # before the drop
    assert curve(mb(2.5)) == pytest.approx(3.0)
    assert curve(mb(10)) == pytest.approx(3.0)


def test_cliff_curve_validates_cliff_position():
    with pytest.raises(ValueError):
        cliff_curve(mb(1), 10.0, mb(2), 1.0)


def test_exponential_curve_halves_at_half_size():
    curve = exponential_curve(mb(32), 20.0, 0.0, mb(2))
    assert curve(mb(2)) == pytest.approx(10.0, rel=0.01)
    assert curve(mb(4)) == pytest.approx(5.0, rel=0.02)


def test_scaled_and_scaled_sizes():
    curve = cliff_curve(mb(32), 10.0, mb(2), 1.0)
    assert curve.scaled(2.0)(0) == 20.0
    shrunk = curve.scaled_sizes(1 / 8)
    assert shrunk(mb(2) / 8) == pytest.approx(curve(mb(2)))
    with pytest.raises(ValueError):
        curve.scaled(-1)
    with pytest.raises(ValueError):
        curve.scaled_sizes(0)


def test_monotone_decreasing_running_min():
    noisy = MissCurve([0, 1, 2, 3], [5.0, 7.0, 3.0, 4.0])
    clean = noisy.monotone_decreasing()
    assert list(clean.values) == [5.0, 5.0, 3.0, 3.0]


def test_addition_on_union_grid():
    a = MissCurve([0, 10], [4.0, 0.0])
    b = MissCurve([0, 5, 10], [2.0, 2.0, 2.0])
    c = a + b
    assert c(0) == 6.0
    assert c(5) == pytest.approx(4.0)
    assert c(10) == 2.0


def test_effective_footprint_of_cliff():
    curve = cliff_curve(mb(32), 85.0, mb(2.5), 3.0)
    fp = curve.effective_footprint()
    assert mb(2.3) <= fp <= mb(2.6)


def test_effective_footprint_of_flat_curve_is_zero_point():
    curve = flat_curve(mb(32), 25.0)
    assert curve.effective_footprint() == 0.0


@st.composite
def random_curves(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    # Integer-spaced sizes (scaled): capacities are byte counts in practice,
    # so degenerate sub-epsilon gaps that overflow slope arithmetic are out
    # of scope.
    steps = draw(
        st.lists(st.integers(1, 10_000), min_size=n - 1, max_size=n - 1)
    )
    sizes = [0.0]
    for step in steps:
        sizes.append(sizes[-1] + float(step))
    values = draw(
        st.lists(st.floats(0, 1e3, allow_nan=False), min_size=n, max_size=n)
    )
    return MissCurve(sizes, values)


@given(random_curves())
def test_convex_hull_is_a_lower_bound(curve):
    hull = curve.convex_hull()
    probes = np.linspace(curve.sizes[0], curve.sizes[-1], 40)
    assert np.all(np.asarray(hull(probes)) <= np.asarray(curve(probes)) + 1e-6)


@given(random_curves())
def test_convex_hull_is_convex(curve):
    xs, ys = curve.convex_points()
    if len(xs) >= 3:
        slopes = np.diff(ys) / np.diff(xs)
        assert np.all(np.diff(slopes) >= -1e-9)


@given(random_curves())
def test_hull_touches_endpoints(curve):
    xs, ys = curve.convex_points()
    assert xs[0] == curve.sizes[0]
    assert xs[-1] == curve.sizes[-1]
    assert ys[0] == pytest.approx(curve.values[0])
    assert ys[-1] == pytest.approx(curve.values[-1])


def test_repr_mentions_points():
    assert "pts" in repr(flat_curve(100, 1.0))
