"""The deterministic load harness end-to-end (ISSUE 6; marked slow).

Full sessions: a fleet of seeded chips through one service, with and
without an injected fault plan, plus the ``service_load`` registry
experiment and the ``serve`` CLI wrapper around the same path.
"""

import json

import pytest

from repro.service import FaultPlan, LoadReport, LoadSpec, run_load

pytestmark = pytest.mark.slow

SPEC = LoadSpec(chips=3, epochs=3, tiles=16)


def test_load_session_serves_every_epoch_of_every_chip():
    report = run_load(SPEC)
    assert report.requests == SPEC.chips * SPEC.epochs
    assert report.ok == report.requests
    assert report.degraded == 0 and report.timeouts == 0
    assert report.rejected == {}
    assert [chip for chip, _, _ in report.per_chip] == [
        f"chip-{i}" for i in range(SPEC.chips)
    ]
    assert all(ok == SPEC.epochs for _, ok, _ in report.per_chip)
    assert report.wall_seconds > 0 and report.requests_per_sec > 0
    assert 0 < report.p50_latency_ms <= report.p99_latency_ms
    assert report.mean_modeled_mcycles > 0


def test_fault_plan_counts_rejections_without_touching_placements():
    clean = run_load(SPEC)
    faulted = run_load(
        SPEC, FaultPlan(malformed=((0, 1), (2, 0), (2, 2)))
    )
    assert faulted.rejected == {"malformed_telemetry": 3}
    assert faulted.ok == clean.ok == clean.requests
    # Placements are engine-deterministic: the garbage requests changed
    # nothing about what each chip was told to do.
    assert faulted.mean_modeled_mcycles == clean.mean_modeled_mcycles
    assert faulted.per_chip == clean.per_chip


def test_load_report_round_trips_through_dict():
    report = run_load(LoadSpec(chips=2, epochs=2, tiles=16))
    clone = LoadReport.from_dict(
        json.loads(json.dumps(report.to_dict()))
    )
    assert clone == report


def test_load_spec_validation():
    with pytest.raises(ValueError, match="at least one chip"):
        LoadSpec(chips=0)
    with pytest.raises(ValueError, match="at least one epoch"):
        LoadSpec(epochs=0)
    with pytest.raises(ValueError, match="unknown dynamism"):
        LoadSpec(dynamism="chaotic")


def test_service_load_experiment_runs_through_the_registry():
    from repro.experiments.spec import get_spec
    from repro.runner import run_jobs

    spec = get_spec("service_load")
    params = spec.resolve({
        "chips": 2, "epochs": 2, "strategies": "incremental",
        "dynamism": "phased",
    })
    jobs = spec.build_jobs(params)
    assert len(jobs) == 1
    result = spec.reduce(run_jobs(jobs), params)
    record = spec.present(result, params)
    assert record.experiment == "service_load"
    (table,) = record.tables
    (row,) = table.rows
    assert row[:2] == ("incremental", "phased")
    report = result.report(("incremental", "phased"))
    assert report.ok == 4


def test_serve_cli_reports_a_session(capsys):
    from repro.__main__ import main

    assert main([
        "serve", "--chips", "2", "--epochs", "2", "--format", "json",
    ]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["experiment"] == "serve"
    assert record["params"]["chips"] == 2
    (table,) = record["tables"]
    (row,) = table["rows"]
    assert row[table["headers"].index("ok")] == 4
    assert row[table["headers"].index("degraded")] == 0


def test_serve_cli_rejects_bad_fleet(capsys):
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["serve", "--chips", "0"])
    assert "at least one chip" in capsys.readouterr().err
