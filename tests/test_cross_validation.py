"""Cross-validation between independent layers of the reproduction.

These tests pin the analytic models against ground truth computed a
different way: the LRU sharing fixed point vs. an exact trace simulation of
a shared LRU cache, the hull allocator vs. brute-force enumeration, and
generated streams vs. their target curves — the kind of agreement that
makes the big sweeps trustworthy.
"""

import itertools

import numpy as np
import pytest

from repro.cache.miss_curve import cliff_curve, flat_curve
from repro.config import small_test_config
from repro.nuca.base import build_problem
from repro.nuca.sharing import shared_cache_occupancies
from repro.sched.allocation import allocate_latency_aware, convex_hull_indices
from repro.sched.cost_model import latency_curve
from repro.util.units import kb
from repro.workloads.generator import StackDistanceStream
from repro.workloads.mixes import make_mix


def simulate_shared_lru(streams, accesses_per_stream, capacity_lines):
    """Exact shared-LRU simulation of interleaved streams; returns final
    occupancy (lines) per stream."""
    lru: dict[int, int] = {}  # line -> owner stream
    order: list[int] = []  # LRU order, MRU last
    for _ in range(accesses_per_stream):
        for sid, stream in enumerate(streams):
            addr = stream.next_address() + (sid << 40)
            if addr in lru:
                order.remove(addr)
            elif len(order) >= capacity_lines:
                victim = order.pop(0)
                del lru[victim]
            lru[addr] = sid
            order.append(addr)
    occ = [0] * len(streams)
    for owner in lru.values():
        occ[owner] += 1
    return occ


@pytest.mark.slow
def test_sharing_fixed_point_matches_trace_lru():
    """The insertion-balance fixed point should predict which stream holds
    more of a thrashed shared cache, within a reasonable factor."""
    fitting_curve = cliff_curve(kb(64), 20.0, kb(16), 0.5)
    streaming_curve = flat_curve(kb(64), 20.0)
    capacity = kb(32)

    predicted = shared_cache_occupancies(
        [fitting_curve.__call__, streaming_curve.__call__], capacity
    )
    streams = [
        StackDistanceStream(fitting_curve, apki=20.0, seed=11),
        StackDistanceStream(streaming_curve, apki=20.0, seed=12),
    ]
    measured = simulate_shared_lru(streams, 12_000, capacity // 64)
    measured_bytes = [m * 64 for m in measured]

    # Both agree the two streams split the cache in the same direction...
    assert (predicted[0] > predicted[1]) == (
        measured_bytes[0] > measured_bytes[1]
    )
    # ...and the fitting stream's occupancy is predicted within 2x.
    assert predicted[0] == pytest.approx(measured_bytes[0], rel=1.0)


def brute_force_allocation(curves, budget):
    """Exhaustive best allocation for tiny instances."""
    n = len(curves)
    best, best_cost = None, float("inf")
    for sizes in itertools.product(range(budget + 1), repeat=n):
        if sum(sizes) > budget:
            continue
        cost = sum(c[s] for c, s in zip(curves, sizes))
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = sizes
    return best, best_cost


def test_hull_allocator_matches_brute_force_on_convex_curves():
    """For convex curves the hull walk is exactly optimal; verify against
    exhaustive search on small instances."""
    rng = np.random.default_rng(5)
    for trial in range(10):
        n_curves, budget = 3, 12
        curves = []
        for _ in range(n_curves):
            # Convex decreasing: accumulate non-increasing improvements.
            drops = np.sort(rng.uniform(0, 10, size=budget))[::-1]
            values = np.concatenate(([100.0], 100.0 - np.cumsum(drops)))
            curves.append(values)
        # Greedy hull walk.
        from repro.sched.allocation import _greedy_hull_allocation
        from repro.sched.opcount import StepCounter

        sizes = _greedy_hull_allocation(
            [c.copy() for c in curves], budget, StepCounter(), "x"
        )
        greedy_cost = sum(c[s] for c, s in zip(curves, sizes))
        _, optimal_cost = brute_force_allocation(curves, budget)
        assert greedy_cost == pytest.approx(optimal_cost, abs=1e-6)


def test_hull_allocator_near_optimal_on_cliff_curves():
    """On non-convex (cliff) curves the hull walk is optimal over convex
    minorants; verify it matches brute force on a cliff-vs-stream duel."""
    cliff = np.array([50.0] * 4 + [2.0] * 9)  # cliff at 4 quanta
    stream = np.full(13, 30.0)  # insensitive
    gentle = 40.0 - 2.0 * np.arange(13)  # mild linear gain
    curves = [cliff, stream, gentle]
    from repro.sched.allocation import _greedy_hull_allocation
    from repro.sched.opcount import StepCounter

    sizes = _greedy_hull_allocation(
        [c.copy() for c in curves], 12, StepCounter(), "x"
    )
    greedy_cost = sum(c[s] for c, s in zip(curves, sizes))
    _, optimal_cost = brute_force_allocation(curves, 12)
    assert greedy_cost == pytest.approx(optimal_cost, abs=1e-6)
    assert sizes[0] >= 4  # the cliff app crossed its cliff


def test_latency_curve_hull_never_allocates_past_sweet_spot():
    """CDCS allocation never grows a VC beyond the minimum of its total
    latency curve (extra capacity would only add on-chip latency)."""
    config = small_test_config(4, 4)
    problem = build_problem(make_mix(["omnet", "gcc", "milc"]), config)
    sizes = allocate_latency_aware(problem)
    for i, vc in enumerate(problem.vcs):
        rate = sum(problem.accessors_of(vc.vc_id).values())
        if rate <= 0:
            continue
        curve = latency_curve(problem, vc.miss_curve, rate)
        best_q = int(np.argmin(curve))
        got_q = int(sizes[vc.vc_id] // problem.quantum)
        # Within one quantum of (or below) the curve's own optimum.
        assert got_q <= best_q + 1


def test_hull_indices_idempotent():
    rng = np.random.default_rng(3)
    values = rng.uniform(0, 100, size=50)
    hull1 = convex_hull_indices(values)
    hull_vals = np.interp(np.arange(len(values)), hull1, values[hull1])
    hull2 = convex_hull_indices(hull_vals)
    assert np.allclose(
        np.interp(np.arange(len(values)), hull2, hull_vals[hull2]),
        hull_vals,
    )
