"""Fault injection against the control plane (ISSUE 6 satellite).

Every failure mode must resolve to a typed error or a degraded
(last-good) reply — and the service must stay serviceable afterwards.
Faults are deterministic: timeouts are forced with
:class:`~repro.service.load.SlowStrategy` delays, never raced.
"""

import asyncio

import pytest

from repro.sched.engine import make_strategy
from repro.service import (
    CoSchedService,
    MalformedTelemetryError,
    PlacementRequest,
    QueueFullError,
    ServiceClient,
    SlowStrategy,
    SolveFailedError,
    SolveTimeoutError,
)
from repro.testing import small_problem

#: The injected delay dwarfs the deadline, and the deadline dwarfs a
#: real small-problem solve (~1ms) — so the timeout tests stay
#: deterministic even on a badly loaded CI runner.
SLOW_S = 0.4
DEADLINE_S = 0.1


class FailingStrategy:
    """Raises on chosen call indices, delegates otherwise."""

    def __init__(self, fail_calls, inner="full"):
        self.inner = make_strategy(inner)
        self.name = self.inner.name
        self.fail_calls = set(fail_calls)
        self.calls = 0

    def solve(self, problem, policy, external_thread_cores, state):
        call = self.calls
        self.calls += 1
        if call in self.fail_calls:
            raise RuntimeError(f"injected failure on call {call}")
        return self.inner.solve(
            problem, policy, external_thread_cores, state
        )


def test_cold_timeout_surfaces_typed_error_then_service_recovers():
    """A timeout with no last-good placement is a typed error; the same
    chip is served normally once the abandoned solve has drained."""
    problem, _ = small_problem(apps=4, side=2)
    slow = SlowStrategy("full", delay_s=SLOW_S, slow_calls=frozenset({0}))

    async def scenario():
        async with CoSchedService(
            strategy=slow, solve_timeout_s=DEADLINE_S
        ) as service:
            with pytest.raises(SolveTimeoutError) as err:
                await service.place("chip", problem)
            # The abandoned solve still holds the chip's lock; this
            # request queues behind it and then solves fresh (call 1 is
            # not slowed).
            reply = await service.place("chip", problem)
            return err.value, reply, service.stats.snapshot()

    error, reply, stats = asyncio.run(scenario())
    assert error.code == "solve_timeout"
    assert reply.ok and reply.status == "ok"
    assert stats["timeouts"] == 1
    assert stats["degraded"] == 0


def test_warm_timeout_degrades_to_last_good_placement():
    problem, _ = small_problem(apps=4, side=2)
    slow = SlowStrategy("full", delay_s=SLOW_S, slow_calls=frozenset({1}))

    async def scenario():
        async with CoSchedService(
            strategy=slow, solve_timeout_s=DEADLINE_S
        ) as service:
            fresh = await service.place("chip", problem)
            degraded = await service.place("chip", problem)
            after = await service.place("chip", problem)
            return fresh, degraded, after, service.stats.snapshot()

    fresh, degraded, after, stats = asyncio.run(scenario())
    assert fresh.ok
    assert degraded.status == "degraded" and not degraded.ok
    assert degraded.error == "solve_timeout"
    assert degraded.step_cycles == {}
    # The stale placement it fell back to is the last fresh answer.
    assert degraded.solution.vc_sizes == fresh.solution.vc_sizes
    assert degraded.solution.thread_cores == fresh.solution.thread_cores
    # ... and a private copy: scribbling on it can't corrupt the engine.
    degraded.solution.vc_sizes.clear()
    assert after.ok
    assert after.solution.vc_sizes == fresh.solution.vc_sizes
    assert stats["timeouts"] == 1 and stats["degraded"] == 1


def test_per_request_timeout_overrides_service_default():
    problem, _ = small_problem(apps=4, side=2)
    slow = SlowStrategy("full", delay_s=SLOW_S, slow_calls=frozenset({0}))

    async def scenario():
        # No service-wide deadline: only the per-request one bites.
        async with CoSchedService(strategy=slow) as service:
            with pytest.raises(SolveTimeoutError):
                await service.place("chip", problem,
                                    timeout_s=DEADLINE_S)
            return await service.place("chip", problem)

    reply = asyncio.run(scenario())
    assert reply.ok


def test_mid_solve_failure_is_typed_cold_and_degraded_warm():
    problem, _ = small_problem(apps=4, side=2)
    failing = FailingStrategy(fail_calls={0, 2})

    async def scenario():
        async with CoSchedService(strategy=failing) as service:
            with pytest.raises(SolveFailedError) as cold:
                await service.place("chip", problem)  # call 0 raises
            fresh = await service.place("chip", problem)  # call 1 ok
            degraded = await service.place("chip", problem)  # call 2
            return cold.value, fresh, degraded, service.stats.snapshot()

    error, fresh, degraded, stats = asyncio.run(scenario())
    assert error.code == "solve_failed"
    assert fresh.ok
    assert degraded.status == "degraded"
    assert degraded.error == "solve_failed"
    assert degraded.solution.vc_sizes == fresh.solution.vc_sizes
    assert stats["solve_errors"] == 2


def test_malformed_telemetry_is_rejected_and_service_stays_up():
    problem, _ = small_problem(apps=4, side=2)

    async def scenario():
        async with CoSchedService(strategy="full") as service:
            with pytest.raises(MalformedTelemetryError):
                service.submit(
                    PlacementRequest(chip_id="rogue", problem="junk")
                )
            reply = await service.place("honest", problem)
            return reply, service.stats.snapshot()

    reply, stats = asyncio.run(scenario())
    assert reply.ok
    assert stats["rejected"] == {"malformed_telemetry": 1}
    assert stats["submitted"] == 1  # the garbage was never queued


def test_queue_full_rejection_is_typed_and_transient():
    """With the single worker pinned on a slow solve, the bounded queue
    fills; overflow raises QueueFullError and every accepted request is
    still answered once the worker catches up."""
    problem, _ = small_problem(apps=4, side=2)
    slow = SlowStrategy("full", delay_s=SLOW_S, slow_calls=frozenset({0}))

    async def scenario():
        async with CoSchedService(
            strategy=slow, workers=1, queue_limit=2
        ) as service:
            first = service.submit(
                PlacementRequest(chip_id="chip", problem=problem)
            )
            await asyncio.sleep(0.05)  # worker is now inside the slow solve
            accepted = [
                service.submit(PlacementRequest(
                    chip_id="chip", problem=problem, epoch=1 + i
                ))
                for i in range(2)  # fills the queue exactly
            ]
            with pytest.raises(QueueFullError) as err:
                service.submit(
                    PlacementRequest(chip_id="chip", problem=problem)
                )
            replies = await asyncio.gather(first, *accepted)
            return err.value, replies, service.stats.snapshot()

    error, replies, stats = asyncio.run(scenario())
    assert error.code == "queue_full"
    assert all(reply.ok for reply in replies)
    assert stats["rejected"] == {"queue_full": 1}
    assert stats["completed"] == 3


def test_client_retries_queue_full_until_admitted():
    problem, _ = small_problem(apps=4, side=2)
    slow = SlowStrategy("full", delay_s=SLOW_S, slow_calls=frozenset({0}))

    async def scenario():
        async with CoSchedService(
            strategy=slow, workers=1, queue_limit=1
        ) as service:
            pinned = service.submit(
                PlacementRequest(chip_id="chip", problem=problem)
            )
            await asyncio.sleep(0.02)
            filler = service.submit(
                PlacementRequest(chip_id="chip", problem=problem)
            )
            # Retries outlive the slow solve, so this must get through.
            client = ServiceClient(
                service, "chip", retries=100, retry_delay_s=0.01
            )
            reply = await client.place(problem)
            await asyncio.gather(pinned, filler)
            return reply, service.stats.snapshot()

    reply, stats = asyncio.run(scenario())
    assert reply.ok
    assert stats["rejected"].get("queue_full", 0) >= 1
    assert stats["completed"] == 3
