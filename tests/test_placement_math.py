"""Placement geometry: compact placement, contention, centers (Fig 6-8)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.mesh import Mesh
from repro.geometry.placement_math import (
    center_of_mass,
    compact_mean_distance,
    compact_placement,
    contention_window,
    nearest_tile,
    placement_mean_distance,
    spiral,
    weighted_center_tile,
    window_contention,
)


def test_compact_placement_fractions_sum_to_size():
    mesh = Mesh(6, 6)
    placement = compact_placement(mesh, 14, 8.2)
    assert sum(placement.values()) == pytest.approx(8.2)
    assert all(0 < f <= 1 for f in placement.values())


def test_compact_placement_fills_center_first():
    mesh = Mesh(6, 6)
    placement = compact_placement(mesh, 14, 3.0)
    assert placement[14] == 1.0
    # All full banks are at distance <= the partial bank's distance.
    dists = sorted(mesh.distance(14, t) for t in placement)
    assert dists == [0, 1, 1]


def test_paper_fig6_average_distance():
    # Fig 6: an 8.2-bank VC compactly placed mid-chip averages ~1.27 hops.
    mesh = Mesh(8, 8)
    d = compact_mean_distance(mesh, mesh.center_tile(), 8.2)
    assert d == pytest.approx(1.27, abs=0.02)


def test_compact_placement_clamps_to_chip():
    mesh = Mesh(2, 2)
    placement = compact_placement(mesh, 0, 10.0)
    assert sum(placement.values()) == pytest.approx(4.0)


def test_compact_placement_rejects_negative():
    with pytest.raises(ValueError):
        compact_placement(Mesh(2, 2), 0, -1.0)


@given(
    st.integers(min_value=2, max_value=6),
    st.floats(min_value=0.1, max_value=20.0),
)
def test_compact_mean_distance_monotone_in_size(side, size):
    """Bigger compact VCs are farther away on average (Fig 5's rising
    on-chip term)."""
    mesh = Mesh(side, side)
    center = mesh.center_tile()
    small = compact_mean_distance(mesh, center, min(size, mesh.tiles))
    bigger = compact_mean_distance(
        mesh, center, min(size * 1.5, mesh.tiles)
    )
    assert bigger >= small - 1e-9


def test_placement_mean_distance_zero_for_local():
    mesh = Mesh(4, 4)
    assert placement_mean_distance(mesh, 5, {5: 1.0}) == 0.0


def test_window_contention_weighted_sum():
    mesh = Mesh(4, 4)
    window = contention_window(mesh, 5, 2.0)
    claimed = [1.0] * 16
    assert window_contention(claimed, window) == pytest.approx(2.0)


def test_spiral_order_is_by_distance():
    mesh = Mesh(5, 5)
    order = list(spiral(mesh, 12))
    dists = [mesh.distance(12, t) for t in order]
    assert dists == sorted(dists)
    assert order[0] == 12


def test_center_of_mass_weighted():
    mesh = Mesh(4, 4)
    com = center_of_mass(mesh, {0: 1.0, 3: 1.0})
    assert com == pytest.approx((1.5, 0.0))
    com = center_of_mass(mesh, {0: 3.0, 3: 1.0})
    assert com == pytest.approx((0.75, 0.0))


def test_center_of_mass_empty_raises():
    with pytest.raises(ValueError):
        center_of_mass(Mesh(2, 2), {})


def test_nearest_tile_rounds_to_closest():
    mesh = Mesh(4, 4)
    assert nearest_tile(mesh, (0.4, 0.4)) == 0
    assert nearest_tile(mesh, (2.9, 3.1)) == 15


def test_weighted_center_tile_is_network_median():
    mesh = Mesh(5, 1)
    # Weights at the ends: any middle tile minimizes; heavy left pulls left.
    assert weighted_center_tile(mesh, {0: 10.0, 4: 1.0}) == 0
    assert weighted_center_tile(mesh, {0: 1.0, 4: 1.0}) in (0, 1, 2, 3, 4)


def test_weighted_center_tile_single_point():
    mesh = Mesh(4, 4)
    assert weighted_center_tile(mesh, {9: 2.0}) == 9
