"""Known-bad corpus for the ``async-discipline`` rule (parsed, never
run)."""

import asyncio
import time


async def handle(engine, problem, path):
    time.sleep(0.1)  # finding: blocking sleep on the loop
    text = open(path).read()  # finding: blocking file I/O
    result = engine.solve(problem)  # finding: inline solver call
    await asyncio.sleep(0)  # clean: cooperative sleep
    return result, text


async def suppressed(engine, problem):
    return engine.solve(problem)  # repro: allow[async-discipline]


def sync_helper(engine, problem):
    return engine.solve(problem)  # clean: not a coroutine body
