"""Known-bad corpus for the ``shared-view`` rule (parsed, never run)."""

import numpy as np

from repro.geometry.mesh import shared_geometry_matrices


def corrupt(key, topo):
    mats = shared_geometry_matrices(key)
    dist = mats["distance"]
    dist += 1.0  # finding: augmented assignment into a shared array
    topo.distance_matrix[0, 0] = 9.0  # finding: slice assignment
    np.add(dist, 1.0, out=dist)  # finding: out= targets a shared array
    dist.sort()  # finding: mutating ndarray method
    safe = dist.copy()
    safe += 1.0  # clean: private copy
    view = dist.ravel()
    view.fill(0.0)  # finding: mutation through a view of a shared array
    return safe


def suppressed(batch):
    batch.values2d[0, 0] = 1.0  # repro: allow[shared-view] fixture
