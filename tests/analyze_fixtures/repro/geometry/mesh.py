"""Known-bad corpus for the ``lock-discipline`` rule (parsed, never
run).  The path suffix ``repro/geometry/mesh.py`` matches the registry
entries for ``_SHARED_GEOMETRY_CACHE`` and ``_GEOMETRY_STATS``."""

import threading

_GEOMETRY_LOCK = threading.RLock()
_SHARED_GEOMETRY_CACHE = {}
# Present so the stale-registry checks stay quiet: every name the
# registry expects in a module on this path suffix must exist.
_GEOMETRY_STATS = None
_dense_tile_limit = 1024


def bad_read(key):
    return _SHARED_GEOMETRY_CACHE.get(key)  # finding: unlocked access


def good_read(key):
    with _GEOMETRY_LOCK:
        return _SHARED_GEOMETRY_CACHE.get(key)  # clean: lock held


def suppressed_read(key):
    return _SHARED_GEOMETRY_CACHE.get(key)  # repro: allow[lock-discipline]
