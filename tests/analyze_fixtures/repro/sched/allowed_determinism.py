"""The same operations as ``bad_determinism`` with every site carrying a
reviewed suppression — the rule must report nothing here."""

import random
import time

import numpy as np


def draw(vcs):
    random.seed(1)  # repro: allow[determinism] fixture justification
    np.random.shuffle(vcs)  # repro: allow[determinism]
    # repro: allow[determinism] — comment-above form covers the next line
    t0 = time.perf_counter()
    for vc in set(vcs) | {0}:  # repro: allow[determinism]
        pass
    order = list({1, 2, 3})  # repro: allow[determinism]
    return order, t0
