"""Known-bad corpus for the ``determinism`` rule (parsed, never run)."""

import random
import time

import numpy as np


def draw(vcs):
    random.seed(1)  # finding: stdlib global RNG
    np.random.shuffle(vcs)  # finding: numpy global RNG
    rng = np.random.default_rng(7)  # clean: explicitly seeded generator
    t0 = time.perf_counter()  # finding: wall clock in a modeled layer
    for vc in set(vcs) | {0}:  # finding: unordered iteration
        rng.random()
    order = list({1, 2, 3})  # finding: list() over an unordered set
    return order, t0
