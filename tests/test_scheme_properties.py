"""Property-based validation across random workloads: whatever the mix,
every scheme must produce a physically valid configuration (bank
capacities, distinct cores, routable VCs) and CDCS must never lose to its
own greedy seed on its own objective."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import small_test_config
from repro.nuca import Cdcs, Jigsaw, RNuca, SNuca, build_problem
from repro.sched.cost_model import total_latency
from repro.sched.problem import PlacementSolution
from repro.sched.reconfigure import ReconfigPolicy, reconfigure
from repro.workloads.mixes import make_mix
from repro.workloads.profiles import SINGLE_THREADED

APP_NAMES = sorted(SINGLE_THREADED)

mixes = st.lists(
    st.sampled_from(APP_NAMES), min_size=1, max_size=8
).map(make_mix)


@given(mixes, st.integers(0, 3))
@settings(max_examples=15, deadline=None)
def test_all_schemes_valid_on_random_mixes(mix, seed):
    config = small_test_config(4, 4)
    problem = build_problem(mix, config)
    for scheme in (SNuca(seed), RNuca(seed), Jigsaw("random", seed),
                   Jigsaw("clustered", seed), Cdcs(seed=seed)):
        solution = scheme.run(problem).solution
        # Distinct cores for all threads.
        cores = list(solution.thread_cores.values())
        assert len(set(cores)) == len(cores)
        # Bank capacities respected for managed schemes (S-NUCA/R-NUCA
        # encode spreads, not managed placements, and are exempt).
        if scheme.name.startswith(("Jigsaw", "CDCS")):
            usage = solution.bank_usage(problem.topology.tiles)
            assert max(usage) <= problem.bank_bytes + 1.0
        # Every accessed VC routes somewhere.
        for vc in problem.vcs:
            if sum(problem.accessors_of(vc.vc_id).values()) > 0:
                assert sum(
                    solution.vc_allocation.get(vc.vc_id, {}).values()
                ) > 0, (scheme.name, vc.vc_id)


@given(mixes, st.integers(0, 3))
@settings(max_examples=10, deadline=None)
def test_trades_never_hurt_the_objective(mix, seed):
    """CDCS's trade refinement can only reduce the Eq 1+2 objective
    relative to the greedy seed (same sizes, same thread placement)."""
    config = small_test_config(4, 4)
    problem = build_problem(mix, config)
    with_trades = reconfigure(problem, ReconfigPolicy(True, True, True))
    without = reconfigure(
        problem,
        ReconfigPolicy(True, True, False),
    )
    # Same allocation sizes and thread placement by construction
    # (deterministic steps); only the data placement differs.
    assert with_trades.solution.thread_cores == without.solution.thread_cores
    cost_with = total_latency(problem, with_trades.solution)
    cost_without = total_latency(problem, without.solution)
    assert cost_with <= cost_without + 1e-6


@given(mixes)
@settings(max_examples=10, deadline=None)
def test_cdcs_objective_beats_random_data_placement(mix):
    """CDCS's placement should beat a degenerate placement that dumps every
    VC round-robin across banks with the same sizes and threads."""
    config = small_test_config(4, 4)
    problem = build_problem(mix, config)
    result = reconfigure(problem, ReconfigPolicy.cdcs())
    solution = result.solution
    tiles = problem.topology.tiles
    # Degenerate comparison: uniform spread of each VC.
    spread = PlacementSolution(
        vc_sizes=dict(solution.vc_sizes),
        vc_allocation={
            vc_id: {b: size / tiles for b in range(tiles)}
            for vc_id, size in solution.vc_sizes.items()
            if size > 0
        },
        thread_cores=dict(solution.thread_cores),
    )
    assert total_latency(problem, solution) <= total_latency(
        problem, spread
    ) + 1e-6
