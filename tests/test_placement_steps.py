"""CDCS placement steps: optimistic VC placement, thread placement,
greedy + trade refinement (Secs IV-D/E/F)."""

import pytest

from repro.config import small_test_config
from repro.nuca.base import build_problem, process_vc_id
from repro.sched.allocation import allocate_latency_aware
from repro.sched.cost_model import on_chip_latency
from repro.sched.problem import PlacementSolution
from repro.sched.refinement import (
    greedy_placement,
    refined_placement,
    trade_refinement,
)
from repro.sched.thread_placement import (
    clustered_thread_placement,
    place_threads,
    random_thread_placement,
)
from repro.sched.vc_placement import place_optimistic
from repro.util.units import mb
from repro.workloads.mixes import make_mix


def setup_problem(names, side=4):
    config = small_test_config(side, side)
    problem = build_problem(make_mix(names), config)
    sizes = allocate_latency_aware(problem)
    return config, problem, sizes


# -- optimistic VC placement (Sec IV-D) ---------------------------------------


def test_optimistic_footprints_match_sizes():
    _, problem, sizes = setup_problem(["omnet", "omnet", "milc", "gcc"])
    placement = place_optimistic(problem, sizes)
    for vc_id, footprint in placement.footprints.items():
        assert sum(footprint.values()) == pytest.approx(sizes[vc_id])


def test_optimistic_places_large_vcs_apart():
    """Two omnet-sized VCs must not share a center (the Fig 7 point)."""
    _, problem, sizes = setup_problem(["omnet", "omnet", "milc", "milc"])
    placement = place_optimistic(problem, sizes)
    c0 = placement.centers[0]
    c1 = placement.centers[1]
    assert problem.topology.distance(c0, c1) >= 2


def test_optimistic_claims_relax_capacity():
    _, problem, sizes = setup_problem(["omnet"] * 6 + ["mcf"] * 6, side=4)
    placement = place_optimistic(problem, sizes)
    # Claims are in bank units and may exceed 1.0 per bank in aggregate.
    assert placement.claimed.max() > 0
    total_banks = sum(sizes.values()) / problem.bank_bytes
    assert placement.claimed.sum() == pytest.approx(total_banks, rel=0.01)


def test_optimistic_skips_empty_vcs():
    _, problem, sizes = setup_problem(["milc", "milc"])
    placement = place_optimistic(problem, sizes)
    from repro.nuca.base import GLOBAL_VC_ID

    assert GLOBAL_VC_ID not in placement.footprints  # zero-size VC


# -- thread placement (Sec IV-E) ------------------------------------------------


def test_threads_placed_on_distinct_cores():
    _, problem, sizes = setup_problem(["omnet", "ilbdc", "milc", "gcc"])
    optimistic = place_optimistic(problem, sizes)
    cores = place_threads(problem, sizes, optimistic)
    assert len(set(cores.values())) == len(problem.threads)


def test_multithreaded_process_clusters_near_shared_vc():
    """Shared-heavy ilbdc threads should sit near their shared data."""
    _, problem, sizes = setup_problem(["ilbdc", "milc", "milc", "milc"])
    optimistic = place_optimistic(problem, sizes)
    cores = place_threads(problem, sizes, optimistic)
    shared_vc = process_vc_id(0)
    com = optimistic.centroids[shared_vc]
    topo = problem.topology
    ilbdc_cores = [cores[t] for t in range(8)]
    mean_dist = sum(
        abs(topo.coords(c)[0] - com[0]) + abs(topo.coords(c)[1] - com[1])
        for c in ilbdc_cores
    ) / len(ilbdc_cores)
    assert mean_dist <= 2.5  # clustered around the shared VC


def test_clustered_external_placement_is_contiguous():
    _, problem, _ = setup_problem(["ilbdc", "milc"])
    cores = clustered_thread_placement(problem)
    ilbdc_cores = sorted(cores[t] for t in range(8))
    assert ilbdc_cores == list(range(8))  # row-major block


def test_random_external_placement_is_valid_permutation():
    _, problem, _ = setup_problem(["milc"] * 8)
    cores = random_thread_placement(problem, seed=4)
    assert len(set(cores.values())) == 8
    assert all(0 <= c < 16 for c in cores.values())


def test_random_placement_differs_by_seed():
    _, problem, _ = setup_problem(["milc"] * 8)
    a = random_thread_placement(problem, seed=1)
    b = random_thread_placement(problem, seed=2)
    assert a != b


# -- refinement (Sec IV-F) -------------------------------------------------------


def test_greedy_respects_bank_capacity():
    config, problem, sizes = setup_problem(["omnet"] * 4 + ["mcf"] * 4)
    cores = random_thread_placement(problem, seed=0)
    allocation = greedy_placement(problem, sizes, cores)
    usage = {}
    for per_bank in allocation.values():
        for bank, amount in per_bank.items():
            usage[bank] = usage.get(bank, 0.0) + amount
    for bank, used in usage.items():
        assert used <= problem.bank_bytes + 1e-6


def test_greedy_places_thread_vc_locally_first():
    _, problem, sizes = setup_problem(["gcc", "milc", "milc", "milc"])
    cores = random_thread_placement(problem, seed=0)
    allocation = greedy_placement(problem, sizes, cores)
    # gcc's small VC should sit in (or adjacent to) its own bank.
    gcc_banks = list(allocation[0])
    assert problem.topology.distance(cores[0], gcc_banks[0]) <= 1


def test_trades_never_increase_total_onchip_latency():
    _, problem, sizes = setup_problem(["omnet", "omnet", "xalancbmk", "mcf"])
    cores = clustered_thread_placement(problem)
    allocation = greedy_placement(problem, sizes, cores)

    def cost(alloc):
        sol = PlacementSolution(
            vc_sizes={vc: sum(p.values()) for vc, p in alloc.items()},
            vc_allocation=alloc,
            thread_cores=cores,
        )
        return on_chip_latency(problem, sol)

    before = cost(allocation)
    trades = trade_refinement(problem, allocation, cores)
    after = cost(allocation)
    assert after <= before + 1e-6
    assert trades >= 0


def test_trades_preserve_sizes_and_capacity():
    config, problem, sizes = setup_problem(["omnet"] * 3 + ["milc"] * 5)
    cores = clustered_thread_placement(problem)
    allocation = greedy_placement(problem, sizes, cores)
    placed_before = {vc: sum(p.values()) for vc, p in allocation.items()}
    trade_refinement(problem, allocation, cores)
    for vc_id, per_bank in allocation.items():
        assert sum(per_bank.values()) == pytest.approx(placed_before[vc_id])
        assert all(v > -1e-9 for v in per_bank.values())
    usage = {}
    for per_bank in allocation.values():
        for bank, amount in per_bank.items():
            usage[bank] = usage.get(bank, 0.0) + amount
    assert max(usage.values()) <= problem.bank_bytes + 1e-6


def test_refined_placement_beats_clustered_greedy():
    """The Fig 1b pathology: under clustered threads, trades should recover
    some of the latency the contended greedy placement loses."""
    _, problem, sizes = setup_problem(["omnet"] * 4 + ["milc"] * 4)
    cores = clustered_thread_placement(problem)
    greedy_only = refined_placement(problem, sizes, cores, trades=False)
    refined = refined_placement(problem, sizes, cores, trades=True)

    def cost(alloc):
        sol = PlacementSolution(
            vc_sizes={vc: sum(p.values()) for vc, p in alloc.items()},
            vc_allocation=alloc,
            thread_cores=cores,
        )
        return on_chip_latency(problem, sol)

    assert cost(refined) <= cost(greedy_only) + 1e-6
