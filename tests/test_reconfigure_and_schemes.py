"""The 4-step pipeline (Fig 4) and the NUCA schemes (repro.nuca)."""

import pytest

from repro.config import small_test_config
from repro.nuca import (
    Cdcs,
    Jigsaw,
    PartitionedShared,
    RNuca,
    SNuca,
    build_problem,
    factor_variant,
    rotational_cluster,
    shared_cache_occupancies,
    standard_schemes,
)
from repro.sched.reconfigure import ReconfigPolicy, reconfigure
from repro.util.units import kb, mb
from repro.workloads.mixes import make_mix

MIX = ["omnet", "milc", "gcc", "ilbdc"]


def setup_problem(names=None, side=4):
    config = small_test_config(side, side)
    problem = build_problem(make_mix(names or MIX), config)
    return config, problem


# -- reconfigure pipeline -------------------------------------------------------


def test_cdcs_pipeline_produces_valid_solution():
    _, problem = setup_problem()
    result = reconfigure(problem, ReconfigPolicy.cdcs())
    result.solution.validate(problem)
    assert set(result.solution.thread_cores) == {
        t.thread_id for t in problem.threads
    }


def test_jigsaw_policy_requires_external_cores():
    _, problem = setup_problem()
    with pytest.raises(ValueError):
        reconfigure(problem, ReconfigPolicy.jigsaw())


def test_jigsaw_policy_rejects_partial_external_cores():
    _, problem = setup_problem()
    with pytest.raises(ValueError, match="misses threads"):
        reconfigure(
            problem, ReconfigPolicy.jigsaw(), external_thread_cores={0: 0}
        )


def test_policy_labels():
    assert ReconfigPolicy.cdcs().label() == "+LTD"
    assert ReconfigPolicy.jigsaw().label() == "base"
    assert ReconfigPolicy(True, False, True).label() == "+LD"


def test_step_cycles_reported_for_all_steps():
    _, problem = setup_problem()
    result = reconfigure(problem, ReconfigPolicy.cdcs())
    cycles = result.step_cycles()
    for step in ("allocation", "vc_placement", "thread_placement",
                 "data_placement"):
        assert cycles[step] > 0


# -- schemes ---------------------------------------------------------------------


@pytest.mark.parametrize(
    "scheme",
    [SNuca(), RNuca(), Jigsaw("random"), Jigsaw("clustered"),
     Cdcs(), PartitionedShared()],
    ids=lambda s: s.name,
)
def test_every_scheme_produces_complete_solution(scheme):
    _, problem = setup_problem()
    result = scheme.run(problem)
    sol = result.solution
    assert set(sol.thread_cores) == {t.thread_id for t in problem.threads}
    cores = list(sol.thread_cores.values())
    assert len(set(cores)) == len(cores)
    # Every accessed VC routes somewhere.
    for vc in problem.vcs:
        if sum(problem.accessors_of(vc.vc_id).values()) > 0:
            assert sum(sol.vc_allocation.get(vc.vc_id, {}).values()) > 0


def test_snuca_spreads_data_uniformly():
    _, problem = setup_problem()
    sol = SNuca().run(problem).solution
    for per_bank in sol.vc_allocation.values():
        assert len(per_bank) == problem.topology.tiles
        values = list(per_bank.values())
        assert max(values) == pytest.approx(min(values))


def test_rnuca_private_data_is_local():
    _, problem = setup_problem(["gcc", "milc", "bzip2"])
    result = RNuca().run(problem)
    sol = result.solution
    for thread_id in range(3):
        banks = list(sol.vc_allocation[thread_id])
        assert banks == [sol.thread_cores[thread_id]]


def test_rnuca_shared_data_spread_chip_wide():
    _, problem = setup_problem(["ilbdc", "milc"])
    sol = RNuca().run(problem).solution
    from repro.nuca.base import process_vc_id

    shared_alloc = sol.vc_allocation[process_vc_id(0)]
    assert len(shared_alloc) == problem.topology.tiles


def test_jigsaw_scheduler_names():
    assert Jigsaw("random").name == "Jigsaw+R"
    assert Jigsaw("clustered").name == "Jigsaw+C"
    with pytest.raises(ValueError):
        Jigsaw("fancy")


def test_factor_variant_names():
    assert factor_variant(True, True, True).name == "CDCS"
    assert factor_variant(True, False, False).name == "Jigsaw+R+L"
    assert factor_variant(False, False, False).name == "Jigsaw+Rbase"


def test_standard_schemes_order():
    names = [s.name for s in standard_schemes()]
    assert names == ["S-NUCA", "R-NUCA", "Jigsaw+C", "Jigsaw+R", "CDCS"]


def test_rotational_cluster_degree4():
    cluster = rotational_cluster(5, mesh_width=4)
    assert len(cluster) == 4
    assert 5 in cluster


# -- LRU sharing fixed point -----------------------------------------------------


def test_sharing_everything_fits():
    from repro.cache.miss_curve import cliff_curve

    small = cliff_curve(kb(512), 10.0, kb(64), 0.0)
    occ = shared_cache_occupancies([small.__call__, small.__call__], kb(512))
    assert all(kb(60) <= o <= kb(70) for o in occ)


def test_sharing_streaming_expands():
    from repro.cache.miss_curve import cliff_curve, flat_curve

    fitting = cliff_curve(mb(4), 10.0, kb(256), 0.5)
    streaming = flat_curve(mb(4), 30.0)
    occ = shared_cache_occupancies(
        [fitting.__call__, streaming.__call__], mb(1)
    )
    assert sum(occ) <= mb(1) * 1.001
    assert occ[1] > occ[0]  # the stream crowds the fitting app


def test_sharing_occupancies_fill_capacity_under_pressure():
    from repro.cache.miss_curve import flat_curve

    streams = [flat_curve(mb(4), 20.0).__call__ for _ in range(4)]
    occ = shared_cache_occupancies(streams, mb(2))
    assert sum(occ) == pytest.approx(mb(2), rel=0.01)


def test_sharing_zero_capacity():
    from repro.cache.miss_curve import flat_curve

    occ = shared_cache_occupancies([flat_curve(mb(1), 5.0).__call__], 0.0)
    assert occ == [0.0]
