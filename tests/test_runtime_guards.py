"""Runtime half of the invariant suite (see docs/ANALYSIS.md).

Two mechanisms, both introduced alongside the static checkers:

* **frozen shared arrays** — everything published by the geometry memo,
  the shm attach path, and :class:`MissCurveBatch` carries
  ``writeable=False``, so the mutation bugs the ``shared-view`` rule
  catches statically fail loudly at runtime too;
* **lock-discipline harness** — under ``REPRO_CHECK_LOCKS=1`` the
  registered guarded mappings assert lock ownership on every access
  (:mod:`repro.util.guards`).  The flag is frozen at import, so those
  tests run in subprocesses with the environment set.

`make test-locks` re-runs this module plus the service concurrency
suite with the harness enabled end to end.
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.cache.miss_curve import MissCurve, MissCurveBatch
from repro.geometry.mesh import Mesh, dense_geometry_limit
from repro.util import guards

REPO = Path(__file__).resolve().parents[1]


# -- frozen shared arrays -----------------------------------------------------


def test_dense_distance_matrix_is_readonly():
    mat = Mesh(4, 4).distance_matrix
    assert isinstance(mat, np.ndarray)
    assert not mat.flags.writeable
    with pytest.raises(ValueError):
        mat[0, 0] = 99.0


def test_lazy_rows_and_means_are_readonly():
    with dense_geometry_limit(0):
        mat = Mesh(4, 4).distance_matrix
    row = mat.row(3)
    assert not row.flags.writeable
    with pytest.raises(ValueError):
        row[0] = -1.0
    means = mat.mean(axis=1)
    with pytest.raises(ValueError):
        means[0] = -1.0


def test_miss_curve_banks_are_readonly_including_subsets():
    curves = [
        MissCurve(sizes=[1.0, 2.0, 4.0], values=[9.0, 5.0, 2.0]),
        MissCurve(sizes=[1.0, 8.0], values=[7.0, 1.0]),
    ]
    batch = MissCurveBatch(curves)
    for bank in (batch.lengths, batch.sizes2d, batch.values2d):
        assert not bank.flags.writeable
        with pytest.raises(ValueError):
            bank[0] = 0
    sub = batch.take([1])
    with pytest.raises(ValueError):
        sub.values2d[0, 0] = 0.0


# -- the REPRO_CHECK_LOCKS harness -------------------------------------------


def test_guarded_mappings_match_environment():
    # Plain `make test` runs without the flag: the guarded mappings must
    # be plain dicts with zero overhead.  `make test-locks` re-runs this
    # suite with REPRO_CHECK_LOCKS=1, where the same globals must be the
    # instrumented variant.
    enabled = os.environ.get("REPRO_CHECK_LOCKS", "") == "1"
    assert guards.CHECK_LOCKS is enabled
    from repro.geometry import mesh

    if enabled:
        assert isinstance(
            mesh._SHARED_GEOMETRY_CACHE, guards.LockCheckedDict
        )
    else:
        assert type(mesh._SHARED_GEOMETRY_CACHE) is dict


def _run_checked(snippet: str) -> subprocess.CompletedProcess:
    """Run *snippet* in a fresh interpreter with the harness enabled."""
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(snippet)],
        cwd=REPO,
        env={
            **os.environ,
            "PYTHONPATH": "src",
            "REPRO_CHECK_LOCKS": "1",
        },
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_unguarded_access_raises_under_harness():
    proc = _run_checked(
        """
        from repro.geometry import mesh
        mesh._SHARED_GEOMETRY_CACHE.get(("probe",))
        """
    )
    assert proc.returncode != 0
    assert "LockDisciplineError" in proc.stderr
    assert "_SHARED_GEOMETRY_CACHE" in proc.stderr


def test_guarded_access_passes_under_harness():
    proc = _run_checked(
        """
        from repro.geometry import mesh
        with mesh._GEOMETRY_LOCK:
            assert mesh._SHARED_GEOMETRY_CACHE.get(("probe",)) is None
        # The public accessors take the lock themselves.
        assert mesh.shared_geometry_matrices(("probe",)) is None
        """
    )
    assert proc.returncode == 0, proc.stderr


def test_geometry_stress_under_harness():
    """Many threads hammer the shared geometry memo (hits, misses, lazy
    rows, stats) with the harness asserting lock ownership throughout;
    results must also stay bitwise identical across threads."""
    proc = _run_checked(
        """
        import threading

        import numpy as np

        from repro.geometry.mesh import Mesh, dense_geometry_limit

        errors = []

        def worker(out):
            # dense_geometry_limit is process-wide and test-scoped, so
            # the main thread holds it around the whole threaded phase;
            # workers only hammer the shared memo itself.
            try:
                dense = Mesh(6, 6).distance_matrix
                lazy = Mesh(8, 8).distance_matrix
                rows = np.stack([lazy.row(r) for r in range(64)])
                out.append((dense, rows))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        results = []
        threads = [
            threading.Thread(target=worker, args=(results,))
            for _ in range(8)
        ]
        with dense_geometry_limit(36):  # 6x6 dense, 8x8 lazy
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors, errors
        assert len(results) == 8
        ref_dense, ref_rows = results[0]
        for dense, rows in results[1:]:
            assert np.array_equal(dense, ref_dense)
            assert np.array_equal(rows, ref_rows)
        # All workers share one frozen dense matrix from the memo.
        assert all(d is ref_dense for d, _ in results[1:])
        print("stress ok")
        """
    )
    assert proc.returncode == 0, proc.stderr
    assert "stress ok" in proc.stdout


def test_shm_attachments_guarded_under_harness():
    proc = _run_checked(
        """
        from repro.runner import shm
        from repro.util.guards import LockDisciplineError
        try:
            shm._ATTACHMENTS.get("probe")
        except LockDisciplineError:
            raise SystemExit(0)
        raise SystemExit(3)
        """
    )
    # Either exit proves the mapping is a LockCheckedDict; 3 means the
    # unguarded access slipped through.
    assert proc.returncode == 0, (proc.returncode, proc.stderr)


# -- guards unit behavior -----------------------------------------------------


def test_lock_checked_dict_asserts_on_every_surface(monkeypatch):
    import threading

    lock = threading.Lock()
    checked = guards.LockCheckedDict(lock, "probe")
    monkeypatch.setattr(guards, "CHECK_LOCKS", True)
    with lock:
        checked["k"] = 1
        assert checked["k"] == 1
        assert "k" in checked
        assert list(checked.items()) == [("k", 1)]
    for op in (
        lambda: checked["k"],
        lambda: checked.get("k"),
        lambda: checked.setdefault("j", 2),
        lambda: checked.pop("k"),
        lambda: list(checked.keys()),
        lambda: len(checked),
    ):
        with pytest.raises(guards.LockDisciplineError):
            op()


def test_assert_lock_held_only_active_under_flag(monkeypatch):
    import threading

    lock = threading.RLock()
    monkeypatch.setattr(guards, "CHECK_LOCKS", False)
    guards.assert_lock_held(lock, "idle")  # no-op when disabled
    monkeypatch.setattr(guards, "CHECK_LOCKS", True)
    with pytest.raises(guards.LockDisciplineError):
        guards.assert_lock_held(lock, "unheld")
    with lock:
        guards.assert_lock_held(lock, "held")
