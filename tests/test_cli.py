"""The `python -m repro` command-line interface: experiments run, bad
invocations fail with exit code 2 and a usable stderr message."""

import pytest

from repro.__main__ import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "fig11", "fig13", "fig17", "table3", "gmon",
                 "phase_study", "scalability"):
        assert name in out


def test_invalid_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["not-an-experiment"])


# ---------------------------------------------------------------------------
# Failure paths: argparse must exit 2 and say what was wrong on stderr.
# ---------------------------------------------------------------------------


def _expect_usage_error(capsys, argv: list[str], *needles: str) -> None:
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    for needle in needles:
        assert needle in err, f"stderr missing {needle!r}: {err}"


def test_unknown_experiment_reports_choices(capsys):
    _expect_usage_error(capsys, ["frobnicate"], "invalid choice",
                        "frobnicate")


def test_jobs_zero_rejected(capsys):
    _expect_usage_error(capsys, ["fig14", "--jobs", "0"],
                        "--jobs must be >= 1")


def test_jobs_negative_rejected(capsys):
    _expect_usage_error(capsys, ["fig14", "--jobs", "-3"],
                        "--jobs must be >= 1")


def test_jobs_non_integer_rejected(capsys):
    _expect_usage_error(capsys, ["fig14", "--jobs", "many"],
                        "invalid int value")


def test_cache_dir_colliding_with_file_rejected(capsys, tmp_path):
    collision = tmp_path / "not-a-dir"
    collision.write_text("occupied")
    _expect_usage_error(
        capsys, ["fig14", "--cache-dir", str(collision)],
        "--cache-dir", "not a directory",
    )


def test_cache_dir_file_collision_ignored_with_no_cache(capsys, tmp_path):
    # --no-cache never touches the path, so the collision is irrelevant.
    collision = tmp_path / "not-a-dir"
    collision.write_text("occupied")
    assert main(["list", "--cache-dir", str(collision), "--no-cache"]) == 0


def test_tiles_non_square_rejected(capsys):
    _expect_usage_error(capsys, ["scalability", "--tiles", "16,10"],
                        "perfect square", "10")


def test_tiles_non_integer_rejected(capsys):
    _expect_usage_error(capsys, ["scalability", "--tiles", "16,abc"],
                        "comma-separated integers")


def test_tiles_empty_rejected(capsys):
    _expect_usage_error(capsys, ["scalability", "--tiles", ","],
                        "at least one tile count")


# ---------------------------------------------------------------------------
# New-experiment smokes
# ---------------------------------------------------------------------------


def test_scalability_command_small(capsys, tmp_path):
    assert main(["scalability", "--tiles", "16", "--mixes", "1",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "Scalability" in out and "IPC/tile" in out


@pytest.mark.slow
def test_phase_study_command_small(capsys, tmp_path):
    assert main(["phase_study", "--mixes", "1", "--jobs", "2",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    captured = capsys.readouterr()
    assert "Phase study" in captured.out
    assert "adaptive/stale IPC" in captured.out
    assert "epoch IPC" in captured.out
    assert "jobs done" in captured.err


@pytest.mark.slow
def test_table3_command(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "64/64" in out


@pytest.mark.slow
def test_fig14_command_small(capsys, tmp_path):
    assert main(["fig14", "--mixes", "2",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "CDCS" in out and "Jigsaw+R" in out


@pytest.mark.slow
def test_fig14_command_parallel_and_cached(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    assert main(["fig14", "--mixes", "2", "--jobs", "2",
                 "--cache-dir", cache]) == 0
    cold = capsys.readouterr()
    assert "0 cache hits" in cold.err
    # Warm rerun: identical table, zero jobs executed.
    assert main(["fig14", "--mixes", "2", "--jobs", "2",
                 "--cache-dir", cache]) == 0
    warm = capsys.readouterr()
    assert warm.out == cold.out
    assert "2 cache hits" in warm.err


@pytest.mark.slow
def test_no_cache_flag_skips_store(capsys, tmp_path):
    cache = tmp_path / "cache"
    assert main(["fig14", "--mixes", "2", "--no-cache",
                 "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    assert not cache.exists()


def test_progress_line_reports_jobs(capsys, tmp_path):
    assert main(["gmon", "--cache-dir", str(tmp_path / "cache")]) == 0
    err = capsys.readouterr().err
    assert "3/3 jobs done" in err


@pytest.mark.slow
def test_gmon_command(capsys):
    assert main(["gmon"]) == 0
    out = capsys.readouterr().out
    assert "GMON-64" in out and "UMON-256" in out
