"""The `python -m repro` command-line interface: experiments run, bad
invocations fail with exit code 2 and a usable stderr message."""

import pytest

from repro.__main__ import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "fig11", "fig13", "fig17", "table3", "gmon",
                 "phase_study", "scalability"):
        assert name in out


def test_invalid_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["not-an-experiment"])


# ---------------------------------------------------------------------------
# Failure paths: argparse must exit 2 and say what was wrong on stderr.
# ---------------------------------------------------------------------------


def _expect_usage_error(capsys, argv: list[str], *needles: str) -> None:
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    for needle in needles:
        assert needle in err, f"stderr missing {needle!r}: {err}"


def test_unknown_experiment_reports_choices(capsys):
    _expect_usage_error(capsys, ["frobnicate"], "invalid choice",
                        "frobnicate")


def test_jobs_zero_rejected(capsys):
    _expect_usage_error(capsys, ["fig14", "--jobs", "0"],
                        "--jobs must be >= 1")


def test_jobs_negative_rejected(capsys):
    _expect_usage_error(capsys, ["fig14", "--jobs", "-3"],
                        "--jobs must be >= 1")


def test_jobs_non_integer_rejected(capsys):
    _expect_usage_error(capsys, ["fig14", "--jobs", "many"],
                        "invalid int value")


def test_cache_dir_colliding_with_file_rejected(capsys, tmp_path):
    collision = tmp_path / "not-a-dir"
    collision.write_text("occupied")
    _expect_usage_error(
        capsys, ["fig14", "--cache-dir", str(collision)],
        "--cache-dir", "not a directory",
    )


def test_cache_dir_file_collision_ignored_with_no_cache(capsys, tmp_path):
    # --no-cache never touches the path, so the collision is irrelevant.
    collision = tmp_path / "not-a-dir"
    collision.write_text("occupied")
    assert main(["list", "--cache-dir", str(collision), "--no-cache"]) == 0


def test_tiles_non_square_rejected(capsys):
    _expect_usage_error(capsys, ["scalability", "--tiles", "16,10"],
                        "perfect square", "10")


def test_tiles_non_integer_rejected(capsys):
    _expect_usage_error(capsys, ["scalability", "--tiles", "16,abc"],
                        "comma-separated integers")


def test_tiles_empty_rejected(capsys):
    _expect_usage_error(capsys, ["scalability", "--tiles", ","],
                        "at least one tile count")


# ---------------------------------------------------------------------------
# New-experiment smokes
# ---------------------------------------------------------------------------


def test_scalability_command_small(capsys, tmp_path):
    assert main(["scalability", "--tiles", "16", "--mixes", "1",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "Scalability" in out and "IPC/tile" in out


@pytest.mark.slow
def test_phase_study_command_small(capsys, tmp_path):
    assert main(["phase_study", "--mixes", "1", "--jobs", "2",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    captured = capsys.readouterr()
    assert "Phase study" in captured.out
    assert "adaptive/stale IPC" in captured.out
    assert "epoch IPC" in captured.out
    assert "jobs done" in captured.err


@pytest.mark.slow
def test_table3_command(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "64/64" in out


@pytest.mark.slow
def test_fig14_command_small(capsys, tmp_path):
    assert main(["fig14", "--mixes", "2",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "CDCS" in out and "Jigsaw+R" in out


@pytest.mark.slow
def test_fig14_command_parallel_and_cached(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    assert main(["fig14", "--mixes", "2", "--jobs", "2",
                 "--cache-dir", cache]) == 0
    cold = capsys.readouterr()
    assert "0 cache hits" in cold.err
    # Warm rerun: identical table, zero jobs executed.
    assert main(["fig14", "--mixes", "2", "--jobs", "2",
                 "--cache-dir", cache]) == 0
    warm = capsys.readouterr()
    assert warm.out == cold.out
    assert "2 cache hits" in warm.err


@pytest.mark.slow
def test_no_cache_flag_skips_store(capsys, tmp_path):
    cache = tmp_path / "cache"
    assert main(["fig14", "--mixes", "2", "--no-cache",
                 "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    assert not cache.exists()


def test_progress_line_reports_jobs(capsys, tmp_path):
    assert main(["gmon", "--cache-dir", str(tmp_path / "cache")]) == 0
    err = capsys.readouterr().err
    assert "3/3 jobs done" in err


@pytest.mark.slow
def test_gmon_command(capsys):
    assert main(["gmon"]) == 0
    out = capsys.readouterr().out
    assert "GMON-64" in out and "UMON-256" in out


# ---------------------------------------------------------------------------
# Registry-driven surface: run/list and structured export
# ---------------------------------------------------------------------------


def test_list_json_renders_registry(capsys):
    import json

    from repro.experiments.spec import spec_names

    assert main(["list", "--json"]) == 0
    entries = json.loads(capsys.readouterr().out)
    assert [e["name"] for e in entries] == spec_names()
    by_name = {e["name"]: e for e in entries}
    assert by_name["fig11"]["figure"] == "Fig 11"
    mixes = [p for p in by_name["fig11"]["params"] if p["name"] == "mixes"]
    assert mixes and mixes[0]["default"] == 10


def test_run_form_matches_subcommand_form(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    assert main(["run", "gmon", "--cache-dir", cache]) == 0
    via_run = capsys.readouterr().out
    assert main(["gmon", "--cache-dir", cache]) == 0
    via_subcommand = capsys.readouterr().out
    assert via_run == via_subcommand


def test_run_with_param_overrides(capsys, tmp_path):
    assert main(["run", "gmon", "--param", "app=milc",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    assert "milc" in capsys.readouterr().out


def test_run_format_json(capsys, tmp_path):
    import json

    assert main(["run", "gmon", "--format", "json",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["experiment"] == "gmon"
    assert record["params"]["app"] == "astar"
    [table] = record["tables"]
    assert table["headers"][0] == "monitor"
    assert len(table["rows"]) == 3


def test_run_format_csv_to_file(capsys, tmp_path):
    out = tmp_path / "gmon.csv"
    assert main(["run", "gmon", "--format", "csv", "--out", str(out),
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    captured = capsys.readouterr()
    assert captured.out == ""  # routed to the file, not stdout
    assert str(out) in captured.err
    lines = out.read_text().splitlines()
    assert lines[1] == "monitor,MAE,small-size MAE"
    assert sum(1 for ln in lines if ln.startswith(("GMON", "UMON"))) == 3


def test_run_unknown_param_rejected(capsys, tmp_path):
    _expect_usage_error(
        capsys, ["run", "gmon", "--param", "bogus=1"],
        "unknown parameter", "bogus",
    )


def test_run_malformed_param_rejected(capsys):
    _expect_usage_error(capsys, ["run", "gmon", "--param", "appmilc"],
                        "expects K=V")


def test_run_bad_param_value_rejected(capsys):
    _expect_usage_error(capsys, ["run", "fig14", "--param", "mixes=lots"],
                        "mixes", "lots")


def test_run_bad_tiles_param_rejected(capsys):
    _expect_usage_error(
        capsys, ["run", "scalability", "--param", "tiles=16,10"],
        "perfect square", "10",
    )


def test_run_unknown_name_rejected(capsys):
    _expect_usage_error(capsys, ["run", "fig99"], "invalid choice", "fig99")


def test_seed_flag_reaches_the_spec(capsys, tmp_path):
    import json

    assert main(["run", "gmon", "--seed", "11", "--format", "json",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    record = json.loads(capsys.readouterr().out)
    assert record["params"]["seed"] == 11


@pytest.mark.slow
def test_every_registered_spec_runs_with_json_export(capsys, tmp_path):
    """Acceptance: `run <name> --format json` succeeds for every name.

    Parameters are shrunk to the smallest meaningful instance per spec so
    the whole registry stays test-suite-sized.
    """
    import json

    from repro.experiments.spec import spec_names

    small = {
        "fig11": ["--param", "mixes=1"],
        "fig12": ["--param", "mixes=1"],
        "fig13": ["--param", "mixes=1"],
        "fig14": ["--param", "mixes=1"],
        "fig15": ["--param", "mixes=1"],
        "fig16": ["--param", "mixes=1"],
        "phase_study": ["--param", "mixes=1"],
        "placers": ["--param", "anneal_rounds=50"],
        "scalability": ["--param", "tiles=16", "--param", "mixes=1"],
        "solver_study": ["--param", "tiles=16", "--param", "mixes=1",
                         "--param", "epochs=2"],
        "table3": ["--param", "repeats=1"],
    }
    for name in spec_names():
        argv = ["run", name, "--format", "json",
                "--cache-dir", str(tmp_path / "cache")]
        argv += small.get(name, [])
        assert main(argv) == 0, name
        record = json.loads(capsys.readouterr().out)
        assert record["experiment"] == name
        assert record["tables"] or record["series"], name


def test_run_unknown_app_profile_is_a_usage_error(capsys):
    # Bad parameter *values* that only surface at job-build time (the
    # profile lookup) must still exit 2, not dump a traceback.
    _expect_usage_error(capsys, ["run", "gmon", "--param", "app=nosuch"],
                        "nosuch")


def test_list_format_json_aliases_json_flag(capsys):
    import json

    assert main(["list", "--format", "json"]) == 0
    as_format = capsys.readouterr().out
    assert main(["list", "--json"]) == 0
    as_flag = capsys.readouterr().out
    assert json.loads(as_format) == json.loads(as_flag)


def test_list_format_csv_rejected(capsys):
    _expect_usage_error(capsys, ["list", "--format", "csv"],
                        "table or json")


def test_list_out_writes_file(capsys, tmp_path):
    out = tmp_path / "registry.json"
    assert main(["list", "--json", "--out", str(out)]) == 0
    import json

    entries = json.loads(out.read_text())
    assert any(e["name"] == "fig11" for e in entries)
