"""The `python -m repro` command-line interface."""

import pytest

from repro.__main__ import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "fig11", "fig13", "fig17", "table3", "gmon"):
        assert name in out


def test_invalid_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["not-an-experiment"])


@pytest.mark.slow
def test_table3_command(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "64/64" in out


@pytest.mark.slow
def test_fig14_command_small(capsys):
    assert main(["fig14", "--mixes", "2"]) == 0
    out = capsys.readouterr().out
    assert "CDCS" in out and "Jigsaw+R" in out


@pytest.mark.slow
def test_gmon_command(capsys):
    assert main(["gmon"]) == 0
    out = capsys.readouterr().out
    assert "GMON-64" in out and "UMON-256" in out
