"""The `python -m repro` command-line interface."""

import pytest

from repro.__main__ import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("table1", "fig11", "fig13", "fig17", "table3", "gmon"):
        assert name in out


def test_invalid_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["not-an-experiment"])


@pytest.mark.slow
def test_table3_command(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "64/64" in out


@pytest.mark.slow
def test_fig14_command_small(capsys, tmp_path):
    assert main(["fig14", "--mixes", "2",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "CDCS" in out and "Jigsaw+R" in out


@pytest.mark.slow
def test_fig14_command_parallel_and_cached(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    assert main(["fig14", "--mixes", "2", "--jobs", "2",
                 "--cache-dir", cache]) == 0
    cold = capsys.readouterr()
    assert "0 cache hits" in cold.err
    # Warm rerun: identical table, zero jobs executed.
    assert main(["fig14", "--mixes", "2", "--jobs", "2",
                 "--cache-dir", cache]) == 0
    warm = capsys.readouterr()
    assert warm.out == cold.out
    assert "2 cache hits" in warm.err


@pytest.mark.slow
def test_no_cache_flag_skips_store(capsys, tmp_path):
    cache = tmp_path / "cache"
    assert main(["fig14", "--mixes", "2", "--no-cache",
                 "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    assert not cache.exists()


def test_progress_line_reports_jobs(capsys, tmp_path):
    assert main(["gmon", "--cache-dir", str(tmp_path / "cache")]) == 0
    err = capsys.readouterr().err
    assert "3/3 jobs done" in err


@pytest.mark.slow
def test_gmon_command(capsys):
    assert main(["gmon"]) == 0
    out = capsys.readouterr().out
    assert "GMON-64" in out and "UMON-256" in out
