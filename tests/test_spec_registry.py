"""The declarative experiment layer: spec registry, typed results,
structured export, and the `repro.api.Session` facade."""

import importlib
import json
import pkgutil

import pytest

import repro.experiments
from repro.__main__ import build_parser
from repro.api import Session
from repro.config import default_config
from repro.experiments import run_sweep
from repro.experiments.results import (
    ResultSeries,
    ResultTable,
    RunRecord,
    render,
    render_csv,
    render_text,
)
from repro.experiments.spec import all_specs, get_spec, spec_names

#: Modules of repro.experiments that are infrastructure, not experiments.
NON_EXPERIMENT_MODULES = {"report", "results", "spec"}


# ---------------------------------------------------------------------------
# Registry completeness
# ---------------------------------------------------------------------------


def test_every_experiment_module_registers_a_spec():
    registered_modules = {
        spec.build_jobs.__module__ for spec in all_specs()
    }
    for info in pkgutil.iter_modules(repro.experiments.__path__):
        if info.name in NON_EXPERIMENT_MODULES:
            continue
        module = f"repro.experiments.{info.name}"
        importlib.import_module(module)
        assert module in registered_modules, (
            f"{module} registers no ExperimentSpec"
        )


def test_registry_covers_the_paper_evaluation():
    assert set(spec_names()) >= {
        "table1", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
        "fig17", "fig18", "table3", "gmon", "placers", "phase_study",
        "scalability",
    }


def test_every_spec_has_a_seed_param_and_unique_names():
    names = [spec.name for spec in all_specs()]
    assert names == sorted(set(names))
    for spec in all_specs():
        assert spec.param("seed").kind == "int", spec.name
        assert spec.summary and spec.figure, spec.name


def test_spec_params_round_trip_through_the_cli_parser():
    """Parsing just the subcommand must reproduce each spec's defaults."""
    parser = build_parser()
    for spec in all_specs():
        args = parser.parse_args([spec.name])
        for param in spec.params:
            if param.name == "seed":
                assert args.seed is None  # falls back to the spec default
            else:
                assert getattr(args, param.name) == param.default, (
                    f"{spec.name} --{param.name}"
                )
        # The generic form accepts every spec name too.
        run_args = parser.parse_args(["run", spec.name])
        assert run_args.name == spec.name


def test_resolve_parses_strings_and_rejects_unknown_names():
    spec = get_spec("fig14")
    assert spec.resolve({"mixes": "3"})["mixes"] == 3
    assert spec.resolve()["mixes"] == 10
    with pytest.raises(ValueError, match="unknown parameter"):
        spec.resolve({"bogus": 1})
    tiles = get_spec("scalability").resolve({"tiles": "16,64"})["tiles"]
    assert tiles == (16, 64)


# ---------------------------------------------------------------------------
# Typed results and structured export
# ---------------------------------------------------------------------------


def _sample_record() -> RunRecord:
    return RunRecord(
        experiment="fig99",
        params={"mixes": 2, "seed": 7, "tiles": (16, 64)},
        tables=(
            ResultTable.make(
                "a table", ("name", "value"),
                [("CDCS", 1.25), ("R-NUCA", 1.0)],
            ),
        ),
        series=(
            ResultSeries.make("a series", [(0.0, 1.0), (1.0, 2.5)],
                              fmt="{:.2f}"),
        ),
        result=object(),  # excluded from equality and serialization
    )


def test_run_record_round_trips_through_to_dict():
    record = _sample_record()
    assert RunRecord.from_dict(record.to_dict()) == record
    # ... and through an actual JSON wire format.
    wire = json.loads(json.dumps(record.to_dict()))
    assert RunRecord.from_dict(wire) == record
    assert "result" not in record.to_dict()


def test_run_record_params_are_json_safe():
    record = _sample_record()
    assert record.params["tiles"] == [16, 64]  # tuples normalized
    json.dumps(record.to_dict())  # must not raise


def test_render_formats():
    record = _sample_record()
    text = render_text(record)
    assert "a table" in text and "CDCS" in text and "a series" in text
    csv_text = render_csv(record)
    lines = csv_text.splitlines()
    assert "# a table" in lines[0]
    assert lines[1] == "name,value"
    assert lines[2] == "CDCS,1.25"
    assert "# a series" in csv_text and "0.0,1.0" in csv_text
    parsed = json.loads(render(record, "json"))
    assert parsed["experiment"] == "fig99"
    with pytest.raises(ValueError, match="unknown format"):
        render(record, "yaml")


# ---------------------------------------------------------------------------
# Session facade
# ---------------------------------------------------------------------------


def test_session_matches_legacy_run_sweep_bitwise():
    """The acceptance pin: Session on a small fig11 point reproduces the
    legacy run_sweep numbers exactly (same jobs, same reducer)."""
    record = Session().run("fig11", mixes=1, seed=7)
    legacy = run_sweep(default_config(), n_apps=64, n_mixes=1, seed=7)
    assert record.result.speedups == legacy.speedups
    assert record.result.onchip_latency == legacy.onchip_latency
    assert record.result.energy == legacy.energy
    # The presented gmean cells come from the same floats.
    by_scheme = {row[0]: row[1] for row in record.tables[0].rows}
    for scheme in record.result.schemes():
        assert by_scheme[scheme] == legacy.gmean_speedup(scheme)


def test_session_run_batch_shares_one_runner(tmp_path):
    session = Session(cache_dir=tmp_path / "cache")
    first, second = session.run_batch([
        ("gmon", {}),
        ("gmon", {"app": "milc"}),
    ])
    assert first.experiment == "gmon" and second.experiment == "gmon"
    assert first.params["app"] == "astar"
    assert second.params["app"] == "milc"
    assert session.stats.submitted == 6  # 3 geometries x 2 requests
    assert session.stats.cached == 0
    # A second session over the same cache executes nothing.
    warm = Session(cache_dir=tmp_path / "cache")
    again = warm.run("gmon")
    assert again == first  # typed equality: same tables, same params
    assert warm.stats.cached == 3 and warm.stats.executed == 0


def test_session_rejects_unknown_experiment_and_param():
    with pytest.raises(KeyError, match="unknown experiment"):
        Session().run("fig99")
    with pytest.raises(ValueError, match="unknown parameter"):
        Session().run("gmon", bogus=1)


def test_resolve_type_checks_programmatic_overrides():
    """Wrong-typed non-string overrides fail in resolve with the
    parameter's name, not deep inside a job builder."""
    with pytest.raises(ValueError, match="mixes"):
        get_spec("fig14").resolve({"mixes": 2.5})
    with pytest.raises(ValueError, match="app"):
        get_spec("gmon").resolve({"app": 3})
    with pytest.raises(ValueError, match="steady_ws"):
        get_spec("fig18").resolve({"steady_ws": "fast"})
    assert get_spec("fig18").resolve({"steady_ws": 2})["steady_ws"] == 2.0
    # tiles accepts a bare int or any int sequence, normalized to a tuple.
    spec = get_spec("scalability")
    assert spec.resolve({"tiles": 16})["tiles"] == (16,)
    assert spec.resolve({"tiles": [16, 64]})["tiles"] == (16, 64)
    with pytest.raises(ValueError, match="perfect square"):
        spec.resolve({"tiles": [10]})
    with pytest.raises(ValueError, match="tiles"):
        spec.resolve({"tiles": 1.5})


def test_docs_check_rejects_flag_on_wrong_experiment():
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).parent.parent / "tools" / "docs_check.py"
    module_spec = importlib.util.spec_from_file_location("docs_check", path)
    docs_check = importlib.util.module_from_spec(module_spec)
    module_spec.loader.exec_module(docs_check)
    problems: list[str] = []
    docs_check.check_cli_commands(
        "```\npython -m repro table1 --mixes 2\n```", "t.md", problems
    )
    assert problems and "--mixes" in problems[0]
    problems.clear()
    docs_check.check_cli_commands(
        "python -m repro run fig11 --param mixes=2 --jobs 4",
        "t.md", problems,
    )
    assert problems == []
