"""Shared pytest configuration: the `slow` marker for heavier end-to-end
tests (still run by default; deselect with `-m "not slow"`)."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: heavier end-to-end tests (full case study, traces)"
    )
