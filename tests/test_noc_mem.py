"""NoC latency/traffic and memory models (repro.noc, repro.mem)."""

import pytest

from repro.config import MemoryConfig, NocConfig
from repro.geometry.mesh import Mesh
from repro.mem.controller import MemoryControllers
from repro.mem.dram import DramModel
from repro.noc.router import NocModel
from repro.noc.traffic import TrafficClass, TrafficCounter


def test_hop_latency_table2():
    noc = NocConfig()
    assert noc.hop_latency == 4  # 3-cycle router + 1-cycle link


def test_flits_for_line_and_control():
    noc = NocConfig()
    assert noc.flits_for_bytes(0) == 1  # header-only request
    assert noc.flits_for_bytes(64) == 5  # 64B line on 128-bit flits + header


def test_noc_model_latency():
    mesh = Mesh(4, 4)
    model = NocModel(mesh)
    assert model.latency(0, 0) == 0
    assert model.latency(0, 5) == 2 * 4
    assert model.round_trip(0, 5) == 16


def test_mean_latency_to_all():
    mesh = Mesh(8, 8)
    model = NocModel(mesh)
    assert model.mean_latency_to_all(0) == pytest.approx(28.0)  # 7 hops x 4


def test_traffic_counter_accumulates_by_class():
    counter = TrafficCounter()
    counter.add_message(TrafficClass.L2_LLC, hops=3, payload_bytes=64)
    counter.add_request_response(TrafficClass.LLC_MEM, hops=2, response_bytes=64)
    breakdown = counter.breakdown()
    assert breakdown["L2-LLC"] == 15  # 5 flits x 3 hops
    assert breakdown["LLC-Mem"] == 2 + 10  # request + response
    assert counter.total() == 27


def test_traffic_counter_merge_and_reset():
    a, b = TrafficCounter(), TrafficCounter()
    a.add_message(TrafficClass.OTHER, 1, 0)
    b.add_message(TrafficClass.OTHER, 2, 0)
    a.merge(b)
    assert a.flit_hops[TrafficClass.OTHER] == 3
    a.reset()
    assert a.total() == 0


def test_dram_zero_load_latency():
    dram = DramModel(MemoryConfig())
    assert dram.access_latency(0.0) == 120


def test_dram_queueing_monotone_in_demand():
    dram = DramModel(MemoryConfig())
    delays = [dram.queueing_delay(d) for d in (0.0, 10.0, 30.0, 50.0, 80.0)]
    assert all(b >= a for a, b in zip(delays, delays[1:]))
    assert delays[0] == 0.0


def test_dram_queueing_finite_at_overload():
    dram = DramModel(MemoryConfig())
    over = dram.total_bytes_per_cycle() * 10
    assert dram.queueing_delay(over) < 1e4


def test_dram_service_time():
    dram = DramModel(MemoryConfig())
    assert dram.service_cycles_per_line() == pytest.approx(10.0)  # 64B / 6.4


def test_dram_rejects_negative_demand():
    dram = DramModel(MemoryConfig())
    with pytest.raises(ValueError):
        dram.queueing_delay(-1.0)
    with pytest.raises(ValueError):
        dram.utilization(-1.0)


def test_controllers_interleave_pages_evenly():
    mesh = Mesh(8, 8)
    mcs = MemoryControllers(mesh)
    counts = {}
    for line in range(0, 64_000, 64):  # distinct pages
        tile = mcs.controller_for(line)
        counts[tile] = counts.get(tile, 0) + 1
    assert len(counts) == 8
    assert max(counts.values()) / min(counts.values()) < 1.5


def test_controllers_same_page_same_controller():
    mesh = Mesh(4, 4)
    mcs = MemoryControllers(mesh)
    assert mcs.controller_for(0) == mcs.controller_for(63)  # same 64-line page


def test_chip_mean_distance_positive():
    mesh = Mesh(8, 8)
    mcs = MemoryControllers(mesh)
    assert 2.0 < mcs.chip_mean_distance() < 8.0
