"""The co-scheduling control plane (repro.service): the equivalence pin
and the unit contracts of its parts.

The load-bearing contract (ISSUE 6 acceptance): placements returned by
the service are **bitwise-identical** to the same telemetry sequence
driven through ``EpochEngine.run_reconfigured`` with a local warm
engine — the service adds availability semantics, never different
answers.  Alongside it: telemetry validation, token-bucket budgets,
engine-pool lifecycle, and reply/stats plumbing.
"""

import asyncio

import numpy as np
import pytest

from repro.nuca.base import build_problem
from repro.sched.engine import ReconfigEngine
from repro.service import (
    BudgetExceededError,
    CoSchedService,
    EnginePool,
    MalformedTelemetryError,
    PlacementRequest,
    ServiceClient,
    ServiceClosedError,
    TokenBucket,
    validate_telemetry,
)
from repro.service.load import SlowStrategy
from repro.service.server import ServiceStats
from repro.sim.engine import EpochEngine
from repro.testing import small_problem
from repro.workloads.mixes import random_phased_mix

EPOCHS = 5
EPOCH_CYCLES = 200e6


def _sim(apps=8, seed=42, mix_id=0):
    from repro.config import small_test_config

    mix = random_phased_mix(apps, seed, mix_id)
    config = small_test_config(4, 4)
    return EpochEngine(mix, build_problem(mix, config))


# -- the bitwise-equivalence pin --------------------------------------------


@pytest.mark.parametrize("strategy", ("full", "incremental", "partitioned"))
def test_service_replies_bitwise_match_run_reconfigured(strategy):
    local = _sim()
    reference = local.run_reconfigured(
        ReconfigEngine(strategy), EPOCH_CYCLES, EPOCHS
    )

    async def serve():
        sim = _sim()
        async with CoSchedService(strategy=strategy) as service:
            replies = await ServiceClient(service, "chip-0").drive(
                sim, EPOCH_CYCLES, EPOCHS
            )
        return replies, sim

    replies, sim = asyncio.run(serve())
    assert len(replies) == len(reference)
    for reply, want in zip(replies, reference):
        assert reply.ok and reply.status == "ok"
        assert reply.strategy == strategy
        assert reply.solution.vc_sizes == want.solution.vc_sizes
        assert reply.solution.vc_allocation == want.solution.vc_allocation
        assert reply.solution.thread_cores == want.solution.thread_cores
        assert reply.step_cycles == want.step_cycles()
        assert reply.modeled_mcycles == want.modeled_cycles() / 1e6
    # Identical placements drive identical simulations.
    assert np.array_equal(
        local.mean_ipc_per_thread(), sim.mean_ipc_per_thread()
    )


def test_service_place_convenience_and_stats():
    problem, _ = small_problem(apps=8)

    async def scenario():
        async with CoSchedService(strategy="full") as service:
            reply = await service.place("solo", problem)
            snap = service.stats.snapshot()
        return reply, snap

    reply, snap = asyncio.run(scenario())
    assert reply.ok and reply.chip_id == "solo"
    assert reply.latency_s > 0
    assert snap["submitted"] == snap["completed"] == 1
    assert snap["degraded"] == snap["timeouts"] == 0
    assert snap["rejected"] == {}
    assert 0 < snap["p50_latency_s"] <= snap["p99_latency_s"]


def test_submit_outside_lifecycle_raises_service_closed():
    problem, _ = small_problem(apps=4)
    service = CoSchedService()
    request = PlacementRequest(chip_id="early", problem=problem)
    with pytest.raises(ServiceClosedError) as err:
        service.submit(request)
    assert err.value.code == "service_closed"

    async def start_stop():
        async with service:
            pass

    asyncio.run(start_stop())
    with pytest.raises(ServiceClosedError):
        service.submit(request)


# -- telemetry validation ----------------------------------------------------


def test_validate_telemetry_accepts_real_problem():
    problem, _ = small_problem(apps=4)
    validate_telemetry(PlacementRequest(chip_id="ok", problem=problem))


@pytest.mark.parametrize("request_builder", (
    lambda p: "not a request at all",
    lambda p: PlacementRequest(chip_id="", problem=p),
    lambda p: PlacementRequest(chip_id=123, problem=p),
    lambda p: PlacementRequest(chip_id="c", problem="garbage"),
    lambda p: PlacementRequest(chip_id="c", problem=p, timeout_s=0.0),
    lambda p: PlacementRequest(chip_id="c", problem=p, timeout_s=-1.0),
), ids=(
    "not-a-request", "empty-chip-id", "non-str-chip-id",
    "non-problem-payload", "zero-timeout", "negative-timeout",
))
def test_validate_telemetry_rejects_malformed(request_builder):
    problem, _ = small_problem(apps=4)
    with pytest.raises(MalformedTelemetryError) as err:
        validate_telemetry(request_builder(problem))
    assert err.value.code == "malformed_telemetry"


def test_validate_telemetry_rejects_doctored_problems():
    import dataclasses

    problem, _ = small_problem(apps=4)
    no_threads = dataclasses.replace(problem, threads=[])
    with pytest.raises(MalformedTelemetryError, match="no threads"):
        validate_telemetry(
            PlacementRequest(chip_id="c", problem=no_threads)
        )

    rogue = dataclasses.replace(
        problem.threads[0],
        vc_accesses={**problem.threads[0].vc_accesses, 9999: 1.0},
    )
    bad_refs = dataclasses.replace(
        problem, threads=[rogue] + problem.threads[1:]
    )
    with pytest.raises(MalformedTelemetryError, match="unknown VCs"):
        validate_telemetry(PlacementRequest(chip_id="c", problem=bad_refs))


# -- token buckets -----------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_token_bucket_starts_full_and_refills_continuously():
    clock = FakeClock()
    bucket = TokenBucket(capacity=2, refill_per_s=1, clock=clock)
    assert bucket.try_take()
    assert bucket.try_take()
    assert not bucket.try_take()  # burst exhausted
    clock.advance(0.5)
    assert not bucket.try_take()  # half a token is not a token
    clock.advance(0.5)
    assert bucket.try_take()
    clock.advance(100.0)
    assert bucket.available == pytest.approx(2.0)  # capped at capacity


def test_token_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(capacity=0, refill_per_s=1)
    with pytest.raises(ValueError):
        TokenBucket(capacity=1, refill_per_s=-1)
    bucket = TokenBucket(capacity=1, refill_per_s=1)
    with pytest.raises(ValueError):
        bucket.try_take(0)


def test_service_budget_rejections_are_typed_and_per_tenant():
    problem, _ = small_problem(apps=8)
    clock = FakeClock()

    async def scenario():
        async with CoSchedService(
            strategy="full", tenant_rate=1.0, tenant_burst=1.0,
            clock=clock,
        ) as service:
            first = await service.place("greedy", problem)
            with pytest.raises(BudgetExceededError) as err:
                await service.place("greedy", problem)
            # Another tenant has its own bucket and is still served.
            other = await service.place("patient", problem)
            # Refill restores the greedy tenant too.
            clock.advance(1.0)
            again = await service.place("greedy", problem)
            return first, err.value, other, again, service.stats

    first, error, other, again, stats = asyncio.run(scenario())
    assert first.ok and other.ok and again.ok
    assert error.code == "budget_exceeded"
    assert stats.rejected == {"budget_exceeded": 1}


# -- engine pool -------------------------------------------------------------


def test_engine_pool_creates_one_warm_engine_per_chip():
    async def scenario():
        pool = EnginePool(strategy="incremental")
        a = pool.slot("a")
        b = pool.slot("b")
        assert pool.slot("a") is a
        assert a.engine is not b.engine
        assert a.last_good() is None
        return pool

    pool = asyncio.run(scenario())
    assert len(pool) == 2 and "a" in pool and "b" in pool


def test_engine_pool_evicts_least_recently_used():
    async def scenario():
        pool = EnginePool(strategy="full", max_chips=2)
        pool.slot("a")
        pool.slot("b")
        pool.slot("a")  # refresh a: b is now the LRU
        pool.slot("c")
        assert pool.chips() == ["a", "c"]
        # A busy (locked) slot is skipped; the next idle one goes.
        slot_a = pool.slot("a")
        async with slot_a.lock:
            pool.slot("d")
            assert "a" in pool and "c" not in pool

    asyncio.run(scenario())


def test_engine_pool_shares_injected_strategy_instance():
    shared = SlowStrategy("full", delay_s=0.0)
    pool = EnginePool(strategy=shared)
    assert pool.slot("x").engine.strategy is shared
    assert pool.slot("y").engine.strategy is shared


def test_engine_pool_rejects_bad_max_chips():
    with pytest.raises(ValueError):
        EnginePool(max_chips=0)


# -- stats -------------------------------------------------------------------


def test_stats_latency_percentiles():
    stats = ServiceStats()
    stats.latencies = [0.01 * i for i in range(1, 101)]  # 0.01..1.00
    assert stats.latency_percentile(0.50) == pytest.approx(0.50)
    assert stats.latency_percentile(0.99) == pytest.approx(0.99)
    assert stats.latency_percentile(1.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        stats.latency_percentile(0.0)
    assert ServiceStats().latency_percentile(0.5) == 0.0
