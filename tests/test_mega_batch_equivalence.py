"""Mega-batch kernels are bitwise the per-mix path, slice for slice.

The contract (see :mod:`repro.runner.mega`): stacking many same-chip
mixes on one leading batch axis must change *nothing* about any
individual mix's results — every payload compares ``==`` against the
classic one-job-at-a-time runner, for single- and multi-threaded sweeps,
regardless of batch membership or submission order.  These tests pin
that contract the same way the PR 2 kernel-equivalence suite pins
vectorized-vs-scalar.
"""

import random

import pytest

from repro.config import default_config
from repro.experiments.sweeps import sweep_jobs
from repro.kernels import per_mix_reference, use_mega_batch
from repro.runner import MegaBatchRunner, ProcessPoolRunner


def _reference(jobs):
    """Per-mix payloads through the classic runner (mega path disabled)."""
    with per_mix_reference():
        return ProcessPoolRunner(jobs=1).map(jobs)


def _mega(jobs, workers=1):
    runner = MegaBatchRunner(jobs=workers)
    try:
        return runner.map(jobs)
    finally:
        runner.close()


def test_mega_batch_enabled_by_default():
    assert use_mega_batch()


@pytest.mark.parametrize(
    "n_apps,n_mixes,multithreaded",
    [
        pytest.param(64, 2, False, id="fig11-shape-64app-st"),
        pytest.param(8, 4, True, id="fig15-shape-8app-mt"),
    ],
)
def test_mega_batch_slices_bitwise_equal_per_mix(n_apps, n_mixes,
                                                 multithreaded):
    jobs = sweep_jobs(default_config(), n_apps=n_apps, n_mixes=n_mixes,
                      seed=7, multithreaded=multithreaded)
    ref = _reference(jobs)
    got = _mega(jobs)
    assert got == ref


def test_mega_batch_membership_and_order_invariant():
    """A mix's payload does not depend on which batch it rides in.

    The full map, a shuffled map, and a subset map must all produce the
    identical payload for any given mix — otherwise batch composition
    would leak into results and caching by per-job digest would be
    unsound.
    """
    jobs = sweep_jobs(default_config(), n_apps=4, n_mixes=6, seed=11)
    full = dict(zip([j.digest() for j in jobs], _mega(jobs)))

    shuffled = list(jobs)
    random.Random(3).shuffle(shuffled)
    for job, payload in zip(shuffled, _mega(shuffled)):
        assert payload == full[job.digest()]

    subset = jobs[1::2]
    for job, payload in zip(subset, _mega(subset)):
        assert payload == full[job.digest()]


def test_mega_batch_worker_pool_matches_in_process():
    """jobs=2 exercises the persistent pool + shared-memory data plane;
    payloads still compare ``==`` against the in-process reference."""
    jobs = sweep_jobs(default_config(), n_apps=4, n_mixes=5, seed=13)
    ref = _reference(jobs)
    assert _mega(jobs, workers=2) == ref


def test_mixed_registered_and_plain_jobs():
    """Unregistered jobs fall through to the base runner untouched."""
    from repro.runner.job import Job

    def plain(x):
        return x * 3

    jobs = sweep_jobs(default_config(), n_apps=4, n_mixes=2, seed=5)
    mixed = [jobs[0], Job(fn=plain, kwargs=dict(x=14)), jobs[1]]
    ref = _reference(jobs)
    got = _mega(mixed)
    assert got[0] == ref[0]
    assert got[1] == 42
    assert got[2] == ref[1]
