"""Hash family properties (repro.util.hashing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.hashing import bucket_hash, mix64, sample_fraction, tag_hash16


def test_mix64_deterministic():
    assert mix64(0xDEADBEEF, 3) == mix64(0xDEADBEEF, 3)


def test_mix64_seed_family_differs():
    values = {mix64(42, seed) for seed in range(8)}
    assert len(values) == 8


@given(st.integers(min_value=0, max_value=2**60))
def test_mix64_in_64_bit_range(value):
    assert 0 <= mix64(value) < 2**64


def test_bucket_hash_range_and_determinism():
    for addr in range(1000):
        b = bucket_hash(addr, 64)
        assert 0 <= b < 64
        assert b == bucket_hash(addr, 64)


def test_bucket_hash_rejects_bad_bucket_count():
    with pytest.raises(ValueError):
        bucket_hash(1, 0)


def test_bucket_hash_spreads_uniformly():
    counts = np.zeros(64)
    n = 64_000
    for addr in range(n):
        counts[bucket_hash(addr, 64)] += 1
    # Each bucket should be within 25% of the expected 1000.
    assert counts.min() > 750
    assert counts.max() < 1250


def test_tag_hash16_is_16_bits():
    assert all(0 <= tag_hash16(a) < 65536 for a in range(500))


def test_sample_fraction_extremes():
    assert sample_fraction(123, 1.0)
    assert not sample_fraction(123, 0.0)


def test_sample_fraction_rate_close_to_target():
    hits = sum(sample_fraction(a, 1 / 64, seed=9) for a in range(64_000))
    assert hits == pytest.approx(1000, rel=0.2)


@given(st.integers(min_value=0, max_value=2**40), st.floats(0.0, 1.0))
@settings(max_examples=200)
def test_sample_fraction_deterministic(addr, fraction):
    assert sample_fraction(addr, fraction) == sample_fraction(addr, fraction)
