"""Alternative placers: LP, annealing, graph partitioning (Sec VI-C)."""

import pytest

from repro.config import small_test_config
from repro.nuca import Cdcs, build_problem
from repro.placers import (
    anneal_thread_placement,
    graph_partition_placement,
    lp_data_placement,
)
from repro.sched.cost_model import on_chip_latency
from repro.sched.problem import PlacementSolution
from repro.workloads.mixes import make_mix

MIX = ["omnet", "milc", "gcc", "astar", "bzip2", "mcf"]


@pytest.fixture(scope="module")
def setup():
    config = small_test_config(4, 4)
    problem = build_problem(make_mix(MIX), config)
    cdcs = Cdcs(seed=1).run(problem)
    return config, problem, cdcs.solution


def test_lp_placement_feasible(setup):
    _, problem, solution = setup
    alloc = lp_data_placement(
        problem, solution.vc_sizes, solution.thread_cores
    )
    usage = {}
    for vc_id, per_bank in alloc.items():
        placed = sum(per_bank.values())
        assert placed == pytest.approx(solution.vc_sizes[vc_id], rel=0.01)
        for bank, amount in per_bank.items():
            usage[bank] = usage.get(bank, 0.0) + amount
    assert max(usage.values()) <= problem.bank_bytes * 1.001


def test_lp_is_at_least_as_good_as_cdcs(setup):
    """LP solves Eq 2 exactly for fixed threads/sizes, so it lower-bounds
    CDCS's heuristic placement (the paper: ILP gains only ~0.5%)."""
    _, problem, solution = setup
    alloc = lp_data_placement(
        problem, solution.vc_sizes, solution.thread_cores
    )
    lp_solution = PlacementSolution(
        vc_sizes={v: sum(p.values()) for v, p in alloc.items()},
        vc_allocation=alloc,
        thread_cores=dict(solution.thread_cores),
    )
    assert on_chip_latency(problem, lp_solution) <= on_chip_latency(
        problem, solution
    ) * 1.001


def test_lp_rejects_oversubscription(setup):
    _, problem, solution = setup
    huge = {vc: problem.total_bytes for vc in solution.vc_sizes}
    with pytest.raises(RuntimeError):
        lp_data_placement(problem, huge, solution.thread_cores)


def test_annealing_never_worsens(setup):
    _, problem, solution = setup
    result = anneal_thread_placement(
        problem, solution.vc_allocation, solution.thread_cores,
        rounds=800, seed=2,
    )
    assert result.final_cost <= result.initial_cost + 1e-6
    cores = list(result.thread_cores.values())
    assert len(set(cores)) == len(cores)  # still a valid assignment


def test_annealing_recovers_from_bad_start(setup):
    """Started from a deliberately bad placement, annealing must find most
    of the improvement CDCS's constructive placement found."""
    _, problem, solution = setup
    # Reverse the thread order: big-VC threads end up far from their data.
    threads = sorted(solution.thread_cores)
    cores_sorted = [solution.thread_cores[t] for t in threads]
    bad = dict(zip(threads, reversed(cores_sorted)))
    result = anneal_thread_placement(
        problem, solution.vc_allocation, bad, rounds=4000, seed=3
    )
    assert result.final_cost < result.initial_cost


def test_graph_partition_valid_solution(setup):
    _, problem, solution = setup
    gp = graph_partition_placement(problem, solution.vc_sizes, seed=1)
    cores = list(gp.thread_cores.values())
    assert len(set(cores)) == len(cores)
    assert set(gp.thread_cores) == {t.thread_id for t in problem.threads}
    usage = {}
    for per_bank in gp.vc_allocation.values():
        for bank, amount in per_bank.items():
            usage[bank] = usage.get(bank, 0.0) + amount
    assert max(usage.values()) <= problem.bank_bytes * 1.001


def test_graph_partition_places_all_capacity(setup):
    _, problem, solution = setup
    gp = graph_partition_placement(problem, solution.vc_sizes, seed=1)
    want = sum(
        s for v, s in solution.vc_sizes.items()
        if s > 0 and v in gp.vc_allocation
    )
    placed = sum(sum(p.values()) for p in gp.vc_allocation.values())
    assert placed == pytest.approx(want, rel=0.05)
