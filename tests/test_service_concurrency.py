"""Tenant isolation under concurrency (ISSUE 6 satellite).

N async clients interleaving through one service must each receive
exactly the placements they would get running alone: engines are keyed
per chip, solves for one chip are serialized by its slot lock, and the
process-wide geometry cache tolerates concurrent thread-pool solves.
"""

import asyncio

import pytest

from repro.config import small_test_config
from repro.geometry.mesh import Mesh, shared_geometry_matrices
from repro.nuca.base import build_problem
from repro.sched.engine import ReconfigEngine
from repro.service import CoSchedService, PlacementRequest, ServiceClient
from repro.sim.engine import EpochEngine
from repro.workloads.mixes import random_phased_mix

EPOCHS = 4
EPOCH_CYCLES = 200e6
CHIPS = 4


def _sim(mix_id: int, side: int = 4) -> EpochEngine:
    mix = random_phased_mix(8, 42, mix_id)
    config = small_test_config(side, side)
    return EpochEngine(mix, build_problem(mix, config))


def _solo_reference(mix_id: int, strategy: str, side: int = 4):
    return _sim(mix_id, side).run_reconfigured(
        ReconfigEngine(strategy), EPOCH_CYCLES, EPOCHS
    )


def _assert_matches_solo(replies, reference):
    assert len(replies) == len(reference)
    for reply, want in zip(replies, reference):
        assert reply.ok
        assert reply.solution.vc_sizes == want.solution.vc_sizes
        assert reply.solution.vc_allocation == want.solution.vc_allocation
        assert reply.solution.thread_cores == want.solution.thread_cores


@pytest.mark.parametrize("strategy", ("incremental", "partitioned"))
def test_interleaved_tenants_match_solo_runs(strategy):
    """Concurrent tenants see zero cross-tenant bleed in warm engines."""

    async def serve_fleet():
        async with CoSchedService(
            strategy=strategy, workers=CHIPS
        ) as service:
            clients = [
                ServiceClient(service, f"chip-{i}") for i in range(CHIPS)
            ]
            fleet = await asyncio.gather(*[
                client.drive(_sim(i), EPOCH_CYCLES, EPOCHS)
                for i, client in enumerate(clients)
            ])
            slots = {
                chip: service.pool.slot(chip)
                for chip in service.pool.chips()
            }
        return fleet, slots

    fleet, slots = asyncio.run(serve_fleet())
    for mix_id, replies in enumerate(fleet):
        _assert_matches_solo(replies, _solo_reference(mix_id, strategy))
    # One warm engine per chip, each having advanced exactly its own
    # tenant's epochs.
    assert sorted(slots) == [f"chip-{i}" for i in range(CHIPS)]
    assert all(slot.epochs == EPOCHS for slot in slots.values())
    engines = [slot.engine for slot in slots.values()]
    assert len({id(engine) for engine in engines}) == CHIPS


def test_mixed_geometries_share_the_process_cache_safely():
    """Chips on different mesh sizes solve concurrently; each still
    matches its solo run and the shared geometry cache holds both."""
    sides = (4, 4, 8, 8)

    async def serve_fleet():
        async with CoSchedService(
            strategy="incremental", workers=len(sides)
        ) as service:
            return await asyncio.gather(*[
                ServiceClient(service, f"chip-{i}").drive(
                    _sim(i, side), EPOCH_CYCLES, EPOCHS
                )
                for i, side in enumerate(sides)
            ])

    fleet = asyncio.run(serve_fleet())
    for i, (side, replies) in enumerate(zip(sides, fleet)):
        _assert_matches_solo(
            replies, _solo_reference(i, "incremental", side)
        )
    for side in set(sides):
        cached = shared_geometry_matrices(("Mesh", side, side))
        assert cached is not None and cached  # both geometries cached


def test_shared_geometry_accessor_returns_a_detached_mapping():
    _ = Mesh(4, 4).distance_matrix  # ensure the slot exists
    first = shared_geometry_matrices(("Mesh", 4, 4))
    assert first
    first.clear()  # caller-side mutation of the mapping...
    again = shared_geometry_matrices(("Mesh", 4, 4))
    assert again  # ...never empties the cache slot
    assert shared_geometry_matrices(("Mesh", 999, 999)) is None


def test_same_chip_requests_are_served_in_submission_order():
    """Back-to-back requests from one chip pipeline through its slot
    lock in FIFO order — the warm engine advances in telemetry order
    even when the client does not await between submissions."""
    reference = _solo_reference(0, "incremental")

    # Capture the exact telemetry sequence the solo run produces, then
    # replay it as one un-awaited burst.
    problems = []
    probe = _sim(0)
    local = ReconfigEngine("incremental")
    for _ in range(EPOCHS):
        problem = probe.current_problem()
        problems.append(problem)
        probe.run_epoch(local.solve(problem).solution, EPOCH_CYCLES)

    async def burst():
        async with CoSchedService(
            strategy="incremental", workers=2
        ) as service:
            futures = [
                service.submit(PlacementRequest(
                    chip_id="burst", problem=problem, epoch=i
                ))
                for i, problem in enumerate(problems)
            ]
            return await asyncio.gather(*futures)

    replies = asyncio.run(burst())
    for reply, want in zip(replies, reference):
        assert reply.ok
        assert reply.solution.vc_sizes == want.solution.vc_sizes
        assert reply.solution.vc_allocation == want.solution.vc_allocation
        assert reply.solution.thread_cores == want.solution.thread_cores
