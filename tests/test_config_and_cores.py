"""System configuration (Table 2) and core models."""

import pytest

from repro.config import (
    case_study_config,
    default_config,
    small_test_config,
)
from repro.cores.ooo_core import CoreModel
from repro.util.rng import child_rng, make_rng, spawn_seeds
from repro.util.units import kb, mb


def test_table2_defaults():
    cfg = default_config()
    assert cfg.tiles == 64
    assert cfg.llc_bytes == mb(32)
    assert cfg.cache.bank_bytes == kb(512)
    assert cfg.cache.bank_ways == 16
    assert cfg.cache.partitions_per_bank == 64
    assert cfg.memory.controllers == 8
    assert cfg.memory.zero_load_latency == 120
    assert cfg.scheduler.reconfigure_interval_cycles == 50_000_000
    assert cfg.scheduler.descriptor_buckets == 64


def test_case_study_config_is_6x6():
    cfg = case_study_config()
    assert cfg.tiles == 36
    assert cfg.llc_bytes == mb(18)


def test_quanta_accounting():
    cfg = default_config()
    assert cfg.bank_quanta == 8  # 512 KB / 64 KB
    assert cfg.total_quanta == 512


def test_with_mesh_and_with_banks():
    cfg = default_config().with_mesh(4, 4)
    assert cfg.tiles == 16
    banked = cfg.with_banks(kb(128), 1)
    assert banked.cache.bank_bytes == kb(128)
    assert banked.cache.partitions_per_bank == 1
    assert banked.llc_bytes == 16 * kb(128)


def test_small_test_config():
    assert small_test_config(3, 5).tiles == 15


def test_core_model_cpi_decomposition():
    cfg = small_test_config().core
    model = CoreModel(cfg)
    base = model.cpi(1.0, 0.0, 100.0, 100.0)
    assert base == 1.0  # zero APKI: memory is free
    cpi = model.cpi(1.0, 10.0, 23.0, 115.0)
    expected = 1.0 + 0.01 * (23.0 / cfg.mlp_onchip + 115.0 / cfg.mlp_offchip)
    assert cpi == pytest.approx(expected)
    assert model.ipc(1.0, 10.0, 23.0, 115.0) == pytest.approx(1.0 / expected)


def test_core_model_validation():
    model = CoreModel(small_test_config().core)
    with pytest.raises(ValueError):
        model.cpi(0.0, 1.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        model.cpi(1.0, -1.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        model.exposed_latency(-1.0, 0.0)


def test_core_model_instructions_in():
    model = CoreModel(small_test_config().core)
    instrs = model.instructions_in(1000.0, 1.0, 0.0, 0.0, 0.0)
    assert instrs == pytest.approx(1000.0)


def test_rng_helpers_reproducible():
    assert make_rng(7).integers(1000) == make_rng(7).integers(1000)
    a = child_rng(7, 1, 2).integers(1000)
    b = child_rng(7, 1, 2).integers(1000)
    c = child_rng(7, 2, 1).integers(1000)
    assert a == b
    assert c != a  # argument order selects a different stream
    seeds = spawn_seeds(7, 5)
    assert len(seeds) == len(set(seeds)) == 5
    assert seeds == spawn_seeds(7, 5)
