"""Topologies: mesh distances, controllers, torus (repro.geometry.mesh)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.mesh import Mesh, Torus

tiles_strategy = st.tuples(
    st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8)
)


def test_coords_row_major():
    mesh = Mesh(4, 3)
    assert mesh.coords(0) == (0, 0)
    assert mesh.coords(3) == (3, 0)
    assert mesh.coords(4) == (0, 1)
    assert mesh.tile_at(3, 2) == 11


def test_coords_out_of_range():
    mesh = Mesh(2, 2)
    with pytest.raises(IndexError):
        mesh.coords(4)
    with pytest.raises(IndexError):
        mesh.tile_at(2, 0)


def test_manhattan_distance():
    mesh = Mesh(8, 8)
    assert mesh.distance(0, 63) == 14  # corner to corner
    assert mesh.distance(0, 0) == 0
    assert mesh.distance(0, 7) == 7


@given(tiles_strategy, st.data())
def test_distance_symmetry_and_triangle(dims, data):
    mesh = Mesh(*dims)
    a = data.draw(st.integers(0, mesh.tiles - 1))
    b = data.draw(st.integers(0, mesh.tiles - 1))
    c = data.draw(st.integers(0, mesh.tiles - 1))
    assert mesh.distance(a, b) == mesh.distance(b, a)
    assert mesh.distance(a, c) <= mesh.distance(a, b) + mesh.distance(b, c)
    assert (mesh.distance(a, b) == 0) == (a == b)


def test_mean_distance_from_corner_8x8():
    # Mean hops from a corner of an 8x8 mesh: 2 * mean(0..7) = 7.0.
    assert Mesh(8, 8).mean_distance(0) == pytest.approx(7.0)


def test_center_tile_is_central():
    mesh = Mesh(8, 8)
    x, y = mesh.coords(mesh.center_tile())
    assert 3 <= x <= 4 and 3 <= y <= 4


def test_tiles_by_distance_sorted_and_cached():
    mesh = Mesh(5, 5)
    order = mesh.tiles_by_distance(12)
    dists = [mesh.distance(12, t) for t in order]
    assert dists == sorted(dists)
    assert order is mesh.tiles_by_distance(12)  # cached list reused
    assert sorted(order) == list(range(25))


def test_neighbors_interior_and_corner():
    mesh = Mesh(4, 4)
    assert sorted(mesh.neighbors(5)) == [1, 4, 6, 9]
    assert sorted(mesh.neighbors(0)) == [1, 4]


def test_memory_controllers_on_perimeter():
    mesh = Mesh(8, 8)
    mcs = mesh.memory_controller_tiles(8)
    assert len(mcs) == 8
    assert len(set(mcs)) == 8
    for tile in mcs:
        x, y = mesh.coords(tile)
        assert x in (0, 7) or y in (0, 7)


def test_memory_controller_count_clamped():
    mesh = Mesh(2, 2)
    assert len(mesh.memory_controller_tiles(16)) == 4


def test_mean_memory_distance_roughly_equal_across_tiles():
    # The Eq 1 assumption: all cores see similar average distance to MCs.
    mesh = Mesh(8, 8)
    means = [mesh.mean_memory_distance(t, 8) for t in range(mesh.tiles)]
    assert max(means) / min(means) < 1.8


def test_torus_wraparound():
    torus = Torus(8, 8)
    assert torus.distance(0, 7) == 1  # wraps in x
    assert torus.distance(0, 56) == 1  # wraps in y
    assert torus.distance(0, 63) == 2


def test_invalid_mesh_rejected():
    with pytest.raises(ValueError):
        Mesh(0, 4)


def test_distance_matrix_matches_distance():
    mesh = Mesh(3, 3)
    mat = mesh.distance_matrix
    for a in range(9):
        for b in range(9):
            assert mat[a, b] == mesh.distance(a, b)
