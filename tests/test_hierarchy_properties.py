"""Property sweep pinning the hierarchical strategy's contracts.

``tests/test_engine.py`` pins the flat strategies on hand-picked points;
this module sweeps the PR 7 hierarchical contracts over 50 seeded random
(mesh, mix, dynamism) cases:

* ``hierarchical`` with ``depth=1`` is bitwise the flat ``partitioned``
  strategy with the same split factor — at *every* epoch of a warm
  drifting loop, not just cold (the recursion collapses to one level of
  full-pipeline leaves through the shared split body);
* ``depth=1, regions=1`` is bitwise ``full`` (no seams, no stitch);
* the anytime stitch budget (:data:`~repro.sched.engine.STITCH_OPS_BUDGET`)
  never binds at these scales, so passing ``stitch_ops_budget=None``
  changes nothing — while a tiny explicit budget provably truncates.

The sweep is deterministic: cases are drawn once from a fixed master
seed, so a failure reproduces by its parametrize id.
"""

import random

import pytest

from repro.config import small_test_config
from repro.nuca.base import build_problem
from repro.sched.engine import ReconfigEngine
from repro.sim.engine import EpochEngine
from repro.testing import (
    assert_bitwise_equal,
    assert_solutions_equal,
    golden_problem,
)
from repro.workloads.mixes import (
    random_phased_mix,
    random_single_threaded_mix,
)

EPOCHS = 3
EPOCH_CYCLES = 200e6

#: Top-level split factor for the sweep: every drawn side is even, and
#: ``auto_regions`` degenerates to one region on meshes this small, so
#: the split (and its stitch) must be forced to be exercised at all.
REGIONS = 2


def _draw_cases(count: int, master_seed: int = 20260808):
    """*count* random (side, apps, seed, mix_id, phased) tuples."""
    rng = random.Random(master_seed)
    cases = []
    for _ in range(count):
        side = rng.choice((2, 4, 4, 4, 8))
        apps = rng.randint(2, side * side)
        cases.append((
            side,
            apps,
            rng.randint(0, 9999),
            rng.randint(0, 7),
            rng.random() < 0.5,
        ))
    return cases


CASES = _draw_cases(50)


def _case_id(case) -> str:
    side, apps, seed, mix_id, phased = case
    arm = "phased" if phased else "stationary"
    return f"{side}x{side}-{apps}a-s{seed}-m{mix_id}-{arm}"


def _mix(apps, seed, mix_id, phased):
    if phased:
        return random_phased_mix(apps, seed, mix_id)
    return random_single_threaded_mix(apps, seed, mix_id)


def _build_sim(side, apps, seed, mix_id, phased) -> EpochEngine:
    config = small_test_config(side, side)
    mix = _mix(apps, seed, mix_id, phased)
    return EpochEngine(mix, build_problem(mix, config))


@pytest.mark.parametrize("case", CASES, ids=_case_id)
def test_depth1_bitwise_equals_flat_partitioned(case):
    """One-level recursion == the flat split, at every warm epoch."""
    reference = _build_sim(*case).run_reconfigured(
        ReconfigEngine("partitioned", regions=REGIONS),
        EPOCH_CYCLES, EPOCHS,
    )
    results = _build_sim(*case).run_reconfigured(
        ReconfigEngine("hierarchical", depth=1, regions=REGIONS),
        EPOCH_CYCLES, EPOCHS,
    )
    assert len(results) == len(reference) == EPOCHS
    for got, want in zip(results, reference):
        # The strategy tag differs; placements AND op counts must not —
        # depth=1 runs the identical split body, stitch included.
        assert_bitwise_equal(got, want)
        assert got.modeled_cycles() == want.modeled_cycles()


@pytest.mark.parametrize("case", CASES, ids=_case_id)
def test_depth1_single_region_bitwise_equals_full(case):
    """``depth=1, regions=1``: no seams, no stitch — exactly ``full``."""
    side, apps, seed, mix_id, phased = case
    config = small_test_config(side, side)
    problem = build_problem(_mix(apps, seed, mix_id, phased), config)
    want = ReconfigEngine("full").solve(problem)
    got = ReconfigEngine(
        "hierarchical", depth=1, regions=1
    ).solve(problem)
    assert_bitwise_equal(got, want)
    assert "stitch" not in got.counter.ops


# -- recursion structure ----------------------------------------------------


def _deep_problem():
    """A 16x16 mesh that recurses twice with ``leaf_tiles=16``."""
    config = small_test_config(16, 16)
    return build_problem(random_single_threaded_mix(64, 7, 3), config)


def test_deep_recursion_produces_valid_bounded_solution():
    problem = _deep_problem()
    result = ReconfigEngine("hierarchical", leaf_tiles=16).solve(problem)
    result.solution.validate(problem)
    assert result.strategy == "hierarchical"
    assert "stitch" in result.counter.ops
    # The critical path (slowest leaf + per-level stitches) must beat
    # paying the whole op count on one runtime core.
    assert result.critical_path_cycles is not None
    assert result.modeled_cycles() < result.counter.total_cycles()


def test_depth_cap_matching_natural_depth_is_identity():
    """``depth=2`` on a mesh whose natural recursion is 2 levels deep
    equals the uncapped solve bitwise."""
    problem = _deep_problem()
    capped = ReconfigEngine(
        "hierarchical", depth=2, leaf_tiles=16
    ).solve(problem)
    natural = ReconfigEngine("hierarchical", leaf_tiles=16).solve(problem)
    assert_bitwise_equal(capped, natural)
    assert capped.modeled_cycles() == natural.modeled_cycles()


def test_deeper_recursion_shortens_critical_path():
    """Two levels of 2x2 splits beat one: leaves are smaller and every
    stitch is seam-local, so the modeled interval cost drops."""
    problem = _deep_problem()
    deep = ReconfigEngine("hierarchical", leaf_tiles=16).solve(problem)
    flat = ReconfigEngine("partitioned", regions=2).solve(problem)
    assert deep.modeled_cycles() < flat.modeled_cycles()


# -- the anytime stitch budget ----------------------------------------------


def test_default_budget_never_binds_at_paper_scale():
    """At 64 tiles the stitch measures far under the budget, so the
    default and an unlimited budget are bitwise identical."""
    want = ReconfigEngine(
        "partitioned", regions=2, stitch_ops_budget=None
    ).solve(golden_problem())
    got = ReconfigEngine("partitioned", regions=2).solve(golden_problem())
    assert_bitwise_equal(got, want)


def test_tiny_budget_truncates_the_stitch():
    """An explicit 1-op budget stops the pass after one initiator's scan;
    the solution stays valid and the stitch gets strictly cheaper."""
    problem = golden_problem()
    unbudgeted = ReconfigEngine(
        "partitioned", regions=2, stitch_ops_budget=None
    ).solve(problem)
    budgeted = ReconfigEngine(
        "partitioned", regions=2, stitch_ops_budget=1
    ).solve(problem)
    budgeted.solution.validate(problem)
    assert 0 < budgeted.counter.ops["stitch"] \
        < unbudgeted.counter.ops["stitch"]
    assert budgeted.modeled_cycles() < unbudgeted.modeled_cycles()


def test_budget_applies_at_every_hierarchy_level():
    problem = _deep_problem()
    unbudgeted = ReconfigEngine(
        "hierarchical", leaf_tiles=16, stitch_ops_budget=None
    ).solve(problem)
    budgeted = ReconfigEngine(
        "hierarchical", leaf_tiles=16, stitch_ops_budget=1
    ).solve(problem)
    budgeted.solution.validate(problem)
    assert budgeted.counter.ops["stitch"] \
        < unbudgeted.counter.ops["stitch"]


def test_budget_only_drops_trailing_cold_initiators():
    """The anytime pass is a prefix cut: with a budget covering the whole
    measured pass, results are bitwise unchanged."""
    problem = golden_problem()
    full_pass = ReconfigEngine(
        "partitioned", regions=2, stitch_ops_budget=None
    ).solve(problem)
    generous = ReconfigEngine(
        "partitioned", regions=2,
        stitch_ops_budget=full_pass.counter.ops["stitch"],
    ).solve(golden_problem())
    assert_bitwise_equal(generous, full_pass)


@pytest.mark.parametrize("strategy", ("partitioned", "hierarchical"))
def test_budget_validation(strategy):
    with pytest.raises(ValueError, match="stitch_ops_budget"):
        ReconfigEngine(strategy, stitch_ops_budget=0)


def test_external_placement_respected_through_hierarchy():
    """External thread pins survive the recursive split/merge path."""
    from repro.sched.reconfigure import ReconfigPolicy
    from repro.sched.thread_placement import random_thread_placement

    problem = _deep_problem()
    external = random_thread_placement(problem, seed=11)
    result = ReconfigEngine(
        "hierarchical", leaf_tiles=16,
        policy=ReconfigPolicy.jigsaw(),
        external_thread_cores=external,
    ).solve(problem)
    result.solution.validate(problem)
    assert result.solution.thread_cores == external


def test_solutions_equal_helper_detects_hierarchy_merge_drift():
    """The merged global solution re-validates against a flat solve of
    the same leaves: thread cores map into the right regions (a
    coordinate-translation regression canary)."""
    problem = _deep_problem()
    result = ReconfigEngine("hierarchical", leaf_tiles=16).solve(problem)
    again = ReconfigEngine("hierarchical", leaf_tiles=16).solve(problem)
    assert_solutions_equal(result.solution, again.solution)
