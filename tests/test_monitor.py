"""UMON and GMON monitors (Sec IV-G)."""

import pytest

from repro.cache.miss_curve import cliff_curve, flat_curve
from repro.cache.monitor import GMon, UMon, required_umon_ways, solve_gamma
from repro.util.units import kb, mb
from repro.workloads.generator import StackDistanceStream


def test_required_umon_ways_paper_example():
    # 32 MB LLC at 64 KB grain needs 512 ways (Sec IV-G).
    assert required_umon_ways(mb(32), kb(64)) == 512


def test_solve_gamma_paper_point():
    gamma = solve_gamma(kb(64), mb(32), 64)
    assert 0.94 <= gamma <= 0.96  # paper: ~0.95


def test_solve_gamma_uniform_when_coverage_easy():
    assert solve_gamma(kb(64), kb(64) * 32, 64) == 1.0


def test_gmon_way_capacities_grow_26x():
    gmon = GMon(kb(64), mb(32), ways=64)
    caps = gmon.way_capacities()
    assert caps[0] == pytest.approx(kb(64), rel=0.01)
    assert caps[-1] / caps[0] == pytest.approx(26, rel=0.15)  # paper: 26x
    assert caps.sum() == pytest.approx(mb(32), rel=0.05)


def test_gmon_validation():
    with pytest.raises(ValueError):
        GMon(0, mb(1))
    with pytest.raises(ValueError):
        GMon(mb(2), mb(1))


def test_umon_uniform_ways():
    umon = UMon(mb(4), ways=64)
    caps = umon.way_capacities()
    assert len(set(caps.round(3))) == 1
    assert caps.sum() == pytest.approx(mb(4))


def _drive(monitor, curve, apki, accesses, seed=3):
    stream = StackDistanceStream(curve, apki=apki, seed=seed)
    for _ in range(accesses):
        monitor.access(stream.next_address())
    return monitor.miss_curve()


def test_umon_flat_stream_has_flat_curve():
    curve = flat_curve(kb(512), 20.0)
    mon = UMon(kb(512), ways=32, seed=11)
    measured = _drive(mon, curve, apki=20.0, accesses=20_000)
    # A pure streaming app hits nowhere: misses stay near total accesses.
    assert measured(kb(512)) / measured(0) > 0.9


def test_umon_captures_cliff_position():
    curve = cliff_curve(kb(512), 20.0, kb(128), 1.0)
    mon = UMon(kb(512), ways=64, seed=11)
    measured = _drive(mon, curve, apki=20.0, accesses=40_000)
    before = measured(kb(64)) / measured(0)
    after = measured(kb(256)) / measured(0)
    assert before > 0.8  # misses before the working set fits
    assert after < 0.45  # mostly hits after


def test_gmon_matches_umon_at_small_sizes():
    """The point of GMONs: 64 ways cover what a many-way UMON covers."""
    curve = cliff_curve(kb(512), 20.0, kb(96), 1.0)
    umon = UMon(kb(512), ways=256, seed=11)
    gmon = GMon(kb(8), kb(512), ways=64, seed=11)
    m_u = _drive(umon, curve, 20.0, 40_000)
    m_g = _drive(gmon, curve, 20.0, 40_000, seed=3)
    for size in (kb(32), kb(64), kb(192), kb(384)):
        ru = m_u(size) / max(m_u(0), 1)
        rg = m_g(size) / max(m_g(0), 1)
        assert rg == pytest.approx(ru, abs=0.25)


def test_monitor_curve_is_monotone_decreasing():
    curve = cliff_curve(kb(256), 10.0, kb(64), 1.0)
    gmon = GMon(kb(8), kb(256), ways=32, seed=5)
    measured = _drive(gmon, curve, 10.0, 20_000)
    values = list(measured.values)
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


def test_monitor_reset_clears_state():
    gmon = GMon(kb(8), kb(256), ways=32)
    gmon.observe(1234)
    assert gmon.sampled_accesses == 1
    gmon.reset()
    assert gmon.sampled_accesses == 0
    assert gmon.hit_counters.sum() == 0


def test_monitor_sampling_rate_subsamples():
    umon = UMon(mb(1), ways=16, seed=2)  # derived rate: 16KB raw / 1MB = 1/64
    for addr in range(64_000):
        umon.access(addr)
    assert umon.sampled_accesses == pytest.approx(1000, rel=0.25)
