"""Workload model: profiles, mixes, stream generator (repro.workloads)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.miss_curve import cliff_curve
from repro.util.units import kb, mb
from repro.workloads.generator import StackDistanceStream, measure_miss_curve
from repro.workloads.mixes import (
    case_study_mix,
    fig16_case_study_mix,
    make_mix,
    random_multithreaded_mix,
    random_single_threaded_mix,
)
from repro.workloads.profiles import (
    ALL_PROFILES,
    MULTI_THREADED,
    SINGLE_THREADED,
    get_profile,
)

# -- profiles ----------------------------------------------------------------


def test_paper_app_pool_is_complete():
    expected = {
        "bzip2", "gcc", "bwaves", "mcf", "milc", "zeusmp", "cactusADM",
        "leslie3d", "calculix", "GemsFDTD", "libquantum", "lbm", "astar",
        "omnet", "sphinx3", "xalancbmk",
    }
    assert set(SINGLE_THREADED) == expected  # the 16 >=5-MPKI apps (Sec V)


def test_multithreaded_pool_has_fig16_apps():
    for name in ("ilbdc", "md", "mgrid", "nab"):
        assert name in MULTI_THREADED
        assert MULTI_THREADED[name].threads == 8


def test_all_profiles_internally_consistent():
    for name, p in ALL_PROFILES.items():
        assert p.base_cpi > 0, name
        assert p.llc_apki >= 0, name
        # Misses can never exceed accesses.
        assert p.private_curve(0) <= p.private_apki + 1e-9, name
        if p.shared_curve is not None:
            assert p.shared_curve(0) <= p.shared_apki + 1e-9, name


def test_fig2_omnet_cliff():
    omnet = get_profile("omnet")
    assert omnet.private_curve(mb(1)) == pytest.approx(85.0)  # ~85 MPKI
    assert omnet.private_curve(mb(3)) < 5.0  # fits above 2.5 MB


def test_fig2_milc_is_streaming():
    milc = get_profile("milc")
    assert milc.private_curve(0) == milc.private_curve(mb(32))


def test_fig2_ilbdc_small_shared_footprint():
    ilbdc = get_profile("ilbdc")
    assert ilbdc.shared_curve(mb(1)) < 0.2 * ilbdc.shared_curve(0)


def test_total_mpki_uses_both_vcs():
    ilbdc = get_profile("ilbdc")
    full = ilbdc.total_mpki(0, 0)
    assert full == pytest.approx(
        float(ilbdc.private_curve(0)) + float(ilbdc.shared_curve(0))
    )
    assert ilbdc.total_mpki(mb(8), mb(8)) < full


def test_unknown_profile_error_lists_names():
    with pytest.raises(KeyError, match="omnet"):
        get_profile("nonexistent-app")


def test_profile_validation():
    from repro.cache.miss_curve import flat_curve
    from repro.workloads.profiles import AppProfile

    with pytest.raises(ValueError):
        AppProfile("x", base_cpi=0, llc_apki=1, private_curve=flat_curve(1, 1))
    with pytest.raises(ValueError):
        AppProfile(
            "x", base_cpi=1, llc_apki=1, private_curve=flat_curve(1, 1),
            shared_fraction=0.5,  # needs a shared curve
        )


# -- mixes --------------------------------------------------------------------


def test_case_study_mix_composition():
    mix = case_study_mix()
    assert mix.total_threads == 36  # 6 + 14 + 2x8
    assert mix.names.count("omnet") == 6
    assert mix.names.count("milc") == 14
    assert mix.names.count("ilbdc") == 2


def test_fig16_mix_composition():
    mix = fig16_case_study_mix()
    assert mix.total_threads == 32
    assert set(mix.names) == {"mgrid", "md", "ilbdc", "nab"}


def test_thread_ids_contiguous_and_disjoint():
    mix = make_mix(["omnet", "ilbdc", "milc"])
    ids = [t for p in mix.processes for t in p.thread_ids]
    assert ids == list(range(mix.total_threads))


def test_random_mixes_deterministic_per_seed():
    a = random_single_threaded_mix(8, seed=1, mix_id=2)
    b = random_single_threaded_mix(8, seed=1, mix_id=2)
    c = random_single_threaded_mix(8, seed=1, mix_id=3)
    assert a.names == b.names
    assert a.names != c.names or True  # different id, usually different


def test_random_mix_draws_from_correct_pools():
    st_mix = random_single_threaded_mix(20, seed=0)
    assert all(n in SINGLE_THREADED for n in st_mix.names)
    mt_mix = random_multithreaded_mix(4, seed=0)
    assert all(n in MULTI_THREADED for n in mt_mix.names)
    assert mt_mix.total_threads == 32


def test_mix_rejects_empty():
    with pytest.raises(ValueError):
        random_single_threaded_mix(0, seed=1)


def test_fixed_work_instructions():
    mix = make_mix(["milc", "omnet"])
    targets = mix.fixed_work_instructions({"milc": 0.5, "omnet": 0.25})
    assert targets[0] == 500_000_000
    assert targets[1] == 250_000_000


# -- stream generator ----------------------------------------------------------


def test_stream_realizes_cliff_curve():
    curve = cliff_curve(kb(256), 20.0, kb(128), 2.0)
    stream = StackDistanceStream(curve, apki=20.0, seed=3)
    addrs = stream.addresses(20_000)
    measured = measure_miss_curve(addrs, [kb(64), kb(128), kb(256)])
    total = len(addrs)
    assert measured.values[0] / total > 0.9  # thrashes below the cliff
    assert measured.values[-1] / total < 0.3  # mostly hits above it


def test_stream_addresses_respect_base_and_footprint():
    curve = cliff_curve(kb(64), 10.0, kb(32), 1.0)
    stream = StackDistanceStream(
        curve, apki=10.0, footprint_bytes=kb(64), address_base=1 << 20, seed=1
    )
    addrs = stream.addresses(5_000)
    assert all(a >= 1 << 20 for a in addrs)
    assert len(set(addrs)) <= kb(64) // 64


def test_stream_rejects_zero_apki():
    with pytest.raises(ValueError):
        StackDistanceStream(cliff_curve(kb(64), 1, kb(32), 0.1), apki=0)


def test_measure_miss_curve_exact_on_known_stream():
    # a b a b: with >=2 lines of capacity the two re-touches hit.
    addrs = [1, 2, 1, 2]
    curve = measure_miss_curve(addrs, [64, 128, 256])
    assert curve.values[0] == 4  # 1 line: everything misses
    assert curve.values[1] == 2  # 2 lines: both re-touches hit


def test_measure_miss_curve_rejects_empty():
    with pytest.raises(ValueError):
        measure_miss_curve([], [64])


@given(st.integers(min_value=1, max_value=40))
@settings(max_examples=20, deadline=None)
def test_measured_misses_monotone_in_capacity(n_lines):
    """Property: LRU miss counts never increase with capacity (stack
    inclusion)."""
    curve = cliff_curve(kb(64), 10.0, kb(16), 1.0)
    stream = StackDistanceStream(curve, apki=10.0, seed=n_lines)
    addrs = stream.addresses(2_000)
    sizes = [64 * k for k in range(1, n_lines + 1)]
    measured = measure_miss_curve(addrs, sizes)
    vals = list(measured.values)
    assert all(a >= b for a, b in zip(vals, vals[1:]))
