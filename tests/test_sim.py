"""Trace-driven simulator: LLC, engine, reconfiguration protocols."""

import pytest

from repro.config import small_test_config
from repro.nuca import Jigsaw, build_problem
from repro.sched.reconfigure import ReconfigPolicy, reconfigure
from repro.sim import (
    BackgroundInvalidations,
    BulkInvalidations,
    DistributedLLC,
    InstantMoves,
    build_trace_simulation,
    scale_solution,
    scaled_profile,
    weighted_round_robin,
)
from repro.sim.stats import WindowedIpc
from repro.workloads.mixes import make_mix
from repro.workloads.profiles import get_profile

MIX_NAMES = ["omnet", "milc", "gcc", "astar"]
SCALE = 16


@pytest.fixture()
def sim_setup():
    config = small_test_config(4, 4)
    mix = make_mix(MIX_NAMES)
    problem = build_problem(mix, config)
    jig = Jigsaw("random", 3)
    cores = jig.thread_cores(problem)
    initial = jig.run(problem).solution
    improved = reconfigure(
        problem, ReconfigPolicy(True, False, True),
        external_thread_cores=cores,
    ).solution
    return config, mix, problem, initial, improved


def test_weighted_round_robin_exact_ratios():
    picker = weighted_round_robin({1: 3.0, 2: 1.0})
    picks = [picker() for _ in range(400)]
    assert picks.count(1) == 300
    assert picks.count(2) == 100
    with pytest.raises(ValueError):
        weighted_round_robin({1: 0.0})


def test_windowed_ipc_trace():
    w = WindowedIpc(window_cycles=100.0)
    w.record(50, 20)
    w.record(60, 20)
    w.record(150, 10)
    trace = w.trace()
    assert trace == [(0.0, 0.4), (100.0, 0.1)]
    assert w.mean_ipc(0, 100) == pytest.approx(0.4)
    with pytest.raises(ValueError):
        w.record(-1, 1)


def test_scaled_profile_shrinks_footprints():
    omnet = get_profile("omnet")
    shrunk = scaled_profile(omnet, 8)
    assert shrunk.private_curve.effective_footprint() == pytest.approx(
        omnet.private_curve.effective_footprint() / 8
    )
    assert scaled_profile(omnet, 1) is omnet
    with pytest.raises(ValueError):
        scaled_profile(omnet, 0)


def test_llc_configure_and_access(sim_setup):
    config, mix, problem, initial, _ = sim_setup
    llc = DistributedLLC(config, problem.topology, capacity_scale=SCALE)
    llc.configure(scale_solution(initial, SCALE))
    r1 = llc.access(0, 0, 1234)
    assert not r1.hit
    r2 = llc.access(0, 0, 1234)
    assert r2.hit
    assert r2.latency <= r1.latency
    assert r2.offchip_latency == 0.0
    assert llc.stats.hits == 1 and llc.stats.misses == 1


def test_llc_rejects_bad_scale(sim_setup):
    config, _, problem, _, _ = sim_setup
    with pytest.raises(ValueError):
        DistributedLLC(config, problem.topology, capacity_scale=0)


def test_trace_sim_runs_and_accumulates(sim_setup):
    config, mix, problem, initial, _ = sim_setup
    sim = build_trace_simulation(
        mix, config, initial, problem, capacity_scale=SCALE, seed=2
    )
    sim.run_until(100_000)
    assert sim.llc.stats.accesses > 100
    assert all(t.instructions > 0 for t in sim.threads)
    assert sim.aggregate_ipc(20_000, 100_000) > 0
    assert sim.llc.check_single_residency()


@pytest.mark.parametrize("protocol_cls", [InstantMoves, BulkInvalidations,
                                          BackgroundInvalidations])
def test_reconfiguration_preserves_single_residency(sim_setup, protocol_cls):
    config, mix, problem, initial, improved = sim_setup
    sim = build_trace_simulation(
        mix, config, initial, problem, capacity_scale=SCALE, seed=2
    )
    sim.schedule_reconfiguration(
        150_000, scale_solution(improved, SCALE), protocol_cls()
    )
    sim.run_until(600_000)
    assert sim.llc.check_single_residency()
    assert not sim.llc.vtb.reconfiguring  # shadows eventually retired


def test_bulk_invalidations_pause_cores(sim_setup):
    config, mix, problem, initial, improved = sim_setup
    sim = build_trace_simulation(
        mix, config, initial, problem, capacity_scale=SCALE, seed=2
    )
    sim.schedule_reconfiguration(
        150_000, scale_solution(improved, SCALE), BulkInvalidations()
    )
    sim.run_until(600_000)
    pause_len = sim.pause_until - 150_000
    assert pause_len > 20_000  # tens-of-Kcycles global pause (Sec IV-H)
    during = sim.aggregate_ipc(150_000, sim.pause_until)
    before = sim.aggregate_ipc(50_000, 150_000)
    assert during < 0.5 * before  # the Fig 17 dip


def test_background_invalidations_avoid_pause(sim_setup):
    config, mix, problem, initial, improved = sim_setup
    sim = build_trace_simulation(
        mix, config, initial, problem, capacity_scale=SCALE, seed=2
    )
    sim.schedule_reconfiguration(
        150_000, scale_solution(improved, SCALE),
        BackgroundInvalidations(grace_cycles=10_000, step_cycles=50),
    )
    sim.run_until(700_000)
    assert sim.pause_until == 0.0  # never pauses (Sec IV-H)
    before = sim.aggregate_ipc(50_000, 150_000)
    during = sim.aggregate_ipc(150_000, 250_000)
    assert during > 0.7 * before  # smooth through the reconfiguration
    stats = sim.llc.stats
    assert stats.demand_moves + stats.background_invalidations > 0


def test_instant_moves_migrate_lines(sim_setup):
    config, mix, problem, initial, improved = sim_setup
    sim = build_trace_simulation(
        mix, config, initial, problem, capacity_scale=SCALE, seed=2
    )
    sim.run_until(150_000)
    occupancy_before = sim.llc.total_occupancy()
    InstantMoves().apply(sim.llc, scale_solution(improved, SCALE), 150_000.0)
    # Moves must not lose undisplaced lines wholesale.
    assert sim.llc.total_occupancy() >= occupancy_before * 0.4
    assert sim.llc.check_single_residency()
    sim.run_until(300_000)
    assert sim.llc.stats.accesses > 0
