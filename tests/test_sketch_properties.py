"""Property sweep for sketch-driven dirty detection and placement.

Two statistical guarantees back the sketch telemetry path, checked here
over seeded phased-mix schedules (≥50 warm epoch boundaries):

* **Superset**: the sketch dirty set contains the exact dirty set at
  every boundary and every budget — sketch deltas upper-bound
  :func:`repro.sched.engine.curve_distance`, so the warm start can
  over-solve but never miss a moved VC.
* **Generous-budget equivalence**: at a 4096-byte budget the
  sketch-driven engine's placements are bitwise-identical to the
  exact-GMON engine's, epoch by epoch.

Plus the degenerate pin: ``dirty_threshold <= 0`` makes the sketch path
bitwise-equal to the full pipeline, like the exact path.
"""

import pytest

from repro.nuca.base import build_problem
from repro.sched.engine import IncrementalSolve, ReconfigEngine
from repro.sim.engine import EpochEngine
from repro.testing import assert_solutions_equal
from repro.config import small_test_config
from repro.workloads.mixes import random_phased_mix

EPOCH_CYCLES = 200e6
TIGHT_BUDGET = 256
GENEROUS_BUDGET = 4096


def _warm_boundaries(apps, seed, mix_id, epochs, threshold=0.05):
    """Yield (prev, current) problem pairs along a driven phased mix."""
    config = small_test_config(4, 4)
    mix = random_phased_mix(apps, seed, mix_id)
    sim = EpochEngine(mix, build_problem(mix, config))
    engine = ReconfigEngine("incremental", dirty_threshold=threshold)
    prev = None
    for _ in range(epochs):
        current = sim.current_problem()
        if prev is not None:
            yield prev, current
        sim.run_epoch(engine.solve(current).solution, EPOCH_CYCLES)
        prev = current


SWEEP = [(16, seed, mix_id) for seed in (7, 11, 42) for mix_id in (0, 1)]


def test_sketch_dirty_superset_of_exact_sweep():
    cases = 0
    for apps, seed, mix_id in SWEEP:
        probes = [
            IncrementalSolve(
                dirty_threshold=0.05,
                use_sketches=True,
                sketch_bytes=budget,
            )
            for budget in (TIGHT_BUDGET, GENEROUS_BUDGET)
        ]
        for prev, current in _warm_boundaries(
            apps, seed, mix_id, epochs=10
        ):
            exact = probes[0].dirty_vcs(prev, current)
            for probe in probes:
                sketch = probe.dirty_vcs_from_sketches(prev, current)
                assert exact <= sketch, (
                    f"sketch dirty set missed VCs "
                    f"{sorted(exact - sketch)} at seed={seed} "
                    f"mix={mix_id} budget={probe.sketch_bytes}"
                )
                cases += 1
    assert cases >= 50  # the sweep actually exercised enough boundaries


def test_generous_budget_placements_bitwise_match_exact():
    config = small_test_config(4, 4)
    matched = 0
    for seed in (7, 42):
        mix = random_phased_mix(16, seed, 0)
        sim_exact = EpochEngine(mix, build_problem(mix, config))
        sim_sketch = EpochEngine(
            random_phased_mix(16, seed, 0),
            build_problem(random_phased_mix(16, seed, 0), config),
        )
        exact = ReconfigEngine("incremental", dirty_threshold=0.05)
        sketch = ReconfigEngine(
            "incremental",
            dirty_threshold=0.05,
            use_sketches=True,
            sketch_bytes=GENEROUS_BUDGET,
        )
        for _ in range(6):
            sol_exact = exact.solve(sim_exact.current_problem()).solution
            sol_sketch = sketch.solve(sim_sketch.current_problem()).solution
            assert_solutions_equal(sol_sketch, sol_exact)
            sim_exact.run_epoch(sol_exact, EPOCH_CYCLES)
            sim_sketch.run_epoch(sol_sketch, EPOCH_CYCLES)
            matched += 1
    assert matched == 12


def test_zero_threshold_degenerates_to_full_set():
    probe = IncrementalSolve(dirty_threshold=0.0, use_sketches=True)
    pairs = list(_warm_boundaries(16, 42, 0, epochs=3))
    assert pairs
    for prev, current in pairs:
        all_ids = {vc.vc_id for vc in current.vcs}
        assert probe.dirty_vcs_from_sketches(prev, current) == all_ids
        assert probe.dirty_vcs(prev, current) == all_ids


def test_zero_threshold_solution_matches_full_pipeline():
    config = small_test_config(4, 4)
    mix = random_phased_mix(16, 42, 0)
    sim = EpochEngine(mix, build_problem(mix, config))
    degenerate = ReconfigEngine(
        "incremental", dirty_threshold=0.0, use_sketches=True
    )
    full = ReconfigEngine("full")
    for _ in range(3):
        problem = sim.current_problem()
        sol = degenerate.solve(problem).solution
        assert_solutions_equal(sol, full.solve(problem).solution)
        sim.run_epoch(sol, EPOCH_CYCLES)


def test_sketch_engine_ipc_close_to_exact_small_point():
    # The study's acceptance bar (<1% IPC error) scaled down to a single
    # cheap point so the suite pins it without running the experiment.
    from repro.experiments.sketch_study import sketch_point

    record = sketch_point(16, 512, seed=42, mix_id=0, epochs=4)
    assert record["superset_ok"]
    assert record["dirty_recall"] == 1.0
    assert record["ipc_rel_err"] < 0.01
    assert record["placement_match_frac"] == 1.0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
