"""Experiment harnesses (repro.experiments) — smoke + shape checks."""

import pytest

from repro.config import small_test_config
from repro.experiments import (
    format_breakdown,
    format_series,
    format_table,
    run_case_study,
    run_factor_analysis,
    run_monitor_comparison,
    run_period_sweep,
    run_reconfig_trace,
    run_sweep,
    run_table3,
)
from repro.model.system import AnalyticSystem
from repro.util.units import mb
from repro.workloads.profiles import get_profile


@pytest.mark.slow
def test_case_study_table1_shape():
    result = run_case_study()
    rows = result.table1()
    assert [r[0] for r in rows] == ["R-NUCA", "Jigsaw+C", "Jigsaw+R", "CDCS"]
    ws = {r[0]: r[4] for r in rows}
    assert ws["CDCS"] > ws["Jigsaw+R"] > ws["R-NUCA"]
    omnet = {r[0]: r[1] for r in rows}
    assert omnet["CDCS"] > 3.0  # paper: 4.00x
    assert omnet["CDCS"] >= omnet["Jigsaw+C"]


@pytest.mark.slow
def test_case_study_chip_map_renders():
    from repro.experiments import render_chip_map

    result = run_case_study()
    art = render_chip_map(result, "CDCS")
    assert "CDCS" in art
    assert art.count("\n") == result.config.mesh_height


def test_sweep_small():
    config = small_test_config(4, 4)
    result = run_sweep(config, n_apps=4, n_mixes=3, seed=7)
    assert result.n_mixes == 3
    for scheme in ("CDCS", "Jigsaw+R", "Jigsaw+C", "R-NUCA"):
        assert len(result.speedups[scheme]) == 3
        assert result.gmean_speedup(scheme) > 0
    cdf = result.speedup_cdf("CDCS")
    assert cdf == sorted(cdf, reverse=True)
    assert set(result.mean_traffic("CDCS")) == {"L2-LLC", "LLC-Mem", "Other"}
    assert result.mean_energy("CDCS")["Static"] > 0


def test_sweep_multithreaded_small():
    config = small_test_config(4, 4)
    result = run_sweep(config, n_apps=2, n_mixes=2, seed=7, multithreaded=True)
    assert len(result.speedups["CDCS"]) == 2


def test_factor_analysis_labels_and_values():
    config = small_test_config(4, 4)
    result = run_factor_analysis(config, n_apps=6, n_mixes=2, seed=7)
    gmeans = result.gmeans()
    assert set(gmeans) == {"Jigsaw+R", "+L", "+T", "+D", "+LTD"}
    assert all(v > 0 for v in gmeans.values())


def test_table3_scaling_shape():
    rows = run_table3(seed=3, repeats=1)
    by_point = {(r.threads, r.cores): r for r in rows}
    assert set(by_point) == {(16, 16), (16, 64), (64, 64)}
    # Table 3: runtime grows with both thread count and tile count.
    assert (
        by_point[(64, 64)].total_mcycles > by_point[(16, 64)].total_mcycles
    )
    assert (
        by_point[(16, 64)].total_mcycles > by_point[(16, 16)].total_mcycles
    )
    # Overhead at 25 ms stays small (paper: 0.2% at 64/64).
    assert by_point[(64, 64)].overhead_percent(25.0) < 5.0


def test_monitor_comparison_gmon_competitive():
    results = run_monitor_comparison(
        get_profile("astar"), llc_bytes=mb(32), accesses=30_000
    )
    by_kind = {(r.monitor_kind, r.ways): r for r in results}
    gmon = by_kind[("GMON", 64)]
    umon_256 = by_kind[("UMON", 256)]
    umon_64 = by_kind[("UMON", 64)]
    # GMON-64 should be close to UMON-256 at small sizes and much better
    # than UMON-64 overall resolution-wise (Sec VI-C).
    assert gmon.small_size_error <= umon_64.small_size_error + 0.05
    assert gmon.mean_abs_error <= umon_256.mean_abs_error + 0.15


@pytest.mark.slow
def test_reconfig_trace_fig17_shape():
    traces = {
        name: run_reconfig_trace(
            name, reconfig_at=200_000, horizon=500_000, capacity_scale=32
        )
        for name in ("instant", "bulk-inv", "background-inv")
    }
    bulk = traces["bulk-inv"]
    background = traces["background-inv"]
    instant = traces["instant"]
    # Fig 17: bulk pauses the chip; background and instant stay smooth.
    assert bulk.ipc_during < 0.7 * bulk.ipc_before
    assert background.ipc_during > 0.75 * background.ipc_before
    assert instant.ipc_during > 0.75 * instant.ipc_before


@pytest.mark.slow
def test_period_sweep_fig18_shape():
    result = run_period_sweep(steady_ws=1.46, capacity_scale=32)
    for period, by_proto in result.speedups.items():
        # Instant is the ceiling; bulk pays the most (Fig 18).
        assert by_proto["instant"] >= by_proto["background-inv"] - 1e-9
        assert by_proto["background-inv"] >= by_proto["bulk-inv"] - 1e-9
    periods = sorted(result.speedups)
    # Penalties amortize away as the period grows.
    assert (
        result.speedups[periods[-1]]["bulk-inv"]
        >= result.speedups[periods[0]]["bulk-inv"]
    )


def test_report_formatting():
    table = format_table(["a", "b"], [["x", 1.5]], title="T")
    assert "T" in table and "x" in table and "1.500" in table
    series = format_series("s", [(1, 2.0), (2, 3.0)])
    assert series.startswith("s:")
    assert "1=2.000" in series
    assert "Static" in format_breakdown("e", {"Static": 1.0})
