"""Tests for the repro-analyze invariant suite (``tools/analyze``).

Three layers:

* the fixture corpus under ``tests/analyze_fixtures/`` pins the exact
  findings every rule produces on known-bad code, and that suppressions
  (``# repro: allow[rule]``) and the committed baseline silence them;
* CLI behavior: exit codes 0/1/2, ``--write-baseline`` round-trip,
  ``--rules`` selection;
* the gate itself: ``python -m tools.analyze src`` must be clean with
  the committed (empty) baseline — the same invocation ``make analyze``
  and CI run.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
if str(REPO) not in sys.path:  # tools/ is not a src/ package
    sys.path.insert(0, str(REPO))

from tools.analyze import (  # noqa: E402
    GUARDED_STATE,
    RULES,
    ModuleSource,
)
from tools.analyze.__main__ import main  # noqa: E402

FIXTURES = REPO / "tests" / "analyze_fixtures"


def _findings(rel_path: str, rule: str):
    module = ModuleSource(FIXTURES / rel_path)
    return RULES[rule].check(module)


# -- per-rule fixtures --------------------------------------------------------


def test_determinism_flags_every_bad_site():
    found = _findings("repro/sched/bad_determinism.py", "determinism")
    snippets = [f.snippet for f in found]
    assert len(found) == 5
    assert any("random.seed(1)" in s for s in snippets)
    assert any("np.random.shuffle" in s for s in snippets)
    assert any("time.perf_counter()" in s for s in snippets)
    assert any("set(vcs)" in s for s in snippets)
    assert any("list({1, 2, 3})" in s for s in snippets)
    # The explicitly seeded generator is never flagged.
    assert not any("default_rng" in s for s in snippets)


def test_determinism_suppressions_silence_every_site():
    assert _findings("repro/sched/allowed_determinism.py", "determinism") == []


def test_lock_discipline_flags_only_the_unlocked_access():
    found = _findings("repro/geometry/mesh.py", "lock-discipline")
    assert len(found) == 1
    assert found[0].snippet.startswith("return _SHARED_GEOMETRY_CACHE")
    assert "_GEOMETRY_LOCK" in found[0].message


def test_lock_discipline_reports_stale_registry_entries(tmp_path):
    # A module that matches a registry suffix but no longer defines the
    # registered name must produce a stale-entry finding, so removals
    # deregister in the same change.
    entry = next(g for g in GUARDED_STATE if g.module == "repro/kernels.py")
    fake = tmp_path / "repro" / "kernels.py"
    fake.parent.mkdir(parents=True)
    other = [g.name for g in GUARDED_STATE if g.module == "repro/kernels.py"]
    other.remove(entry.name)
    body = "\n".join(f"{name} = True" for name in other)
    fake.write_text(body + "\n")
    found = RULES["lock-discipline"].check(ModuleSource(fake))
    assert any(
        "stale registry entry" in f.message and entry.name in f.message
        for f in found
    )


def test_shared_view_flags_every_mutation_alias():
    found = _findings("repro/cache/bad_views.py", "shared-view")
    snippets = [f.snippet for f in found]
    assert len(found) == 5
    assert any("dist += 1.0" in s for s in snippets)
    assert any("topo.distance_matrix[0, 0]" in s for s in snippets)
    assert any("out=dist" in s for s in snippets)
    assert any("dist.sort()" in s for s in snippets)
    assert any("view.fill(0.0)" in s for s in snippets)
    # Mutating a private .copy() is clean, as is the suppressed write.
    assert not any("safe += 1.0" in s for s in snippets)
    assert not any("batch.values2d" in s for s in snippets)


def test_async_discipline_flags_coroutine_blocking_calls():
    found = _findings("repro/service/bad_async.py", "async-discipline")
    snippets = [f.snippet for f in found]
    assert len(found) == 3
    assert any("time.sleep" in s for s in snippets)
    assert any("open(path)" in s for s in snippets)
    assert any("engine.solve" in s for s in snippets)
    # Same call in a sync helper or under a suppression: clean.
    assert all(f.line < 17 for f in found)


def test_rule_registry_is_well_formed():
    assert set(RULES) == {
        "determinism",
        "lock-discipline",
        "shared-view",
        "async-discipline",
    }
    for name, rule in RULES.items():
        assert rule.name == name
        assert rule.invariant  # docs_check mirrors these into ANALYSIS.md


# -- CLI behavior -------------------------------------------------------------


def test_cli_reports_fixture_findings(capsys):
    rc = main([str(FIXTURES), "--no-baseline"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "[determinism]" in out
    assert "[lock-discipline]" in out
    assert "[shared-view]" in out
    assert "[async-discipline]" in out


def test_cli_baseline_roundtrip(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main([str(FIXTURES), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    # Everything just written is tolerated: the gate passes...
    assert main([str(FIXTURES), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out
    # ...but a finding not in the baseline still fails.
    assert main([str(FIXTURES / "repro/sched/bad_determinism.py"),
                 "--baseline", str(tmp_path / "empty.json")]) == 1


def test_cli_rule_selection(capsys):
    rc = main([
        str(FIXTURES / "repro/sched/bad_determinism.py"),
        "--rules", "async-discipline",
        "--no-baseline",
    ])
    assert rc == 0  # wrong rule for this fixture: nothing to report
    assert main(["--rules", "nonsense", str(FIXTURES)]) == 2
    capsys.readouterr()


def test_cli_rejects_empty_path_set(tmp_path):
    assert main([str(tmp_path)]) == 2


def test_cli_rejects_corrupt_baseline(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text('{"not": "a list"}')
    assert main([str(FIXTURES), "--baseline", str(bad)]) == 2
    capsys.readouterr()


# -- the gate -----------------------------------------------------------------


@pytest.mark.slow
def test_src_tree_is_clean_via_module_entrypoint():
    """The exact invocation `make analyze` runs must pass on src/."""
    proc = subprocess.run(
        [sys.executable, "-m", "tools.analyze", "src"],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 new finding(s)" in proc.stdout
