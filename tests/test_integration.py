"""End-to-end integration: the full CDCS loop of Fig 4 running against the
trace-driven substrate — monitors sample real access streams, the runtime
allocates and places from *monitored* curves, and the resulting placement
actually serves traffic.
"""

import pytest

from repro.cache.miss_curve import MissCurve
from repro.cache.monitor import GMon
from repro.config import small_test_config
from repro.model.system import AnalyticSystem
from repro.model.metrics import weighted_speedup
from repro.nuca import Cdcs, Jigsaw, SNuca, build_problem
from repro.sched.reconfigure import ReconfigPolicy, reconfigure
from repro.sim import BackgroundInvalidations, build_trace_simulation, scale_solution
from repro.util.units import kb
from repro.workloads.mixes import make_mix

SCALE = 16
MIX = ["omnet", "milc", "gcc", "astar"]


@pytest.mark.slow
def test_full_monitor_to_placement_loop():
    """Fig 4 end to end: run traffic, read GMONs, reconfigure from the
    monitored miss curves, and verify the cliff app still gets its working
    set — i.e. monitoring is good enough to drive allocation."""
    config = small_test_config(4, 4)
    mix = make_mix(MIX)
    problem = build_problem(mix, config)
    jig = Jigsaw("random", 3)
    initial = jig.run(problem).solution
    sim = build_trace_simulation(
        mix, config, initial, problem, capacity_scale=SCALE, seed=2
    )
    # Attach a GMON per thread VC (as CDCS does, Sec IV-G).
    monitors = {}
    for thread_id in range(len(MIX)):
        mon = GMon(
            first_way_capacity=kb(64) / SCALE,
            total_capacity=config.llc_bytes / SCALE,
            ways=32,
            seed=thread_id,
        )
        monitors[thread_id] = mon
        sim.attach_monitor(thread_id, mon)
    sim.run_until(400_000)

    # Rebuild the problem with monitored curves (scaled back up).
    monitored_problem = build_problem(mix, config)
    for vc in monitored_problem.vcs:
        mon = monitors.get(vc.vc_id)
        if mon is None:
            continue
        curve = mon.miss_curve()
        rate = sum(monitored_problem.accessors_of(vc.vc_id).values())
        total = max(curve.values[0], 1.0)
        vc.miss_curve = MissCurve(
            curve.sizes * SCALE, curve.values / total * rate
        )
    result = reconfigure(monitored_problem, ReconfigPolicy.cdcs())
    result.solution.validate(monitored_problem)
    # omnet (thread 0) has the only big cliff; monitored allocation should
    # still hand it a multi-bank VC.
    assert result.solution.vc_sizes[0] > 4 * kb(64)

    # And the reconfiguration applies cleanly to the live cache.
    sim.schedule_reconfiguration(
        450_000,
        scale_solution(result.solution, SCALE),
        BackgroundInvalidations(grace_cycles=10_000, step_cycles=50),
    )
    sim.run_until(900_000)
    assert sim.llc.check_single_residency()
    assert sim.aggregate_ipc(600_000, 900_000) > 0


@pytest.mark.slow
def test_analytic_and_trace_models_agree_on_ordering():
    """The two evaluation engines must tell the same story: CDCS's
    placement yields at least Jigsaw-random's throughput in the trace
    simulator, as it does in the analytic model."""
    config = small_test_config(4, 4)
    mix = make_mix(["omnet", "omnet", "milc", "milc", "astar", "gcc"])
    problem = build_problem(mix, config)
    system = AnalyticSystem(config)

    jig_scheme = Jigsaw("clustered", 1)
    cdcs_scheme = Cdcs(seed=1)
    jig = jig_scheme.run(problem)
    cdcs = cdcs_scheme.run(problem)

    analytic = {}
    base = system.evaluate(mix, SNuca(1))
    for result in (jig, cdcs):
        ev = system.evaluate_solution(mix, problem, result)
        analytic[result.name] = weighted_speedup(ev, base)

    trace_ipc = {}
    for result in (jig, cdcs):
        sim = build_trace_simulation(
            mix, config, result.solution, problem,
            capacity_scale=SCALE, seed=4,
        )
        sim.run_until(400_000)
        trace_ipc[result.name] = sim.aggregate_ipc(100_000, 400_000)

    assert analytic["CDCS"] >= analytic["Jigsaw+C"] - 0.02
    assert trace_ipc["CDCS"] >= trace_ipc["Jigsaw+C"] * 0.95
