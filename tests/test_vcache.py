"""Virtual caches, descriptors, and the VTB (repro.vcache)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.miss_curve import flat_curve
from repro.vcache.descriptor import BucketTarget, VCDescriptor, build_descriptor
from repro.vcache.virtual_cache import VCKind, VirtualCache
from repro.vcache.vtb import VTB


def test_descriptor_apportions_by_capacity():
    desc = build_descriptor({0: 1.0, 1: 3.0}, {0: 5, 1: 6}, num_buckets=64)
    fractions = desc.bank_fractions()
    assert fractions[0] == pytest.approx(0.25)  # paper's 1MB/3MB example
    assert fractions[1] == pytest.approx(0.75)


def test_descriptor_rounding_within_one_bucket():
    alloc = {b: 1.0 for b in range(7)}  # 64/7 is not integral
    desc = build_descriptor(alloc, {b: b for b in alloc}, num_buckets=64)
    counts = {b: f * 64 for b, f in desc.bank_fractions().items()}
    assert sum(counts.values()) == 64
    assert all(abs(c - 64 / 7) <= 1.0 for c in counts.values())


def test_descriptor_lookup_deterministic_and_distributed():
    desc = build_descriptor({0: 1.0, 1: 1.0}, {0: 0, 1: 0}, num_buckets=64)
    targets = [desc.lookup(a) for a in range(4000)]
    assert targets == [desc.lookup(a) for a in range(4000)]
    count0 = sum(1 for t in targets if t.bank == 0)
    assert 1400 < count0 < 2600  # roughly half


def test_descriptor_rejects_empty():
    with pytest.raises(ValueError):
        build_descriptor({}, {})
    with pytest.raises(ValueError):
        build_descriptor({0: 0.0}, {0: 0})
    with pytest.raises(ValueError):
        VCDescriptor([])


@given(
    st.dictionaries(
        st.integers(0, 15),
        st.floats(min_value=0.01, max_value=100.0),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=60)
def test_descriptor_fraction_error_bounded(alloc):
    """Property: bucket apportionment is within one bucket of proportional."""
    desc = build_descriptor(alloc, {b: 1 for b in alloc}, num_buckets=64)
    total = sum(alloc.values())
    for bank, frac in desc.bank_fractions().items():
        assert abs(frac - alloc[bank] / total) <= 1.0 / 64 + 1e-9


def test_vtb_lookup_and_exception_on_miss():
    vtb = VTB(max_entries=3)
    desc = build_descriptor({2: 1.0}, {2: 7}, num_buckets=8)
    vtb.install(1, desc)
    result = vtb.lookup(1, 0xABC)
    assert result.target == BucketTarget(2, 7)
    assert not result.moved
    with pytest.raises(KeyError):
        vtb.lookup(99, 0xABC)  # "exception on miss" (Fig 3)


def test_vtb_capacity_limit():
    vtb = VTB(max_entries=1)
    desc = build_descriptor({0: 1.0}, {0: 0}, num_buckets=4)
    vtb.install(1, desc)
    with pytest.raises(ValueError):
        vtb.install(2, desc)
    vtb.evict(1)
    vtb.install(2, desc)


def test_vtb_shadow_descriptor_lifecycle():
    vtb = VTB()
    old = build_descriptor({0: 1.0}, {0: 0}, num_buckets=8)
    new = build_descriptor({1: 1.0}, {1: 0}, num_buckets=8)
    vtb.install(5, old)
    vtb.begin_reconfiguration(5, new)
    assert vtb.reconfiguring
    result = vtb.lookup(5, 42)
    assert result.target.bank == 1
    assert result.old_target.bank == 0
    assert result.moved
    vtb.end_reconfiguration(5)
    assert not vtb.reconfiguring
    assert vtb.lookup(5, 42).old_target is None


def test_vtb_begin_reconfiguration_installs_when_new():
    vtb = VTB()
    desc = build_descriptor({0: 1.0}, {0: 0}, num_buckets=8)
    vtb.begin_reconfiguration(3, desc)
    assert vtb.lookup(3, 7).target.bank == 0


def test_virtual_cache_properties():
    vc = VirtualCache(
        vc_id=1, kind=VCKind.THREAD, process_id=0,
        miss_curve=flat_curve(1024, 5.0), owner_thread=1,
    )
    vc.accesses = {1: 10.0, 2: 30.0}
    vc.set_allocation({0: 1000.0, 3: 3000.0, 9: 0.0})
    assert vc.size == 4000.0
    assert vc.total_accesses == 40.0
    assert vc.intensity_capacity_product == pytest.approx(160_000.0)
    assert vc.access_fraction(3) == pytest.approx(0.75)
    assert vc.access_fraction(9) == 0.0
    assert 9 not in vc.allocation  # zero entries dropped
    assert vc.misses() == 5.0
    assert "thread" in repr(vc)
