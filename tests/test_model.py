"""Analytic engine, metrics, and energy model (repro.model)."""

import pytest

from repro.config import case_study_config, small_test_config
from repro.model.energy import EnergyParams, energy_per_instruction
from repro.model.metrics import (
    gmean,
    inverse_cdf,
    normalize_to,
    per_app_speedups,
    weighted_speedup,
)
from repro.model.system import AnalyticSystem
from repro.nuca import Cdcs, Jigsaw, RNuca, SNuca
from repro.workloads.mixes import case_study_mix, make_mix


@pytest.fixture(scope="module")
def small_system():
    return AnalyticSystem(small_test_config(4, 4))


@pytest.fixture(scope="module")
def small_mix():
    return make_mix(["omnet", "milc", "gcc", "ilbdc"])


@pytest.fixture(scope="module")
def evaluations(small_system, small_mix):
    return {
        s.name: small_system.evaluate(small_mix, s)
        for s in (SNuca(1), RNuca(1), Jigsaw("random", 1), Cdcs(seed=1))
    }


def test_ipcs_bounded_by_core_width(evaluations, small_mix):
    for ev in evaluations.values():
        for t in ev.threads:
            profile = next(
                p.profile for p in small_mix.processes
                if t.process_id == p.process_id
            )
            assert 0 < t.ipc <= 1.0 / profile.base_cpi + 1e-9


def test_miss_ratio_within_bounds(evaluations):
    for ev in evaluations.values():
        for t in ev.threads:
            assert 0.0 <= t.mpki <= t.apki + 1e-9


def test_cdcs_beats_snuca_here(evaluations):
    cdcs = evaluations["CDCS"]
    snuca = evaluations["S-NUCA"]
    assert weighted_speedup(cdcs, snuca) > 1.05


def test_snuca_onchip_latency_is_mean_distance(evaluations, small_system):
    snuca = evaluations["S-NUCA"]
    hop = small_system.config.noc.hop_latency
    for t in snuca.threads:
        expected = 2 * hop * t.mean_hops + small_system.config.cache.bank_latency
        assert t.onchip_latency == pytest.approx(expected)
        assert 1.0 < t.mean_hops < 4.0  # spread over a 4x4 mesh


def test_bandwidth_fixed_point_converged(small_system, small_mix):
    ev = small_system.evaluate(small_mix, SNuca(1))
    assert ev.dram_extra_latency >= 0
    assert 0 <= ev.dram_utilization <= small_system.dram.max_utilization + 1e-9


def test_alone_performance_cached_and_sane(small_system, small_mix):
    alone = small_system.alone_performance(small_mix)
    assert set(alone) == {p.process_id for p in small_mix.processes}
    # Alone >= in any mix (no contention); compare against S-NUCA mix run.
    ev = small_system.evaluate(small_mix, SNuca(1))
    for pid, perf in ev.process_perf.items():
        assert perf <= alone[pid] * 1.02
    again = small_system.alone_performance(small_mix)
    assert again == alone


def test_multithreaded_process_perf_is_harmonic_mean(evaluations, small_mix):
    ev = evaluations["CDCS"]
    ilbdc_pid = next(
        p.process_id for p in small_mix.processes if p.profile.name == "ilbdc"
    )
    ipcs = [t.ipc for t in ev.threads if t.process_id == ilbdc_pid]
    hmean = len(ipcs) / sum(1 / i for i in ipcs)
    assert ev.process_perf[ilbdc_pid] == pytest.approx(hmean)


def test_traffic_breakdown_keys(evaluations):
    for ev in evaluations.values():
        traffic = ev.traffic_per_instr()
        assert set(traffic) == {"L2-LLC", "LLC-Mem", "Other"}
        assert all(v >= 0 for v in traffic.values())


def test_monitor_traffic_only_for_managed_schemes(evaluations):
    assert evaluations["S-NUCA"].traffic_per_instr()["Other"] == 0.0
    assert evaluations["CDCS"].traffic_per_instr()["Other"] > 0.0


def test_energy_breakdown_positive(evaluations):
    for ev in evaluations.values():
        parts = ev.energy.as_dict()
        assert all(v > 0 for v in parts.values())
        assert ev.energy.total == pytest.approx(sum(parts.values()))


# -- the paper's headline case study, as an integration-level assertion -------


@pytest.mark.slow
def test_case_study_ordering_matches_paper():
    system = AnalyticSystem(case_study_config())
    mix = case_study_mix()
    alone = system.alone_performance(mix)
    evals = {
        s.name: system.evaluate(mix, s)
        for s in (SNuca(1), RNuca(1), Jigsaw("clustered", 1),
                  Jigsaw("random", 1), Cdcs(seed=1))
    }
    base = evals["S-NUCA"]
    ws = {
        name: weighted_speedup(ev, base, alone)
        for name, ev in evals.items()
        if name != "S-NUCA"
    }
    # Paper Table 1 ordering: CDCS > Jigsaw variants > R-NUCA > S-NUCA.
    assert ws["CDCS"] > ws["Jigsaw+R"] > ws["R-NUCA"] > 1.0
    assert ws["CDCS"] > ws["Jigsaw+C"]
    # omnet's speedup should be large under CDCS (paper: 4.0x).
    apps = per_app_speedups(evals["CDCS"], base)
    assert apps["omnet"] > 3.0


# -- metrics helpers -----------------------------------------------------------


def test_weighted_speedup_identity(evaluations):
    snuca = evaluations["S-NUCA"]
    assert weighted_speedup(snuca, snuca) == pytest.approx(1.0)


def test_weighted_speedup_with_alone_normalization(evaluations):
    a = evaluations["CDCS"]
    b = evaluations["S-NUCA"]
    alone = {pid: 1.0 for pid in a.process_perf}
    plain = weighted_speedup(a, b)
    normalized = weighted_speedup(a, b, alone)
    assert normalized == pytest.approx(
        sum(a.process_perf.values()) / sum(b.process_perf.values())
    )
    assert plain > 0 and normalized > 0


def test_gmean_and_validation():
    assert gmean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        gmean([])
    with pytest.raises(ValueError):
        gmean([1.0, -1.0])


def test_inverse_cdf_sorted_descending():
    assert inverse_cdf([1.0, 3.0, 2.0]) == [3.0, 2.0, 1.0]


def test_normalize_to():
    out = normalize_to({"a": 2.0, "b": 4.0}, "a")
    assert out == {"a": 1.0, "b": 2.0}
    with pytest.raises(ValueError):
        normalize_to({"a": 0.0}, "a")


def test_energy_static_scales_with_cpi():
    params = EnergyParams()
    slow = energy_per_instruction(params, 2.0, 0.01, 0.1, 0.001)
    fast = energy_per_instruction(params, 1.0, 0.01, 0.1, 0.001)
    assert slow.static == pytest.approx(2 * fast.static)
    assert slow.core == fast.core
    with pytest.raises(ValueError):
        energy_per_instruction(params, 0.0, 0, 0, 0)
