"""Phased (time-varying) workloads: profiles, generator, snapshots, and
phase pickup in both simulation engines."""

from __future__ import annotations

import pytest

from repro.config import small_test_config
from repro.nuca.base import build_problem, process_vc_id
from repro.nuca.jigsaw import Jigsaw
from repro.sched.reconfigure import reconfigure_epoch
from repro.sim.engine import EpochEngine
from repro.sim.setup import build_trace_simulation, schedule_phase_updates
from repro.workloads import (
    PHASED_PROFILES,
    Phase,
    PhasedProfile,
    compose_phased,
    get_profile,
    get_static_profile,
    make_mix,
    mix_is_phased,
    random_phased_mix,
    random_phased_profile,
    snapshot_mix,
)


# ---------------------------------------------------------------------------
# PhasedProfile
# ---------------------------------------------------------------------------


def test_phase_lookup_walks_and_cycles():
    profile = compose_phased(
        "a", [("omnet", 100e6), ("milc", 50e6), ("gcc", 150e6)]
    )
    assert profile.total_instructions == 300e6
    assert profile.boundaries() == [100e6, 150e6, 300e6]
    assert profile.at_instructions(0).name == "omnet"
    assert profile.at_instructions(99e6).name == "omnet"
    # Boundaries belong to the next phase (half-open segments).
    assert profile.at_instructions(100e6).name == "milc"
    assert profile.at_instructions(149e6).name == "milc"
    assert profile.at_instructions(200e6).name == "gcc"
    # The schedule cycles.
    assert profile.at_instructions(300e6).name == "omnet"
    assert profile.at_instructions(760e6).name == "gcc"
    assert profile.phase_index(110e6) == 1


def test_phased_profile_delegates_initial_phase():
    profile = get_profile("omnet~milc")
    omnet = get_static_profile("omnet")
    assert isinstance(profile, PhasedProfile)
    assert profile.base_cpi == omnet.base_cpi
    assert profile.llc_apki == omnet.llc_apki
    assert profile.threads == 1
    assert not profile.multithreaded
    assert profile.private_curve is omnet.private_curve
    assert profile.write_fraction == omnet.write_fraction
    assert profile.total_mpki(0.0) == omnet.total_mpki(0.0)


def test_phased_profile_validation():
    omnet = get_static_profile("omnet")
    ilbdc = get_static_profile("ilbdc")
    with pytest.raises(ValueError):
        PhasedProfile("empty", ())
    with pytest.raises(ValueError):
        Phase(omnet, 0.0)
    with pytest.raises(ValueError):  # 1-thread and 8-thread phases
        PhasedProfile("bad", (Phase(omnet, 1e8), Phase(ilbdc, 1e8)))


def test_registry_names_phased_apps_like_static_ones():
    assert "omnet~milc" in PHASED_PROFILES
    mix = make_mix(["omnet~milc", "gcc"])
    assert mix_is_phased(mix)
    assert mix.total_threads == 2
    with pytest.raises(KeyError) as excinfo:
        get_profile("not-an-app")
    assert "omnet~milc" in str(excinfo.value)


def test_multithreaded_phased_profile_keeps_thread_count():
    profile = get_profile("ilbdc~mgrid")
    assert profile.threads == 8
    assert profile.at_instructions(0).name == "ilbdc"
    assert profile.at_instructions(250e6).name == "mgrid"


# ---------------------------------------------------------------------------
# Seeded random generator
# ---------------------------------------------------------------------------


def test_random_phased_profile_is_deterministic():
    a = random_phased_profile(7, 3)
    b = random_phased_profile(7, 3)
    assert a.name == b.name
    assert [p.profile.name for p in a.phases] == [
        p.profile.name for p in b.phases
    ]
    assert [p.instructions for p in a.phases] == [
        p.instructions for p in b.phases
    ]
    c = random_phased_profile(7, 4)
    assert (a.name, [p.instructions for p in a.phases]) != (
        c.name, [p.instructions for p in c.phases]
    )


def test_random_phased_profile_respects_bounds():
    for index in range(20):
        profile = random_phased_profile(11, index)
        assert 2 <= len(profile.phases) <= 4
        for phase in profile.phases:
            assert 150e6 <= phase.instructions <= 600e6
            assert phase.instructions % 1e6 == 0
        names = [p.profile.name for p in profile.phases]
        assert all(x != y for x, y in zip(names, names[1:]))
        # The schedule cycles, so the wrap boundary is adjacent too.
        assert names[-1] != names[0]


def test_random_phased_mix_reproducible_and_independent():
    mix = random_phased_mix(3, 42, 1)
    again = random_phased_mix(3, 42, 1)
    assert mix.names == again.names
    assert mix_is_phased(mix)
    other = random_phased_mix(3, 42, 2)
    assert mix.names != other.names


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


def test_snapshot_mix_materializes_active_phases():
    mix = make_mix(["omnet~milc", "gcc"])
    initial = snapshot_mix(mix, {})
    assert not mix_is_phased(initial)
    assert initial.processes[0].profile.name == "omnet"
    assert initial.processes[1].profile is mix.processes[1].profile
    later = snapshot_mix(mix, {0: 400e6})
    assert later.processes[0].profile.name == "milc"
    # Ids and thread layout survive snapshotting.
    assert later.processes[0].process_id == 0
    assert list(later.processes[0].thread_ids) == [0]
    assert later.total_threads == mix.total_threads


def test_snapshot_problem_drops_in_for_original():
    config = small_test_config(4, 4)
    mix = make_mix(["ilbdc~mgrid", "omnet"])
    base = build_problem(mix, config)
    snap = build_problem(snapshot_mix(mix, {}), config)
    assert [t.thread_id for t in base.threads] == [
        t.thread_id for t in snap.threads
    ]
    assert {v.vc_id for v in base.vcs} == {v.vc_id for v in snap.vcs}


# ---------------------------------------------------------------------------
# EpochEngine phase pickup
# ---------------------------------------------------------------------------


def test_epoch_engine_advances_phases_and_reconfigures():
    config = small_test_config(4, 4)
    mix = make_mix(["omnet~milc", "gcc", "astar"])
    engine = EpochEngine(mix, build_problem(mix, config))
    assert engine.current_phases() == {0: 0}
    assert engine.current_mix().processes[0].profile.name == "omnet"

    seen = []
    for _ in range(14):
        result, problem = reconfigure_epoch(
            engine.current_mix(), config, topology=engine.problem.topology
        )
        epoch = engine.run_epoch(result.solution, 100e6)
        seen.append(epoch.phases[0])
    # omnet~milc: 300M-instruction phases; at ~0.3-0.9 IPC the run crosses
    # at least one boundary and the engine must have seen both phases.
    assert set(seen) == {0, 1}
    # Phase flips are sticky (contiguous runs, no oscillation per epoch).
    flips = sum(1 for a, b in zip(seen, seen[1:]) if a != b)
    assert 1 <= flips <= 4
    # The evaluation really follows the active curve: find the first flip
    # and check the evaluated app identity switched with it.
    first_flip = next(i for i, p in enumerate(seen[1:], 1) if p != seen[0])
    before = engine.trace.results[first_flip - 1].evaluation
    after = engine.trace.results[first_flip].evaluation
    assert before.process_app[0] == "omnet"
    assert after.process_app[0] == "milc"


def test_epoch_engine_stationary_mix_unchanged():
    config = small_test_config(4, 4)
    mix = make_mix(["omnet", "milc"])
    engine = EpochEngine(mix, build_problem(mix, config))
    assert engine.current_phases() == {}
    assert engine.current_mix() is mix
    assert engine.current_problem() is engine.problem
    solution = Jigsaw("random", 1).run(engine.problem).solution
    epoch = engine.run_epoch(solution, 1e5)
    assert epoch.phases == {}


def test_epoch_engine_snapshot_reuse_across_cycling_phases():
    config = small_test_config(4, 4)
    mix = make_mix(["omnet~milc"])
    engine = EpochEngine(mix, build_problem(mix, config))
    solution = Jigsaw("random", 1).run(engine.current_problem()).solution
    for _ in range(30):
        engine.run_epoch(solution, 200e6)
    phases = [r.phases[0] for r in engine.trace.results]
    assert set(phases) == {0, 1}
    # The schedule cycles 0 -> 1 -> 0 ...; snapshots are cached per phase.
    assert len(engine._snapshots) == 2


# ---------------------------------------------------------------------------
# TraceSimulator phase pickup
# ---------------------------------------------------------------------------


def test_set_thread_profile_validates_and_applies():
    config = small_test_config(4, 4)
    mix = make_mix(["omnet", "gcc"])
    problem = build_problem(mix, config)
    solution = Jigsaw("random", 3).run(problem).solution
    sim = build_trace_simulation(mix, config, solution, problem,
                                 capacity_scale=16, seed=3)
    with pytest.raises(KeyError):
        sim.set_thread_profile(99, base_cpi=1.0)
    sim.set_thread_profile(0, base_cpi=0.5, apki=10.0, write_fraction=0.1)
    thread = next(t for t in sim.threads if t.thread_id == 0)
    assert thread.base_cpi == 0.5
    assert thread.apki == 10.0
    assert thread.write_fraction == 0.1


@pytest.mark.slow
def test_trace_simulator_picks_up_phases_at_boundaries():
    from repro.workloads.mixes import Mix, ProcessSpec

    config = small_test_config(4, 4)
    # A short omnet phase, then a milc phase far too long to complete
    # within the horizon: the thread must switch exactly once and stay
    # switched (trace-scale schedules use trace-scale phase lengths).
    phased = compose_phased(
        "omnet~milc-trace", [("omnet", 50_000.0), ("milc", 10e6)]
    )
    mix = Mix((
        ProcessSpec(0, phased, 0),
        ProcessSpec(1, get_static_profile("gcc"), 1),
    ))
    problem = build_problem(mix, config)
    solution = Jigsaw("random", 5).run(problem).solution
    sim = build_trace_simulation(mix, config, solution, problem,
                                 capacity_scale=16, seed=5)
    horizon = 600_000.0
    schedule_phase_updates(sim, mix, period=25_000.0, horizon=horizon,
                           capacity_scale=16, seed=5)
    sim.run_until(horizon)
    thread = next(t for t in sim.threads if t.thread_id == 0)
    # The phased thread switched to milc's model (apki 26, base CPI 0.9)
    # at a boundary; the stationary gcc thread is untouched.
    assert thread.apki == pytest.approx(26.0)
    assert thread.base_cpi == pytest.approx(0.90)
    assert process_vc_id(0) not in thread.streams  # single-threaded app
    gcc_thread = next(t for t in sim.threads if t.thread_id == 1)
    assert gcc_thread.apki == pytest.approx(9.0)
