"""Delta telemetry: validation, the build_delta contract, and the
client/server streaming path.

The wire contract: a ``DeltaTelemetry`` patches the chip's last-good
problem — sketches for every changed VC, exact curves only for the dirty
ones, rates and cluster keys only where they moved.  The service must
answer exactly as if the client had shipped the full problem (pinned
below by driving twin sims), fall back loudly when the delta cannot
anchor (:class:`StaleTelemetryError` → client resends full), and cost a
small fraction of full telemetry when the workload is stationary.
"""

import asyncio

import pytest

from repro.cache.sketch import MissCurveSketch
from repro.config import small_test_config
from repro.nuca.base import build_problem
from repro.sched.engine import ReconfigEngine
from repro.service import (
    CoSchedService,
    DeltaTelemetry,
    MalformedTelemetryError,
    PlacementRequest,
    ServiceClient,
    build_delta,
    problem_digest,
    telemetry_bytes,
    validate_delta_telemetry,
)
from repro.sim.engine import EpochEngine
from repro.testing import small_problem
from repro.workloads.mixes import random_phased_mix

EPOCHS = 5
EPOCH_CYCLES = 200e6


def _sim(apps=8, seed=42, mix_id=0):
    mix = random_phased_mix(apps, seed, mix_id)
    return EpochEngine(mix, build_problem(mix, small_test_config(4, 4)))


def _problem_sequence(n=6, **kwargs):
    """Distinct per-epoch problems along one phased-mix schedule."""
    sim = _sim(**kwargs)
    engine = ReconfigEngine("incremental")
    problems = []
    for _ in range(n):
        problem = sim.current_problem()
        problems.append(problem)
        sim.run_epoch(engine.solve(problem).solution, EPOCH_CYCLES)
    return problems


def _changed_pair():
    """The first adjacent epoch pair whose problems actually differ
    (early epochs of a phased mix can be stationary)."""
    problems = _problem_sequence()
    for prev, cur in zip(problems, problems[1:]):
        if problem_digest(prev) != problem_digest(cur):
            return prev, cur
    raise AssertionError("phased mix never moved — fixture is broken")


# -- validation --------------------------------------------------------------


def test_validate_delta_accepts_built_delta():
    prev, cur = _changed_pair()
    delta = build_delta(prev, cur, "chip-0", epoch=1)
    assert delta is not None
    assert delta.sketches or delta.dirty_rates or delta.dirty_clusters
    validate_delta_telemetry(delta)  # does not raise


def _delta_template():
    prev, cur = _changed_pair()
    return build_delta(prev, cur, "chip-0", epoch=1)


def _remade(delta, **overrides):
    fields = dict(
        chip_id=delta.chip_id,
        base_digest=delta.base_digest,
        sketches=delta.sketches,
        dirty_curves=delta.dirty_curves,
        dirty_rates=delta.dirty_rates,
        dirty_clusters=delta.dirty_clusters,
        epoch=delta.epoch,
        timeout_s=delta.timeout_s,
    )
    fields.update(overrides)
    return DeltaTelemetry(**fields)


@pytest.mark.parametrize("mutate", (
    lambda d: "not a delta",
    lambda d: _remade(d, chip_id=""),
    lambda d: _remade(d, base_digest=""),
    lambda d: _remade(
        d, sketches={"vc": next(iter(d.sketches.values()))},
        dirty_curves={},
    ),
    lambda d: _remade(d, sketches={0: "not a sketch"}, dirty_curves={}),
    # dirty_curves must be a subset of sketches: a replacement curve for
    # a VC with no shipped dirty hint is a protocol violation.
    lambda d: _remade(d, sketches={}),
    lambda d: _remade(d, dirty_rates={0: {0: -1.0}}),
    lambda d: _remade(d, dirty_rates={0: {"t0": 1.0}}),
    lambda d: _remade(d, dirty_clusters={"t0": "bzip2"}),
    lambda d: _remade(d, dirty_clusters={0: 7}),
    lambda d: _remade(d, timeout_s=0.0),
), ids=(
    "not-a-delta", "empty-chip-id", "empty-digest", "non-int-vc-key",
    "non-sketch-value", "curve-without-sketch", "negative-rate",
    "non-int-thread-id", "non-int-cluster-key", "non-str-cluster-value",
    "zero-timeout",
))
def test_validate_delta_rejects_malformed(mutate):
    delta = _delta_template()
    assert delta.dirty_curves  # the curve-without-sketch case needs one
    with pytest.raises(MalformedTelemetryError) as err:
        validate_delta_telemetry(mutate(delta))
    assert err.value.code == "malformed_telemetry"


# -- build_delta -------------------------------------------------------------


def test_build_delta_none_on_structural_drift():
    base, _ = small_problem(apps=8)
    grown, _ = small_problem(apps=12)  # different VC-id set
    assert build_delta(base, grown, "chip-0") is None
    assert build_delta(grown, base, "chip-0") is None


def test_build_delta_stationary_is_empty_and_cheap():
    problem, _ = small_problem(apps=8)
    delta = build_delta(problem, problem, "chip-0")
    assert delta is not None
    assert delta.sketches == {} and delta.dirty_curves == {}
    assert delta.dirty_rates == {} and delta.dirty_clusters == {}
    assert delta.base_digest == problem_digest(problem)
    full = telemetry_bytes(PlacementRequest(chip_id="chip-0", problem=problem))
    assert telemetry_bytes(delta) * 5 <= full


def test_build_delta_ships_payloads_only_for_moved_state():
    prev, cur = _changed_pair()
    delta = build_delta(prev, cur, "chip-0", epoch=1)
    assert delta is not None
    assert set(delta.dirty_curves) <= set(delta.sketches)
    cur_ids = {vc.vc_id for vc in cur.vcs}
    for vc_id, sketch in delta.sketches.items():
        assert isinstance(sketch, MissCurveSketch)
        assert vc_id in cur_ids
    cur_keys = {t.thread_id: t.cluster_key for t in cur.threads}
    prev_keys = {t.thread_id: t.cluster_key for t in prev.threads}
    for thread_id, key in delta.dirty_clusters.items():
        assert key == cur_keys[thread_id]
        assert key != prev_keys[thread_id]
    # Deltas are priced strictly under a full dump of the same problem.
    full = telemetry_bytes(PlacementRequest(chip_id="chip-0", problem=cur))
    assert telemetry_bytes(delta) < full


def test_build_delta_patch_roundtrip_digest():
    # The contract the streaming path leans on: at threshold 0 the
    # server's patched problem is content-identical to the client's, so
    # consecutive deltas keep anchoring without a stale fallback.
    problems = _problem_sequence()
    base = problems[0]
    for cur in problems[1:]:
        delta = build_delta(base, cur, "chip-0")
        assert delta is not None
        assert delta.base_digest == problem_digest(base)
        base = cur


# -- the client/server streaming path ----------------------------------------


def test_delta_drive_matches_full_drive_bitwise():
    async def scenario(use_deltas):
        sim = _sim()
        async with CoSchedService(strategy="incremental") as service:
            client = ServiceClient(service, "chip-0")
            replies = await client.drive(
                sim, EPOCH_CYCLES, EPOCHS, use_deltas=use_deltas
            )
        return replies, client.telemetry_stats

    full_replies, full_stats = asyncio.run(scenario(False))
    delta_replies, delta_stats = asyncio.run(scenario(True))
    assert full_stats == {"delta": 0, "full": EPOCHS, "stale": 0}
    # First contact has no base to delta against; every warm epoch streams.
    assert delta_stats == {"delta": EPOCHS - 1, "full": 1, "stale": 0}
    for full, delta in zip(full_replies, delta_replies):
        assert full.ok and delta.ok
        assert delta.solution.vc_sizes == full.solution.vc_sizes
        assert delta.solution.vc_allocation == full.solution.vc_allocation
        assert delta.solution.thread_cores == full.solution.thread_cores


def test_stale_base_falls_back_to_full_and_recovers():
    problems = _problem_sequence()
    # Pick a fake base whose digest differs from what the service saw.
    fake_base = next(
        p for p in problems[1:]
        if problem_digest(p) != problem_digest(problems[0])
    )

    async def scenario():
        async with CoSchedService(strategy="incremental") as service:
            client = ServiceClient(service, "chip-0")
            await client.place(problems[0])
            # Desync: the client believes a base the service never saw.
            client._base_problem = fake_base
            reply = await client.place_delta(problems[-1])
            snap = service.stats.snapshot()
        return reply, client.telemetry_stats, snap

    reply, stats, snap = asyncio.run(scenario())
    assert reply.ok
    assert stats["stale"] == 1
    assert stats["full"] == 2  # first contact + the stale fallback
    assert snap["stale_deltas"] == 1


def test_first_contact_delta_request_counts_full():
    problem, _ = small_problem(apps=8)

    async def scenario():
        async with CoSchedService(strategy="incremental") as service:
            client = ServiceClient(service, "chip-0")
            reply = await client.place_delta(problem)
        return reply, client.telemetry_stats

    reply, stats = asyncio.run(scenario())
    assert reply.ok
    assert stats == {"delta": 0, "full": 1, "stale": 0}
