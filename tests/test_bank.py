"""Partitioned banks: the Vantage behavioral contract (repro.cache.bank)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.bank import PartitionedBank


def make_bank(capacity=64):
    return PartitionedBank(0, capacity)


def test_partition_isolation():
    """Filling one partition must not evict another's lines."""
    bank = make_bank(64)
    bank.configure_partition(1, 8)
    bank.configure_partition(2, 8)
    for addr in range(8):
        bank.access(addr, 1)
    for addr in range(100, 200):  # thrash partition 2
        bank.access(addr, 2)
    assert bank.occupancy(1) == 8
    for addr in range(8):
        assert bank.probe(addr, 1)


def test_lru_within_partition():
    bank = make_bank(16)
    bank.configure_partition(1, 2)
    bank.access(10, 1)
    bank.access(11, 1)
    bank.access(10, 1)  # refresh 10; 11 becomes LRU
    bank.access(12, 1)  # evicts 11
    assert bank.probe(10, 1)
    assert not bank.probe(11, 1)
    assert bank.probe(12, 1)


def test_hit_and_miss_counting():
    bank = make_bank(16)
    bank.configure_partition(1, 4)
    assert not bank.access(5, 1)  # miss + fill
    assert bank.access(5, 1)  # hit
    assert bank.stats.hits == 1
    assert bank.stats.misses == 1


def test_quota_sum_cannot_exceed_capacity():
    bank = make_bank(16)
    bank.configure_partition(1, 10)
    with pytest.raises(ValueError):
        bank.configure_partition(2, 7)
    bank.configure_partition(2, 6)  # exactly fits


def test_shrink_evicts_lru_first():
    bank = make_bank(16)
    bank.configure_partition(1, 4)
    for addr in range(4):
        bank.access(addr, 1)
    bank.access(0, 1)  # 0 becomes MRU; LRU order now 1,2,3,0
    bank.configure_partition(1, 2)
    assert bank.occupancy(1) == 2
    assert bank.probe(0, 1)
    assert bank.probe(3, 1)
    assert not bank.probe(1, 1)


def test_lazy_shrink_keeps_lines():
    bank = make_bank(16)
    bank.configure_partition(1, 4)
    for addr in range(4):
        bank.access(addr, 1)
    bank.configure_partition(1, 1, lazy=True)
    assert bank.occupancy(1) == 4  # overflow retained (Sec IV-H)
    bank.access(99, 1)  # insert drains overflow to fit the new quota
    assert bank.occupancy(1) <= 1


def test_zero_quota_partition_bypasses():
    bank = make_bank(16)
    bank.configure_partition(1, 0)
    # Partition with zero quota holds nothing.
    bank.configure_partition(2, 4)
    bank.configure_partition(2, 0)
    assert bank.occupancy(2) == 0


def test_extract_returns_dirty_state():
    bank = make_bank(16)
    bank.configure_partition(1, 4)
    bank.access(7, 1, write=True)
    assert bank.extract(7, 1) is True
    assert bank.extract(7, 1) is None  # already gone
    bank.access(8, 1, write=False)
    assert bank.extract(8, 1) is False


def test_fill_does_not_count_access():
    bank = make_bank(16)
    bank.configure_partition(1, 4)
    bank.fill(3, 1, dirty=True)
    assert bank.stats.accesses == 0
    assert bank.probe(3, 1)


def test_invalidate():
    bank = make_bank(16)
    bank.configure_partition(1, 4)
    bank.access(1, 1)
    assert bank.invalidate(1, 1)
    assert not bank.invalidate(1, 1)
    assert bank.stats.invalidations == 1


def test_unknown_partition_raises():
    bank = make_bank(16)
    with pytest.raises(KeyError):
        bank.access(0, 99)


def test_resident_lines_and_all_lines():
    bank = make_bank(16)
    bank.configure_partition(1, 4)
    bank.configure_partition(2, 4)
    bank.access(1, 1)
    bank.access(2, 2)
    assert bank.resident_lines(1) == [1]
    assert sorted(bank.all_lines()) == [(1, 1), (2, 2)]


@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 30), st.booleans()),
        max_size=300,
    )
)
@settings(max_examples=50)
def test_occupancy_never_exceeds_quota(ops):
    """Property: under any access sequence, each partition stays within its
    quota and the bank within its capacity."""
    bank = PartitionedBank(0, 24)
    quotas = {0: 4, 1: 8, 2: 12}
    for pid, quota in quotas.items():
        bank.configure_partition(pid, quota)
    for pid, addr, write in ops:
        bank.access(addr, pid, write)
        assert bank.occupancy(pid) <= quotas[pid]
    assert bank.occupancy() <= 24
