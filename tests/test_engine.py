"""The reconfiguration engine (repro.sched.engine): strategy equivalence,
warm-start behavior, and the partitioned solve's geometry.

The load-bearing contracts (ISSUE 5 acceptance):

* ``full`` through the engine is bitwise-identical (``==``, not allclose)
  to the pre-refactor ``reconfigure()`` pipeline on the golden fig11 mix;
* ``incremental`` with ``dirty_threshold=0`` and ``partitioned`` with one
  region are bitwise-identical to ``full``;
* warm incremental/partitioned solves stay valid and strictly cheaper in
  modeled cycles than the full pipeline.
"""

import pytest

from repro.config import small_test_config
from repro.nuca.base import build_problem
from repro.sched.engine import (
    IncrementalSolve,
    PartitionedSolve,
    ReconfigEngine,
    auto_regions,
    make_strategy,
    strategy_names,
)
from repro.sched.reconfigure import ReconfigPolicy, reconfigure
from repro.sched.thread_placement import random_thread_placement
from repro.testing import (
    GOLDEN_MIX as GOLDEN,
    assert_bitwise_equal,
    golden_problem,
    small_problem,
)
from repro.workloads.mixes import random_single_threaded_mix


# -- degenerate equivalence (the pinned contracts) --------------------------


def test_full_strategy_bitwise_matches_prerefactor_pipeline():
    problem = golden_problem()
    reference = reconfigure(problem)
    result = ReconfigEngine("full").solve(problem)
    assert_bitwise_equal(result, reference)
    assert result.strategy == "full"
    assert result.modeled_cycles() == reference.counter.total_cycles()


def test_incremental_threshold_zero_bitwise_matches_full():
    problem = golden_problem()
    reference = reconfigure(problem)
    engine = ReconfigEngine("incremental", dirty_threshold=0.0)
    cold = engine.solve(problem)
    assert_bitwise_equal(cold, reference)
    # Threshold 0 marks every VC dirty: the warm solve is the full
    # pipeline again, not a warm start.
    warm = engine.solve(problem)
    assert_bitwise_equal(warm, reference)
    assert warm.strategy == "incremental"


def test_partitioned_single_region_bitwise_matches_full():
    problem = golden_problem()
    reference = reconfigure(problem)
    result = ReconfigEngine("partitioned", regions=1).solve(problem)
    assert_bitwise_equal(result, reference)
    assert result.strategy == "partitioned"


# -- incremental warm starts ------------------------------------------------


def test_incremental_reuses_solution_when_nothing_moved():
    problem, _ = small_problem()
    engine = ReconfigEngine("incremental")
    cold = engine.solve(problem)
    warm = engine.solve(problem)
    assert warm.counter.ops == {}
    assert warm.modeled_cycles() == 0.0
    assert warm.solution.vc_allocation == cold.solution.vc_allocation
    assert warm.solution.thread_cores == cold.solution.thread_cores
    # The reused solution must not alias engine state.
    warm.solution.thread_cores.clear()
    assert engine.state.solution.thread_cores


def test_incremental_resolves_only_the_dirty_slice():
    from repro.cache.miss_curve import MissCurve

    problem, config = small_problem()
    engine = ReconfigEngine("incremental", dirty_threshold=0.05)
    engine.solve(problem)

    moved = build_problem(random_single_threaded_mix(16, 42, 0), config)
    dirty_ids = {vc.vc_id for vc in moved.vcs[:3]}
    for vc in moved.vcs[:3]:
        vc.miss_curve = MissCurve(
            vc.miss_curve.sizes, vc.miss_curve.values * 1.5
        )
    warm = engine.solve(moved)
    full = reconfigure(moved)

    warm.solution.validate(moved)
    assert set(warm.solution.thread_cores) == {
        t.thread_id for t in moved.threads
    }
    # Only the dirty slice was re-solved: strictly fewer modeled cycles.
    assert 0 < warm.counter.total_cycles() < full.counter.total_cycles()
    # Threads not touching a dirty VC keep their cores.
    clean_threads = {
        t.thread_id
        for t in moved.threads
        if not any(vc_id in dirty_ids for vc_id in t.vc_accesses)
    }
    for thread_id in clean_threads:
        assert (
            warm.solution.thread_cores[thread_id]
            == engine.state.solution.thread_cores[thread_id]
        )


def test_incremental_dirty_detection_ignores_identical_curves():
    problem, config = small_problem()
    strategy = IncrementalSolve(dirty_threshold=0.05)
    rebuilt = build_problem(random_single_threaded_mix(16, 42, 0), config)
    # Same mix rebuilt: curves are the same objects, nothing is dirty.
    assert strategy.dirty_vcs(problem, rebuilt) == set()
    assert IncrementalSolve(dirty_threshold=0).dirty_vcs(
        problem, rebuilt
    ) == {vc.vc_id for vc in rebuilt.vcs}


# -- partitioned solves -----------------------------------------------------


def test_partitioned_regions_produce_valid_cheaper_solution():
    problem = golden_problem()
    full = reconfigure(problem)
    result = ReconfigEngine("partitioned", regions=2).solve(problem)
    result.solution.validate(problem)
    assert set(result.solution.thread_cores) == {
        t.thread_id for t in problem.threads
    }
    for vc in problem.vcs:
        if sum(problem.accessors_of(vc.vc_id).values()) > 0:
            assert sum(
                result.solution.vc_allocation.get(vc.vc_id, {}).values()
            ) > 0
    # Regions solve on separate cores: the interval sees the critical
    # path, which must beat the single-shot pipeline.
    assert result.critical_path_cycles is not None
    assert result.modeled_cycles() < full.counter.total_cycles()
    assert "stitch" in result.counter.ops


def test_partitioned_respects_external_thread_placement():
    problem = golden_problem()
    external = random_thread_placement(problem, seed=7)
    result = ReconfigEngine(
        "partitioned",
        policy=ReconfigPolicy.jigsaw(),
        external_thread_cores=external,
        regions=2,
    ).solve(problem)
    result.solution.validate(problem)
    assert result.solution.thread_cores == external


def test_partitioned_rejects_indivisible_meshes():
    problem, _ = small_problem()  # 4x4
    with pytest.raises(ValueError, match="does not divide"):
        ReconfigEngine("partitioned", regions=3).solve(problem)


def test_partitioned_rejects_processes_larger_than_a_region():
    from repro.workloads.mixes import make_mix

    config = small_test_config(4, 4)
    problem = build_problem(make_mix(["ilbdc", "milc"]), config)  # 8 threads
    with pytest.raises(ValueError, match="use fewer regions"):
        ReconfigEngine("partitioned", regions=2).solve(problem)


def test_partitioned_rejects_external_placement_splitting_a_process():
    from repro.workloads.mixes import make_mix

    config = small_test_config(4, 4)
    problem = build_problem(make_mix(["ilbdc"]), config)  # one 8-thread app
    # Clustered row-major placement puts the process's 8 threads across
    # both 2x4 half-mesh regions — its shared VC cannot live in one.
    external = {t.thread_id: t.thread_id for t in problem.threads}
    with pytest.raises(ValueError, match="splits process"):
        ReconfigEngine(
            "partitioned",
            policy=ReconfigPolicy.jigsaw(),
            external_thread_cores=external,
            regions=2,
        ).solve(problem)


def test_auto_regions_targets_8x8_regions():
    from repro.geometry.mesh import Mesh

    assert auto_regions(Mesh(4, 4)) == 1
    assert auto_regions(Mesh(8, 8)) == 1
    assert auto_regions(Mesh(16, 16)) == 2
    assert auto_regions(Mesh(32, 32)) == 4
    assert auto_regions(Mesh(24, 24)) == 3


# -- cross-path equivalence -------------------------------------------------


def test_strategies_identical_through_both_kernel_paths():
    from repro.kernels import scalar_reference

    def run_all():
        problem, config = small_problem()
        out = {}
        part = ReconfigEngine("partitioned", regions=2).solve(problem)
        out["partitioned"] = part
        engine = ReconfigEngine("incremental")
        engine.solve(problem)
        moved = build_problem(
            random_single_threaded_mix(16, 42, 0), config
        )
        from repro.cache.miss_curve import MissCurve

        for vc in moved.vcs[:2]:
            vc.miss_curve = MissCurve(
                vc.miss_curve.sizes, vc.miss_curve.values * 2.0
            )
        out["incremental"] = engine.solve(moved)
        return out

    fast = run_all()
    with scalar_reference():
        slow = run_all()
    for name in fast:
        assert fast[name].solution.vc_sizes == slow[name].solution.vc_sizes
        assert (
            fast[name].solution.vc_allocation
            == slow[name].solution.vc_allocation
        )
        assert (
            fast[name].solution.thread_cores
            == slow[name].solution.thread_cores
        )
        assert fast[name].counter.ops == slow[name].counter.ops


# -- engine plumbing --------------------------------------------------------


def test_make_strategy_vocabulary():
    assert strategy_names() == [
        "full", "hierarchical", "incremental", "partitioned"
    ]
    assert isinstance(make_strategy("partitioned"), PartitionedSolve)
    with pytest.raises(ValueError, match="unknown solve strategy"):
        make_strategy("annealed")
    with pytest.raises(ValueError, match="strategy kwargs"):
        ReconfigEngine(PartitionedSolve(), regions=2)


def test_engine_threads_state_across_epochs():
    from repro.sim.engine import EpochEngine
    from repro.workloads.mixes import random_phased_mix

    config = small_test_config(4, 4)
    mix = random_phased_mix(8, 42, 0)
    sim = EpochEngine(mix, build_problem(mix, config))
    engine = ReconfigEngine("incremental")
    results = sim.run_reconfigured(engine, 2e8, 5)
    assert len(results) == 5
    assert len(sim.trace.results) == 5
    # The cold start pays the full pipeline; warm epochs re-solve only
    # what the phases moved.
    warm = [r.modeled_cycles() for r in results[1:]]
    assert max(warm) < results[0].modeled_cycles()


def test_reconfigure_epoch_reuses_prior_problem_for_stationary_mixes():
    from repro.sched.reconfigure import reconfigure_epoch
    from repro.workloads.mixes import random_phased_mix

    config = small_test_config(4, 4)
    mix = random_single_threaded_mix(8, 42, 0)
    first, problem = reconfigure_epoch(mix, config)
    again, reused = reconfigure_epoch(mix, config, prior_problem=problem)
    assert reused is problem
    assert again.solution.vc_allocation == first.solution.vc_allocation

    phased = random_phased_mix(4, 42, 0)
    _, p1 = reconfigure_epoch(phased, config)
    _, p2 = reconfigure_epoch(phased, config, prior_problem=p1)
    assert p2 is not p1  # phased curves move: the problem must rebuild
    assert p2.topology is p1.topology  # ... on the prior topology


def test_cdcs_scheme_strategy_selection():
    from repro.nuca.cdcs import Cdcs

    problem = golden_problem()
    result = Cdcs(strategy="partitioned", regions=2).run(problem)
    result.solution.validate(problem)
    assert "stitch" in result.step_cycles
    default = Cdcs().run(problem)
    reference = reconfigure(problem)
    assert default.solution.vc_allocation == reference.solution.vc_allocation


# -- dirty-detection distance edges -----------------------------------------


class _StubCurve:
    """Duck-typed curve with an empty knot grid (no points to compare)."""

    sizes = ()  # np.union1d of two empty grids is an empty grid

    def __call__(self, xs):
        return [0.0 for _ in xs]


def test_curve_distance_identity_is_free():
    from repro.cache.miss_curve import exponential_curve
    from repro.sched.engine import curve_distance
    from repro.util.units import mb

    curve = exponential_curve(mb(32), 40.0, 2.0, mb(2))
    assert curve_distance(curve, curve) == 0.0


def test_curve_distance_empty_union_grid_is_zero():
    from repro.sched.engine import curve_distance

    assert curve_distance(_StubCurve(), _StubCurve()) == 0.0


def test_curve_distance_zero_peak_is_zero_not_nan():
    from repro.cache.miss_curve import flat_curve
    from repro.sched.engine import curve_distance
    from repro.util.units import mb

    a, b = flat_curve(mb(32), 0.0), flat_curve(mb(32), 0.0)
    assert a is not b
    assert curve_distance(a, b) == 0.0


def test_curve_distance_relative_to_larger_peak():
    from repro.cache.miss_curve import flat_curve
    from repro.sched.engine import curve_distance
    from repro.util.units import mb

    assert curve_distance(
        flat_curve(mb(32), 10.0), flat_curve(mb(32), 5.0)
    ) == pytest.approx(0.5)


def test_rate_distance_edges():
    from repro.sched.engine import _rate_distance

    assert _rate_distance({}, {}) == 0.0
    assert _rate_distance({0: 10.0}, {0: 10.0}) == 0.0
    # A thread present on one side only is a full relative move.
    assert _rate_distance({0: 10.0}, {}) == pytest.approx(1.0)
    assert _rate_distance({}, {0: 10.0}) == pytest.approx(1.0)
    # Otherwise the worst per-thread relative change wins.
    assert _rate_distance(
        {0: 10.0, 1: 4.0}, {0: 15.0, 1: 4.0}
    ) == pytest.approx(5.0 / 15.0)
    # Zero-vs-zero rates do not divide by zero.
    assert _rate_distance({0: 0.0}, {0: 0.0}) == 0.0
