"""Golden equivalence: vectorized kernels vs the scalar reference path.

The vectorized epoch kernels (PR 2) are only allowed to be fast — never
different.  These tests pin that contract at three levels:

* **kernel level** — batched miss-curve evaluation, window scoring, the
  sharing fixed point, and the Eq 1/Eq 2 cost model reproduce the scalar
  implementations bitwise (``==``, not ``allclose``) on randomized inputs;
* **pipeline level** — every NUCA scheme produces an identical
  :class:`PlacementSolution` through both paths, and a full sweep point
  produces identical metrics;
* **regression level** — one golden fig11 datapoint (mix 0 of the 64-app
  sweep) is pinned against ``tests/golden/fig11_mix0.json`` within
  ``repro.kernels.EQUIV_RTOL``.

Property-style: inputs are drawn from seeded RNGs, so failures reproduce.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cache.miss_curve import (
    MissCurve,
    MissCurveBatch,
    cliff_curve,
    exponential_curve,
    flat_curve,
)
from repro.config import default_config, small_test_config
from repro.experiments.sweeps import SweepResult, evaluate_mix
from repro.geometry.mesh import Mesh, Torus
from repro.geometry.placement_math import (
    batched_window_scores,
    compact_placement,
    compact_window_weights,
    placement_mean_distance,
    window_contention,
)
from repro.kernels import EQUIV_RTOL, scalar_reference, use_vectorized
from repro.nuca import standard_schemes
from repro.nuca.base import build_problem
from repro.nuca.sharing import (
    shared_cache_occupancies,
    shared_cache_occupancies_batch,
    shared_cache_occupancies_grouped,
)
from repro.sched.allocation import allocate_latency_aware, allocate_miss_driven
from repro.sched.cost_model import (
    latency_curve,
    latency_curves_batch,
    miss_only_curve,
    miss_only_curves_batch,
    off_chip_latency_scalar,
    off_chip_latency_vectorized,
    on_chip_latency_scalar,
    on_chip_latency_vectorized,
    vc_access_rates,
)
from repro.sched.vc_placement import (
    place_optimistic_scalar,
    place_optimistic_vectorized,
)
from repro.testing import golden_mix
from repro.workloads.mixes import (
    make_mix,
    random_multithreaded_mix,
    random_single_threaded_mix,
)

GOLDEN = Path(__file__).parent / "golden" / "fig11_mix0.json"


def random_curves(rng: np.random.Generator, count: int) -> list[MissCurve]:
    curves: list[MissCurve] = []
    for _ in range(count):
        n = int(rng.integers(1, 70))
        sizes = np.unique(rng.uniform(0.0, 1e8, n))
        curves.append(MissCurve(sizes, rng.uniform(0.0, 50.0, len(sizes))))
    curves.append(flat_curve(1e8, 3.0))
    curves.append(cliff_curve(1e8, 30.0, 5e7, 2.0))
    curves.append(exponential_curve(1e8, 40.0, 1.0, 1e7))
    return curves


# ---------------------------------------------------------------------------
# Kernel level
# ---------------------------------------------------------------------------


def test_batch_eval_bitwise_matches_per_curve_interp():
    rng = np.random.default_rng(7)
    curves = random_curves(rng, 60)
    batch = MissCurveBatch(curves)
    for _ in range(20):
        queries = rng.uniform(-1e7, 1.2e8, len(curves))
        # Hit exact knots too: interpolation edges are where bugs live.
        for i, curve in enumerate(curves):
            if rng.random() < 0.4:
                queries[i] = curve.sizes[rng.integers(0, len(curve.sizes))]
        expected = np.array([float(c(q)) for c, q in zip(curves, queries)])
        assert np.array_equal(batch(queries), expected)
    grid = np.sort(rng.uniform(0.0, 1.1e8, 257))
    expected = np.vstack([np.asarray(c(grid)) for c in curves])
    assert np.array_equal(batch.at_grid(grid), expected)
    scalar = batch(12345.678)
    assert np.array_equal(
        scalar, np.array([float(c(12345.678)) for c in curves])
    )


def test_batch_affine_transform_matches_slice_closures():
    rng = np.random.default_rng(11)
    curves = random_curves(rng, 10)
    n = 16.0
    batch = MissCurveBatch(
        curves,
        arg_scale=[n] * len(curves),
        value_divisor=[n] * len(curves),
    )
    queries = rng.uniform(0.0, 1e7, len(curves))
    expected = np.array(
        [float(c(q * n)) / n for c, q in zip(curves, queries)]
    )
    assert np.array_equal(batch(queries), expected)


def test_compact_window_weights_match_fill_loop():
    topo = Mesh(6, 6)
    rng = np.random.default_rng(3)
    sizes = [0.0, 1e-13, 0.4, 1.0, 1.5, 8.2, 35.999, 36.0, 40.0] + list(
        rng.uniform(0.0, 40.0, 25)
    )
    for size_banks in sizes:
        window = compact_placement(topo, 14, size_banks)
        weights = compact_window_weights(topo, size_banks)
        assert weights.tolist() == list(window.values())


def test_batched_window_scores_match_scalar_scoring():
    rng = np.random.default_rng(5)
    for topo in (Mesh(6, 6), Mesh(4, 4), Torus(4, 4)):
        claimed = rng.uniform(0.0, 3.0, topo.tiles)
        for size_banks in (0.7, 1.0, 5.3, float(topo.tiles)):
            contention, spread = batched_window_scores(topo, claimed, size_banks)
            for candidate in range(topo.tiles):
                window = compact_placement(topo, candidate, size_banks)
                assert contention[candidate] == window_contention(claimed, window)
                assert spread[candidate] == placement_mean_distance(
                    topo, candidate, window
                )


def test_sharing_batch_bitwise_matches_scalar():
    rng = np.random.default_rng(13)
    for trial in range(6):
        curves = random_curves(rng, int(rng.integers(2, 40)))
        capacity = float(rng.uniform(1e6, 5e8))
        scalar = shared_cache_occupancies(
            [c.__call__ for c in curves], capacity
        )
        batch = shared_cache_occupancies_batch(MissCurveBatch(curves), capacity)
        assert batch == scalar


def test_sharing_grouped_bitwise_matches_per_group_scalar():
    rng = np.random.default_rng(17)
    curves = random_curves(rng, 30)
    capacity = 2e7
    group_sizes = [4, 1, 7, 0, 9, len(curves) - 21]
    groups, start = [], 0
    for size in group_sizes:
        groups.append(range(start, start + size))
        start += size
    grouped = shared_cache_occupancies_grouped(
        MissCurveBatch(curves), groups, capacity
    )
    for group in groups:
        idx = list(group)
        expected = shared_cache_occupancies(
            [curves[i].__call__ for i in idx], capacity
        )
        assert grouped[idx].tolist() == expected


def _random_problem(rng: np.random.Generator, multithreaded: bool = False):
    config = small_test_config(4, 4)
    if multithreaded:
        mix = random_multithreaded_mix(2, int(rng.integers(1, 50)), 0)
    else:
        mix = random_single_threaded_mix(
            int(rng.integers(2, 16)), int(rng.integers(1, 50)), 0
        )
    return build_problem(mix, config)


def test_latency_curve_batches_bitwise_match_scalar_rows():
    rng = np.random.default_rng(19)
    for multithreaded in (False, True):
        problem = _random_problem(rng, multithreaded)
        rates = vc_access_rates(problem)
        total_mat = latency_curves_batch(problem, rates)
        miss_mat = miss_only_curves_batch(problem, rates)
        for i, vc in enumerate(problem.vcs):
            assert np.array_equal(
                total_mat[i], latency_curve(problem, vc.miss_curve, rates[i])
            )
            assert np.array_equal(
                miss_mat[i], miss_only_curve(problem, vc.miss_curve, rates[i])
            )


def test_cost_model_vectorized_bitwise_matches_scalar():
    rng = np.random.default_rng(23)
    for multithreaded in (False, True):
        problem = _random_problem(rng, multithreaded)
        for scheme in standard_schemes(seed=2):
            solution = scheme.run(problem).solution
            assert off_chip_latency_vectorized(
                problem, solution
            ) == off_chip_latency_scalar(problem, solution)
            assert on_chip_latency_vectorized(
                problem, solution
            ) == on_chip_latency_scalar(problem, solution)


def test_place_optimistic_vectorized_identical_to_scalar():
    rng = np.random.default_rng(29)
    for multithreaded in (False, True):
        problem = _random_problem(rng, multithreaded)
        vc_sizes = allocate_latency_aware(problem)
        fast = place_optimistic_vectorized(problem, vc_sizes)
        slow = place_optimistic_scalar(problem, vc_sizes)
        assert fast.centers == slow.centers
        assert fast.footprints == slow.footprints
        assert fast.centroids == slow.centroids
        assert np.array_equal(fast.claimed, slow.claimed)


def test_allocation_identical_through_both_paths():
    rng = np.random.default_rng(31)
    problem = _random_problem(rng)
    fast_latency = allocate_latency_aware(problem)
    fast_miss = allocate_miss_driven(problem)
    with scalar_reference():
        assert not use_vectorized()
        slow_latency = allocate_latency_aware(problem)
        slow_miss = allocate_miss_driven(problem)
    assert use_vectorized()
    assert fast_latency == slow_latency
    assert fast_miss == slow_miss


# ---------------------------------------------------------------------------
# Pipeline level
# ---------------------------------------------------------------------------


def test_all_schemes_identical_solutions_through_both_paths():
    rng = np.random.default_rng(37)
    for multithreaded in (False, True):
        problem = _random_problem(rng, multithreaded)
        for scheme in standard_schemes(seed=3):
            fast = scheme.run(problem).solution
            with scalar_reference():
                slow = scheme.run(problem).solution
            assert fast.vc_sizes == slow.vc_sizes, scheme.name
            assert fast.vc_allocation == slow.vc_allocation, scheme.name
            assert fast.thread_cores == slow.thread_cores, scheme.name


def test_full_sweep_point_identical_through_both_paths():
    config = small_test_config(4, 4)
    mix = make_mix(["omnet", "milc", "gcc", "astar"])
    fast, slow = SweepResult(4, 1), SweepResult(4, 1)
    evaluate_mix(config, mix, fast, seed=0)
    with scalar_reference():
        evaluate_mix(config, mix, slow, seed=0)
    assert fast.speedups == slow.speedups
    assert fast.onchip_latency == slow.onchip_latency
    assert fast.offchip_latency == slow.offchip_latency
    assert fast.traffic == slow.traffic
    assert fast.energy == slow.energy


# ---------------------------------------------------------------------------
# Regression level: one golden fig11 datapoint
# ---------------------------------------------------------------------------


def fig11_mix0_record() -> dict:
    """Mix 0 of the fig11 sweep (64 apps, seed 42) as a plain dict."""
    from repro.experiments.sweeps import mix_record

    config = default_config()
    mix = golden_mix()
    result = SweepResult(n_apps=64, n_mixes=1)
    evaluate_mix(config, mix, result, seed=0)
    return mix_record(result)


def _assert_close(got, want, path: str) -> None:
    if isinstance(want, dict):
        assert set(got) == set(want), path
        for key in want:
            _assert_close(got[key], want[key], f"{path}.{key}")
    else:
        assert got == pytest.approx(want, rel=EQUIV_RTOL), path


@pytest.mark.slow
def test_golden_fig11_datapoint_regression():
    record = fig11_mix0_record()
    golden = json.loads(GOLDEN.read_text())
    _assert_close(record, golden, "fig11_mix0")


# ---------------------------------------------------------------------------
# Epoch engine
# ---------------------------------------------------------------------------


def test_epoch_engine_matches_direct_evaluation_and_accumulates():
    from repro.model.system import AnalyticSystem
    from repro.nuca.base import SchemeResult
    from repro.nuca.cdcs import Cdcs
    from repro.nuca.jigsaw import Jigsaw
    from repro.sim.engine import EpochEngine

    config = small_test_config(4, 4)
    mix = make_mix(["omnet", "milc", "gcc", "astar"])
    problem = build_problem(mix, config)
    first = Jigsaw("random", 1).run(problem).solution
    second = Cdcs(seed=1).run(problem).solution

    engine = EpochEngine(mix, problem)
    trace = engine.run_schedule([(first, 1e5), (second, 4e5)])
    assert len(trace.results) == 2

    direct = AnalyticSystem(config).evaluate_solution(
        mix, problem, SchemeResult("x", second)
    )
    expected = {t.thread_id: t.ipc for t in direct.threads}
    epoch = trace.results[1]
    for i, thread in enumerate(problem.threads):
        assert epoch.ipc[i] == expected[thread.thread_id]

    # Instructions = sum of ipc x cycles over epochs, per thread.
    manual = trace.results[0].ipc * 1e5 + trace.results[1].ipc * 4e5
    assert np.allclose(engine.instructions, manual, rtol=0, atol=0)
    assert np.all(engine.cycles == 5e5)
    assert engine.traffic.total() > 0
    starts = [t for t, _ in trace.aggregate_ipc_trace()]
    assert starts == [0.0, 1e5]


def test_scalar_reference_exports_env_flag_for_workers():
    """Worker processes spawned inside the block must see the flag."""
    import os

    from repro.kernels import _ENV_FLAG

    assert os.environ.get(_ENV_FLAG) != "1"
    with scalar_reference():
        assert os.environ.get(_ENV_FLAG) == "1"
        assert not use_vectorized()
    assert os.environ.get(_ENV_FLAG) != "1"
    assert use_vectorized()


def test_traffic_raw_accumulator_matches_prepriced_values():
    from repro.noc.traffic import TrafficClass, TrafficCounter

    counter = TrafficCounter()
    counter.add_flit_hops(TrafficClass.L2_LLC, 123.5)
    counter.add_flit_hops(TrafficClass.L2_LLC, 0.5)
    assert counter.flit_hops[TrafficClass.L2_LLC] == 124.0
    with pytest.raises(ValueError):
        counter.add_flit_hops(TrafficClass.OTHER, -1.0)


def test_traffic_batch_accounting_matches_scalar_loop():
    from repro.noc.traffic import TrafficClass, TrafficCounter

    rng = np.random.default_rng(41)
    hops = rng.uniform(0.0, 10.0, 50)
    counts = rng.uniform(0.0, 1e4, 50)
    batched = TrafficCounter()
    batched.add_messages(TrafficClass.L2_LLC, hops, payload_bytes=64, counts=counts)
    batched.add_request_responses(
        TrafficClass.LLC_MEM, hops, response_bytes=64, counts=counts
    )
    scalar = TrafficCounter()
    for h, c in zip(hops, counts):
        scalar.add_message(TrafficClass.L2_LLC, h, payload_bytes=64, count=c)
        scalar.add_request_response(
            TrafficClass.LLC_MEM, h, response_bytes=64, count=c
        )
    for cls in TrafficClass:
        assert batched.flit_hops[cls] == pytest.approx(
            scalar.flit_hops[cls], rel=1e-12
        )


# ---------------------------------------------------------------------------
# Phased epochs: phase lookups are functions of the instruction arrays,
# which the contract already pins — so every phased outcome (snapshots,
# reconfigurations, epoch metrics, whole study points) must be identical
# (``==``) through both kernel paths.
# ---------------------------------------------------------------------------


def _run_phased_schedule(n_epochs: int = 8, cycles: float = 150e6):
    """One adaptive phased run: reconfigure each epoch, collect state."""
    from repro.sched.reconfigure import reconfigure
    from repro.sim.engine import EpochEngine
    from repro.workloads.mixes import make_mix as mm

    config = small_test_config(4, 4)
    mix = mm(["omnet~milc", "xalancbmk~gcc", "astar", "milc"])
    engine = EpochEngine(mix, build_problem(mix, config))
    solutions = []
    for _ in range(n_epochs):
        result = reconfigure(engine.current_problem())
        engine.run_epoch(result.solution, cycles)
        solutions.append(result.solution)
    return engine, solutions


def test_phased_epoch_schedule_identical_through_both_paths():
    fast, fast_solutions = _run_phased_schedule()
    with scalar_reference():
        slow, slow_solutions = _run_phased_schedule()
    assert fast.instructions.tolist() == slow.instructions.tolist()
    assert fast.cycles.tolist() == slow.cycles.tolist()
    for f, s in zip(fast.trace.results, slow.trace.results):
        assert f.phases == s.phases
        assert f.ipc.tolist() == s.ipc.tolist()
        assert f.vc_sizes.tolist() == s.vc_sizes.tolist()
        assert f.aggregate_ipc == s.aggregate_ipc
    for f, s in zip(fast_solutions, slow_solutions):
        assert f.vc_sizes == s.vc_sizes
        assert f.vc_allocation == s.vc_allocation
        assert f.thread_cores == s.thread_cores


def test_phased_schedule_crosses_boundaries_identically():
    fast, _ = _run_phased_schedule(n_epochs=10, cycles=250e6)
    with scalar_reference():
        slow, _ = _run_phased_schedule(n_epochs=10, cycles=250e6)
    fast_phases = [r.phases for r in fast.trace.results]
    slow_phases = [r.phases for r in slow.trace.results]
    assert fast_phases == slow_phases
    # The schedule really exercises phase dynamics: both phased processes
    # must have left their initial phase at some point.
    assert any(p[0] == 1 for p in fast_phases)
    assert any(p[1] == 1 for p in fast_phases)


def test_phased_reconfiguration_solutions_identical_through_both_paths():
    from repro.sched.reconfigure import reconfigure_epoch
    from repro.workloads.mixes import random_phased_mix, snapshot_mix

    config = small_test_config(4, 4)
    mix = random_phased_mix(5, 42, 0)
    # Snapshot mid-schedule: every process somewhere inside its phases.
    clock = {p.process_id: 2e8 + 5e7 * p.process_id for p in mix.processes}
    snapshot = snapshot_mix(mix, clock)
    fast, fast_problem = reconfigure_epoch(snapshot, config)
    with scalar_reference():
        slow, slow_problem = reconfigure_epoch(snapshot, config)
    assert fast.solution.vc_sizes == slow.solution.vc_sizes
    assert fast.solution.vc_allocation == slow.solution.vc_allocation
    assert fast.solution.thread_cores == slow.solution.thread_cores
    assert [v.vc_id for v in fast_problem.vcs] == [
        v.vc_id for v in slow_problem.vcs
    ]


def test_phase_study_point_identical_through_both_paths():
    from repro.experiments.phase_study import phase_point

    config = small_test_config(4, 4)
    kwargs = dict(config=config, n_apps=4, seed=42, mix_id=2,
                  period=1e8, horizon=8e8)
    fast = phase_point(**kwargs)
    with scalar_reference():
        slow = phase_point(**kwargs)
    assert fast == slow
    assert fast["phase_changes"] >= 1  # the point exercised dynamics


def test_scalability_point_identical_through_both_paths():
    from repro.experiments.scalability import scalability_point

    kwargs = dict(tiles=16, seed=42, mix_id=0)
    fast = scalability_point(**kwargs)
    with scalar_reference():
        slow = scalability_point(**kwargs)
    # Wall-clock solve times are measurement, not simulation: everything
    # else must be identical.
    for key in fast:
        if key.startswith("solve_seconds"):
            continue
        assert fast[key] == slow[key], key


def test_phased_snapshot_curves_identical_between_paths():
    from repro.workloads.mixes import random_phased_mix, snapshot_mix

    mix = random_phased_mix(3, 7, 2)
    clock = {p.process_id: 3.3e8 for p in mix.processes}
    fast = snapshot_mix(mix, clock)
    with scalar_reference():
        slow = snapshot_mix(mix, clock)
    for f, s in zip(fast.processes, slow.processes):
        assert f.profile.name == s.profile.name
        assert f.profile.private_curve.sizes.tolist() == \
            s.profile.private_curve.sizes.tolist()
        assert f.profile.private_curve.values.tolist() == \
            s.profile.private_curve.values.tolist()
