"""Unit conversion helpers (repro.util.units)."""

import pytest

from repro.util.units import (
    CACHE_LINE_BYTES,
    KB,
    MB,
    gbps_to_bytes_per_cycle,
    kb,
    lines,
    mb,
    ms_to_cycles,
)


def test_kb_mb_are_binary_units():
    assert kb(1) == 1024
    assert mb(1) == 1024 * 1024
    assert mb(0.5) == 512 * KB


def test_mb_is_1024_kb():
    assert mb(3) == 3 * 1024 * KB == 3 * MB


def test_lines_counts_64_byte_lines():
    assert lines(kb(64)) == 1024
    assert lines(CACHE_LINE_BYTES) == 1
    assert lines(CACHE_LINE_BYTES - 1) == 0


def test_table2_channel_bandwidth():
    # 12.8 GB/s at 2 GHz = 6.4 bytes per cycle (Table 2).
    assert gbps_to_bytes_per_cycle(12.8) == pytest.approx(6.4)


def test_reconfiguration_interval_in_cycles():
    # 25 ms at 2 GHz = 50 Mcycles (Sec III).
    assert ms_to_cycles(25.0) == 50_000_000


def test_ms_to_cycles_scales_with_clock():
    assert ms_to_cycles(1.0, clock_hz=1_000_000_000) == 1_000_000
