"""Lazy/sparse geometry: bitwise equivalence with the dense builders.

PR 7 makes the three geometry matrices (distance, spiral order, sorted
distance) materialize rows on demand above
:data:`~repro.geometry.DENSE_GEOMETRY_TILE_LIMIT`.  The contract pinned
here is absolute: every access pattern the placement kernels use must
return *bitwise* what the dense build returns — the lazy path is a memory
optimization, never a modeling change.  ``dense_geometry_limit(0)``
forces small meshes lazy so the whole matrix fits in the comparison.

Also pinned: the shared row store is safe under concurrent readers (the
co-scheduling service solves chips on a thread pool), the allocation
account sees every build, and — the headline regression — a 4096-tile
problem build allocates no dense O(N²) block at all.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.geometry import (
    DENSE_GEOMETRY_TILE_LIMIT,
    Mesh,
    Torus,
    dense_geometry_bytes,
    dense_geometry_limit,
    geometry_allocation_stats,
    reset_geometry_allocation_stats,
)

MATRICES = ("distance", "order", "sorted_distance")

#: (class, side) equivalence grid: 16, 64 and 256 tiles, both metrics
#: (the torus wraps, so its spiral orders differ from the mesh's — any
#: metric-specific shortcut in the lazy path would show here).
GRID = [
    (cls, side) for cls in (Mesh, Torus) for side in (4, 8, 16)
]


def _grid_id(case) -> str:
    cls, side = case
    return f"{cls.__name__}-{side * side}t"


def _twins(cls, side):
    """(dense ndarrays by name, lazy matrices by name) for one topology.

    The mode is frozen per matrix at first property access, so both
    accesses happen inside their respective contexts.
    """
    with dense_geometry_limit(10**9):
        dense_topo = cls(side, side)
        dense = {
            name: np.array(getattr(dense_topo, name + "_matrix"))
            for name in MATRICES
        }
    with dense_geometry_limit(0):
        lazy_topo = cls(side, side)
        lazy = {
            name: getattr(lazy_topo, name + "_matrix") for name in MATRICES
        }
    return dense, lazy


@pytest.mark.parametrize("case", GRID, ids=_grid_id)
def test_lazy_mode_engages_below_forced_limit(case):
    cls, side = case
    dense, lazy = _twins(cls, side)
    for name in MATRICES:
        assert getattr(lazy[name], "is_lazy", False)
        assert not getattr(dense[name], "is_lazy", False)
        assert lazy[name].shape == dense[name].shape
        assert lazy[name].ndim == 2
        assert len(lazy[name]) == side * side
        assert lazy[name].dtype == dense[name].dtype


@pytest.mark.parametrize("case", GRID, ids=_grid_id)
def test_every_row_bitwise_equals_dense(case):
    cls, side = case
    dense, lazy = _twins(cls, side)
    n = side * side
    for name in MATRICES:
        for r in range(n):
            row = lazy[name].row(r)
            assert row.dtype == dense[name].dtype
            assert np.array_equal(row, dense[name][r])
            assert np.array_equal(lazy[name][r], dense[name][r])
        # 1-D fancy row stack: the whole matrix as one transient block.
        assert np.array_equal(
            lazy[name][list(range(n))], dense[name]
        )


@pytest.mark.parametrize("case", GRID, ids=_grid_id)
def test_scalars_and_row_sections_equal_dense(case):
    cls, side = case
    dense, lazy = _twins(cls, side)
    n = side * side
    rng = np.random.default_rng(7)
    pairs = rng.integers(0, n, size=(16, 2))
    for name in MATRICES:
        for i, j in pairs:
            assert lazy[name][int(i), int(j)] == dense[name][i, j]
        # Row sections: [i, cols] and [i, lo:hi] read through the row.
        cols = [0, n - 1, n // 2]
        assert np.array_equal(lazy[name][1, cols], dense[name][1, cols])
        assert np.array_equal(lazy[name][2, 1:5], dense[name][2, 1:5])


@pytest.mark.parametrize("case", GRID, ids=_grid_id)
def test_broadcast_lookup_equals_dense(case):
    """The Eq 2 kernel's ``dist[cores[:, None], banks[None, :]]``."""
    cls, side = case
    dense, lazy = _twins(cls, side)
    n = side * side
    rng = np.random.default_rng(11)
    cores = rng.integers(0, n, size=5)
    banks = rng.integers(0, n, size=7)
    for name in MATRICES:
        got = lazy[name][cores[:, None], banks[None, :]]
        want = dense[name][cores[:, None], banks[None, :]]
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)
    # Repeated row indices must not confuse the unique-row chunking.
    dup = np.array([3, 3, 0, 3])
    assert np.array_equal(
        lazy["distance"][dup[:, None], banks[None, :]],
        dense["distance"][dup[:, None], banks[None, :]],
    )


@pytest.mark.parametrize("case", GRID, ids=_grid_id)
def test_column_reads_equal_dense(case):
    cls, side = case
    dense, lazy = _twins(cls, side)
    n = side * side
    # Single columns and column blocks ride the hop metric's symmetry —
    # distance only.
    assert np.array_equal(lazy["distance"][:, 3], dense["distance"][:, 3])
    cols = [n - 1, 0, n // 3]
    assert np.array_equal(
        lazy["distance"][:, cols], dense["distance"][:, cols]
    )
    for name in ("order", "sorted_distance"):
        with pytest.raises(NotImplementedError, match="not symmetric"):
            lazy[name][:, 3]
    # Window slices need no symmetry: chunked row walks serve any matrix
    # (the contention kernels read [:, :m] spiral windows).
    for name in MATRICES:
        assert np.array_equal(lazy[name][:, :5], dense[name][:, :5])
        assert np.array_equal(lazy[name][:, 2:9:2], dense[name][:, 2:9:2])


@pytest.mark.parametrize("case", GRID, ids=_grid_id)
def test_row_means_and_derived_queries_equal_dense(case):
    cls, side = case
    with dense_geometry_limit(10**9):
        dense_topo = cls(side, side)
        dense_means = dense_topo.distance_matrix.mean(axis=1)
        dense_center = dense_topo.center_tile()
        dense_spirals = [
            dense_topo.tiles_by_distance(c) for c in range(side * side)
        ]
        dense_mean_d = [
            dense_topo.mean_distance(c) for c in range(side * side)
        ]
    with dense_geometry_limit(0):
        lazy_topo = cls(side, side)
        assert lazy_topo.distance_matrix.is_lazy
        assert np.array_equal(
            lazy_topo.distance_matrix.mean(axis=1), dense_means
        )
        assert lazy_topo.center_tile() == dense_center
        for c in range(side * side):
            assert lazy_topo.tiles_by_distance(c) == dense_spirals[c]
            assert lazy_topo.mean_distance(c) == dense_mean_d[c]


@pytest.mark.parametrize("case", GRID, ids=_grid_id)
def test_asarray_refuses_to_densify(case):
    cls, side = case
    _, lazy = _twins(cls, side)
    for name in MATRICES:
        with pytest.raises(RuntimeError, match="refusing to densify"):
            np.asarray(lazy[name])
        with pytest.raises(RuntimeError, match="refusing to densify"):
            np.array(lazy[name])


def test_unsupported_indexing_raises_not_silently_densifies():
    _, lazy = _twins(Mesh, 4)
    mat = lazy["distance"]
    with pytest.raises(NotImplementedError):
        mat[0:3]  # row slices are not a kernel pattern
    with pytest.raises(NotImplementedError):
        mat[np.zeros((2, 2), dtype=np.int64)]  # 2-D row index array
    with pytest.raises(IndexError):
        mat.row(16)
    with pytest.raises(IndexError):
        mat.row(-1)


def test_mean_only_reduces_along_rows():
    _, lazy = _twins(Mesh, 4)
    with pytest.raises(NotImplementedError):
        lazy["distance"].mean()
    with pytest.raises(NotImplementedError):
        lazy["distance"].mean(axis=0)


def test_default_limit_keeps_paper_scale_dense():
    """The paper's 64-tile chip (and everything up to 1024 tiles) still
    builds dense ndarrays — the lazy path only engages beyond the limit,
    so pre-PR-7 behavior is untouched at evaluated scales."""
    assert DENSE_GEOMETRY_TILE_LIMIT == 1024
    topo = Mesh(8, 8)
    assert isinstance(topo.distance_matrix, np.ndarray)
    assert not getattr(topo.order_matrix, "is_lazy", False)


# -- shared store under concurrency -----------------------------------------


def test_shared_row_store_safe_under_concurrent_readers():
    """Eight topology instances of the same dimensions, eight threads
    reading every row of each concurrently: all reads are bitwise the
    dense matrix, and all instances share one store with exactly one
    cached array per row (the share-one-array invariant)."""
    side = 12  # 144 tiles; dimensions unused elsewhere in the suite
    n = side * side
    with dense_geometry_limit(10**9):
        dense = np.array(Mesh(side, side).distance_matrix)
    with dense_geometry_limit(0):
        topos = [Mesh(side, side) for _ in range(8)]
        mats = [t.distance_matrix for t in topos]
    assert all(m.is_lazy for m in mats)
    assert len({id(m._store) for m in mats}) == 1

    start = threading.Barrier(8)

    def read_all(mat):
        start.wait()  # maximize overlap on the cold store
        order = np.random.default_rng(id(mat) % 2**32).permutation(n)
        return np.stack([mat.row(int(r)) for r in order])[np.argsort(order)]

    with ThreadPoolExecutor(max_workers=8) as pool:
        stacks = list(pool.map(read_all, mats))
    for stack in stacks:
        assert np.array_equal(stack, dense)
    store = mats[0]._store
    # The row caches are guarded mappings under REPRO_CHECK_LOCKS=1, so
    # even test-only introspection must hold the geometry lock.
    from repro.geometry import mesh as mesh_mod

    with mesh_mod._GEOMETRY_LOCK:
        assert len(store.rows["distance"]) == n
        # Re-reads serve the one cached array, not fresh copies.
        cached_ids = {r: id(arr) for r, arr in store.rows["distance"].items()}
    assert all(id(mats[3].row(r)) == cached_ids[r] for r in range(n))


# -- allocation accounting ---------------------------------------------------


def test_allocation_stats_see_lazy_rows_once():
    reset_geometry_allocation_stats()
    with dense_geometry_limit(0):
        topo = Mesh(5, 7)  # dimensions unused elsewhere in the suite
        topo.distance_matrix.row(0)
        topo.distance_matrix.row(0)  # cache hit: not recounted
        topo.order_matrix.row(3)
    stats = geometry_allocation_stats()
    assert stats.dense_matrices == 0
    assert stats.lazy_rows == 2
    assert stats.cached_bytes == 35 * 4 + 35 * 8  # one int32 + one int64 row
    assert stats.cached_mib() == stats.cached_bytes / 2**20


def test_allocation_stats_see_dense_builds():
    reset_geometry_allocation_stats()
    with dense_geometry_limit(10**9):
        topo = Mesh(7, 5)  # distinct key from the (5, 7) mesh above
        topo.distance_matrix
        topo.order_matrix
    stats = geometry_allocation_stats()
    assert stats.dense_matrices == 2
    assert stats.lazy_rows == 0
    assert stats.cached_bytes == 35 * 35 * 4 + 35 * 35 * 8
    assert stats.peak_block_bytes == 35 * 35 * 8


def test_dense_reference_bytes():
    # int32 distance + int64 order + int32 sorted distance
    assert dense_geometry_bytes(16384) == 16384 * 16384 * 16
    assert dense_geometry_bytes(64) == 64 * 64 * 16


def test_4096_tile_problem_build_allocates_no_dense_matrix():
    """The PR 7 headline regression: building a full 4096-tile placement
    problem (memory-controller geometry included) must never allocate a
    dense O(N²) geometry block — neither cached nor transient."""
    from repro.experiments.scalability import scaled_mesh_config
    from repro.nuca.base import build_problem
    from repro.workloads.mixes import random_single_threaded_mix

    tiles = 4096
    reset_geometry_allocation_stats()
    mix = random_single_threaded_mix(64, 42, 0)
    problem = build_problem(mix, scaled_mesh_config(tiles))
    assert problem.topology.tiles == tiles
    for name in MATRICES:
        assert getattr(problem.topology, name + "_matrix").is_lazy

    stats = geometry_allocation_stats()
    one_dense_int32 = tiles * tiles * 4
    assert stats.dense_matrices == 0
    # The largest single block (including transients) stays far under one
    # dense int32 matrix — chunked row walks, never a full build.
    assert stats.peak_block_bytes < one_dense_int32 // 4
    # And what the build retains is a sliver of the dense trio.
    assert stats.cached_bytes < dense_geometry_bytes(tiles) // 10


# -- hierarchical scalability, end to end ------------------------------------


def _interval_mcycles() -> float:
    from repro.experiments.scalability import scaled_mesh_config

    config = scaled_mesh_config(4096)
    return config.scheduler.reconfigure_interval_cycles / 1e6


def test_576_tile_hierarchical_point_fits_interval():
    """Fast tier-1 smoke of the full scalability job body on a 24x24
    mesh: the hierarchical solve's modeled critical path fits the 50
    Mcycle reconfiguration interval."""
    from repro.experiments.scalability import scalability_point

    record = scalability_point(576, seed=42, mix_id=0,
                               strategy="hierarchical")
    assert record["strategy"] == "hierarchical"
    assert record["n_apps"] == 576
    assert 0.0 < record["modeled_mcycles"] < _interval_mcycles()
    assert record["step_mcycles"]["stitch"] > 0.0
    assert record["aggregate_ipc"] > 0.0


@pytest.mark.slow
def test_4096_tile_hierarchical_point_fits_interval():
    """The PR 7 acceptance gate, end to end through the experiment job
    body: a 4096-tile hierarchical solve fits the 50 Mcycle interval
    (modeled critical path), where the flat full solve cannot."""
    from repro.experiments.scalability import scalability_point

    record = scalability_point(4096, seed=42, mix_id=0,
                               strategy="hierarchical")
    interval = _interval_mcycles()
    assert record["modeled_mcycles"] < interval
    # The critical path beats serializing the whole op count — the
    # parallel hierarchy is what buys the headroom.
    assert record["modeled_mcycles"] < record["model_mcycles"]
    assert sum(record["step_mcycles"].values()) == pytest.approx(
        record["model_mcycles"]
    )
