"""Property sweep over the engine's degenerate-equivalence contracts.

``tests/test_engine.py`` pins the contracts on hand-picked points; this
module sweeps them over ~50 seeded random (mesh, mix, dynamism) cases:

* ``incremental`` with ``dirty_threshold=0`` and ``partitioned`` with one
  region are bitwise-equal to ``full`` at *every* epoch of a warm loop,
  not just cold;
* warm-engine state never aliases caller-visible arrays — mutating a
  returned (or ``last_solution``) placement cannot corrupt later solves.

The sweep is deterministic: cases are drawn once from a fixed master
seed, so a failure reproduces by its parametrize id.
"""

import random

import pytest

from repro.config import small_test_config
from repro.nuca.base import build_problem
from repro.sched.engine import ReconfigEngine
from repro.sim.engine import EpochEngine
from repro.testing import assert_bitwise_equal, small_problem
from repro.workloads.mixes import (
    random_phased_mix,
    random_single_threaded_mix,
)

EPOCHS = 3
EPOCH_CYCLES = 200e6

#: Strategy arms that must collapse to the full pipeline bit-for-bit.
DEGENERATE = (
    ("incremental", {"dirty_threshold": 0.0}),
    ("partitioned", {"regions": 1}),
)


def _draw_cases(count: int, master_seed: int = 20260807):
    """*count* random (side, apps, seed, mix_id, phased) tuples."""
    rng = random.Random(master_seed)
    cases = []
    for _ in range(count):
        side = rng.choice((2, 4, 4, 4, 8))
        apps = rng.randint(2, side * side)
        cases.append((
            side,
            apps,
            rng.randint(0, 9999),
            rng.randint(0, 7),
            rng.random() < 0.5,
        ))
    return cases


CASES = _draw_cases(50)


def _case_id(case) -> str:
    side, apps, seed, mix_id, phased = case
    arm = "phased" if phased else "stationary"
    return f"{side}x{side}-{apps}a-s{seed}-m{mix_id}-{arm}"


def _build_sim(side, apps, seed, mix_id, phased) -> EpochEngine:
    config = small_test_config(side, side)
    if phased:
        mix = random_phased_mix(apps, seed, mix_id)
    else:
        mix = random_single_threaded_mix(apps, seed, mix_id)
    return EpochEngine(mix, build_problem(mix, config))


@pytest.mark.parametrize("case", CASES, ids=_case_id)
def test_degenerate_strategies_bitwise_equal_full(case):
    """threshold=0 / regions=1 match ``full`` at every warm epoch."""
    reference = _build_sim(*case).run_reconfigured(
        ReconfigEngine("full"), EPOCH_CYCLES, EPOCHS
    )
    for strategy, kwargs in DEGENERATE:
        results = _build_sim(*case).run_reconfigured(
            ReconfigEngine(strategy, **kwargs), EPOCH_CYCLES, EPOCHS
        )
        assert len(results) == len(reference)
        for got, want in zip(results, reference):
            # Op counts differ (the degenerate strategies still pay
            # their bookkeeping); the *placements* must be identical.
            assert got.solution.vc_sizes == want.solution.vc_sizes
            assert (got.solution.vc_allocation
                    == want.solution.vc_allocation)
            assert got.solution.thread_cores == want.solution.thread_cores


@pytest.mark.parametrize("strategy", ("full", "incremental", "partitioned"))
def test_warm_state_never_aliases_returned_solutions(strategy):
    """Corrupting a returned placement must not change later solves."""
    problem, _ = small_problem()
    clean = ReconfigEngine(strategy)
    dirty = ReconfigEngine(strategy)

    clean.solve(problem)  # keep both engines equally warm
    first = dirty.solve(problem)
    # The caller goes rogue: scribble over every mapping in the reply.
    for vc_id in list(first.solution.vc_sizes):
        first.solution.vc_sizes[vc_id] = -1
    for per_bank in first.solution.vc_allocation.values():
        for bank in list(per_bank):
            per_bank[bank] = -1
    for thread_id in list(first.solution.thread_cores):
        first.solution.thread_cores[thread_id] = -1

    # Warm state must be untouched: the next solve matches an engine
    # whose results were never mutated.
    assert_bitwise_equal(dirty.solve(problem), clean.solve(problem))


@pytest.mark.parametrize("strategy", ("full", "incremental", "partitioned"))
def test_last_solution_is_a_detached_copy(strategy):
    problem, _ = small_problem()
    engine = ReconfigEngine(strategy)
    result = engine.solve(problem)

    snap = engine.last_solution()
    assert snap is not result.solution
    assert snap.vc_sizes == result.solution.vc_sizes
    assert snap.vc_allocation == result.solution.vc_allocation
    assert snap.thread_cores == result.solution.thread_cores
    # Distinct containers all the way down.
    for vc_id in snap.vc_allocation:
        assert (snap.vc_allocation[vc_id]
                is not result.solution.vc_allocation[vc_id])

    snap.vc_sizes.clear()
    snap.thread_cores.clear()
    for per_bank in snap.vc_allocation.values():
        per_bank.clear()
    untouched = ReconfigEngine(strategy)
    untouched.solve(problem)  # same warmth as `engine`
    assert_bitwise_equal(engine.solve(problem), untouched.solve(problem))


def test_last_solution_none_before_first_solve():
    assert ReconfigEngine("full").last_solution() is None
