"""Eq 1 / Eq 2 cost model and latency curves (repro.sched.cost_model)."""

import numpy as np
import pytest

from repro.cache.miss_curve import cliff_curve, flat_curve
from repro.config import small_test_config
from repro.geometry.mesh import Mesh
from repro.sched.cost_model import (
    latency_curve,
    miss_only_curve,
    off_chip_latency,
    on_chip_latency,
    optimistic_on_chip_curve,
    total_latency,
    vc_mean_distance,
)
from repro.sched.problem import PlacementProblem, PlacementSolution, ThreadSpec
from repro.util.units import kb
from repro.vcache.virtual_cache import VCKind, VirtualCache


def tiny_problem():
    config = small_test_config(2, 2)
    topo = Mesh(2, 2)
    vc = VirtualCache(
        vc_id=0, kind=VCKind.THREAD, process_id=0,
        miss_curve=cliff_curve(kb(512), 10.0, kb(256), 2.0), owner_thread=0,
    )
    vc.accesses[0] = 100.0
    thread = ThreadSpec(0, 0, {0: 100.0})
    return PlacementProblem(
        config=config, topology=topo, vcs=[vc], threads=[thread],
        mem_latency=150.0,
    )


def test_off_chip_latency_eq1():
    problem = tiny_problem()
    solution = PlacementSolution(
        vc_sizes={0: kb(256)}, vc_allocation={0: {0: kb(256)}},
        thread_cores={0: 0},
    )
    # Eq 1: rate x miss_fraction x MemLatency = 100 x (2/100) x 150.
    assert off_chip_latency(problem, solution) == pytest.approx(
        100.0 * (2.0 / 100.0) * 150.0
    )


def test_on_chip_latency_eq2():
    problem = tiny_problem()
    # Half the capacity local, half one hop away.
    solution = PlacementSolution(
        vc_sizes={0: kb(256)},
        vc_allocation={0: {0: kb(128), 1: kb(128)}},
        thread_cores={0: 0},
    )
    per_hop = 2.0 * problem.config.noc.hop_latency
    # 100 accesses x (0.5 x 0 + 0.5 x 1 hop) x round trip.
    assert on_chip_latency(problem, solution) == pytest.approx(
        100.0 * 0.5 * per_hop
    )
    assert total_latency(problem, solution) == pytest.approx(
        on_chip_latency(problem, solution)
        + off_chip_latency(problem, solution)
    )


def test_vc_mean_distance():
    problem = tiny_problem()
    solution = PlacementSolution(
        vc_sizes={0: kb(256)},
        vc_allocation={0: {0: kb(64), 3: kb(192)}},
        thread_cores={0: 0},
    )
    # 25% at 0 hops, 75% at 2 hops.
    assert vc_mean_distance(problem, solution, 0) == pytest.approx(1.5)


def test_optimistic_curve_monotone_nondecreasing():
    problem = tiny_problem()
    table = optimistic_on_chip_curve(problem)
    assert table[0] == 0.0
    assert np.all(np.diff(table) >= -1e-12)


def test_latency_curve_has_sweet_spot():
    """Fig 5: off-chip falls then flattens, on-chip keeps rising, so the
    total-latency curve has an interior minimum for cliff apps."""
    problem = tiny_problem()
    curve = latency_curve(
        problem, cliff_curve(kb(2048), 50.0, kb(128), 1.0), access_rate=100.0
    )
    best = int(np.argmin(curve))
    assert 0 < best < len(curve) - 1
    assert curve[-1] > curve[best]  # more capacity is worse past the spot


def test_latency_curve_flat_app_prefers_zero():
    problem = tiny_problem()
    curve = latency_curve(problem, flat_curve(kb(2048), 20.0), access_rate=50.0)
    assert int(np.argmin(curve)) == 0  # streaming apps want no capacity


def test_miss_only_curve_monotone_decreasing():
    problem = tiny_problem()
    curve = miss_only_curve(
        problem, cliff_curve(kb(2048), 50.0, kb(128), 1.0), access_rate=100.0
    )
    assert np.all(np.diff(curve) <= 1e-9)


def test_latency_curve_rejects_negative_rate():
    problem = tiny_problem()
    with pytest.raises(ValueError):
        latency_curve(problem, flat_curve(kb(64), 1.0), access_rate=-1.0)


def test_problem_validation():
    config = small_test_config(2, 2)
    with pytest.raises(ValueError):
        PlacementProblem(
            config=config, topology=Mesh(3, 3), vcs=[], threads=[]
        )
    threads = [ThreadSpec(i, i, {}) for i in range(5)]
    with pytest.raises(ValueError):
        PlacementProblem(
            config=config, topology=Mesh(2, 2), vcs=[], threads=threads
        )


def test_solution_validate_catches_overcommit():
    problem = tiny_problem()
    bad = PlacementSolution(
        vc_sizes={0: kb(9999)},
        vc_allocation={0: {0: kb(9999)}},
        thread_cores={0: 0},
    )
    with pytest.raises(AssertionError):
        bad.validate(problem)


def test_solution_validate_catches_core_collision():
    problem = tiny_problem()
    sol = PlacementSolution(
        vc_sizes={}, vc_allocation={}, thread_cores={0: 1, 1: 1}
    )
    with pytest.raises(AssertionError):
        sol.validate(problem)
