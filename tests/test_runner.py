"""The experiment runner: jobs, the content-hashed store, the pool.

Covers the PR's acceptance criteria directly: a warm cache executes zero
jobs, ``jobs=4`` is bitwise identical to ``jobs=1``, and corrupted cache
entries are evicted and recomputed rather than crashing a sweep.
"""

import pickle

import pytest

from repro.config import small_test_config
from repro.experiments import run_factor_analysis, run_sweep, sweep_jobs
from repro.runner import (
    MISS,
    Job,
    NullStore,
    ProcessPoolRunner,
    ResultStore,
    run_jobs,
)
from repro.util.hashing import canonical_repr, content_digest


# Module-level job bodies (jobs must pickle by reference).
def _square(x):
    return x * x


def _global_rng_sample(tag):
    """Deliberately uses the *global* numpy RNG to prove per-job seeding."""
    import numpy as np

    return (tag, float(np.random.random()))


def _boom():
    raise RuntimeError("job failure")


# -- content hashing ---------------------------------------------------------


def test_content_digest_stable_and_sensitive():
    cfg = small_test_config(4, 4)
    assert content_digest(cfg) == content_digest(small_test_config(4, 4))
    assert content_digest(cfg) != content_digest(small_test_config(4, 8))
    assert content_digest(1) != content_digest("1")
    assert content_digest(1.0) != content_digest(1)
    assert content_digest([1, 2]) != content_digest((1, 2))
    assert content_digest({"a": 1, "b": 2}) == content_digest(
        {"b": 2, "a": 1}
    )


def test_canonical_repr_rejects_unhashable_objects():
    class Opaque:
        pass

    with pytest.raises(TypeError, match="canonicalize"):
        canonical_repr(Opaque())


def test_job_digest_covers_fn_kwargs_and_seed():
    base = Job(fn=_square, kwargs={"x": 3}, seed=1)
    assert base.digest() == Job(fn=_square, kwargs={"x": 3}, seed=1).digest()
    assert base.digest() != Job(fn=_square, kwargs={"x": 4}, seed=1).digest()
    assert base.digest() != Job(fn=_square, kwargs={"x": 3}, seed=2).digest()
    assert (
        base.digest()
        != Job(fn=_global_rng_sample, kwargs={"tag": 3}, seed=1).digest()
    )
    # The label is presentation-only: never part of the identity.
    assert base.digest() == Job(fn=_square, kwargs={"x": 3}, seed=1,
                                label="renamed").digest()


# -- store: hit/miss, corruption recovery ------------------------------------


def test_store_miss_then_hit(tmp_path):
    store = ResultStore(tmp_path)
    assert store.load("ab" * 32) is MISS
    store.store("ab" * 32, {"value": 7})
    assert store.load("ab" * 32) == {"value": 7}
    assert store.stats.hits == 1 and store.stats.misses == 1
    assert len(store) == 1


def test_store_roundtrips_none_result(tmp_path):
    store = ResultStore(tmp_path)
    digest = "cd" * 32
    store.store(digest, None)
    assert store.load(digest) is None  # a cached None is not a miss


def test_store_recovers_from_truncated_entry(tmp_path):
    store = ResultStore(tmp_path)
    digest = "ef" * 32
    store.store(digest, [1, 2, 3])
    path = store.path(digest)
    path.write_bytes(path.read_bytes()[:10])  # truncate mid-pickle
    assert store.load(digest) is MISS
    assert store.stats.evicted_corrupt == 1
    assert not path.exists()  # evicted, so the next run recomputes + stores
    store.store(digest, [1, 2, 3])
    assert store.load(digest) == [1, 2, 3]


def test_store_rejects_digest_mismatch(tmp_path):
    store = ResultStore(tmp_path)
    good, evil = "11" * 32, "22" * 32
    store.store(good, "payload")
    # Simulate a mis-filed entry (e.g. a partial copy between cache dirs).
    store.path(evil).parent.mkdir(parents=True, exist_ok=True)
    store.path(evil).write_bytes(store.path(good).read_bytes())
    assert store.load(evil) is MISS
    assert not store.path(evil).exists()


def test_store_rejects_non_dict_payload(tmp_path):
    store = ResultStore(tmp_path)
    digest = "33" * 32
    path = store.path(digest)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps(["not", "an", "entry"]))
    assert store.load(digest) is MISS


def test_null_store_never_hits():
    store = NullStore()
    store.store("44" * 32, "x")
    assert store.load("44" * 32) is MISS
    assert len(store) == 0


# -- pool: execution, caching, parallel determinism ---------------------------


def _jobs(n=6, seed=0):
    return [Job(fn=_square, kwargs={"x": i}, seed=seed) for i in range(n)]


def test_runner_serial_results_in_order():
    runner = ProcessPoolRunner()
    assert runner.map(_jobs()) == [0, 1, 4, 9, 16, 25]
    assert runner.stats.executed == 6 and runner.stats.cached == 0


def test_runner_rejects_zero_workers():
    with pytest.raises(ValueError):
        ProcessPoolRunner(jobs=0)


def test_runner_parallel_results_in_order():
    runner = ProcessPoolRunner(jobs=4)
    assert runner.map(_jobs(8)) == [i * i for i in range(8)]


def test_runner_warm_cache_executes_zero_jobs(tmp_path):
    cold = ProcessPoolRunner(jobs=2, store=ResultStore(tmp_path))
    first = cold.map(_jobs())
    assert cold.stats.executed == 6
    warm = ProcessPoolRunner(jobs=2, store=ResultStore(tmp_path))
    second = warm.map(_jobs())
    assert second == first
    assert warm.stats.executed == 0
    assert warm.stats.cached == 6


def test_runner_partial_cache_executes_only_new_points(tmp_path):
    ProcessPoolRunner(store=ResultStore(tmp_path)).map(_jobs(4))
    runner = ProcessPoolRunner(store=ResultStore(tmp_path))
    assert runner.map(_jobs(6)) == [0, 1, 4, 9, 16, 25]
    assert runner.stats.cached == 4 and runner.stats.executed == 2


def test_runner_changed_seed_misses_cache(tmp_path):
    ProcessPoolRunner(store=ResultStore(tmp_path)).map(_jobs(3, seed=0))
    runner = ProcessPoolRunner(store=ResultStore(tmp_path))
    runner.map(_jobs(3, seed=1))
    assert runner.stats.cached == 0 and runner.stats.executed == 3


def test_runner_progress_callback_sees_every_job(tmp_path):
    seen = []
    runner = ProcessPoolRunner(
        store=ResultStore(tmp_path), progress=lambda s: seen.append(
            (s.completed, s.cached)
        )
    )
    runner.map(_jobs(3))
    assert seen == [(1, 0), (2, 0), (3, 0)]


def test_runner_propagates_job_exception():
    runner = ProcessPoolRunner()
    with pytest.raises(RuntimeError, match="job failure"):
        runner.map([Job(fn=_boom)])


def test_per_job_seeding_is_order_and_worker_independent():
    jobs = [Job(fn=_global_rng_sample, kwargs={"tag": i}, seed=9)
            for i in range(6)]
    serial = ProcessPoolRunner(jobs=1).map(jobs)
    parallel = ProcessPoolRunner(jobs=3).map(jobs)
    reversed_serial = ProcessPoolRunner(jobs=1).map(jobs[::-1])[::-1]
    assert serial == parallel == reversed_serial
    # Different jobs draw from different streams.
    assert len({v for _, v in serial}) == 6


def test_run_jobs_defaults_to_plain_serial_execution():
    assert run_jobs(_jobs(3)) == [0, 1, 4]


def test_in_process_execution_preserves_callers_global_rng():
    import numpy as np

    np.random.seed(123)
    jobs = [Job(fn=_global_rng_sample, kwargs={"tag": i}) for i in range(3)]
    ProcessPoolRunner(jobs=1).map(jobs)  # in-process: reseeds globals
    after = float(np.random.random())
    np.random.seed(123)
    assert after == float(np.random.random())


def test_failed_parallel_job_persists_completed_siblings(tmp_path):
    # Four fast jobs ahead of one failing job: by the time the failure
    # surfaces, the successes must already be in the store.
    ok = _jobs(4)
    jobs = ok + [Job(fn=_boom)]
    runner = ProcessPoolRunner(jobs=2, store=ResultStore(tmp_path))
    with pytest.raises(RuntimeError, match="job failure"):
        runner.map(jobs)
    warm = ProcessPoolRunner(jobs=2, store=ResultStore(tmp_path))
    assert warm.map(ok) == [0, 1, 4, 9]
    assert warm.stats.executed == 0 and warm.stats.cached == 4


# -- the acceptance criteria on a real sweep ---------------------------------


def test_sweep_jobs_one_job_per_mix():
    jobs = sweep_jobs(small_test_config(4, 4), n_apps=2, n_mixes=5, seed=3)
    assert len(jobs) == 5
    assert len({j.digest() for j in jobs}) == 5


def test_sweep_parallel_bitwise_identical_to_serial():
    cfg = small_test_config(4, 4)
    serial = run_sweep(cfg, n_apps=4, n_mixes=4, seed=7,
                       runner=ProcessPoolRunner(jobs=1))
    parallel = run_sweep(cfg, n_apps=4, n_mixes=4, seed=7,
                         runner=ProcessPoolRunner(jobs=4))
    assert serial == parallel  # dataclass equality: every float bitwise


def test_sweep_matches_legacy_inline_path():
    from repro.model.system import AnalyticSystem

    cfg = small_test_config(4, 4)
    via_jobs = run_sweep(cfg, n_apps=4, n_mixes=3, seed=7)
    # Forcing schemes= takes the legacy loop; seeds/mixes are identical.
    inline = run_sweep(cfg, n_apps=4, n_mixes=3, seed=7,
                       system=AnalyticSystem(cfg))
    assert via_jobs == inline


def test_repeated_sweep_with_warm_cache_executes_zero_jobs(tmp_path):
    cfg = small_test_config(4, 4)
    cold = ProcessPoolRunner(jobs=2, store=ResultStore(tmp_path))
    first = run_sweep(cfg, n_apps=4, n_mixes=4, seed=7, runner=cold)
    assert cold.stats.executed == 4
    warm = ProcessPoolRunner(jobs=2, store=ResultStore(tmp_path))
    second = run_sweep(cfg, n_apps=4, n_mixes=4, seed=7, runner=warm)
    assert warm.stats.executed == 0 and warm.stats.cached == 4
    assert first == second


def test_sweep_recovers_from_corrupted_cache_dir(tmp_path):
    cfg = small_test_config(4, 4)
    store = ResultStore(tmp_path)
    first = run_sweep(cfg, n_apps=2, n_mixes=3, seed=7,
                      runner=ProcessPoolRunner(store=store))
    for path in tmp_path.glob("??/*.pkl"):
        path.write_bytes(b"garbage")
    rerun = ProcessPoolRunner(store=ResultStore(tmp_path))
    second = run_sweep(cfg, n_apps=2, n_mixes=3, seed=7, runner=rerun)
    assert second == first
    assert rerun.stats.executed == 3  # all were evicted and recomputed
    # ... and the rewritten entries hit again afterwards.
    third = ProcessPoolRunner(store=ResultStore(tmp_path))
    run_sweep(cfg, n_apps=2, n_mixes=3, seed=7, runner=third)
    assert third.stats.cached == 3


def test_factor_analysis_cached_rerun(tmp_path):
    cfg = small_test_config(4, 4)
    cold = ProcessPoolRunner(store=ResultStore(tmp_path))
    first = run_factor_analysis(cfg, n_apps=4, n_mixes=2, seed=7,
                                runner=cold)
    warm = ProcessPoolRunner(store=ResultStore(tmp_path))
    second = run_factor_analysis(cfg, n_apps=4, n_mixes=2, seed=7,
                                 runner=warm)
    assert warm.stats.executed == 0
    assert first.gmeans() == second.gmeans()
