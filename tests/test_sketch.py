"""Bounded-memory miss-curve sketches (repro.cache.sketch).

The unit contracts: grid caching/immutability, the fixed byte budget,
round-trip fidelity, the delta upper bound against
:func:`repro.sched.engine.curve_distance`, merge/decay/blend algebra,
the monitor's ``snapshot_sketch`` emission, the stacked
:class:`SketchBank` fast paths, and the per-problem bank memo.  The
statistical superset/placement properties live in
``tests/test_sketch_properties.py``.
"""

import numpy as np
import pytest

from repro.cache.miss_curve import cliff_curve, exponential_curve, flat_curve
from repro.cache.monitor import GMon, UMon
from repro.cache.sketch import (
    DEFAULT_SKETCH_BYTES,
    MIN_POINTS,
    SKETCH_HEADER_BYTES,
    MissCurveSketch,
    SketchBank,
    points_for_budget,
    problem_sketch_bank,
    sketch_grid,
)
from repro.sched.engine import curve_distance
from repro.testing import small_problem
from repro.util.units import kb, mb
from repro.workloads.generator import StackDistanceStream

LLC = float(mb(32))


def _exp_curve(half=mb(2), base=40.0):
    return exponential_curve(LLC, base, 2.0, half)


def _cliff_curve():
    return cliff_curve(LLC, 30.0, mb(8), 3.0)


# -- grids and budgets -------------------------------------------------------


def test_points_for_budget_default():
    assert points_for_budget(DEFAULT_SKETCH_BYTES) == (
        DEFAULT_SKETCH_BYTES - SKETCH_HEADER_BYTES
    ) // 8


def test_points_for_budget_too_small_raises():
    with pytest.raises(ValueError):
        points_for_budget(SKETCH_HEADER_BYTES + 8 * (MIN_POINTS - 1))


def test_sketch_grid_shared_frozen_and_shaped():
    grid = sketch_grid(LLC, 61)
    assert grid is sketch_grid(LLC, 61)  # process-wide cache
    assert not grid.flags.writeable
    assert grid[0] == 0.0 and grid[-1] == LLC
    assert np.all(np.diff(grid) > 0)
    assert grid.shape == (61,)


def test_sketch_grid_validation():
    with pytest.raises(ValueError):
        sketch_grid(0.0, 61)
    with pytest.raises(ValueError):
        sketch_grid(LLC, MIN_POINTS - 1)


# -- construction, budget, round trip ----------------------------------------


def test_from_curve_budget_and_frozen_arrays():
    sketch = MissCurveSketch.from_curve(_exp_curve(), grid_max=LLC)
    assert sketch.nbytes == DEFAULT_SKETCH_BYTES
    assert sketch.exact
    assert not sketch.values.flags.writeable
    assert not sketch.slack.flags.writeable
    assert sketch.points == points_for_budget(DEFAULT_SKETCH_BYTES)
    assert sketch.peak == pytest.approx(float(np.max(_exp_curve().values)))


def test_roundtrip_close_to_source_curve():
    curve = _exp_curve()
    sketch = MissCurveSketch.from_curve(curve, grid_max=LLC)
    assert curve_distance(curve, sketch.to_curve()) < 0.02


def test_roundtrip_improves_with_budget():
    curve = _cliff_curve()
    coarse = MissCurveSketch.from_curve(curve, budget_bytes=128, grid_max=LLC)
    fine = MissCurveSketch.from_curve(curve, budget_bytes=4096, grid_max=LLC)
    d_coarse = curve_distance(curve, coarse.to_curve())
    d_fine = curve_distance(curve, fine.to_curve())
    # The cliff's step keeps a residual at any finite grid, but a finer
    # grid localizes it: strictly better, and within the default dirty
    # threshold's order of magnitude.
    assert d_fine < d_coarse
    assert d_fine < 0.1


# -- the delta bound ---------------------------------------------------------


def test_delta_upper_bounds_curve_distance():
    a, b = _exp_curve(), _cliff_curve()
    sa = MissCurveSketch.from_curve(a, grid_max=LLC)
    sb = MissCurveSketch.from_curve(b, grid_max=LLC)
    assert sa.delta(sb) >= curve_distance(a, b)
    assert sa.delta(sb) == sb.delta(sa)


def test_delta_identity_and_same_content():
    sketch = MissCurveSketch.from_curve(_exp_curve(), grid_max=LLC)
    assert sketch.delta(sketch) == 0.0
    # Distinct sketch objects of the same curve content: the bound
    # cannot be exactly zero (slack is real) but stays tiny — well under
    # any useful dirty threshold.
    twin = MissCurveSketch.from_curve(_exp_curve(), grid_max=LLC)
    assert 0.0 <= sketch.delta(twin) < 0.02


def test_delta_grid_mismatch_raises():
    sketch = MissCurveSketch.from_curve(_exp_curve(), grid_max=LLC)
    other = MissCurveSketch.from_curve(_exp_curve(), grid_max=2 * LLC)
    with pytest.raises(ValueError):
        sketch.delta(other)


# -- merge / decay / blend ---------------------------------------------------


def test_merged_tracks_summed_curves():
    a, b = _exp_curve(), _cliff_curve()
    sa = MissCurveSketch.from_curve(a, grid_max=LLC)
    merged = sa.merged(MissCurveSketch.from_curve(b, grid_max=LLC))
    assert not merged.exact
    assert merged.peak == pytest.approx(sa.peak + float(np.max(b.values)))
    grid = merged.grid
    want = np.asarray(a(grid)) + np.asarray(b(grid))
    got = merged.values.astype(np.float64)
    assert np.all(np.abs(want - got) <= merged.slack.astype(np.float64) + 1e-9)


def test_decayed_scales_everything():
    sketch = MissCurveSketch.from_curve(_exp_curve(), grid_max=LLC)
    half = sketch.decayed(0.5)
    assert not half.exact
    assert half.peak == pytest.approx(0.5 * sketch.peak)
    np.testing.assert_allclose(
        half.values, 0.5 * sketch.values, rtol=1e-6, atol=1e-6
    )
    with pytest.raises(ValueError):
        sketch.decayed(1.5)


def test_blended_is_ewma():
    old = MissCurveSketch.from_curve(_exp_curve(), grid_max=LLC)
    new = MissCurveSketch.from_curve(_cliff_curve(), grid_max=LLC)
    mix = old.blended(new, decay=0.75)
    want = 0.75 * old.values.astype(np.float64) + 0.25 * new.values.astype(
        np.float64
    )
    np.testing.assert_allclose(mix.values, want, rtol=1e-6, atol=1e-6)
    with pytest.raises(ValueError):
        old.blended(new, decay=1.0)
    with pytest.raises(ValueError):
        old.blended(
            MissCurveSketch.from_curve(_cliff_curve(), grid_max=2 * LLC), 0.5
        )


# -- monitor emission --------------------------------------------------------


def _driven_monitor(monitor, curve, accesses=6_000, apki=20.0, seed=3):
    stream = StackDistanceStream(curve, apki=apki, seed=seed)
    for _ in range(accesses):
        monitor.access(stream.next_address())
    return monitor


def test_umon_snapshot_sketch_matches_miss_curve():
    mon = _driven_monitor(UMon(mb(4), ways=32, seed=7), _exp_curve(mb(1)))
    sketch = mon.snapshot_sketch()
    assert sketch.exact
    assert float(sketch.grid[-1]) == mon.modeled_capacity
    assert curve_distance(mon.miss_curve(), sketch.to_curve()) < 0.05


def test_snapshot_sketch_ewma_and_reset():
    mon = _driven_monitor(GMon(kb(64), mb(4), ways=32, seed=7), _exp_curve(mb(1)))
    first = mon.snapshot_sketch(decay=0.5)
    assert first.exact  # nothing to blend with yet
    second = mon.snapshot_sketch(decay=0.5)
    assert not second.exact  # EWMA of first and the fresh snapshot
    assert first.compatible(second)
    mon.reset()
    third = mon.snapshot_sketch(decay=0.5)
    assert third.exact  # reset dropped the EWMA state


def test_snapshot_sketch_shared_grid_override():
    mon = _driven_monitor(UMon(mb(4), ways=32, seed=7), _exp_curve(mb(1)))
    sketch = mon.snapshot_sketch(grid_max=LLC)
    assert float(sketch.grid[-1]) == LLC


# -- banks -------------------------------------------------------------------


def test_bank_memoizes_per_curve_object():
    curves = [(0, _exp_curve()), (1, _cliff_curve())]
    bank_a = SketchBank.from_curves(curves, LLC, 61)
    bank_b = SketchBank.from_curves(curves, LLC, 61)
    for row in range(2):
        assert bank_a.sketches[row] is bank_b.sketches[row]
    assert bank_a.deltas_to(bank_b) == {0: 0.0, 1: 0.0}


def test_bank_deltas_flag_moved_rows():
    shared = _exp_curve()
    bank_a = SketchBank.from_curves([(0, shared), (1, _cliff_curve())], LLC, 61)
    bank_b = SketchBank.from_curves([(0, shared), (1, _exp_curve(mb(8)))], LLC, 61)
    deltas = bank_b.deltas_to(bank_a)
    assert deltas[0] == 0.0  # same curve object: identity fast path
    assert deltas[1] > 0.05
    # And the bound covers the exact distance for the moved row.
    assert deltas[1] >= curve_distance(_cliff_curve(), _exp_curve(mb(8)))


def test_bank_deltas_common_ids_only_and_grid_mismatch():
    bank_a = SketchBank.from_curves([(0, _exp_curve()), (1, _cliff_curve())], LLC, 61)
    bank_b = SketchBank.from_curves([(1, _cliff_curve()), (2, _exp_curve())], LLC, 61)
    assert set(bank_b.deltas_to(bank_a)) == {1}
    other_grid = SketchBank.from_curves([(1, _cliff_curve())], 2 * LLC, 61)
    with pytest.raises(ValueError):
        other_grid.deltas_to(bank_a)


def test_bank_validation_and_nbytes():
    with pytest.raises(ValueError):
        SketchBank((0, 1), (MissCurveSketch.from_curve(_exp_curve(), grid_max=LLC),))
    sketches = (
        MissCurveSketch.from_curve(_exp_curve(), grid_max=LLC),
        MissCurveSketch.from_curve(_cliff_curve(), grid_max=2 * LLC),
    )
    with pytest.raises(ValueError):
        SketchBank((0, 1), sketches)
    bank = SketchBank((7,), (sketches[0],))
    assert bank.nbytes == DEFAULT_SKETCH_BYTES
    assert not bank.values2d.flags.writeable
    assert not bank.slack2d.flags.writeable
    assert not bank.peaks.flags.writeable


def test_problem_sketch_bank_memoized_per_budget():
    problem, _ = small_problem(apps=8)
    bank = problem_sketch_bank(problem)
    assert problem_sketch_bank(problem) is bank
    assert set(bank.vc_ids) == {vc.vc_id for vc in problem.vcs}
    assert float(bank.sketches[0].grid[-1]) == float(problem.total_bytes)
    finer = problem_sketch_bank(problem, budget_bytes=4096)
    assert finer is not bank
    assert problem_sketch_bank(problem, budget_bytes=4096) is finer


def test_flat_zero_curve_sketches_cleanly():
    zero = flat_curve(LLC, 0.0)
    sketch = MissCurveSketch.from_curve(zero, grid_max=LLC)
    assert sketch.peak == 0.0
    twin = MissCurveSketch.from_curve(flat_curve(LLC, 0.0), grid_max=LLC)
    assert sketch.delta(twin) == 0.0  # 0/eps, not NaN
