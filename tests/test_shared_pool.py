"""SharedArrayPool lifecycle: publish/attach, races, crashes, fallback.

The data plane's safety story (see :mod:`repro.runner.shm`) is that
segments are content-addressed and create-or-attach is idempotent, so
any interleaving of creators converges on one correct segment; that
refcounted attachments never outlive their process; and that the whole
layer degrades to inline pickles when shared memory is off.  Each of
those claims gets a test here, including multi-process stress for the
creator race and a SIGKILL'd attacher for crash reclamation.
"""

import hashlib
import multiprocessing
import os
import signal
from pathlib import Path

import numpy as np
import pytest

from repro.runner import shm
from repro.runner.shm import SharedArrayPool, attach, detach, shm_enabled
from repro.runner.store import MISS, ResultStore

SHM_DIR = Path("/dev/shm")

needs_shm = pytest.mark.skipif(
    not (shm_enabled() and SHM_DIR.is_dir()),
    reason="POSIX shared memory unavailable",
)


def _digest(tag: str) -> str:
    """A unique, content-hash-shaped digest per test invocation."""
    return hashlib.sha256(f"{tag}-{os.getpid()}-{os.urandom(8).hex()}"
                          .encode()).hexdigest()


def _arrays():
    return {
        "a": np.arange(12, dtype=np.float64).reshape(3, 4),
        "b": np.array([[1, 2], [3, 4]], dtype=np.int32),
    }


def _segment_path(handle) -> Path:
    return SHM_DIR / handle.name


@needs_shm
def test_publish_attach_roundtrip_readonly():
    arrays = _arrays()
    with SharedArrayPool() as pool:
        handle = pool.publish(_digest("roundtrip"), arrays)
        assert handle.name is not None
        assert _segment_path(handle).exists()
        views = attach(handle)
        for key, arr in arrays.items():
            assert np.array_equal(views[key], arr)
            assert views[key].dtype == arr.dtype
            assert not views[key].flags.writeable
        with pytest.raises(ValueError):
            views["a"][0, 0] = 99.0
        views = None
        detach(handle)
    assert not _segment_path(handle).exists()


@needs_shm
def test_publish_is_memoized_per_digest():
    with SharedArrayPool() as pool:
        digest = _digest("memo")
        first = pool.publish(digest, _arrays())
        again = pool.publish(digest, _arrays())
        assert again is first


@needs_shm
def test_attach_refcounts_one_mapping_per_process():
    with SharedArrayPool() as pool:
        handle = pool.publish(_digest("refcount"), _arrays())
        v1 = attach(handle)
        v2 = attach(handle)
        # _ATTACHMENTS is a guarded mapping under REPRO_CHECK_LOCKS=1,
        # so the test's own introspection holds the attach lock too.
        with shm._ATTACH_LOCK:
            assert shm._ATTACHMENTS[handle.name][1] == 2
        v1 = None
        detach(handle)
        # Mapping survives the first detach; remaining views stay valid.
        with shm._ATTACH_LOCK:
            assert handle.name in shm._ATTACHMENTS
        assert np.array_equal(v2["a"], _arrays()["a"])
        v2 = None
        detach(handle)
        with shm._ATTACH_LOCK:
            assert handle.name not in shm._ATTACHMENTS
        detach(handle)  # extra detach is a no-op, not an error


@needs_shm
def test_close_is_idempotent_and_pool_stays_usable():
    pool = SharedArrayPool()
    h1 = pool.publish(_digest("close"), _arrays())
    pool.close()
    pool.close()
    assert not _segment_path(h1).exists()
    h2 = pool.publish(_digest("close"), _arrays())
    assert _segment_path(h2).exists()
    pool.close()
    assert not _segment_path(h2).exists()


def test_inline_fallback_when_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_NO_SHM", "1")
    assert not shm_enabled()
    arrays = _arrays()
    with SharedArrayPool() as pool:
        handle = pool.publish(_digest("inline"), arrays)
        assert handle.name is None
        assert handle.inline is not None
        copies = attach(handle)
        for key, arr in arrays.items():
            assert np.array_equal(copies[key], arr)
        # attach() hands out read-only arrays on both paths: inline
        # private copies are frozen just like live shm views, so callers
        # cannot depend on a mutability difference between the two modes.
        with pytest.raises(ValueError):
            copies["a"][0, 0] = -1.0
        assert attach(handle)["a"][0, 0] == 0.0
        detach(handle)  # no-op for inline handles


# -- multi-process behavior ---------------------------------------------------

_CTX = multiprocessing.get_context("fork")


def _racing_creator(digest, expect_bytes, barrier, out):
    """Publish the same digest as everyone else, verify, then close."""
    try:
        arrays = {"a": np.frombuffer(expect_bytes, dtype=np.float64)}
        with SharedArrayPool() as pool:
            handle = pool.publish(digest, arrays)
            views = attach(handle)
            ok = bool(np.array_equal(views["a"], arrays["a"]))
            views = None
            detach(handle)
            barrier.wait(timeout=30)  # nobody unlinks until all verified
            out.put("ok" if ok else "corrupt")
    except Exception as exc:  # pragma: no cover - failure reporting
        out.put(f"error: {exc!r}")


@needs_shm
def test_interleaved_creators_converge_on_one_segment():
    """N processes race create-or-attach on one digest; all must read the
    identical payload and the segment must be gone once all exit."""
    digest = _digest("race")
    payload = np.linspace(0.0, 1.0, 1024).tobytes()
    n = 4
    barrier = _CTX.Barrier(n)
    out = _CTX.Queue()
    procs = [
        _CTX.Process(target=_racing_creator,
                     args=(digest, payload, barrier, out))
        for _ in range(n)
    ]
    for p in procs:
        p.start()
    results = [out.get(timeout=60) for _ in range(n)]
    for p in procs:
        p.join(timeout=60)
    assert results == ["ok"] * n
    assert not (SHM_DIR / shm._segment_name(digest)).exists()


def _attach_and_die(handle):
    attach(handle)
    os.kill(os.getpid(), signal.SIGKILL)


@needs_shm
def test_crashed_attacher_does_not_leak_segment():
    """A SIGKILL'd worker holding an attachment must not block the
    owner's unlink — the OS drops the dead process's mapping."""
    pool = SharedArrayPool()
    handle = pool.publish(_digest("crash"), _arrays())
    p = _CTX.Process(target=_attach_and_die, args=(handle,))
    p.start()
    p.join(timeout=60)
    assert p.exitcode == -signal.SIGKILL
    pool.close()
    assert not _segment_path(handle).exists()


def _store_hammer(root, digest, value, rounds, out):
    try:
        store = ResultStore(root)
        for _ in range(rounds):
            store.store(digest, value)
            loaded = store.load(digest)
            if loaded is not MISS and loaded != value:
                out.put("corrupt")
                return
        out.put("ok")
    except Exception as exc:  # pragma: no cover - failure reporting
        out.put(f"error: {exc!r}")


def test_result_store_interleaved_creators(tmp_path):
    """Concurrent same-digest writers never expose a torn entry: every
    load sees either a miss or the complete value (atomic replace)."""
    digest = "ab" + "0" * 62
    value = {"rows": list(range(200)), "tag": "store-race"}
    n = 4
    out = _CTX.Queue()
    procs = [
        _CTX.Process(target=_store_hammer,
                     args=(str(tmp_path), digest, value, 40, out))
        for _ in range(n)
    ]
    for p in procs:
        p.start()
    results = [out.get(timeout=120) for _ in range(n)]
    for p in procs:
        p.join(timeout=60)
    assert results == ["ok"] * n
    assert ResultStore(tmp_path).load(digest) == value
    # No temp droppings from the atomic-write protocol.
    assert not list(tmp_path.glob("**/.tmp-*"))
