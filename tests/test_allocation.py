"""Capacity allocation: hulls and Lookahead policies (repro.sched.allocation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import small_test_config
from repro.nuca.base import build_problem
from repro.sched.allocation import (
    allocate_latency_aware,
    allocate_miss_driven,
    convex_hull_indices,
)
from repro.util.units import kb, mb
from repro.workloads.mixes import make_mix


def test_hull_indices_simple():
    values = np.array([10.0, 9.0, 5.0, 4.9, 4.8])
    hull = convex_hull_indices(values)
    assert hull[0] == 0 and hull[-1] == 4
    # Point 1 lies above the chord 0->2 and must be dropped.
    assert 1 not in hull


@given(
    st.lists(st.floats(0, 1000, allow_nan=False), min_size=2, max_size=40)
)
@settings(max_examples=100)
def test_hull_indices_lower_bound_property(values):
    arr = np.array(values)
    hull = convex_hull_indices(arr)
    # Hull interpolation never exceeds the curve.
    interp = np.interp(np.arange(len(arr)), hull, arr[hull])
    assert np.all(interp <= arr + 1e-6)
    # Hull slopes are non-decreasing (convexity).
    slopes = np.diff(arr[hull]) / np.diff(hull)
    assert np.all(np.diff(slopes) >= -1e-9)


def problem_for(names):
    config = small_test_config(4, 4)
    return config, build_problem(make_mix(names), config)


def test_cliff_app_gets_its_working_set():
    config, problem = problem_for(["omnet", "milc", "milc", "milc"])
    sizes = allocate_miss_driven(problem)
    assert sizes[0] >= mb(2.5) - kb(64)  # omnet's 2.5 MB cliff


def test_streaming_app_gets_minimum():
    config, problem = problem_for(["omnet", "milc"])
    sizes = allocate_latency_aware(problem)
    assert sizes[1] <= kb(64)  # milc: one quantum at most


def test_budget_respected():
    config, problem = problem_for(["omnet"] * 4 + ["mcf"] * 4)
    for sizes in (allocate_latency_aware(problem), allocate_miss_driven(problem)):
        assert sum(sizes.values()) <= config.llc_bytes + 1


def test_every_active_vc_gets_capacity():
    """The VTB needs a target for every live VC (min one quantum)."""
    config, problem = problem_for(["milc"] * 8)
    for sizes in (allocate_latency_aware(problem), allocate_miss_driven(problem)):
        for thread_id in range(8):
            assert sizes[thread_id] >= kb(64)


def test_latency_aware_leaves_capacity_unused():
    """Sec IV-C: with few apps, extra capacity costs on-chip latency, so
    CDCS deliberately under-allocates while Jigsaw hands everything out."""
    config, problem = problem_for(["gcc", "milc"])
    cdcs_sizes = allocate_latency_aware(problem)
    jig_sizes = allocate_miss_driven(problem)
    assert sum(cdcs_sizes.values()) < sum(jig_sizes.values())
    assert sum(jig_sizes.values()) == pytest.approx(config.llc_bytes, rel=0.01)


def test_min_quantum_steal_avoids_cliffs():
    """Stealing the mandatory minimum quantum must not take omnet below its
    cliff (the regression this suite guards: a cliff app loses its whole
    benefit if one quantum is shaved)."""
    config, problem = problem_for(
        ["omnet", "omnet", "milc", "milc", "milc", "milc", "mcf", "mcf"]
    )
    sizes = allocate_miss_driven(problem)
    for omnet_thread in (0, 1):
        assert sizes[omnet_thread] >= mb(2.5) - kb(128)


def test_miss_driven_leftover_proportional_to_rate():
    # Two purely streaming apps: Lookahead finds zero utility anywhere, so
    # the whole LLC is leftover, handed out proportionally to access rates
    # (lbm: 32 APKI vs milc: 26 APKI).
    config, problem = problem_for(["lbm", "milc"])
    sizes = allocate_miss_driven(problem)
    assert sizes[0] > sizes[1] > 0
    assert sum(sizes.values()) == pytest.approx(config.llc_bytes, rel=0.01)


def test_allocation_deterministic():
    config, problem = problem_for(["omnet", "mcf", "milc", "gcc"])
    assert allocate_latency_aware(problem) == allocate_latency_aware(problem)
