"""Workload model: app profiles (miss curves + intensities), mix
generation, and synthetic address streams realizing a target miss curve."""

from repro.workloads.generator import (
    StackDistanceStream,
    measure_miss_curve,
    suggested_footprint,
)
from repro.workloads.mixes import (
    Mix,
    ProcessSpec,
    case_study_mix,
    fig16_case_study_mix,
    make_mix,
    random_multithreaded_mix,
    random_single_threaded_mix,
)
from repro.workloads.profiles import (
    ALL_PROFILES,
    MULTI_THREADED,
    SINGLE_THREADED,
    AppProfile,
    get_profile,
)

__all__ = [
    "ALL_PROFILES",
    "AppProfile",
    "MULTI_THREADED",
    "Mix",
    "ProcessSpec",
    "SINGLE_THREADED",
    "StackDistanceStream",
    "case_study_mix",
    "fig16_case_study_mix",
    "get_profile",
    "make_mix",
    "measure_miss_curve",
    "random_multithreaded_mix",
    "random_single_threaded_mix",
    "suggested_footprint",
]
