"""Workload model: app profiles (miss curves + intensities), phased
(time-varying) profiles, mix generation, and synthetic address streams
realizing a target miss curve."""

from repro.workloads.generator import (
    StackDistanceStream,
    measure_miss_curve,
    random_phased_profile,
    suggested_footprint,
)
from repro.workloads.mixes import (
    Mix,
    ProcessSpec,
    case_study_mix,
    fig16_case_study_mix,
    make_mix,
    mix_is_phased,
    random_multithreaded_mix,
    random_phased_mix,
    random_single_threaded_mix,
    snapshot_mix,
)
from repro.workloads.phased import (
    PHASED_PROFILES,
    Phase,
    PhasedProfile,
    compose_phased,
)
from repro.workloads.profiles import (
    ALL_PROFILES,
    MULTI_THREADED,
    SINGLE_THREADED,
    AppProfile,
    get_profile,
    get_static_profile,
)

__all__ = [
    "ALL_PROFILES",
    "AppProfile",
    "MULTI_THREADED",
    "Mix",
    "PHASED_PROFILES",
    "Phase",
    "PhasedProfile",
    "ProcessSpec",
    "SINGLE_THREADED",
    "StackDistanceStream",
    "case_study_mix",
    "compose_phased",
    "fig16_case_study_mix",
    "get_profile",
    "get_static_profile",
    "make_mix",
    "measure_miss_curve",
    "mix_is_phased",
    "random_multithreaded_mix",
    "random_phased_mix",
    "random_phased_profile",
    "random_single_threaded_mix",
    "snapshot_mix",
    "suggested_footprint",
]
