"""Workload mixes and the fixed-work (FIESTA-style) methodology.

The paper simulates 50 random mixes per experiment: N single-threaded apps
drawn from the 16-app pool (Sec VI-A), or N 8-thread apps from the
SPECOMP2012 pool (Sec VI-B).  A :class:`Mix` assigns process and thread ids
and knows how many threads it needs; mixes never exceed the chip's cores.

FIESTA equalizes samples by running each app for the instructions it
completes alone in 1 Gcycle; with a steady-state analytic model this
reduces to comparing per-app IPCs directly, but we keep the instruction
targets because the trace engine uses them for run lengths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import child_rng
from repro.workloads.profiles import (
    MULTI_THREADED,
    SINGLE_THREADED,
    AppProfile,
    get_profile,
)

#: FIESTA reference window: instructions completed alone in 1 Gcycles.
REFERENCE_CYCLES = 1_000_000_000


@dataclass(frozen=True)
class ProcessSpec:
    """One process in a mix: a profile plus stable ids.

    ``process_id`` is unique within the mix; thread ids are assigned
    contiguously (``first_thread .. first_thread + profile.threads - 1``).
    """

    process_id: int
    profile: AppProfile
    first_thread: int

    @property
    def thread_ids(self) -> range:
        return range(self.first_thread, self.first_thread + self.profile.threads)


@dataclass(frozen=True)
class Mix:
    """A workload mix: an ordered list of processes."""

    processes: tuple[ProcessSpec, ...]

    @property
    def total_threads(self) -> int:
        return sum(p.profile.threads for p in self.processes)

    @property
    def names(self) -> list[str]:
        return [p.profile.name for p in self.processes]

    def fixed_work_instructions(self, reference_ipc: dict[str, float]) -> dict[int, int]:
        """FIESTA instruction targets per process: instructions the app
        retires alone in the reference window, given its solo IPC."""
        return {
            p.process_id: int(reference_ipc[p.profile.name] * REFERENCE_CYCLES)
            for p in self.processes
        }


def make_mix(names: list[str]) -> Mix:
    """Build a mix from profile names (repeats allowed)."""
    processes = []
    next_thread = 0
    for pid, name in enumerate(names):
        profile = get_profile(name)
        processes.append(ProcessSpec(pid, profile, next_thread))
        next_thread += profile.threads
    return Mix(tuple(processes))


def random_single_threaded_mix(n_apps: int, seed: int, mix_id: int = 0) -> Mix:
    """N single-threaded apps drawn uniformly (with replacement) from the
    16-app pool, as in Sec VI-A."""
    if n_apps < 1:
        raise ValueError("mix needs at least one app")
    rng = child_rng(seed, mix_id)
    pool = sorted(SINGLE_THREADED)
    names = [pool[i] for i in rng.integers(0, len(pool), size=n_apps)]
    return make_mix(names)


def random_multithreaded_mix(n_apps: int, seed: int, mix_id: int = 0) -> Mix:
    """N 8-thread apps from the SPECOMP-style pool, as in Sec VI-B."""
    if n_apps < 1:
        raise ValueError("mix needs at least one app")
    rng = child_rng(seed, mix_id + 10_000)
    pool = sorted(MULTI_THREADED)
    names = [pool[i] for i in rng.integers(0, len(pool), size=n_apps)]
    return make_mix(names)


def case_study_mix() -> Mix:
    """The Sec II-B case-study mix: omnet x6, milc x14, ilbdc x2 (8 threads
    each) on the 36-tile chip — 20 + 16 = 36 threads."""
    return make_mix(["omnet"] * 6 + ["milc"] * 14 + ["ilbdc"] * 2)


def fig16_case_study_mix() -> Mix:
    """The Fig 16b mix: private-heavy mgrid plus shared-heavy md, ilbdc,
    nab (8 threads each, 32 threads total on 64 cores)."""
    return make_mix(["mgrid", "md", "ilbdc", "nab"])
