"""Phased application profiles: workloads whose demand changes over time.

Every profile in :mod:`repro.workloads.profiles` is *stationary* — one miss
curve, one APKI, one base CPI for the whole run.  Real applications move
through phases (compute-bound stretches, cache-fitting stretches, streaming
scans), and phase changes are exactly what the paper's periodic
reconfiguration reacts to: monitors re-read the miss curves every interval
and the runtime re-places data and threads.

A :class:`PhasedProfile` is a piecewise-stationary app: an ordered list of
:class:`Phase` segments, each a static :class:`AppProfile` active for a
fixed number of *instructions*.  The schedule cycles (after the last phase
the first starts again), so a phased app is defined for any instruction
count.  Phase position is a pure function of cumulative retired
instructions — the same clock the epoch engine and trace simulator already
carry per thread — which keeps phase lookups deterministic and
bitwise-identical between the vectorized and scalar kernel paths.

Anywhere static code touches a phased profile directly (``build_problem``
on a raw mix, the trace-simulation wiring), the profile behaves as its
*initial* phase: every ``AppProfile`` field is delegated to phase 0, so a
snapshot at 0 instructions and the raw profile are interchangeable.  The
dynamic behavior lives in :meth:`PhasedProfile.at_instructions` plus
:func:`repro.workloads.mixes.snapshot_mix`, which the epoch engine calls at
each epoch boundary.

Named phase schedules are registered in :data:`PHASED_PROFILES` so mixes
can name phased apps exactly like static ones
(``make_mix(["omnet~milc", "gcc"])``); seeded random schedules come from
:func:`repro.workloads.generator.random_phased_profile`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.profiles import AppProfile, get_static_profile


@dataclass(frozen=True)
class Phase:
    """One stationary segment of a phased app.

    *profile* supplies the curves/intensities while the phase is active;
    *instructions* is the segment's length in retired instructions per
    thread (phases are per-app program regions, so every thread of a
    multithreaded app moves through them together).
    """

    profile: AppProfile
    instructions: float

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError(
                f"phase of {self.profile.name!r} needs a positive "
                f"instruction count, got {self.instructions}"
            )


@dataclass(frozen=True)
class PhasedProfile:
    """A piecewise-stationary application profile.

    The phase schedule cycles: an app that runs past its last phase wraps
    to the first.  All phases must agree on the thread count (phases change
    *demand*, not the process structure).
    """

    name: str
    phases: tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"{self.name}: needs at least one phase")
        threads = {p.profile.threads for p in self.phases}
        if len(threads) > 1:
            raise ValueError(
                f"{self.name}: phases disagree on thread count {sorted(threads)}"
            )

    # -- schedule geometry ---------------------------------------------------

    @property
    def total_instructions(self) -> float:
        """Length of one full pass through the schedule (instructions)."""
        return sum(p.instructions for p in self.phases)

    def boundaries(self) -> list[float]:
        """Cumulative phase end-points within one schedule pass."""
        out, acc = [], 0.0
        for phase in self.phases:
            acc += phase.instructions
            out.append(acc)
        return out

    def phase_at(self, instructions: float) -> tuple[int, AppProfile]:
        """(phase index, active static profile) at a cumulative instruction
        count.  The schedule cycles; positions exactly on a boundary belong
        to the *next* phase (segments are half-open ``[start, end)``)."""
        position = float(instructions) % self.total_instructions
        acc = 0.0
        for i, phase in enumerate(self.phases):
            acc += phase.instructions
            if position < acc:
                return i, phase.profile
        return len(self.phases) - 1, self.phases[-1].profile

    def phase_index(self, instructions: float) -> int:
        return self.phase_at(instructions)[0]

    def at_instructions(self, instructions: float) -> AppProfile:
        """The active stationary profile — what monitors would report for
        the interval starting at *instructions*."""
        return self.phase_at(instructions)[1]

    # -- AppProfile-compatible face (phase 0) --------------------------------
    # Static consumers (problem building from a raw mix, trace wiring) see
    # the initial phase; snapshotting at 0 instructions is then a no-op.

    @property
    def _initial(self) -> AppProfile:
        return self.phases[0].profile

    @property
    def threads(self) -> int:
        return self._initial.threads

    @property
    def multithreaded(self) -> bool:
        return self._initial.multithreaded

    @property
    def base_cpi(self) -> float:
        return self._initial.base_cpi

    @property
    def llc_apki(self) -> float:
        return self._initial.llc_apki

    @property
    def private_curve(self):
        return self._initial.private_curve

    @property
    def shared_curve(self):
        return self._initial.shared_curve

    @property
    def shared_fraction(self) -> float:
        return self._initial.shared_fraction

    @property
    def write_fraction(self) -> float:
        return self._initial.write_fraction

    @property
    def private_apki(self) -> float:
        return self._initial.private_apki

    @property
    def shared_apki(self) -> float:
        return self._initial.shared_apki

    def total_mpki(self, private_bytes: float, shared_bytes: float = 0.0) -> float:
        return self._initial.total_mpki(private_bytes, shared_bytes)


def compose_phased(
    name: str, schedule: list[tuple[str, float]]
) -> PhasedProfile:
    """Build a phased profile from (static app name, instructions) pairs.

    The named apps come from the static registries; this is how the
    standard phased apps below are declared and the natural way to script
    custom schedules in experiments.
    """
    phases = tuple(
        Phase(get_static_profile(app), float(instructions))
        for app, instructions in schedule
    )
    return PhasedProfile(name=name, phases=phases)


def _standard_phased() -> dict[str, PhasedProfile]:
    """Named phase schedules covering the interesting dynamics.

    Phase lengths sit in the hundreds of millions of instructions — a few
    reconfiguration intervals each at the paper's 50 Mcycle period — so a
    well-tuned runtime re-places data several times per phase while a
    stale placement straddles phase changes.
    """
    m = 1e6
    return {
        # Fitting <-> streaming: the canonical reconfiguration adversary
        # (the placement that helps omnet is wasted capacity for milc).
        "omnet~milc": compose_phased(
            "omnet~milc", [("omnet", 300 * m), ("milc", 300 * m)]
        ),
        # Two different footprints: capacity should shift between phases.
        "xalancbmk~gcc": compose_phased(
            "xalancbmk~gcc", [("xalancbmk", 250 * m), ("gcc", 400 * m)]
        ),
        # Three-way rotation with a long streaming stretch in the middle.
        "mcf~libquantum~bzip2": compose_phased(
            "mcf~libquantum~bzip2",
            [("mcf", 200 * m), ("libquantum", 350 * m), ("bzip2", 250 * m)],
        ),
        # Multithreaded: shared-heavy clustering phase vs private-heavy
        # spreading phase (the Fig 16b tension, now time-varying).
        "ilbdc~mgrid": compose_phased(
            "ilbdc~mgrid", [("ilbdc", 240 * m), ("mgrid", 360 * m)]
        ),
    }


#: Registry of named phased profiles (same lookup path as static apps:
#: ``repro.workloads.get_profile`` consults this after the static pools).
PHASED_PROFILES: dict[str, PhasedProfile] = _standard_phased()
