"""Synthetic LLC access streams that realize a target miss curve.

The trace-driven simulator and the monitor study need actual address
streams, not just curves.  We generate them with an **LRU stack-distance
model**: for a stream whose accesses have stack-distance distribution
``P(D <= s)``, an LRU cache of size ``s`` hits with probability
``P(D <= s)``; inverting the target miss curve therefore gives the
stack-distance distribution to sample from.

The generator keeps an exact LRU recency list and, per access, samples a
stack distance from the inverted curve, touching the line at that recency
depth (move-to-front).  Cost is O(depth) per access, so trace experiments
run at reduced footprint (sizes scale linearly; see the scaled-footprint
note in docs/ARCHITECTURE.md).
"""

from __future__ import annotations

import numpy as np

from repro.cache.miss_curve import MissCurve
from repro.util.rng import child_rng
from repro.util.units import CACHE_LINE_BYTES
from repro.workloads.phased import Phase, PhasedProfile
from repro.workloads.profiles import SINGLE_THREADED, get_static_profile


def suggested_footprint(miss_curve: MissCurve, apki: float) -> float:
    """Reasonable footprint for a stream realizing *miss_curve*.

    Fitting apps touch ~1.5x their working set.  Streaming apps (high
    residual miss ratio at full coverage) must cycle a region well beyond
    any modeled cache, otherwise the cyclic re-touch at the footprint
    boundary would *hit* in a footprint-sized cache and break the curve.
    """
    residual = float(miss_curve(miss_curve.max_size)) / max(apki, 1e-9)
    effective = miss_curve.effective_footprint()
    if residual > 0.5:
        return max(4.0 * miss_curve.max_size, CACHE_LINE_BYTES)
    return max(1.5 * effective, float(CACHE_LINE_BYTES))


class StackDistanceStream:
    """Generates line addresses with a chosen LRU stack-distance profile.

    *miss_curve* is the target curve; *apki* its access intensity (misses
    can never exceed accesses, so ``miss_curve(0) <= apki``).  *footprint*
    bounds the distinct lines touched; distances beyond it are cold misses.
    *address_base* offsets the generated line addresses so concurrent
    streams never alias.
    """

    def __init__(
        self,
        miss_curve: MissCurve,
        apki: float,
        footprint_bytes: float | None = None,
        address_base: int = 0,
        seed: int = 1,
        distance_buckets: int = 64,
    ):
        if apki <= 0:
            raise ValueError("stream needs positive access intensity")
        self.miss_curve = miss_curve
        self.apki = apki
        if footprint_bytes is None:
            footprint_bytes = suggested_footprint(miss_curve, apki)
        self.footprint_lines = max(1, int(footprint_bytes // CACHE_LINE_BYTES))
        self.address_base = address_base
        self._rng = child_rng(seed, address_base & 0xFFFF)
        self._recency: list[int] = []
        self._resident: set[int] = set()
        self._next_cold = 0
        self._build_distance_table(distance_buckets)

    def _build_distance_table(self, buckets: int) -> None:
        """Tabulate the inverse CDF of stack distances.

        Hit ratio at size s: ``h(s) = 1 - m(s)/apki`` (with m in the same
        per-kilo-instruction units as apki).  We sample sizes on the curve's
        support, take h as the CDF over distances, and store (cdf, lines)
        pairs for inverse-transform sampling; the residual probability mass
        ``m(footprint)/apki`` produces cold misses.
        """
        max_size = min(self.miss_curve.max_size,
                       self.footprint_lines * CACHE_LINE_BYTES)
        sizes = np.linspace(0.0, max_size, buckets + 1)[1:]
        miss = np.asarray(self.miss_curve(sizes), dtype=np.float64)
        hit_cdf = np.clip(1.0 - miss / self.apki, 0.0, 1.0)
        hit_cdf = np.maximum.accumulate(hit_cdf)
        self._cdf = hit_cdf
        self._distances = np.maximum((sizes // CACHE_LINE_BYTES).astype(np.int64), 1)

    def _sample_distance(self) -> int | None:
        """Sample a stack distance in lines; ``None`` means cold miss."""
        u = self._rng.random()
        idx = int(np.searchsorted(self._cdf, u, side="left"))
        if idx >= len(self._distances):
            return None
        lo = 0 if idx == 0 else int(self._distances[idx - 1])
        hi = int(self._distances[idx])
        if hi <= lo:
            return hi
        return int(self._rng.integers(lo, hi)) + 1

    def _cold_address(self) -> int:
        addr = self.address_base + self._next_cold
        self._next_cold = (self._next_cold + 1) % self.footprint_lines
        return addr

    def next_address(self) -> int:
        """Generate the next line address of the stream."""
        distance = self._sample_distance()
        if distance is None or distance > len(self._recency):
            addr = self._cold_address()
            # A re-touched cold address may still be in the recency list.
            if addr in self._resident:
                self._recency.remove(addr)
                self._resident.discard(addr)
        else:
            addr = self._recency.pop(distance - 1)
            self._resident.discard(addr)
        self._recency.insert(0, addr)
        self._resident.add(addr)
        if len(self._recency) > self.footprint_lines:
            dropped = self._recency.pop()
            self._resident.discard(dropped)
        return addr

    def addresses(self, count: int) -> list[int]:
        """Generate *count* consecutive line addresses."""
        return [self.next_address() for _ in range(count)]


#: Seed-stream offset reserving an independent RNG lane for phase
#: schedules (mix generation uses low offsets; see repro.util.rng).
_PHASE_SEED_LANE = 0x7A5E

#: Default bounds on one phase's length, in instructions: 150M–600M keeps
#: each phase a few reconfiguration intervals long at the paper's 50 Mcycle
#: period, so both "runtime tracks phases" and "placement goes stale"
#: regimes are reachable by sweeping the period.
DEFAULT_PHASE_INSTRUCTIONS = (150e6, 600e6)


def random_phased_profile(
    seed: int,
    index: int = 0,
    pool: list[str] | None = None,
    phase_count: tuple[int, int] = (2, 4),
    phase_instructions: tuple[float, float] = DEFAULT_PHASE_INSTRUCTIONS,
) -> PhasedProfile:
    """Generate a seeded random phase schedule from a pool of static apps.

    Draws 2–4 phases (inclusive bounds from *phase_count*), each a static
    profile from *pool* (default: the single-threaded registry) active for
    a uniform-random instruction count in *phase_instructions*, rounded to
    whole megainstructions.  Consecutive phases always differ — including
    across the cycle wrap (last vs first), pool size permitting — because
    a repeated app would be one longer phase, not a phase change.  Fully
    determined by ``(seed, index)`` — the same pair reproduces the same
    schedule in any process, which is what makes phased experiment jobs
    cacheable.
    """
    if phase_count[0] < 1 or phase_count[1] < phase_count[0]:
        raise ValueError(f"bad phase count bounds {phase_count}")
    rng = child_rng(seed, _PHASE_SEED_LANE + index)
    names = sorted(pool) if pool is not None else sorted(SINGLE_THREADED)
    if len(names) < 2:
        raise ValueError("phase generation needs at least two distinct apps")
    n_phases = int(rng.integers(phase_count[0], phase_count[1] + 1))
    lo, hi = phase_instructions
    phases: list[Phase] = []
    previous: str | None = None
    for position in range(n_phases):
        excluded = {previous}
        if position == n_phases - 1 and phases:
            # The schedule cycles: the last phase wraps into the first,
            # so their apps must differ too (unless the pool is too small
            # to allow it).
            excluded.add(phases[0].profile.name)
        candidates = [n for n in names if n not in excluded]
        if not candidates:
            candidates = [n for n in names if n != previous]
        app = candidates[int(rng.integers(0, len(candidates)))]
        length = float(np.round(rng.uniform(lo, hi) / 1e6) * 1e6)
        phases.append(Phase(get_static_profile(app), length))
        previous = app
    label = "~".join(p.profile.name for p in phases)
    return PhasedProfile(name=f"{label}#{seed}.{index}", phases=tuple(phases))


def measure_miss_curve(
    addresses: list[int], sizes_bytes: list[float]
) -> MissCurve:
    """Exact LRU miss counts of an address stream at the given cache sizes.

    One pass with an LRU stack; a hit at recency depth d is a hit for every
    size >= d lines (stack inclusion).  Used by tests and the monitor study
    to validate generated streams and monitors against ground truth.
    """
    if not addresses:
        raise ValueError("empty address stream")
    depth_hist: dict[int, int] = {}
    stack: list[int] = []
    index: dict[int, None] = {}
    for addr in addresses:
        try:
            depth = stack.index(addr)
        except ValueError:
            depth = -1
        if depth >= 0:
            stack.pop(depth)
            depth_hist[depth + 1] = depth_hist.get(depth + 1, 0) + 1
        stack.insert(0, addr)
    index.clear()
    total = len(addresses)
    sizes_lines = [max(int(s // CACHE_LINE_BYTES), 0) for s in sizes_bytes]
    values = []
    for size_lines in sizes_lines:
        hits = sum(c for d, c in depth_hist.items() if d <= size_lines)
        values.append(total - hits)
    # Deduplicate any equal sizes to keep strict monotonicity.
    out_sizes: list[float] = []
    out_values: list[float] = []
    for s, v in sorted(zip(sizes_bytes, values)):
        if out_sizes and s <= out_sizes[-1]:
            continue
        out_sizes.append(float(s))
        out_values.append(float(v))
    return MissCurve(out_sizes, out_values)
