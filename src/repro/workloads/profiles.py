"""Application profiles: the workload model.

The paper evaluates on the 16 SPECCPU2006 apps with >= 5 L2 MPKI and on
SPECOMP2012 multithreaded apps.  We cannot ship SPEC, so each app is
described by the quantities CDCS itself consumes (see the substitution
notes in docs/ARCHITECTURE.md):

* ``llc_apki`` — LLC accesses (L2 misses) per kilo-instruction,
* a **miss curve** — MPKI as a function of LLC capacity (Fig 2),
* ``base_cpi`` — CPI when every LLC access hits with zero extra latency,
* for multithreaded apps, the private/shared access split and per-VC curves.

Curve shapes and intensities are calibrated to the paper's Fig 2 (omnet:
~85 MPKI cliff at 2.5 MB; milc: flat streaming; ilbdc: 512 KB footprint)
and to published SPEC CPU2006 LLC characterizations for the rest.  Absolute
numbers are approximations; the reproduction targets the paper's *shape*
(see docs/REPRODUCING.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.miss_curve import (
    MissCurve,
    cliff_curve,
    exponential_curve,
    flat_curve,
)
from repro.util.units import mb

#: Curves are defined up to the largest LLC we model (64 tiles x 512 KB).
MAX_LLC = mb(32)


@dataclass(frozen=True)
class AppProfile:
    """One application (single- or multi-threaded).

    For multithreaded apps, ``private_curve`` describes **one thread's**
    private data and ``shared_curve`` the process-wide shared data;
    ``shared_fraction`` is the fraction of LLC accesses that go to shared
    data.  Single-threaded apps use ``shared_fraction = 0``.
    """

    name: str
    base_cpi: float
    llc_apki: float
    private_curve: MissCurve
    threads: int = 1
    shared_fraction: float = 0.0
    shared_curve: MissCurve | None = None
    #: Fraction of LLC accesses that are writes (drives writeback traffic).
    write_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ValueError(f"{self.name}: base CPI must be positive")
        if self.llc_apki < 0:
            raise ValueError(f"{self.name}: APKI cannot be negative")
        if not 0 <= self.shared_fraction <= 1:
            raise ValueError(f"{self.name}: shared fraction must be in [0,1]")
        if self.threads < 1:
            raise ValueError(f"{self.name}: needs at least one thread")
        if self.shared_fraction > 0 and self.shared_curve is None:
            raise ValueError(f"{self.name}: shared accesses need a shared curve")

    @property
    def multithreaded(self) -> bool:
        return self.threads > 1

    @property
    def private_apki(self) -> float:
        """Per-thread accesses to its private VC, per kilo-instruction."""
        return self.llc_apki * (1.0 - self.shared_fraction)

    @property
    def shared_apki(self) -> float:
        """Per-thread accesses to the process's shared VC."""
        return self.llc_apki * self.shared_fraction

    def total_mpki(self, private_bytes: float, shared_bytes: float = 0.0) -> float:
        """Aggregate per-thread MPKI given each VC's allocation.

        Curves are calibrated so that ``private_curve(0) <= private_apki``
        and ``shared_curve(0) <= shared_apki`` (a VC cannot miss more often
        than it is accessed); we clamp anyway for robustness to
        user-supplied profiles.
        """
        mpki = min(float(self.private_curve(private_bytes)), self.private_apki)
        if self.shared_curve is not None:
            mpki += min(float(self.shared_curve(shared_bytes)), self.shared_apki)
        return mpki


def _st(name: str, base_cpi: float, apki: float, curve: MissCurve,
        write_fraction: float = 0.3) -> AppProfile:
    return AppProfile(
        name=name,
        base_cpi=base_cpi,
        llc_apki=apki,
        private_curve=curve,
        write_fraction=write_fraction,
    )


def _mt(
    name: str,
    base_cpi: float,
    apki: float,
    threads: int,
    shared_fraction: float,
    private_curve: MissCurve,
    shared_curve: MissCurve,
) -> AppProfile:
    return AppProfile(
        name=name,
        base_cpi=base_cpi,
        llc_apki=apki,
        private_curve=private_curve,
        threads=threads,
        shared_fraction=shared_fraction,
        shared_curve=shared_curve,
    )


def _single_threaded_profiles() -> dict[str, AppProfile]:
    """The paper's 16 memory-intensive SPECCPU2006 apps (Sec V).

    Curves are in MPKI against private-VC bytes.  Shapes: "fitting" apps
    (omnet, xalancbmk, sphinx3, astar, cactusADM) have cliffs; "streaming"
    apps (milc, lbm, libquantum, bwaves) are flat; the rest decay smoothly.
    """
    return {
        p.name: p
        for p in [
            # -- cache-fitting apps (the big CDCS winners, Sec VI-A) --------
            _st("omnet", 1.10, 105.0,
                cliff_curve(MAX_LLC, 85.0, mb(2.5), 3.0)),
            _st("xalancbmk", 1.05, 40.0,
                cliff_curve(MAX_LLC, 26.0, mb(4.0), 2.5, cliff_sharpness=0.25)),
            _st("sphinx3", 0.95, 25.0,
                exponential_curve(MAX_LLC, 14.0, 1.5, mb(2.0))),
            _st("astar", 1.20, 18.0,
                cliff_curve(MAX_LLC, 10.0, mb(1.0), 2.0, cliff_sharpness=0.3)),
            _st("cactusADM", 1.00, 12.0,
                cliff_curve(MAX_LLC, 6.5, mb(2.8), 1.2, cliff_sharpness=0.2)),
            # -- streaming / thrashing apps (no LLC benefit) ----------------
            _st("milc", 0.90, 26.0, flat_curve(MAX_LLC, 25.0), 0.4),
            _st("lbm", 0.85, 32.0, flat_curve(MAX_LLC, 30.0), 0.45),
            _st("libquantum", 0.80, 26.0, flat_curve(MAX_LLC, 25.0), 0.25),
            _st("bwaves", 0.95, 21.0,
                MissCurve([0, mb(24), MAX_LLC], [19.0, 19.0, 16.0])),
            # -- large-footprint, gradually-benefiting apps -----------------
            _st("mcf", 1.40, 95.0,
                exponential_curve(MAX_LLC, 70.0, 18.0, mb(5.0))),
            _st("GemsFDTD", 1.00, 30.0,
                exponential_curve(MAX_LLC, 24.0, 8.0, mb(7.0))),
            _st("leslie3d", 0.95, 24.0,
                exponential_curve(MAX_LLC, 20.0, 6.0, mb(4.0))),
            # -- friendly apps with small/medium working sets ---------------
            _st("bzip2", 1.10, 11.0,
                exponential_curve(MAX_LLC, 7.5, 1.5, mb(0.8))),
            _st("gcc", 1.15, 9.0,
                exponential_curve(MAX_LLC, 6.0, 0.8, mb(0.5))),
            _st("zeusmp", 0.95, 10.0,
                exponential_curve(MAX_LLC, 7.0, 3.0, mb(2.0))),
            _st("calculix", 0.85, 6.0,
                exponential_curve(MAX_LLC, 5.0, 0.8, mb(0.6))),
        ]
    }


def _multithreaded_profiles() -> dict[str, AppProfile]:
    """SPECOMP2012-style 8-thread apps.

    ``ilbdc``/``md``/``nab`` are shared-heavy (cluster well); ``mgrid`` is
    private-heavy and intensive (spreads well) — exactly the Fig 16b mix.
    Remaining apps fill out the mix pool with varied behavior.
    """
    t = 8
    return {
        p.name: p
        for p in [
            _mt("ilbdc", 1.00, 28.0, t, 0.80,
                exponential_curve(MAX_LLC, 5.6, 0.7, mb(0.05)),
                cliff_curve(MAX_LLC, 22.4, mb(0.5), 1.4, cliff_sharpness=0.3)),
            _mt("md", 1.05, 14.0, t, 0.75,
                exponential_curve(MAX_LLC, 3.5, 0.5, mb(0.1)),
                cliff_curve(MAX_LLC, 10.5, mb(1.0), 1.0, cliff_sharpness=0.3)),
            _mt("nab", 0.95, 12.0, t, 0.70,
                exponential_curve(MAX_LLC, 3.6, 0.6, mb(0.1)),
                exponential_curve(MAX_LLC, 8.4, 1.0, mb(0.8))),
            _mt("mgrid", 0.90, 30.0, t, 0.15,
                cliff_curve(MAX_LLC, 25.5, mb(1.5), 4.0, cliff_sharpness=0.3),
                flat_curve(MAX_LLC, 4.5)),
            _mt("swim", 0.90, 28.0, t, 0.20,
                flat_curve(MAX_LLC, 22.4),
                flat_curve(MAX_LLC, 5.6)),
            _mt("bt331", 1.00, 15.0, t, 0.40,
                exponential_curve(MAX_LLC, 9.0, 2.0, mb(1.0)),
                exponential_curve(MAX_LLC, 6.0, 1.0, mb(0.5))),
            _mt("fma3d", 1.05, 13.0, t, 0.50,
                exponential_curve(MAX_LLC, 6.5, 1.5, mb(0.7)),
                exponential_curve(MAX_LLC, 6.5, 1.2, mb(1.2))),
            _mt("applu331", 0.95, 20.0, t, 0.30,
                exponential_curve(MAX_LLC, 14.0, 4.0, mb(2.0)),
                exponential_curve(MAX_LLC, 6.0, 1.5, mb(0.8))),
            _mt("botsalgn", 1.10, 8.0, t, 0.60,
                exponential_curve(MAX_LLC, 3.2, 0.5, mb(0.2)),
                cliff_curve(MAX_LLC, 4.8, mb(0.8), 0.5, cliff_sharpness=0.3)),
            _mt("smithwa", 1.00, 10.0, t, 0.65,
                exponential_curve(MAX_LLC, 3.5, 0.6, mb(0.15)),
                cliff_curve(MAX_LLC, 6.5, mb(1.2), 0.7, cliff_sharpness=0.25)),
        ]
    }


#: Registry of all profiles by name.
SINGLE_THREADED: dict[str, AppProfile] = _single_threaded_profiles()
MULTI_THREADED: dict[str, AppProfile] = _multithreaded_profiles()
ALL_PROFILES: dict[str, AppProfile] = {**SINGLE_THREADED, **MULTI_THREADED}


def get_static_profile(name: str) -> AppProfile:
    """Look up a *static* profile by name (phased registry excluded — this
    is what phase schedules are composed from)."""
    try:
        return ALL_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(ALL_PROFILES))
        raise KeyError(f"unknown app {name!r}; known apps: {known}") from None


def get_profile(name: str):
    """Look up a profile by name — static pools first, then the named
    phased schedules (``repro.workloads.phased.PHASED_PROFILES``), so mixes
    name phased apps exactly like static ones.  Raises ``KeyError`` listing
    every known name."""
    if name in ALL_PROFILES:
        return ALL_PROFILES[name]
    # Imported lazily: phased composes its schedules from this module.
    from repro.workloads.phased import PHASED_PROFILES

    if name in PHASED_PROFILES:
        return PHASED_PROFILES[name]
    known = ", ".join(sorted(ALL_PROFILES) + sorted(PHASED_PROFILES))
    raise KeyError(f"unknown app {name!r}; known apps: {known}")
