"""The trace-driven simulation engine.

Event-driven at LLC-access granularity: each thread alternates compute
phases (instructions at base CPI) with LLC accesses served by the
:class:`~repro.sim.llc.DistributedLLC`; a heap orders threads and timer
callbacks (background-invalidation walker steps, reconfigurations) by
time.  Aggregate IPC is recorded in fixed windows — the Fig 17 trace.

Reconfigurations are scheduled with a movement protocol (sim.reconfig);
bulk invalidations impose a global pause, background invalidations run as
timer callbacks while cores keep executing.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass

from repro.cache.monitor import UMon
from repro.config import SystemConfig
from repro.geometry.mesh import Topology
from repro.sched.problem import PlacementSolution
from repro.sim.llc import DistributedLLC
from repro.sim.reconfig import MovementProtocol
from repro.sim.stats import WindowedIpc
from repro.workloads.generator import StackDistanceStream


def weighted_round_robin(weights: dict[int, float]) -> Callable[[], int]:
    """Deterministic weighted interleaving of VC ids (no RNG, so traces are
    exactly reproducible): classic largest-accumulated-credit scheduling."""
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("picker needs positive total weight")
    norm = {k: w / total for k, w in weights.items() if w > 0}
    credit = {k: 0.0 for k in norm}

    def pick() -> int:
        for k, w in norm.items():
            credit[k] += w
        best = max(sorted(credit), key=lambda k: credit[k])
        credit[best] -= 1.0
        return best

    return pick


@dataclass
class SimThread:
    """One running thread: compute/access alternation state."""

    thread_id: int
    core: int
    base_cpi: float
    apki: float
    streams: dict[int, StackDistanceStream]
    picker: Callable[[], int]
    write_fraction: float = 0.3
    time: float = 0.0
    instructions: float = 0.0
    accesses: int = 0

    @property
    def instructions_per_access(self) -> float:
        return 1000.0 / self.apki

    def ipc(self) -> float:
        return self.instructions / self.time if self.time > 0 else 0.0


class TraceSimulator:
    """Drives threads against a configured :class:`DistributedLLC`."""

    def __init__(
        self,
        config: SystemConfig,
        topology: Topology,
        llc: DistributedLLC,
        window_cycles: float = 10_000.0,
    ):
        self.config = config
        self.topology = topology
        self.llc = llc
        self.ipc_trace = WindowedIpc(window_cycles)
        self.threads: list[SimThread] = []
        self.pause_until = 0.0
        self._heap: list[tuple[float, int, int, Callable | None]] = []
        self._seq = itertools.count()
        self._monitors: dict[int, UMon] = {}
        self._write_credit: dict[int, float] = {}

    # -- setup ----------------------------------------------------------------

    def add_thread(
        self,
        thread_id: int,
        core: int,
        base_cpi: float,
        apki: float,
        streams: dict[int, StackDistanceStream],
        weights: dict[int, float],
        write_fraction: float = 0.3,
    ) -> SimThread:
        """Register a thread; *streams*/*weights* are keyed by VC id."""
        thread = SimThread(
            thread_id=thread_id,
            core=core,
            base_cpi=base_cpi,
            apki=apki,
            streams=streams,
            picker=weighted_round_robin(weights),
            write_fraction=write_fraction,
        )
        self.threads.append(thread)
        self._write_credit[thread_id] = 0.0
        heapq.heappush(self._heap, (0.0, next(self._seq), len(self.threads) - 1, None))
        return thread

    def attach_monitor(self, vc_id: int, monitor: UMon) -> None:
        """Sample this VC's accesses into a UMON/GMON (the Sec IV-G loop)."""
        self._monitors[vc_id] = monitor

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), -1, callback))

    def schedule_reconfiguration(
        self,
        time: float,
        solution: PlacementSolution,
        protocol: MovementProtocol,
    ) -> None:
        def fire() -> None:
            events = protocol.apply(self.llc, solution, time)
            if events.pause_until > self.pause_until:
                self.pause_until = events.pause_until
            for t, cb in events.timers:
                self.schedule(t, cb)

        self.schedule(time, fire)

    # -- run ------------------------------------------------------------------

    def _step_thread(self, idx: int) -> None:
        thread = self.threads[idx]
        if thread.time < self.pause_until:
            thread.time = self.pause_until  # bulk-invalidation stall
        # Compute phase.
        thread.time += thread.instructions_per_access * thread.base_cpi
        thread.instructions += thread.instructions_per_access
        self.ipc_trace.record(thread.time, thread.instructions_per_access)
        # Access phase.
        vc_id = thread.picker()
        addr = thread.streams[vc_id].next_address()
        monitor = self._monitors.get(vc_id)
        if monitor is not None:
            monitor.access(addr)
        self._write_credit[thread.thread_id] += thread.write_fraction
        write = self._write_credit[thread.thread_id] >= 1.0
        if write:
            self._write_credit[thread.thread_id] -= 1.0
        result = self.llc.access(thread.core, vc_id, addr, write)
        core_cfg = self.config.core
        exposed = (
            result.onchip_latency / core_cfg.mlp_onchip
            + result.offchip_latency / core_cfg.mlp_offchip
        )
        thread.time += exposed
        thread.accesses += 1
        heapq.heappush(
            self._heap, (thread.time, next(self._seq), idx, None)
        )

    def run_until(self, t_end: float) -> None:
        """Advance the simulation until every event before *t_end* ran."""
        while self._heap and self._heap[0][0] < t_end:
            time, _, idx, callback = heapq.heappop(self._heap)
            if callback is not None:
                callback()
            else:
                self._step_thread(idx)

    def aggregate_ipc(self, t0: float = 0.0, t1: float = float("inf")) -> float:
        return self.ipc_trace.mean_ipc(t0, t1)
