"""The simulation engines: event-driven traces and vectorized epochs.

**TraceSimulator** is event-driven at LLC-access granularity: each thread
alternates compute phases (instructions at base CPI) with LLC accesses
served by the :class:`~repro.sim.llc.DistributedLLC`; a heap orders
threads and timer callbacks (background-invalidation walker steps,
reconfigurations) by time.  Aggregate IPC is recorded in fixed windows —
the Fig 17 trace.  Reconfigurations are scheduled with a movement
protocol (sim.reconfig); bulk invalidations impose a global pause,
background invalidations run as timer callbacks while cores keep
executing.

**EpochEngine** is the vectorized alternative for epoch-granular studies
(steady-state behavior across reconfiguration intervals, Fig 18-style
sweeps): instead of stepping accesses one heap event at a time, each
epoch applies one placement solution and advances every thread and VC
analytically through the batched kernels, carrying state as arrays.

Both engines pick up **phased workloads**
(:class:`~repro.workloads.phased.PhasedProfile`) at epoch boundaries: the
epoch engine snapshots each process's active phase from its cumulative
retired instructions before evaluating an epoch
(:meth:`EpochEngine.current_mix`), and the trace simulator retunes thread
models through :meth:`TraceSimulator.set_thread_profile` (scheduled by
:func:`repro.sim.setup.schedule_phase_updates`).  Phase position is a pure
function of the instruction arrays, which are bitwise-identical between
the vectorized and scalar kernel paths — so phased runs inherit the PR 2
equivalence contract unchanged.

Shape conventions
-----------------
EpochEngine state, with ``T`` threads and ``K = len(problem.vcs)`` VCs
(all ``float64``, fixed across epochs):

* ``instructions``, ``cycles`` — ``(T,)`` cumulative per-thread totals;
* per epoch: ``ipc`` — ``(T,)``; ``vc_sizes`` — ``(K,)`` bytes allocated
  to each VC under that epoch's solution (``problem.vcs`` order);
* traffic accumulates into one :class:`~repro.noc.traffic.TrafficCounter`
  through its raw ``add_flit_hops`` accumulator — one ``(T,)`` dot per
  class of already-flit-priced ``traffic_pki`` values (hop expectations
  courtesy of the precomputed mesh distance matrices behind the
  evaluation's geometry step).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.cache.monitor import UMon
from repro.cache.sketch import DEFAULT_SKETCH_BYTES, SketchBank, problem_sketch_bank
from repro.config import SystemConfig
from repro.geometry.mesh import Topology
from repro.model.system import AnalyticSystem, MixEvaluation
from repro.noc.traffic import TrafficClass, TrafficCounter
from repro.sched.problem import PlacementProblem, PlacementSolution
from repro.sim.llc import DistributedLLC
from repro.sim.reconfig import MovementProtocol
from repro.sim.stats import WindowedIpc
from repro.workloads.generator import StackDistanceStream
from repro.workloads.mixes import Mix, mix_is_phased, snapshot_mix


def weighted_round_robin(weights: dict[int, float]) -> Callable[[], int]:
    """Deterministic weighted interleaving of VC ids (no RNG, so traces are
    exactly reproducible): classic largest-accumulated-credit scheduling."""
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("picker needs positive total weight")
    norm = {k: w / total for k, w in weights.items() if w > 0}
    credit = {k: 0.0 for k in norm}

    def pick() -> int:
        for k, w in norm.items():
            credit[k] += w
        best = max(sorted(credit), key=lambda k: credit[k])
        credit[best] -= 1.0
        return best

    return pick


@dataclass
class SimThread:
    """One running thread: compute/access alternation state."""

    thread_id: int
    core: int
    base_cpi: float
    apki: float
    streams: dict[int, StackDistanceStream]
    picker: Callable[[], int]
    write_fraction: float = 0.3
    time: float = 0.0
    instructions: float = 0.0
    accesses: int = 0

    @property
    def instructions_per_access(self) -> float:
        return 1000.0 / self.apki

    def ipc(self) -> float:
        return self.instructions / self.time if self.time > 0 else 0.0


class TraceSimulator:
    """Drives threads against a configured :class:`DistributedLLC`."""

    def __init__(
        self,
        config: SystemConfig,
        topology: Topology,
        llc: DistributedLLC,
        window_cycles: float = 10_000.0,
    ):
        self.config = config
        self.topology = topology
        self.llc = llc
        self.ipc_trace = WindowedIpc(window_cycles)
        self.threads: list[SimThread] = []
        self.pause_until = 0.0
        self._heap: list[tuple[float, int, int, Callable | None]] = []
        self._seq = itertools.count()
        self._monitors: dict[int, UMon] = {}
        self._write_credit: dict[int, float] = {}

    # -- setup ----------------------------------------------------------------

    def add_thread(
        self,
        thread_id: int,
        core: int,
        base_cpi: float,
        apki: float,
        streams: dict[int, StackDistanceStream],
        weights: dict[int, float],
        write_fraction: float = 0.3,
    ) -> SimThread:
        """Register a thread; *streams*/*weights* are keyed by VC id."""
        thread = SimThread(
            thread_id=thread_id,
            core=core,
            base_cpi=base_cpi,
            apki=apki,
            streams=streams,
            picker=weighted_round_robin(weights),
            write_fraction=write_fraction,
        )
        self.threads.append(thread)
        self._write_credit[thread_id] = 0.0
        heapq.heappush(self._heap, (0.0, next(self._seq), len(self.threads) - 1, None))
        return thread

    def attach_monitor(self, vc_id: int, monitor: UMon) -> None:
        """Sample this VC's accesses into a UMON/GMON (the Sec IV-G loop)."""
        self._monitors[vc_id] = monitor

    def set_thread_profile(
        self,
        thread_id: int,
        base_cpi: float | None = None,
        apki: float | None = None,
        write_fraction: float | None = None,
        streams: dict[int, StackDistanceStream] | None = None,
        weights: dict[int, float] | None = None,
    ) -> None:
        """Retune a running thread's demand model (a phase change).

        Only the given fields change; the thread keeps its core, clock, and
        cumulative counters, so a phased app's IPC trace is continuous
        through the switch.  Already-resident lines from the previous phase
        age out of the LLC naturally — exactly how a real phase change
        looks to the cache.
        """
        for thread in self.threads:
            if thread.thread_id == thread_id:
                break
        else:
            raise KeyError(f"no thread with id {thread_id}")
        if base_cpi is not None:
            thread.base_cpi = base_cpi
        if apki is not None:
            thread.apki = apki
        if write_fraction is not None:
            thread.write_fraction = write_fraction
        if streams is not None:
            thread.streams = streams
        if weights is not None:
            thread.picker = weighted_round_robin(weights)

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), -1, callback))

    def schedule_reconfiguration(
        self,
        time: float,
        solution: PlacementSolution,
        protocol: MovementProtocol,
    ) -> None:
        def fire() -> None:
            events = protocol.apply(self.llc, solution, time)
            if events.pause_until > self.pause_until:
                self.pause_until = events.pause_until
            for t, cb in events.timers:
                self.schedule(t, cb)

        self.schedule(time, fire)

    # -- run ------------------------------------------------------------------

    def _step_thread(self, idx: int) -> None:
        thread = self.threads[idx]
        if thread.time < self.pause_until:
            thread.time = self.pause_until  # bulk-invalidation stall
        # Compute phase.
        thread.time += thread.instructions_per_access * thread.base_cpi
        thread.instructions += thread.instructions_per_access
        self.ipc_trace.record(thread.time, thread.instructions_per_access)
        # Access phase.
        vc_id = thread.picker()
        addr = thread.streams[vc_id].next_address()
        monitor = self._monitors.get(vc_id)
        if monitor is not None:
            monitor.access(addr)
        self._write_credit[thread.thread_id] += thread.write_fraction
        write = self._write_credit[thread.thread_id] >= 1.0
        if write:
            self._write_credit[thread.thread_id] -= 1.0
        result = self.llc.access(thread.core, vc_id, addr, write)
        core_cfg = self.config.core
        exposed = (
            result.onchip_latency / core_cfg.mlp_onchip
            + result.offchip_latency / core_cfg.mlp_offchip
        )
        thread.time += exposed
        thread.accesses += 1
        heapq.heappush(
            self._heap, (thread.time, next(self._seq), idx, None)
        )

    def run_until(self, t_end: float) -> None:
        """Advance the simulation until every event before *t_end* ran."""
        while self._heap and self._heap[0][0] < t_end:
            time, _, idx, callback = heapq.heappop(self._heap)
            if callback is not None:
                callback()
            else:
                self._step_thread(idx)

    def aggregate_ipc(self, t0: float = 0.0, t1: float = float("inf")) -> float:
        return self.ipc_trace.mean_ipc(t0, t1)


# ---------------------------------------------------------------------------
# Vectorized epoch engine
# ---------------------------------------------------------------------------


@dataclass
class EpochResult:
    """One epoch's outcome (arrays in ``problem`` thread/VC order)."""

    epoch: int
    cycles: float
    #: (T,) per-thread IPC during this epoch.
    ipc: np.ndarray
    #: (K,) bytes allocated per VC under this epoch's solution.
    vc_sizes: np.ndarray
    #: Aggregate chip IPC (sum of thread IPCs).
    aggregate_ipc: float
    #: The full analytic evaluation (latencies, energy, traffic classes).
    evaluation: MixEvaluation
    #: process_id -> active phase index at the epoch's start (phased
    #: processes only; empty for stationary mixes).
    phases: dict[int, int] = field(default_factory=dict)


@dataclass
class EpochTrace:
    """Accumulated multi-epoch outcome."""

    results: list[EpochResult] = field(default_factory=list)

    def aggregate_ipc_trace(self) -> list[tuple[float, float]]:
        """(epoch start cycle, aggregate IPC) pairs — the Fig 17-shaped
        series at epoch granularity."""
        out, t = [], 0.0
        for r in self.results:
            out.append((t, r.aggregate_ipc))
            t += r.cycles
        return out


class EpochEngine:
    """Epoch-granular co-scheduling simulation on array state.

    Where :class:`TraceSimulator` steps one heap event per LLC access,
    this engine treats a whole reconfiguration interval as one step: apply
    a :class:`PlacementSolution`, evaluate every thread's steady-state IPC
    through the vectorized analytic kernels (batched miss curves, matrix
    geometry, array bandwidth fixed point), and advance cumulative
    per-thread instruction/cycle arrays.  Use it for reconfiguration-
    period sweeps and long schedules where per-access simulation is
    intractable; use TraceSimulator when transient movement effects
    (Fig 17's notch) are the object of study.

    **Phased mixes:** when the mix contains
    :class:`~repro.workloads.phased.PhasedProfile` apps, every epoch is
    evaluated against the mix's *active* snapshot — each process's phase
    is read off its threads' cumulative retired instructions at the epoch
    boundary (:meth:`current_mix` / :meth:`current_problem`), which is
    also the problem a caller should hand to
    :func:`repro.sched.reconfigure.reconfigure` (or build via
    :func:`repro.sched.reconfigure.reconfigure_epoch`) to get that
    epoch's placement.  Stationary mixes take the original fast path
    untouched.
    """

    def __init__(
        self,
        mix: Mix,
        problem: PlacementProblem,
        system: AnalyticSystem | None = None,
    ):
        self.mix = mix
        self.problem = problem
        self.system = system or AnalyticSystem(problem.config)
        n_threads = len(problem.threads)
        self.instructions = np.zeros(n_threads)
        self.cycles = np.zeros(n_threads)
        self.traffic = TrafficCounter(problem.config.noc)
        self.trace = EpochTrace()
        self._thread_index = {
            t.thread_id: i for i, t in enumerate(problem.threads)
        }
        self._phased = mix_is_phased(mix)
        self._process_threads = {
            p.process_id: [self._thread_index[t] for t in p.thread_ids]
            for p in mix.processes
        }
        #: phase-index tuple -> (snapshot mix, snapshot problem); phases
        #: revisit (schedules cycle), so snapshots are reused across epochs.
        self._snapshots: dict[tuple[int, ...], tuple[Mix, PlacementProblem]] = {}

    # -- phase bookkeeping ---------------------------------------------------

    def process_instructions(self) -> dict[int, float]:
        """process_id -> mean cumulative instructions of its threads (the
        phase clock).  The mean is an ordered sum over thread index, so it
        is bitwise-identical between kernel paths."""
        out = {}
        for pid, idxs in self._process_threads.items():
            total = 0.0
            for i in idxs:
                total += float(self.instructions[i])
            out[pid] = total / len(idxs)
        return out

    def current_phases(self) -> dict[int, int]:
        """process_id -> active phase index, for phased processes only."""
        if not self._phased:
            return {}
        clock = self.process_instructions()
        out = {}
        for proc in self.mix.processes:
            phase_at = getattr(proc.profile, "phase_index", None)
            if phase_at is not None:
                out[proc.process_id] = phase_at(clock[proc.process_id])
        return out

    def _snapshot(self) -> tuple[Mix, PlacementProblem]:
        """The active (mix, problem) for the epoch about to run."""
        if not self._phased:
            return self.mix, self.problem
        phases = self.current_phases()
        key = tuple(sorted(phases.items()))
        if key not in self._snapshots:
            from repro.nuca.base import build_problem

            mix = snapshot_mix(self.mix, self.process_instructions())
            self._snapshots[key] = (
                mix,
                build_problem(mix, self.problem.config, self.problem.topology),
            )
        return self._snapshots[key]

    def current_mix(self) -> Mix:
        """The mix with every phased process at its active phase."""
        return self._snapshot()[0]

    def current_problem(self) -> PlacementProblem:
        """The placement problem of the active snapshot — what a
        reconfiguration at this epoch boundary solves (its curves are what
        hardware monitors would report for the coming interval)."""
        return self._snapshot()[1]

    def current_sketch_bank(
        self, budget_bytes: int = DEFAULT_SKETCH_BYTES
    ) -> SketchBank:
        """The sketch bank of the active problem — the epoch's streamed
        telemetry view.

        Memoized on the snapshot's problem object (via
        :func:`repro.cache.sketch.problem_sketch_bank`), and snapshots
        are cached per phase key, so stationary epochs return the very
        same bank without rebuilding anything; only a phase flip sketches
        the (new) curves of its new snapshot."""
        return problem_sketch_bank(self.current_problem(), budget_bytes)

    # -- epochs --------------------------------------------------------------

    def run_epoch(self, solution: PlacementSolution, cycles: float) -> EpochResult:
        """Advance every thread *cycles* cycles under *solution*.

        For phased mixes the evaluation runs against the active phase
        snapshot; the solution should come from a reconfiguration of
        :meth:`current_problem` (a stale solution is legal — that is the
        "placement lags the phases" experiment)."""
        if cycles <= 0:
            raise ValueError("epoch length must be positive")
        from repro.nuca.base import SchemeResult

        phases = self.current_phases()
        mix, problem = self._snapshot()
        evaluation = self.system.evaluate_solution(
            mix, problem, SchemeResult("epoch", solution)
        )
        ipc = np.zeros(len(self.instructions))
        traffic_pki = {cls: np.zeros(len(self.instructions)) for cls in TrafficClass}
        for perf in evaluation.threads:
            idx = self._thread_index[perf.thread_id]
            ipc[idx] = perf.ipc
            for cls in TrafficClass:
                traffic_pki[cls][idx] = perf.traffic_pki[cls.value]
        retired = ipc * cycles
        self.instructions += retired
        self.cycles += cycles
        # Flit-hops this epoch: per-thread (flit-hops/kilo-instruction x
        # kilo-instructions retired), one dot per traffic class.  The
        # traffic_pki values are already flit-priced by the analytic
        # engine, so they go through the raw accumulator.
        for cls in TrafficClass:
            self.traffic.add_flit_hops(
                cls, float(traffic_pki[cls] @ (retired / 1000.0))
            )
        vc_sizes = np.array(
            [solution.vc_sizes.get(vc.vc_id, 0.0) for vc in problem.vcs]
        )
        result = EpochResult(
            epoch=len(self.trace.results),
            cycles=cycles,
            ipc=ipc,
            vc_sizes=vc_sizes,
            aggregate_ipc=float(ipc.sum()),
            evaluation=evaluation,
            phases=phases,
        )
        self.trace.results.append(result)
        return result

    def run_schedule(
        self, schedule: Sequence[tuple[PlacementSolution, float]]
    ) -> EpochTrace:
        """Run a list of (solution, cycles) epochs; returns the trace."""
        for solution, cycles in schedule:
            self.run_epoch(solution, cycles)
        return self.trace

    def reconfigure(self, engine):
        """Solve this epoch's active problem through *engine* (a
        :class:`repro.sched.engine.ReconfigEngine`), threading warm solver
        state across epoch boundaries — the Sec IV-G runtime never solves a
        frozen problem from scratch.  Returns the
        :class:`~repro.sched.reconfigure.ReconfigResult`; run it with
        :meth:`run_epoch`."""
        return engine.solve(self.current_problem())

    def run_reconfigured(self, engine, cycles: float, n_epochs: int):
        """Drive *n_epochs* epochs of *cycles* each, reconfiguring through
        *engine* at every boundary.  Returns the list of
        :class:`~repro.sched.reconfigure.ReconfigResult` (one per epoch);
        the IPC trace accumulates in :attr:`trace` as usual."""
        results = []
        for _ in range(n_epochs):
            result = self.reconfigure(engine)
            self.run_epoch(result.solution, cycles)
            results.append(result)
        return results

    def mean_ipc_per_thread(self) -> np.ndarray:
        """(T,) cumulative instructions / cycles across all epochs run."""
        return np.divide(
            self.instructions,
            self.cycles,
            out=np.zeros_like(self.instructions),
            where=self.cycles > 0,
        )
