"""The simulation engines: event-driven traces and vectorized epochs.

**TraceSimulator** is event-driven at LLC-access granularity: each thread
alternates compute phases (instructions at base CPI) with LLC accesses
served by the :class:`~repro.sim.llc.DistributedLLC`; a heap orders
threads and timer callbacks (background-invalidation walker steps,
reconfigurations) by time.  Aggregate IPC is recorded in fixed windows —
the Fig 17 trace.  Reconfigurations are scheduled with a movement
protocol (sim.reconfig); bulk invalidations impose a global pause,
background invalidations run as timer callbacks while cores keep
executing.

**EpochEngine** is the vectorized alternative for epoch-granular studies
(steady-state behavior across reconfiguration intervals, Fig 18-style
sweeps): instead of stepping accesses one heap event at a time, each
epoch applies one placement solution and advances every thread and VC
analytically through the batched kernels, carrying state as arrays.

Shape conventions
-----------------
EpochEngine state, with ``T`` threads and ``K = len(problem.vcs)`` VCs
(all ``float64``, fixed across epochs):

* ``instructions``, ``cycles`` — ``(T,)`` cumulative per-thread totals;
* per epoch: ``ipc`` — ``(T,)``; ``vc_sizes`` — ``(K,)`` bytes allocated
  to each VC under that epoch's solution (``problem.vcs`` order);
* traffic accumulates into one :class:`~repro.noc.traffic.TrafficCounter`
  through its raw ``add_flit_hops`` accumulator — one ``(T,)`` dot per
  class of already-flit-priced ``traffic_pki`` values (hop expectations
  courtesy of the precomputed mesh distance matrices behind the
  evaluation's geometry step).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.cache.monitor import UMon
from repro.config import SystemConfig
from repro.geometry.mesh import Topology
from repro.model.system import AnalyticSystem, MixEvaluation
from repro.noc.traffic import TrafficClass, TrafficCounter
from repro.sched.problem import PlacementProblem, PlacementSolution
from repro.sim.llc import DistributedLLC
from repro.sim.reconfig import MovementProtocol
from repro.sim.stats import WindowedIpc
from repro.workloads.generator import StackDistanceStream
from repro.workloads.mixes import Mix


def weighted_round_robin(weights: dict[int, float]) -> Callable[[], int]:
    """Deterministic weighted interleaving of VC ids (no RNG, so traces are
    exactly reproducible): classic largest-accumulated-credit scheduling."""
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("picker needs positive total weight")
    norm = {k: w / total for k, w in weights.items() if w > 0}
    credit = {k: 0.0 for k in norm}

    def pick() -> int:
        for k, w in norm.items():
            credit[k] += w
        best = max(sorted(credit), key=lambda k: credit[k])
        credit[best] -= 1.0
        return best

    return pick


@dataclass
class SimThread:
    """One running thread: compute/access alternation state."""

    thread_id: int
    core: int
    base_cpi: float
    apki: float
    streams: dict[int, StackDistanceStream]
    picker: Callable[[], int]
    write_fraction: float = 0.3
    time: float = 0.0
    instructions: float = 0.0
    accesses: int = 0

    @property
    def instructions_per_access(self) -> float:
        return 1000.0 / self.apki

    def ipc(self) -> float:
        return self.instructions / self.time if self.time > 0 else 0.0


class TraceSimulator:
    """Drives threads against a configured :class:`DistributedLLC`."""

    def __init__(
        self,
        config: SystemConfig,
        topology: Topology,
        llc: DistributedLLC,
        window_cycles: float = 10_000.0,
    ):
        self.config = config
        self.topology = topology
        self.llc = llc
        self.ipc_trace = WindowedIpc(window_cycles)
        self.threads: list[SimThread] = []
        self.pause_until = 0.0
        self._heap: list[tuple[float, int, int, Callable | None]] = []
        self._seq = itertools.count()
        self._monitors: dict[int, UMon] = {}
        self._write_credit: dict[int, float] = {}

    # -- setup ----------------------------------------------------------------

    def add_thread(
        self,
        thread_id: int,
        core: int,
        base_cpi: float,
        apki: float,
        streams: dict[int, StackDistanceStream],
        weights: dict[int, float],
        write_fraction: float = 0.3,
    ) -> SimThread:
        """Register a thread; *streams*/*weights* are keyed by VC id."""
        thread = SimThread(
            thread_id=thread_id,
            core=core,
            base_cpi=base_cpi,
            apki=apki,
            streams=streams,
            picker=weighted_round_robin(weights),
            write_fraction=write_fraction,
        )
        self.threads.append(thread)
        self._write_credit[thread_id] = 0.0
        heapq.heappush(self._heap, (0.0, next(self._seq), len(self.threads) - 1, None))
        return thread

    def attach_monitor(self, vc_id: int, monitor: UMon) -> None:
        """Sample this VC's accesses into a UMON/GMON (the Sec IV-G loop)."""
        self._monitors[vc_id] = monitor

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), -1, callback))

    def schedule_reconfiguration(
        self,
        time: float,
        solution: PlacementSolution,
        protocol: MovementProtocol,
    ) -> None:
        def fire() -> None:
            events = protocol.apply(self.llc, solution, time)
            if events.pause_until > self.pause_until:
                self.pause_until = events.pause_until
            for t, cb in events.timers:
                self.schedule(t, cb)

        self.schedule(time, fire)

    # -- run ------------------------------------------------------------------

    def _step_thread(self, idx: int) -> None:
        thread = self.threads[idx]
        if thread.time < self.pause_until:
            thread.time = self.pause_until  # bulk-invalidation stall
        # Compute phase.
        thread.time += thread.instructions_per_access * thread.base_cpi
        thread.instructions += thread.instructions_per_access
        self.ipc_trace.record(thread.time, thread.instructions_per_access)
        # Access phase.
        vc_id = thread.picker()
        addr = thread.streams[vc_id].next_address()
        monitor = self._monitors.get(vc_id)
        if monitor is not None:
            monitor.access(addr)
        self._write_credit[thread.thread_id] += thread.write_fraction
        write = self._write_credit[thread.thread_id] >= 1.0
        if write:
            self._write_credit[thread.thread_id] -= 1.0
        result = self.llc.access(thread.core, vc_id, addr, write)
        core_cfg = self.config.core
        exposed = (
            result.onchip_latency / core_cfg.mlp_onchip
            + result.offchip_latency / core_cfg.mlp_offchip
        )
        thread.time += exposed
        thread.accesses += 1
        heapq.heappush(
            self._heap, (thread.time, next(self._seq), idx, None)
        )

    def run_until(self, t_end: float) -> None:
        """Advance the simulation until every event before *t_end* ran."""
        while self._heap and self._heap[0][0] < t_end:
            time, _, idx, callback = heapq.heappop(self._heap)
            if callback is not None:
                callback()
            else:
                self._step_thread(idx)

    def aggregate_ipc(self, t0: float = 0.0, t1: float = float("inf")) -> float:
        return self.ipc_trace.mean_ipc(t0, t1)


# ---------------------------------------------------------------------------
# Vectorized epoch engine
# ---------------------------------------------------------------------------


@dataclass
class EpochResult:
    """One epoch's outcome (arrays in ``problem`` thread/VC order)."""

    epoch: int
    cycles: float
    #: (T,) per-thread IPC during this epoch.
    ipc: np.ndarray
    #: (K,) bytes allocated per VC under this epoch's solution.
    vc_sizes: np.ndarray
    #: Aggregate chip IPC (sum of thread IPCs).
    aggregate_ipc: float
    #: The full analytic evaluation (latencies, energy, traffic classes).
    evaluation: MixEvaluation


@dataclass
class EpochTrace:
    """Accumulated multi-epoch outcome."""

    results: list[EpochResult] = field(default_factory=list)

    def aggregate_ipc_trace(self) -> list[tuple[float, float]]:
        """(epoch start cycle, aggregate IPC) pairs — the Fig 17-shaped
        series at epoch granularity."""
        out, t = [], 0.0
        for r in self.results:
            out.append((t, r.aggregate_ipc))
            t += r.cycles
        return out


class EpochEngine:
    """Epoch-granular co-scheduling simulation on array state.

    Where :class:`TraceSimulator` steps one heap event per LLC access,
    this engine treats a whole reconfiguration interval as one step: apply
    a :class:`PlacementSolution`, evaluate every thread's steady-state IPC
    through the vectorized analytic kernels (batched miss curves, matrix
    geometry, array bandwidth fixed point), and advance cumulative
    per-thread instruction/cycle arrays.  Use it for reconfiguration-
    period sweeps and long schedules where per-access simulation is
    intractable; use TraceSimulator when transient movement effects
    (Fig 17's notch) are the object of study.
    """

    def __init__(
        self,
        mix: Mix,
        problem: PlacementProblem,
        system: AnalyticSystem | None = None,
    ):
        self.mix = mix
        self.problem = problem
        self.system = system or AnalyticSystem(problem.config)
        n_threads = len(problem.threads)
        self.instructions = np.zeros(n_threads)
        self.cycles = np.zeros(n_threads)
        self.traffic = TrafficCounter(problem.config.noc)
        self.trace = EpochTrace()
        self._thread_index = {
            t.thread_id: i for i, t in enumerate(problem.threads)
        }

    def run_epoch(self, solution: PlacementSolution, cycles: float) -> EpochResult:
        """Advance every thread *cycles* cycles under *solution*."""
        if cycles <= 0:
            raise ValueError("epoch length must be positive")
        from repro.nuca.base import SchemeResult

        evaluation = self.system.evaluate_solution(
            self.mix, self.problem, SchemeResult("epoch", solution)
        )
        ipc = np.zeros(len(self.instructions))
        traffic_pki = {cls: np.zeros(len(self.instructions)) for cls in TrafficClass}
        for perf in evaluation.threads:
            idx = self._thread_index[perf.thread_id]
            ipc[idx] = perf.ipc
            for cls in TrafficClass:
                traffic_pki[cls][idx] = perf.traffic_pki[cls.value]
        retired = ipc * cycles
        self.instructions += retired
        self.cycles += cycles
        # Flit-hops this epoch: per-thread (flit-hops/kilo-instruction x
        # kilo-instructions retired), one dot per traffic class.  The
        # traffic_pki values are already flit-priced by the analytic
        # engine, so they go through the raw accumulator.
        for cls in TrafficClass:
            self.traffic.add_flit_hops(
                cls, float(traffic_pki[cls] @ (retired / 1000.0))
            )
        vc_sizes = np.array(
            [solution.vc_sizes.get(vc.vc_id, 0.0) for vc in self.problem.vcs]
        )
        result = EpochResult(
            epoch=len(self.trace.results),
            cycles=cycles,
            ipc=ipc,
            vc_sizes=vc_sizes,
            aggregate_ipc=float(ipc.sum()),
            evaluation=evaluation,
        )
        self.trace.results.append(result)
        return result

    def run_schedule(
        self, schedule: Sequence[tuple[PlacementSolution, float]]
    ) -> EpochTrace:
        """Run a list of (solution, cycles) epochs; returns the trace."""
        for solution, cycles in schedule:
            self.run_epoch(solution, cycles)
        return self.trace

    def mean_ipc_per_thread(self) -> np.ndarray:
        """(T,) cumulative instructions / cycles across all epochs run."""
        return np.divide(
            self.instructions,
            self.cycles,
            out=np.zeros_like(self.instructions),
            where=self.cycles > 0,
        )
