"""Time-series statistics for the trace simulator (Fig 17's IPC trace)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WindowedIpc:
    """Aggregate instructions retired per fixed-size time window."""

    window_cycles: float = 10_000.0
    _windows: dict[int, float] = field(default_factory=dict)

    def record(self, time: float, instructions: float) -> None:
        if time < 0:
            raise ValueError("time cannot be negative")
        self._windows[int(time // self.window_cycles)] = (
            self._windows.get(int(time // self.window_cycles), 0.0)
            + instructions
        )

    def trace(self) -> list[tuple[float, float]]:
        """(window start cycle, aggregate IPC) pairs, time-ordered."""
        return [
            (idx * self.window_cycles, instrs / self.window_cycles)
            for idx, instrs in sorted(self._windows.items())
        ]

    def mean_ipc(self, t0: float = 0.0, t1: float = float("inf")) -> float:
        """Mean aggregate IPC over [t0, t1).

        Windows with no retired instructions count as zero — a fully paused
        chip (bulk invalidations) must show up as a dip, not a gap.
        """
        if not self._windows:
            return 0.0
        last = (max(self._windows) + 1) * self.window_cycles
        end = min(t1, last)
        first_idx = int(max(t0, 0.0) // self.window_cycles)
        last_idx = int(end // self.window_cycles)
        if last_idx <= first_idx:
            return 0.0
        total = sum(
            self._windows.get(idx, 0.0)
            for idx in range(first_idx, last_idx)
        )
        return total / ((last_idx - first_idx) * self.window_cycles)
