"""Trace-driven simulator: distributed LLC with demand moves, background /
bulk invalidations, and windowed IPC traces (Figs 10, 17, 18)."""

from repro.sim.engine import SimThread, TraceSimulator, weighted_round_robin
from repro.sim.llc import AccessResult, DistributedLLC, LLCStats
from repro.sim.reconfig import (
    BackgroundInvalidations,
    BulkInvalidations,
    InstantMoves,
    MovementProtocol,
    ReconfigEvents,
)
from repro.sim.setup import build_trace_simulation, scale_solution, scaled_profile
from repro.sim.stats import WindowedIpc

__all__ = [
    "AccessResult",
    "BackgroundInvalidations",
    "BulkInvalidations",
    "DistributedLLC",
    "InstantMoves",
    "LLCStats",
    "MovementProtocol",
    "ReconfigEvents",
    "SimThread",
    "TraceSimulator",
    "WindowedIpc",
    "build_trace_simulation",
    "scale_solution",
    "scaled_profile",
    "weighted_round_robin",
]
