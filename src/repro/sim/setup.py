"""Wiring helpers: build a ready-to-run trace simulation from a mix, a
chip config, and a scheme's placement solution.

Trace simulation at the paper's full scale (32 MB of live lines) is not
tractable in pure Python, so simulations run **capacity-scaled**: every
bank models ``1/scale`` of its lines and every workload's miss curve is
shrunk by the same factor on the size axis — the hit/miss behavior per
access is preserved exactly (LRU is scale-free in this transformation),
only absolute footprints shrink.  docs/ARCHITECTURE.md documents this
substitution.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import SystemConfig
from repro.nuca.base import build_problem
from repro.sched.problem import PlacementProblem, PlacementSolution
from repro.sim.engine import TraceSimulator
from repro.sim.llc import DistributedLLC
from repro.workloads.generator import StackDistanceStream, suggested_footprint
from repro.workloads.mixes import Mix
from repro.workloads.phased import PhasedProfile
from repro.workloads.profiles import AppProfile

#: Address-space stride between VCs so streams never alias.
_VC_ADDRESS_STRIDE = 1 << 34


def scaled_profile(profile: AppProfile, scale: int) -> AppProfile:
    """Shrink a profile's footprints by *scale* (for scaled trace sims)."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if scale == 1:
        return profile
    return replace(
        profile,
        private_curve=profile.private_curve.scaled_sizes(1.0 / scale),
        shared_curve=(
            profile.shared_curve.scaled_sizes(1.0 / scale)
            if profile.shared_curve is not None
            else None
        ),
    )


def scale_solution(solution: PlacementSolution, scale: int) -> PlacementSolution:
    """Shrink a placement's capacities by *scale* (thread cores unchanged)."""
    if scale == 1:
        return solution
    return PlacementSolution(
        vc_sizes={vc: s / scale for vc, s in solution.vc_sizes.items()},
        vc_allocation={
            vc: {b: v / scale for b, v in per.items()}
            for vc, per in solution.vc_allocation.items()
        },
        thread_cores=dict(solution.thread_cores),
    )


def _make_stream(
    curve, apki: float, vc_id: int, seed: int
) -> StackDistanceStream:
    return StackDistanceStream(
        curve,
        apki=max(apki, 1e-6),
        footprint_bytes=suggested_footprint(curve, max(apki, 1e-6)),
        address_base=(vc_id + 1) * _VC_ADDRESS_STRIDE,
        seed=seed,
    )


def schedule_phase_updates(
    sim: TraceSimulator,
    mix: Mix,
    period: float,
    horizon: float,
    capacity_scale: int = 8,
    seed: int = 1,
) -> None:
    """Re-read phased apps' active phases at every epoch boundary.

    Schedules a callback at each multiple of *period* up to *horizon*; the
    callback reads every phased process's cumulative retired instructions
    (mean over its threads — the same phase clock the epoch engine uses)
    and, on a phase change, retunes the threads through
    :meth:`TraceSimulator.set_thread_profile`: new base CPI, APKI, write
    fraction, VC weights, and fresh address streams realizing the new
    phase's (capacity-scaled) miss curves.  Stationary processes are never
    touched; a mix without phased apps schedules nothing.
    """
    from repro.nuca.base import process_vc_id

    phased = [
        p for p in mix.processes if isinstance(p.profile, PhasedProfile)
    ]
    if not phased:
        return
    current = {p.process_id: 0 for p in phased}

    def update() -> None:
        threads_by_id = {t.thread_id: t for t in sim.threads}
        for proc in phased:
            total = 0.0
            for thread_id in proc.thread_ids:
                total += threads_by_id[thread_id].instructions
            clock = total / proc.profile.threads
            index, profile = proc.profile.phase_at(clock)
            if index == current[proc.process_id]:
                continue
            current[proc.process_id] = index
            scaled = scaled_profile(profile, capacity_scale)
            phase_seed = seed + 7919 * (index + 1)
            shared_vc = process_vc_id(proc.process_id)
            shared_stream: StackDistanceStream | None = None
            if scaled.shared_apki > 0 and scaled.shared_curve is not None:
                shared_stream = _make_stream(
                    scaled.shared_curve.scaled(scaled.threads),
                    scaled.shared_apki * scaled.threads,
                    shared_vc,
                    phase_seed,
                )
            for thread_id in proc.thread_ids:
                streams = {}
                weights = {}
                if scaled.private_apki > 0:
                    weights[thread_id] = scaled.private_apki
                    streams[thread_id] = _make_stream(
                        scaled.private_curve,
                        scaled.private_apki,
                        thread_id,
                        phase_seed,
                    )
                if shared_stream is not None:
                    weights[shared_vc] = scaled.shared_apki
                    streams[shared_vc] = shared_stream
                sim.set_thread_profile(
                    thread_id,
                    base_cpi=scaled.base_cpi,
                    apki=scaled.llc_apki,
                    write_fraction=scaled.write_fraction,
                    streams=streams,
                    weights=weights,
                )

    boundary = period
    while boundary < horizon:
        sim.schedule(boundary, update)
        boundary += period


def build_trace_simulation(
    mix: Mix,
    config: SystemConfig,
    solution: PlacementSolution,
    problem: PlacementProblem | None = None,
    capacity_scale: int = 8,
    seed: int = 1,
    window_cycles: float = 10_000.0,
    dram_extra_latency: float = 0.0,
) -> TraceSimulator:
    """Instantiate banks, streams, and threads for one (mix, placement).

    The returned simulator is configured with *solution* (scaled) and ready
    for ``run_until``; reconfigurations can be scheduled on top.
    """
    problem = problem or build_problem(mix, config)
    topo = problem.topology
    llc = DistributedLLC(
        config, topo, capacity_scale=capacity_scale,
        dram_extra_latency=dram_extra_latency,
    )
    llc.configure(scale_solution(solution, capacity_scale))
    sim = TraceSimulator(config, topo, llc, window_cycles=window_cycles)

    # One shared stream per process VC (threads interleave into it), one
    # private stream per thread.  Phased apps start in their initial
    # phase; schedule_phase_updates retunes them at epoch boundaries.
    shared_streams: dict[int, StackDistanceStream] = {}
    for proc in mix.processes:
        static = proc.profile
        if isinstance(static, PhasedProfile):
            static = static.at_instructions(0.0)
        profile = scaled_profile(static, capacity_scale)
        for thread_id in proc.thread_ids:
            spec = next(
                t for t in problem.threads if t.thread_id == thread_id
            )
            streams: dict[int, StackDistanceStream] = {}
            weights: dict[int, float] = {}
            for vc_id, rate in spec.vc_accesses.items():
                if rate <= 0:
                    continue
                weights[vc_id] = rate
                if vc_id == thread_id:  # thread-private VC
                    curve = profile.private_curve
                    apki = max(profile.private_apki, 1e-6)
                    streams[vc_id] = StackDistanceStream(
                        curve,
                        apki=apki,
                        footprint_bytes=suggested_footprint(curve, apki),
                        address_base=(vc_id + 1) * _VC_ADDRESS_STRIDE,
                        seed=seed,
                    )
                else:  # process-shared VC: one stream for the whole process
                    if vc_id not in shared_streams:
                        curve = profile.shared_curve.scaled(profile.threads)
                        apki = max(profile.shared_apki * profile.threads, 1e-6)
                        shared_streams[vc_id] = StackDistanceStream(
                            curve,
                            apki=apki,
                            footprint_bytes=suggested_footprint(curve, apki),
                            address_base=(vc_id + 1) * _VC_ADDRESS_STRIDE,
                            seed=seed,
                        )
                    streams[vc_id] = shared_streams[vc_id]
            core = solution.thread_cores[thread_id]
            sim.add_thread(
                thread_id=thread_id,
                core=core,
                base_cpi=profile.base_cpi,
                apki=profile.llc_apki,
                streams=streams,
                weights=weights,
                write_fraction=profile.write_fraction,
            )
    return sim
