"""Data-movement protocols for reconfigurations (Sec IV-H, Figs 10/17).

Three ways to get lines from their old banks to their new ones:

* :class:`InstantMoves` — idealized: every resident line teleports to its
  new location at reconfiguration time.  Upper bound (Fig 17's top line).
* :class:`BulkInvalidations` — Jigsaw's approach: pause all cores while
  every bank walks its array and invalidates lines whose location changed.
  Cheap hardware, but a global pause of ~100 Kcycles and cold misses after.
* :class:`BackgroundInvalidations` — CDCS: no pause.  Shadow descriptors
  serve demand moves immediately; after a grace period, banks walk their
  arrays in the background, invalidating moved lines at a slow rate, and
  the shadow descriptors retire when the walk completes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.sched.problem import PlacementSolution
from repro.sim.llc import DistributedLLC


@dataclass
class ReconfigEvents:
    """What the engine must schedule after initiating a reconfiguration."""

    #: Cores may not issue until this absolute time (bulk pause); 0 = none.
    pause_until: float = 0.0
    #: (time, callback) pairs the engine runs at the given absolute times.
    timers: list[tuple[float, object]] = None

    def __post_init__(self) -> None:
        if self.timers is None:
            self.timers = []


class MovementProtocol(ABC):
    """Strategy interface: apply a new placement to a running LLC."""

    name: str = "base"

    @abstractmethod
    def apply(
        self, llc: DistributedLLC, solution: PlacementSolution, now: float
    ) -> ReconfigEvents:
        """Initiate the reconfiguration at time *now*."""


def _moved_lines(llc: DistributedLLC) -> list[tuple[int, int, int]]:
    """(bank, partition/vc, line) tuples whose location changed under the
    currently-installed (new) descriptors."""
    moved = []
    for bank in llc.banks:
        for vc_id, addr in bank.all_lines():
            try:
                lookup = llc.vtb.lookup(vc_id, addr)
            except KeyError:
                moved.append((bank.bank_id, vc_id, addr))
                continue
            if lookup.target.bank != bank.bank_id:
                moved.append((bank.bank_id, vc_id, addr))
    return moved


class InstantMoves(MovementProtocol):
    name = "instant"

    def apply(
        self, llc: DistributedLLC, solution: PlacementSolution, now: float
    ) -> ReconfigEvents:
        llc.prepare_reconfiguration(solution)
        for bank_id, vc_id, addr in _moved_lines(llc):
            dirty = llc.banks[bank_id].extract(addr, vc_id)
            if dirty is None:
                continue
            lookup = llc.vtb.lookup(vc_id, addr)
            target_bank = llc.banks[lookup.target.bank]
            if target_bank.quota(lookup.target.partition) > 0:
                target_bank.fill(addr, lookup.target.partition, dirty)
        llc.finish_reconfiguration()
        return ReconfigEvents()


class BulkInvalidations(MovementProtocol):
    """Jigsaw: pause, walk, invalidate (Sec IV-H).

    *cycles_per_line* models the array-walk rate over the **unscaled**
    array: every set is scanned whether or not the simulation models its
    lines, so the pause reflects the real bank (paper: pauses average
    ~114 Kcycles, up to 230 Kcycles).
    """

    name = "bulk-inv"

    def __init__(self, cycles_per_line: float = 12.0):
        self.cycles_per_line = cycles_per_line

    def apply(
        self, llc: DistributedLLC, solution: PlacementSolution, now: float
    ) -> ReconfigEvents:
        array_lines = llc.bank_lines * llc.capacity_scale
        llc.prepare_reconfiguration(solution)
        invalidated = 0
        for bank_id, vc_id, addr in _moved_lines(llc):
            if llc.banks[bank_id].invalidate(addr, vc_id):
                invalidated += 1
        llc.stats.bulk_invalidations += invalidated
        llc.finish_reconfiguration()
        pause = now + array_lines * self.cycles_per_line
        return ReconfigEvents(pause_until=pause)


class BackgroundInvalidations(MovementProtocol):
    """CDCS: demand moves now, background walk later (Sec IV-H).

    *grace_cycles* delays the walk so hot lines migrate via demand moves
    first; *lines_per_step*/*step_cycles* set the walk rate (paper: one set
    every 200 cycles finishes a bank in ~100 Kcycles).
    """

    name = "background-inv"

    def __init__(
        self,
        grace_cycles: float = 50_000.0,
        lines_per_step: int = 16,
        step_cycles: float = 200.0,
        scale_step_to_array: bool = True,
    ):
        """Defaults follow the paper: one 16-line set per 200 cycles, after
        a 50 Kcycle grace period, finishing a bank in ~100 Kcycles.  With
        *scale_step_to_array* (default), the step interval stretches by the
        LLC's capacity scale so the walk still spans the real ~100 Kcycles
        even when the simulation models 1/k of the lines."""
        self.grace_cycles = grace_cycles
        self.lines_per_step = lines_per_step
        self.step_cycles = step_cycles
        self.scale_step_to_array = scale_step_to_array

    def apply(
        self, llc: DistributedLLC, solution: PlacementSolution, now: float
    ) -> ReconfigEvents:
        step_cycles = self.step_cycles
        if self.scale_step_to_array:
            step_cycles *= llc.capacity_scale
        llc.prepare_reconfiguration(solution)
        events = ReconfigEvents()
        start = now + self.grace_cycles
        # Build per-bank walk schedules over the lines resident *now*;
        # lines that demand-move before the walker reaches them are simply
        # no longer present and cost the walker nothing.
        walks: list[list[tuple[int, int, int]]] = []
        max_steps = 0
        for bank in llc.banks:
            snapshot = [
                (bank.bank_id, vc, addr) for vc, addr in bank.all_lines()
            ]
            walks.append(snapshot)
            steps = (len(snapshot) + self.lines_per_step - 1) // self.lines_per_step
            max_steps = max(max_steps, steps)

        def make_step(step: int):
            def run() -> None:
                lo = step * self.lines_per_step
                hi = lo + self.lines_per_step
                for snapshot in walks:
                    for bank_id, vc_id, addr in snapshot[lo:hi]:
                        try:
                            lookup = llc.vtb.lookup(vc_id, addr)
                        except KeyError:
                            moved = True
                        else:
                            moved = lookup.target.bank != bank_id
                        if moved and llc.banks[bank_id].invalidate(addr, vc_id):
                            llc.stats.background_invalidations += 1

            return run

        for step in range(max_steps):
            events.timers.append(
                (start + step * step_cycles, make_step(step))
            )
        events.timers.append(
            (
                start + max_steps * step_cycles,
                llc.finish_reconfiguration,
            )
        )
        return events
