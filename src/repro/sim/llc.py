"""The distributed LLC of the trace-driven simulator.

Implements the access path of Fig 3 right: VTB lookup -> route to the bank
and bank partition -> hit/serve or miss -> memory, with per-access latency
from the NoC model and the DRAM model.  During reconfigurations the shadow
descriptors are active and misses in a line's *new* bank are forwarded to
its *old* bank — the demand-move protocol of Fig 10.

Partition ids within a bank are simply VC ids (each VC owns at most one
partition per bank, Sec III).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.bank import PartitionedBank
from repro.config import SystemConfig
from repro.geometry.mesh import Topology
from repro.mem.controller import MemoryControllers
from repro.mem.dram import DramModel
from repro.noc.traffic import TrafficClass, TrafficCounter
from repro.sched.problem import PlacementSolution
from repro.util.units import CACHE_LINE_BYTES
from repro.vcache.descriptor import VCDescriptor, build_descriptor
from repro.vcache.vtb import VTB


@dataclass
class AccessResult:
    """Outcome of one LLC access."""

    latency: float
    hit: bool
    #: True if the line was served by a demand move from its old bank.
    demand_move: bool = False
    bank: int = -1
    #: Latency split for the core's exposure model (on-chip = network +
    #: bank lookups; off-chip = DRAM round trip, zero on hits).
    onchip_latency: float = 0.0
    offchip_latency: float = 0.0


@dataclass
class LLCStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    demand_moves: int = 0
    background_invalidations: int = 0
    bulk_invalidations: int = 0


class DistributedLLC:
    """All banks + the (logically per-tile, physically shared) VTB state."""

    def __init__(
        self,
        config: SystemConfig,
        topology: Topology,
        capacity_scale: int = 1,
        dram_extra_latency: float = 0.0,
    ):
        """*capacity_scale* shrinks every bank by that factor (set-sampling
        style) so trace experiments run at tractable footprints; workload
        streams must be scaled by the same factor (see
        ``workloads.scaled_profile``)."""
        if capacity_scale < 1:
            raise ValueError("capacity scale must be >= 1")
        self.config = config
        self.topology = topology
        self.capacity_scale = capacity_scale
        bank_lines = max(
            config.cache.bank_bytes // CACHE_LINE_BYTES // capacity_scale, 1
        )
        self.bank_lines = bank_lines
        self.banks = [
            PartitionedBank(b, bank_lines) for b in range(topology.tiles)
        ]
        self.vtb = VTB(max_entries=1 << 22)  # one logical map for all tiles
        self.controllers = MemoryControllers(topology, config.memory)  # type: ignore[arg-type]
        self.dram = DramModel(config.memory)
        self.dram_extra_latency = dram_extra_latency
        self.traffic = TrafficCounter(config.noc)
        self.stats = LLCStats()

    # -- configuration -------------------------------------------------------

    def _quotas_from_solution(
        self, solution: PlacementSolution
    ) -> dict[int, dict[int, int]]:
        """bank -> {vc_id -> quota_lines}, scaled, largest-remainder fitted."""
        per_bank: dict[int, dict[int, float]] = {}
        for vc_id, alloc in solution.vc_allocation.items():
            for bank, size in alloc.items():
                if size <= 0:
                    continue
                per_bank.setdefault(bank, {})[vc_id] = (
                    size / CACHE_LINE_BYTES / self.capacity_scale
                )
        quotas: dict[int, dict[int, int]] = {}
        for bank, wants in per_bank.items():
            total = sum(wants.values())
            scale = min(1.0, self.bank_lines / total) if total > 0 else 1.0
            floors = {vc: int(w * scale) for vc, w in wants.items()}
            leftover = self.bank_lines - sum(floors.values())
            order = sorted(
                wants, key=lambda vc: floors[vc] - wants[vc] * scale
            )
            for vc in order[: max(0, min(leftover, len(order)))]:
                floors[vc] += 1
            quotas[bank] = {vc: q for vc, q in floors.items() if q > 0}
        return quotas

    def _descriptors(
        self, solution: PlacementSolution
    ) -> dict[int, VCDescriptor]:
        out = {}
        buckets = self.config.scheduler.descriptor_buckets
        for vc_id, alloc in solution.vc_allocation.items():
            positive = {b: v for b, v in alloc.items() if v > 0}
            if not positive:
                continue
            out[vc_id] = build_descriptor(
                positive,
                {b: vc_id for b in positive},
                num_buckets=buckets,
                hash_seed=1,
            )
        return out

    def configure(self, solution: PlacementSolution) -> None:
        """Install a configuration from scratch (initial setup)."""
        for bank, vc_quotas in self._quotas_from_solution(solution).items():
            for vc_id, quota in vc_quotas.items():
                self.banks[bank].configure_partition(vc_id, quota)
        for vc_id, desc in self._descriptors(solution).items():
            self.vtb.install(vc_id, desc)

    def prepare_reconfiguration(
        self, solution: PlacementSolution
    ) -> dict[int, VCDescriptor]:
        """Resize partitions and swap descriptors into shadows (the IPI-
        coordinated update of Sec III).  Returns the new descriptors; the
        caller chooses the data-movement protocol (sim.reconfig)."""
        descriptors = self._descriptors(solution)
        quotas = self._quotas_from_solution(solution)
        for bank in self.banks:
            new_quotas = quotas.get(bank.bank_id, {})
            # Shrink/retire first (lazily: resident lines drain via demand
            # moves and invalidations), then grow, so the bank-capacity
            # invariant holds at every intermediate step.
            for pid in bank.partition_ids():
                target = new_quotas.get(pid, 0)
                if target < bank.quota(pid):
                    bank.configure_partition(pid, target, lazy=True)
            for vc_id, quota in new_quotas.items():
                if quota > bank.quota(vc_id):
                    bank.configure_partition(vc_id, quota, lazy=True)
        for vc_id, desc in descriptors.items():
            self.vtb.begin_reconfiguration(vc_id, desc)
        return descriptors

    def finish_reconfiguration(self) -> None:
        for vc_id in self.vtb.mapped_vcs():
            self.vtb.end_reconfiguration(vc_id)

    # -- access path ---------------------------------------------------------

    def _noc_cycles(self, a: int, b: int) -> float:
        return self.topology.distance(a, b) * self.config.noc.hop_latency

    def access(
        self, core_tile: int, vc_id: int, line_addr: int, write: bool = False
    ) -> AccessResult:
        """One LLC access from *core_tile*; returns latency and outcome.

        Latency components: round trip core<->bank, bank lookup(s),
        demand-move forwarding (during reconfigurations), and the DRAM
        round trip on a true miss.
        """
        self.stats.accesses += 1
        lookup = self.vtb.lookup(vc_id, line_addr)
        bank_id = lookup.target.bank
        bank = self.banks[bank_id]
        bank_lat = self.config.cache.bank_latency
        latency = 2.0 * self._noc_cycles(core_tile, bank_id) + bank_lat
        self.traffic.add_request_response(
            TrafficClass.L2_LLC,
            self.topology.distance(core_tile, bank_id),
            CACHE_LINE_BYTES,
        )

        if bank.access(line_addr, lookup.target.partition, write):
            self.stats.hits += 1
            return AccessResult(
                latency,
                hit=True,
                bank=bank_id,
                onchip_latency=latency,
            )

        # Miss in the (new) bank.  During a reconfiguration, forward to the
        # old location first (Fig 10a): a hit there is a demand move.
        if lookup.moved:
            old = lookup.old_target
            old_bank = self.banks[old.bank]
            hops_fwd = self.topology.distance(bank_id, old.bank)
            latency += 2.0 * hops_fwd * self.config.noc.hop_latency + bank_lat
            self.traffic.add_request_response(
                TrafficClass.OTHER, hops_fwd, CACHE_LINE_BYTES
            )
            dirty = old_bank.extract(line_addr, old.partition)
            if dirty is not None:
                bank.fill(line_addr, lookup.target.partition, dirty or write)
                self.stats.demand_moves += 1
                self.stats.hits += 1
                return AccessResult(
                    latency,
                    hit=True,
                    demand_move=True,
                    bank=bank_id,
                    onchip_latency=latency,
                )

        # True miss: fetch from the line's memory controller (Fig 10b).
        self.stats.misses += 1
        onchip = latency
        mc_tile = self.controllers.controller_for(line_addr)
        mc_hops = self.topology.distance(bank_id, mc_tile)
        offchip = (
            2.0 * mc_hops * self.config.noc.hop_latency
            + self.config.memory.zero_load_latency
            + self.dram_extra_latency
        )
        latency += offchip
        self.traffic.add_request_response(
            TrafficClass.LLC_MEM, mc_hops, CACHE_LINE_BYTES
        )
        bank.access(line_addr, lookup.target.partition, write)  # fill
        return AccessResult(
            latency,
            hit=False,
            bank=bank_id,
            onchip_latency=onchip,
            offchip_latency=offchip,
        )

    # -- invariants (used by tests) -------------------------------------------

    def total_occupancy(self) -> int:
        return sum(bank.occupancy() for bank in self.banks)

    def check_single_residency(self) -> bool:
        """No line may be resident in two banks (the shared-baseline
        invariant demand moves must preserve)."""
        seen: set[tuple[int, int]] = set()
        for bank in self.banks:
            for pid, addr in bank.all_lines():
                key = (pid, addr)
                if key in seen:
                    return False
                seen.add(key)
        return True
