"""Programmatic facade over the experiment registry: :class:`Session`.

A session owns one configured :class:`repro.runner.ProcessPoolRunner`
(worker count, content-hashed result cache, progress callback) and runs
any registered :class:`~repro.experiments.spec.ExperimentSpec` through
it, returning typed :class:`~repro.experiments.results.RunRecord`
results.  This is the entry point external tooling — and any future
service endpoint — builds on; the CLI (``python -m repro run <name>``)
is a thin shell around it.

Results are bitwise-identical to the legacy ``run_*`` paths: a session
runs exactly the jobs the legacy entry points build, through the same
runner, into the same reducers.

Example::

    from repro.api import Session

    session = Session(jobs=4, cache_dir=".repro-cache")
    record = session.run("fig14", mixes=2)
    print(record.tables[0].rows)          # typed rows, not print-only
    sweep = record.result                 # the rich SweepResult object

Cross-experiment batches share the session's runner, so their combined
job lists fan out (and cache) together::

    fig14, gmon = session.run_batch([
        ("fig14", {"mixes": 2}),
        ("gmon", {}),
    ])
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.experiments.results import RunRecord
from repro.experiments.spec import ExperimentSpec, get_spec
from repro.runner import MegaBatchRunner, NullStore, ResultStore, RunnerStats


class Session:
    """Runs registered experiments through one shared runner/cache.

    *jobs* is the worker-process count (1 = in-process, still cached);
    *cache_dir* enables the content-hashed result cache (``None`` — the
    default — disables caching); *progress* is forwarded to the runner
    and called with cumulative :class:`~repro.runner.RunnerStats` after
    every job.

    The session's runner is a :class:`~repro.runner.MegaBatchRunner`:
    sweep jobs that share a chip digest are stacked into mega-batch
    kernel passes (bitwise-identical per mix, and off by default only
    under ``REPRO_MEGA_BATCH=0``), with hot arrays shipped to workers
    through shared memory.  Call :meth:`close` (or use the session as a
    context manager) to release the worker pool and shared segments;
    an ``atexit`` hook covers sessions that never do.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        progress: Callable[[RunnerStats], None] | None = None,
    ):
        store = NullStore() if cache_dir is None else ResultStore(cache_dir)
        self.runner = MegaBatchRunner(
            jobs=jobs, store=store, progress=progress
        )

    @property
    def stats(self) -> RunnerStats:
        """Cumulative job counters over the session's lifetime."""
        return self.runner.stats

    def close(self) -> None:
        """Release the persistent worker pool and shared-memory segments."""
        self.runner.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(self, name: str, /, **overrides: Any) -> RunRecord:
        """Run one registered experiment; returns its typed record.

        *overrides* are the spec's parameters (``mixes=2``, ``seed=7``,
        ...); unknown names raise ``ValueError``.  The record's
        ``result`` attribute holds the experiment's rich legacy result
        object (e.g. a :class:`~repro.experiments.sweeps.SweepResult`).
        """
        return self.run_batch([(name, overrides)])[0]

    def run_batch(
        self, requests: Sequence[tuple[str, Mapping[str, Any]]]
    ) -> list[RunRecord]:
        """Run several experiments as one combined job fan-out.

        All requests' jobs are submitted through the session's runner in
        a single ``map`` call, so they parallelize across experiments
        (not just within one) and share the cache; each request is then
        reduced and presented independently, in request order.
        """
        resolved: list[tuple[ExperimentSpec, dict[str, Any], int]] = []
        all_jobs = []
        for name, overrides in requests:
            spec = get_spec(name)
            params = spec.resolve(overrides)
            jobs = spec.build_jobs(params)
            resolved.append((spec, params, len(jobs)))
            all_jobs.extend(jobs)
        payloads = self.runner.map(all_jobs)
        records: list[RunRecord] = []
        start = 0
        for spec, params, n_jobs in resolved:
            chunk = payloads[start:start + n_jobs]
            start += n_jobs
            result = spec.reduce(chunk, params)
            records.append(
                replace(spec.present(result, params), result=result)
            )
        return records
