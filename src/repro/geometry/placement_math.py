"""Geometric primitives behind CDCS's placement steps.

These implement the pictures in the paper:

* **Fig 6** — *compact placement*: fill banks outward from a center tile,
  possibly fractionally, and compute the resulting average access distance.
  Used for the optimistic on-chip latency curves of Sec IV-C.
* **Fig 7** — *contention windows*: the set of banks a compactly-placed VC
  would cover, used to tally claimed capacity in Sec IV-D.
* **Fig 8** — *outward spirals*: visit banks in increasing distance from a
  center, used by the trade-based refinement of Sec IV-F.
* **centers of mass** of capacity distributions, used by thread placement
  (Sec IV-E).

Shape conventions
-----------------
The vectorized helpers score **all candidate centers at once** against the
topology's precomputed matrices (``N = topology.tiles``):

* :func:`compact_window_weights` — ``(m,) float64``; per-rank bank
  fractions of a compact footprint of ``size_banks`` (ones then one
  partial), identical to the fill loop in :func:`compact_placement`;
* :func:`batched_window_scores` — two ``(N,)`` vectors ``(contention,
  spread)``; entry *c* scores a compact window centered at tile *c*
  against a ``(N,)`` claimed-capacity tally.  Terms accumulate in spiral
  order via ``np.cumsum`` so each entry is bitwise the scalar
  :func:`window_contention` / :func:`placement_mean_distance` pair;
* :func:`tile_cost_vector` — ``(N,) float64``; capacity-weighted total
  distance from every tile to a ``{bank: weight}`` mapping (the
  1-median objective of :func:`weighted_center_tile`).

Selection loops (first-strict-improvement scans) stay in Python over the
precomputed vectors, so tie-breaking matches the scalar reference exactly.
"""

from __future__ import annotations

import math

from collections.abc import Iterable, Iterator, Mapping

import numpy as np

from repro.geometry.mesh import Topology


def compact_placement(
    topology: Topology, center: int, size_banks: float
) -> dict[int, float]:
    """Place *size_banks* of capacity as close to *center* as possible.

    Banks are filled in increasing distance from *center* (deterministic
    tie-break by tile id); the last bank may receive a fraction.  Returns
    ``{tile: fraction_of_bank}`` with fractions in ``(0, 1]`` summing to
    *size_banks* (clamped to the chip size).

    This is the idealized, contention-free placement of Fig 6: an
    8.2-bank VC centered mid-chip covers the center bank fully, its
    neighbors fully, and tapers at the edge of the covered region.
    """
    if size_banks < 0:
        raise ValueError(f"size must be non-negative, got {size_banks}")
    remaining = min(float(size_banks), float(topology.tiles))
    placement: dict[int, float] = {}
    for tile in topology.tiles_by_distance(center):
        if remaining <= 1e-12:
            break
        take = min(1.0, remaining)
        placement[tile] = take
        remaining -= take
    return placement


def placement_mean_distance(
    topology: Topology, origin: int, placement: Mapping[int, float]
) -> float:
    """Capacity-weighted average distance from *origin* to a placement.

    For a VC accessed by a single thread at *origin*, this is the expected
    hop count of an LLC access (the VTB spreads accesses in proportion to
    per-bank capacity, Sec III).
    """
    total = sum(placement.values())
    if total <= 0:
        return 0.0
    weighted = sum(
        frac * topology.distance(origin, tile) for tile, frac in placement.items()
    )
    return weighted / total


def compact_mean_distance(topology: Topology, center: int, size_banks: float) -> float:
    """Average access distance of a compact placement of *size_banks* around
    *center* for an accessor at *center* (the Fig 6 computation: an
    8.2-bank VC at mesh center averages ~1.27 hops)."""
    placement = compact_placement(topology, center, size_banks)
    return placement_mean_distance(topology, center, placement)


def contention_window(
    topology: Topology, center: int, size_banks: float
) -> dict[int, float]:
    """Banks (with fractions) that a compactly-placed VC would claim.

    Identical footprint to :func:`compact_placement`; named separately
    because Sec IV-D uses it to *estimate* contention (summing already-
    claimed capacity over the window) rather than to place data.
    """
    return compact_placement(topology, center, size_banks)


def window_contention(
    claimed: Mapping[int, float] | "list[float]",
    window: Mapping[int, float],
) -> float:
    """Contention of a placement window against a claimed-capacity tally.

    *claimed* maps bank -> capacity already claimed (in banks; may exceed
    1.0 since Sec IV-D relaxes capacity constraints).  The contention is the
    claimed capacity under the window, weighted by window coverage — the
    hatched-area sum of Fig 7b.
    """
    return sum(frac * claimed[tile] for tile, frac in window.items())


def spiral(topology: Topology, center: int) -> Iterator[int]:
    """Yield tiles in increasing distance from *center*.

    This is the "outward spiral" of the refinement step (Fig 8).  On a mesh
    the visit order is by Manhattan ring; within a ring the order is
    deterministic (tile id).
    """
    yield from topology.tiles_by_distance(center)


def center_of_mass(
    topology: Topology, weights: Mapping[int, float]
) -> tuple[float, ...]:
    """Weighted centroid of tiles in coordinate space.

    For mesh topologies the coordinates are (x, y); the result is fractional.
    Raises ``ValueError`` on empty/zero weights: callers must handle VCs with
    no placed capacity explicitly.
    """
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("center of mass of empty placement is undefined")
    coords = [topology.coords(t) for t in weights]  # type: ignore[attr-defined]
    dims = len(coords[0])
    out = []
    for d in range(dims):
        out.append(
            sum(w * c[d] for c, w in zip(coords, weights.values())) / total
        )
    return tuple(out)


def _first_strict_improvement_scan(costs: list) -> int:
    """Index selected by the reference scan: ascending order, accept only
    improvements bigger than 1e-12 — NOT a plain argmin (a later entry a
    hair below the running best does not displace it)."""
    best_index = 0
    best_cost = float("inf")
    for index, cost in enumerate(costs):
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_index = index
    return best_index


def squared_point_distances(topology: Topology, point: Iterable[float]) -> np.ndarray:
    """(tiles,) squared Euclidean distance from every tile to *point*,
    accumulating coordinate terms in the scalar expression's order."""
    point = tuple(point)
    coords = getattr(topology, "coord_array", None)
    if coords is None:  # pragma: no cover - exotic topologies
        coords = np.array(
            [topology.coords(t) for t in range(topology.tiles)]  # type: ignore[attr-defined]
        )
    total = np.zeros(topology.tiles, dtype=np.float64)
    for dim, p in enumerate(point):
        delta = coords[:, dim] - p
        total = total + delta**2
    return total


def nearest_tile(topology: Topology, point: Iterable[float]) -> int:
    """Tile whose coordinates are closest (Euclidean) to a fractional point;
    deterministic tie-break by tile id."""
    return _first_strict_improvement_scan(
        squared_point_distances(topology, point).tolist()
    )


def tile_cost_vector(
    topology: Topology, weights: Mapping[int, float]
) -> np.ndarray:
    """(tiles,) capacity-weighted total distance from every tile to
    *weights* — the 1-median objective, all candidates at once.

    Terms accumulate in the mapping's iteration order (sequential adds),
    matching the scalar per-tile sum bitwise.
    """
    dist = topology.distance_matrix
    total = np.zeros(topology.tiles, dtype=np.float64)
    for bank, weight in weights.items():
        total = total + weight * dist[:, bank]
    return total


def weighted_center_tile(topology: Topology, weights: Mapping[int, float]) -> int:
    """Tile minimizing the capacity-weighted total distance to *weights*.

    This is the discrete 1-median under the network metric — a more faithful
    "center of mass" for hop-count latency than the Euclidean centroid, and
    what the thread-placement step uses to turn a data placement into a
    preferred core location.
    """
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("weighted center of empty placement is undefined")
    return _first_strict_improvement_scan(
        tile_cost_vector(topology, weights).tolist()
    )


# ---------------------------------------------------------------------------
# Batched compact-window scoring (all candidate centers at once)
# ---------------------------------------------------------------------------


def compact_window_weights(topology: Topology, size_banks: float) -> np.ndarray:
    """(m,) per-rank bank fractions of a compact *size_banks* footprint.

    Entry j is the fraction claimed from the j-th-closest bank: ones for
    full banks, then one partial.  Every candidate center shares this
    vector (only the visit order differs), which is what makes whole-chip
    candidate scoring a matrix operation.  The values replicate the fill
    loop of :func:`compact_placement` exactly (repeated ``-= 1.0`` on a
    float of this magnitude is exact, and sub-``1e-12`` tails are dropped
    just like the loop's break).
    """
    if size_banks < 0:
        raise ValueError(f"size must be non-negative, got {size_banks}")
    remaining = min(float(size_banks), float(topology.tiles))
    if remaining <= 1e-12:
        return np.zeros(0, dtype=np.float64)
    full = int(math.floor(remaining))
    fraction = remaining - full
    if fraction > 1e-12:
        weights = np.ones(full + 1, dtype=np.float64)
        weights[full] = fraction
        return weights
    return np.ones(full, dtype=np.float64)


def batched_window_scores(
    topology: Topology,
    claimed: np.ndarray,
    size_banks: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Score a compact window at every candidate center -> ``(contention,
    spread)``, each ``(tiles,)``.

    ``contention[c]`` is the claimed capacity under the window centered at
    *c* (the hatched-area sum of Fig 7b); ``spread[c]`` is the window's
    mean access distance from *c* (the Fig 6 average).  Rows reduce in
    spiral order with ``np.cumsum``, so both vectors are bitwise what the
    scalar :func:`window_contention` + :func:`placement_mean_distance`
    compute candidate by candidate.
    """
    weights = compact_window_weights(topology, size_banks)
    m = len(weights)
    if m == 0:
        zeros = np.zeros(topology.tiles, dtype=np.float64)
        return zeros, zeros.copy()
    order = topology.order_matrix[:, :m]
    ranked_dist = topology.sorted_distance_matrix[:, :m]
    contention = np.cumsum(weights[None, :] * claimed[order], axis=1)[:, -1]
    weighted = np.cumsum(weights[None, :] * ranked_dist, axis=1)[:, -1]
    total = sum(weights.tolist())
    spread = weighted / total
    return contention, spread
