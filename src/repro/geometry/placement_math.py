"""Geometric primitives behind CDCS's placement steps.

These implement the pictures in the paper:

* **Fig 6** — *compact placement*: fill banks outward from a center tile,
  possibly fractionally, and compute the resulting average access distance.
  Used for the optimistic on-chip latency curves of Sec IV-C.
* **Fig 7** — *contention windows*: the set of banks a compactly-placed VC
  would cover, used to tally claimed capacity in Sec IV-D.
* **Fig 8** — *outward spirals*: visit banks in increasing distance from a
  center, used by the trade-based refinement of Sec IV-F.
* **centers of mass** of capacity distributions, used by thread placement
  (Sec IV-E).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.geometry.mesh import Topology


def compact_placement(
    topology: Topology, center: int, size_banks: float
) -> dict[int, float]:
    """Place *size_banks* of capacity as close to *center* as possible.

    Banks are filled in increasing distance from *center* (deterministic
    tie-break by tile id); the last bank may receive a fraction.  Returns
    ``{tile: fraction_of_bank}`` with fractions in ``(0, 1]`` summing to
    *size_banks* (clamped to the chip size).

    This is the idealized, contention-free placement of Fig 6: an
    8.2-bank VC centered mid-chip covers the center bank fully, its
    neighbors fully, and tapers at the edge of the covered region.
    """
    if size_banks < 0:
        raise ValueError(f"size must be non-negative, got {size_banks}")
    remaining = min(float(size_banks), float(topology.tiles))
    placement: dict[int, float] = {}
    for tile in topology.tiles_by_distance(center):
        if remaining <= 1e-12:
            break
        take = min(1.0, remaining)
        placement[tile] = take
        remaining -= take
    return placement


def placement_mean_distance(
    topology: Topology, origin: int, placement: Mapping[int, float]
) -> float:
    """Capacity-weighted average distance from *origin* to a placement.

    For a VC accessed by a single thread at *origin*, this is the expected
    hop count of an LLC access (the VTB spreads accesses in proportion to
    per-bank capacity, Sec III).
    """
    total = sum(placement.values())
    if total <= 0:
        return 0.0
    weighted = sum(
        frac * topology.distance(origin, tile) for tile, frac in placement.items()
    )
    return weighted / total


def compact_mean_distance(topology: Topology, center: int, size_banks: float) -> float:
    """Average access distance of a compact placement of *size_banks* around
    *center* for an accessor at *center* (the Fig 6 computation: an
    8.2-bank VC at mesh center averages ~1.27 hops)."""
    placement = compact_placement(topology, center, size_banks)
    return placement_mean_distance(topology, center, placement)


def contention_window(
    topology: Topology, center: int, size_banks: float
) -> dict[int, float]:
    """Banks (with fractions) that a compactly-placed VC would claim.

    Identical footprint to :func:`compact_placement`; named separately
    because Sec IV-D uses it to *estimate* contention (summing already-
    claimed capacity over the window) rather than to place data.
    """
    return compact_placement(topology, center, size_banks)


def window_contention(
    claimed: Mapping[int, float] | "list[float]",
    window: Mapping[int, float],
) -> float:
    """Contention of a placement window against a claimed-capacity tally.

    *claimed* maps bank -> capacity already claimed (in banks; may exceed
    1.0 since Sec IV-D relaxes capacity constraints).  The contention is the
    claimed capacity under the window, weighted by window coverage — the
    hatched-area sum of Fig 7b.
    """
    return sum(frac * claimed[tile] for tile, frac in window.items())


def spiral(topology: Topology, center: int) -> Iterator[int]:
    """Yield tiles in increasing distance from *center*.

    This is the "outward spiral" of the refinement step (Fig 8).  On a mesh
    the visit order is by Manhattan ring; within a ring the order is
    deterministic (tile id).
    """
    yield from topology.tiles_by_distance(center)


def center_of_mass(
    topology: Topology, weights: Mapping[int, float]
) -> tuple[float, ...]:
    """Weighted centroid of tiles in coordinate space.

    For mesh topologies the coordinates are (x, y); the result is fractional.
    Raises ``ValueError`` on empty/zero weights: callers must handle VCs with
    no placed capacity explicitly.
    """
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("center of mass of empty placement is undefined")
    coords = [topology.coords(t) for t in weights]  # type: ignore[attr-defined]
    dims = len(coords[0])
    out = []
    for d in range(dims):
        out.append(
            sum(w * c[d] for c, w in zip(coords, weights.values())) / total
        )
    return tuple(out)


def nearest_tile(topology: Topology, point: Iterable[float]) -> int:
    """Tile whose coordinates are closest (Euclidean) to a fractional point;
    deterministic tie-break by tile id."""
    point = tuple(point)
    best_tile = 0
    best_dist = float("inf")
    for tile in range(topology.tiles):
        coords = topology.coords(tile)  # type: ignore[attr-defined]
        dist = sum((c - p) ** 2 for c, p in zip(coords, point))
        if dist < best_dist - 1e-12:
            best_dist = dist
            best_tile = tile
    return best_tile


def weighted_center_tile(topology: Topology, weights: Mapping[int, float]) -> int:
    """Tile minimizing the capacity-weighted total distance to *weights*.

    This is the discrete 1-median under the network metric — a more faithful
    "center of mass" for hop-count latency than the Euclidean centroid, and
    what the thread-placement step uses to turn a data placement into a
    preferred core location.
    """
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("weighted center of empty placement is undefined")
    dist = topology.distance_matrix
    best_tile = 0
    best_cost = float("inf")
    for tile in range(topology.tiles):
        cost = sum(w * dist[tile, b] for b, w in weights.items())
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_tile = tile
    return best_tile
