"""Chip topologies and network distance.

CDCS only needs a distance function between tiles (Sec IV-B: "CDCS uses
arbitrary distance vectors, so it works with arbitrary topologies").  We
provide an abstract :class:`Topology` plus the concrete :class:`Mesh` used in
the paper's evaluation (X-Y routed, memory controllers at the edges) and a
:class:`Torus` to demonstrate topology independence.

Shape conventions
-----------------
With ``N = topology.tiles``, the vectorized placement kernels index three
matrices instead of recomputing distances:

* ``distance_matrix`` — ``(N, N) int32``; ``[a, b]`` is hops from a to b;
* ``order_matrix`` — ``(N, N) int64``; row ``c`` lists all tiles sorted by
  ``(distance from c, tile id)`` — the outward spiral of Fig 8;
* ``sorted_distance_matrix`` — ``(N, N) int32``; row ``c`` is
  ``distance_matrix[c]`` reordered by ``order_matrix[c]`` (non-decreasing).

All three are memoized process-wide per concrete (class, width, height),
so rebuilding a :class:`Mesh` per placement problem costs nothing.

Dense vs lazy
-------------
Up to :data:`DENSE_GEOMETRY_TILE_LIMIT` tiles the three matrices are the
dense ndarrays above.  Beyond it they become
:class:`LazyGeometryMatrix` stand-ins behind the *same* attribute API:
rows materialize on first access (bitwise what the dense builders
produce, cached per row in the shared store), column reads ride the hop
metric's symmetry, and nothing ever allocates the full O(N²) block — at
16384 tiles the dense trio would be ~4 GiB, while a hierarchical solve
touches only seam-local rows.  Sub-mesh topologies (a hierarchical
solve's regions) stay under the limit, so leaves keep their dense
per-region blocks.  :func:`geometry_allocation_stats` accounts every
geometry allocation; tests pin the "no dense N² at 4096 tiles" contract
against it.
"""

from __future__ import annotations

import contextlib
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.util.guards import guarded_mapping

#: Largest tile count whose geometry matrices are built dense.  Above it
#: the matrix properties return :class:`LazyGeometryMatrix` wrappers.
#: 1024 (a 32x32 mesh, 12 MiB for the dense trio) is the last size where
#: dense is clearly cheaper than per-row bookkeeping.
DENSE_GEOMETRY_TILE_LIMIT = 1024

_dense_tile_limit = DENSE_GEOMETRY_TILE_LIMIT

#: Guards the shared memo.  The co-scheduling service solves concurrent
#: chips on a thread pool, so two solves may want the same (class, dims)
#: matrices at once; without the lock both would build (wasting the
#: hottest precompute and breaking the share-one-array invariant the
#: isolation tests pin).  An RLock because a build may itself read
#: another shared matrix (order_matrix builds from distance_matrix).
#: Registered in ``tools/analyze``'s lock-discipline state registry;
#: under ``REPRO_CHECK_LOCKS=1`` every cache access asserts ownership.
_GEOMETRY_LOCK = threading.RLock()

#: Process-wide geometry memo: exact-class key -> {matrix name -> array
#: or lazy store}.  Rebuilt Mesh/Torus instances of the same dimensions
#: share the distance, spiral-order, and sorted-distance matrices
#: (placement problems construct a fresh topology per mix; at 1024 tiles
#: each argsort alone is a 1024x1024 stable sort, far too hot to redo per
#: epoch).  Lazy topologies share one row store per key the same way.
#: Cached arrays are published read-only (``flags.writeable = False``):
#: every consumer holds a view of the same block, so one in-place write
#: would silently corrupt every other solve in the process.
_SHARED_GEOMETRY_CACHE: dict[tuple, dict[str, object]] = guarded_mapping(
    _GEOMETRY_LOCK, "_SHARED_GEOMETRY_CACHE"
)


def _new_slot(key: tuple) -> dict[str, object]:
    """A per-key slot of the shared memo, lock-checked like its parent."""
    return guarded_mapping(_GEOMETRY_LOCK, f"geometry slot {key!r}")


def _freeze(arr: np.ndarray) -> np.ndarray:
    """Publish *arr* read-only (shared-view immutability at the source)."""
    arr.flags.writeable = False
    return arr


def seed_shared_geometry(key: tuple, matrices: dict[str, np.ndarray]) -> None:
    """Install externally built matrices into the process-wide memo.

    The zero-copy runner publishes a topology's dense matrices into
    shared memory once and calls this in every worker with the attached
    read-only views, so workers never rebuild (or unpickle) geometry.
    Existing entries win — a matrix already built in this process is
    bitwise-identical by construction and may be privately writable."""
    with _GEOMETRY_LOCK:
        slot = _SHARED_GEOMETRY_CACHE.setdefault(key, _new_slot(key))
        for name, matrix in matrices.items():
            if isinstance(matrix, np.ndarray):
                _freeze(matrix)
            slot.setdefault(name, matrix)


def shared_geometry_matrices(key: tuple) -> dict[str, object] | None:
    """The cached matrices for *key* (read-only view for tests/tools)."""
    with _GEOMETRY_LOCK:
        slot = _SHARED_GEOMETRY_CACHE.get(key)
        return dict(slot) if slot is not None else None


@contextlib.contextmanager
def dense_geometry_limit(limit: int):
    """Temporarily override :data:`DENSE_GEOMETRY_TILE_LIMIT`.

    ``dense_geometry_limit(0)`` forces every *newly built* topology lazy
    (equivalence tests exercise the lazy path on small meshes this way);
    a huge limit forces dense.  Matrices already cached on an instance or
    in the shared store keep the mode they were built with — construct
    fresh topologies inside the context.
    """
    global _dense_tile_limit
    previous = _dense_tile_limit
    _dense_tile_limit = limit
    try:
        yield
    finally:
        _dense_tile_limit = previous


# ---------------------------------------------------------------------------
# Allocation accounting
# ---------------------------------------------------------------------------


@dataclass
class GeometryStats:
    """Running account of every geometry-matrix allocation since reset.

    *cached_bytes* is what the process retains (dense matrices plus
    materialized lazy rows — geometry caches never evict, so this is also
    the peak); *peak_block_bytes* is the largest single allocation seen,
    including transient row stacks, which is what catches an accidental
    dense O(N²) build on a path that should stay row-sparse.
    """

    dense_matrices: int = 0
    lazy_rows: int = 0
    cached_bytes: int = 0
    peak_block_bytes: int = 0

    def cached_mib(self) -> float:
        return self.cached_bytes / 2**20


_GEOMETRY_STATS = GeometryStats()


def geometry_allocation_stats() -> GeometryStats:
    """A snapshot of the process-wide geometry allocation account."""
    with _GEOMETRY_LOCK:
        return GeometryStats(
            dense_matrices=_GEOMETRY_STATS.dense_matrices,
            lazy_rows=_GEOMETRY_STATS.lazy_rows,
            cached_bytes=_GEOMETRY_STATS.cached_bytes,
            peak_block_bytes=_GEOMETRY_STATS.peak_block_bytes,
        )


def reset_geometry_allocation_stats() -> None:
    """Zero the account.  Caches stay warm: already-built matrices are
    served without re-counting, so tests wanting a clean reading should
    use dimensions not built earlier in the process."""
    with _GEOMETRY_LOCK:
        _GEOMETRY_STATS.dense_matrices = 0
        _GEOMETRY_STATS.lazy_rows = 0
        _GEOMETRY_STATS.cached_bytes = 0
        _GEOMETRY_STATS.peak_block_bytes = 0


def dense_geometry_bytes(tiles: int) -> int:
    """Bytes the dense matrix trio would occupy at *tiles* tiles (int32
    distance + int64 order + int32 sorted) — the baseline the lazy path's
    memory targets are quoted against."""
    return tiles * tiles * (4 + 8 + 4)


def _note_cached(arr: np.ndarray, dense: bool) -> None:
    with _GEOMETRY_LOCK:
        if dense:
            _GEOMETRY_STATS.dense_matrices += 1
        else:
            _GEOMETRY_STATS.lazy_rows += 1
        _GEOMETRY_STATS.cached_bytes += arr.nbytes
        _GEOMETRY_STATS.peak_block_bytes = max(
            _GEOMETRY_STATS.peak_block_bytes, arr.nbytes
        )


def _note_transient(nbytes: int) -> None:
    with _GEOMETRY_LOCK:
        _GEOMETRY_STATS.peak_block_bytes = max(
            _GEOMETRY_STATS.peak_block_bytes, nbytes
        )


# ---------------------------------------------------------------------------
# Lazy matrices
# ---------------------------------------------------------------------------


class _LazyRowStore:
    """Materialized rows for one lazy topology, shared per cache key.

    Maps matrix name -> {row index -> (tiles,) row}.  Guarded by
    :data:`_GEOMETRY_LOCK` like the dense memo, so every topology instance
    with the same (class, dims) key reuses the same rows."""

    def __init__(self):
        self.rows: dict[str, dict[int, np.ndarray]] = {
            name: guarded_mapping(_GEOMETRY_LOCK, f"lazy rows[{name}]")
            for name in ("distance", "order", "sorted_distance")
        }
        self.row_means: np.ndarray | None = None


#: Rows per transient block when a lazy matrix walks all rows (column
#: blocks, ``[:, :m]`` windows, row means).  256 rows of a 16384-tile
#: chip is a 16 MiB int32 block — large enough to amortize the builder,
#: small enough to never resemble a dense build.
_LAZY_ROW_CHUNK = 256


class LazyGeometryMatrix:
    """Row-sparse stand-in for one dense geometry matrix.

    Quacks like the ``(N, N)`` ndarray for exactly the access patterns
    the placement kernels use — integer rows, ``[i, j]`` scalars,
    ``[i, cols]`` row sections, 1-D fancy row stacks,
    ``[rows[:, None], cols[None, :]]`` broadcast lookups, ``[:, j]`` /
    ``[:, cols]`` columns (via the hop metric's symmetry, distance only),
    ``[:, :m]`` spiral windows, and ``mean(axis=1)`` — materializing rows
    on demand, bitwise what the dense builders produce.  Single rows are
    cached in the shared store; block reads are built chunked and stay
    transient.  Anything that would force the full O(N²) block (notably
    ``np.asarray``) raises instead of silently densifying.
    """

    is_lazy = True

    def __init__(self, topology: "Topology", name: str,
                 store: _LazyRowStore, dtype, symmetric: bool):
        self._topology = topology
        self._name = name
        self._store = store
        self.dtype = np.dtype(dtype)
        self._symmetric = symmetric
        n = topology.tiles
        self.shape = (n, n)
        self.ndim = 2

    def __len__(self) -> int:
        return self.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LazyGeometryMatrix({self._name}, {self.shape[0]} tiles, "
            f"{len(self._store.rows[self._name])} rows materialized)"
        )

    def __array__(self, dtype=None, copy=None):
        raise RuntimeError(
            f"refusing to densify the lazy {self._name} matrix of a "
            f"{self.shape[0]}-tile topology: some caller forced a full "
            f"O(N^2) materialization — read rows or blocks instead"
        )

    # -- row materialization ------------------------------------------------

    def row(self, r: int) -> np.ndarray:
        """Row *r*, built on first access and cached in the shared store.
        Callers must treat it read-only (the dense path hands out views of
        the shared matrix under the same contract)."""
        if not 0 <= r < self.shape[0]:
            raise IndexError(
                f"row {r} outside {self.shape[0]}-tile topology"
            )
        cache = self._store.rows[self._name]
        with _GEOMETRY_LOCK:
            cached = cache.get(r)
            if cached is None:
                cached = _freeze(
                    self._build_rows(np.array([r], dtype=np.int64))[0]
                )
                cache[r] = cached
                _note_cached(cached, dense=False)
            return cached

    def _build_rows(self, rows: np.ndarray) -> np.ndarray:
        """``(len(rows), N)`` block, bitwise the dense matrix's rows.

        Not cached: per-row stable argsort and take-along are independent
        of other rows, so a block equals the dense build's row subset.
        """
        topo = self._topology
        dist = topo._distance_rows(rows)
        if self._name == "distance":
            return dist
        order = np.argsort(dist, axis=1, kind="stable")
        if self._name == "order":
            return order
        return np.take_along_axis(dist, order, axis=1)

    # -- indexing -----------------------------------------------------------

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            return self.row(int(key))
        if isinstance(key, (list, np.ndarray)):
            rows = np.asarray(key, dtype=np.int64)
            if rows.ndim != 1:
                raise NotImplementedError(
                    "lazy geometry matrices take 1-D row index arrays"
                )
            block = self._build_rows(rows)
            _note_transient(block.nbytes)
            return block
        if isinstance(key, tuple) and len(key) == 2:
            r, c = key
            if isinstance(r, (int, np.integer)):
                return self.row(int(r))[c]
            if isinstance(r, slice) and r == slice(None):
                return self._column_section(c)
            if isinstance(r, (list, np.ndarray)) and isinstance(
                c, (list, np.ndarray)
            ):
                return self._broadcast_lookup(np.asarray(r), np.asarray(c))
        raise NotImplementedError(
            f"lazy geometry matrix does not support indexing with {key!r}"
        )

    def _column_section(self, c):
        """``[:, c]`` reads: window slices for any matrix, single columns
        and column blocks via symmetry (distance only)."""
        n = self.shape[0]
        if isinstance(c, slice):
            width = len(range(*c.indices(n)))
            out = np.empty((n, width), dtype=self.dtype)
            for lo in range(0, n, _LAZY_ROW_CHUNK):
                hi = min(lo + _LAZY_ROW_CHUNK, n)
                block = self._build_rows(np.arange(lo, hi, dtype=np.int64))
                _note_transient(block.nbytes)
                out[lo:hi] = block[:, c]
            _note_transient(out.nbytes)
            return out
        if not self._symmetric:
            raise NotImplementedError(
                f"the {self._name} matrix is not symmetric; only the "
                f"distance matrix supports lazy column reads"
            )
        if isinstance(c, (int, np.integer)):
            return self.row(int(c))
        cols = np.asarray(c, dtype=np.int64)
        if cols.ndim != 1:
            raise NotImplementedError(
                "lazy geometry matrices take 1-D column index arrays"
            )
        out = np.empty((n, cols.size), dtype=self.dtype)
        for lo in range(0, cols.size, _LAZY_ROW_CHUNK):
            hi = min(lo + _LAZY_ROW_CHUNK, cols.size)
            block = self._build_rows(cols[lo:hi])
            _note_transient(block.nbytes)
            out[:, lo:hi] = block.T
        _note_transient(out.nbytes)
        return out

    def _broadcast_lookup(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """``mat[i, j]`` with broadcasting (the Eq 2 kernel's
        ``dist[cores[:, None], banks[None, :]]``), chunked over the
        distinct rows so no dense slab is built."""
        bi, bj = np.broadcast_arrays(i, j)
        out = np.empty(bi.shape, dtype=self.dtype)
        flat_i = bi.reshape(-1).astype(np.int64)
        flat_j = bj.reshape(-1).astype(np.int64)
        flat_out = out.reshape(-1)
        uniq = np.unique(flat_i)
        local = np.searchsorted(uniq, flat_i)
        for lo in range(0, uniq.size, _LAZY_ROW_CHUNK):
            hi = min(lo + _LAZY_ROW_CHUNK, uniq.size)
            block = self._build_rows(uniq[lo:hi])
            _note_transient(block.nbytes)
            sel = (local >= lo) & (local < hi)
            flat_out[sel] = block[local[sel] - lo, flat_j[sel]]
        return out

    # -- reductions ---------------------------------------------------------

    def mean(self, axis=None):
        """Row means (``axis=1``), chunked — bitwise ``dense.mean(axis=1)``
        because numpy reduces each row independently.  Distance row means
        are cached in the shared store (they anchor ``center_tile``)."""
        if axis != 1:
            raise NotImplementedError(
                "lazy geometry matrices only reduce with mean(axis=1)"
            )
        if self._name == "distance":
            with _GEOMETRY_LOCK:
                if self._store.row_means is not None:
                    return self._store.row_means
        n = self.shape[0]
        out = np.empty(n, dtype=np.float64)
        for lo in range(0, n, _LAZY_ROW_CHUNK):
            hi = min(lo + _LAZY_ROW_CHUNK, n)
            block = self._build_rows(np.arange(lo, hi, dtype=np.int64))
            _note_transient(block.nbytes)
            out[lo:hi] = block.mean(axis=1)
        if self._name == "distance":
            with _GEOMETRY_LOCK:
                if self._store.row_means is None:
                    self._store.row_means = _freeze(out)
                    _note_cached(out, dense=False)
                return self._store.row_means
        return out


class Topology(ABC):
    """A set of tiles with a hop-count metric between them."""

    def __init__(self, tiles: int):
        if tiles <= 0:
            raise ValueError(f"topology needs at least one tile, got {tiles}")
        self.tiles = tiles
        self._distance_order_cache: dict[int, list[int]] = {}

    @abstractmethod
    def distance(self, a: int, b: int) -> int:
        """Network distance between tiles *a* and *b* in hops."""

    def _shared_cache_key(self) -> tuple | None:
        """Key for the process-wide matrix memo; None disables sharing.
        Only exact, dimension-determined classes may share (a subclass with
        an overridden metric must not inherit the parent's matrices)."""
        return None

    def _build_distance_matrix(self) -> np.ndarray:
        mat = np.zeros((self.tiles, self.tiles), dtype=np.int32)
        for a in range(self.tiles):
            for b in range(self.tiles):
                mat[a, b] = self.distance(a, b)
        return mat

    def _distance_rows(self, rows: np.ndarray) -> np.ndarray:
        """``(len(rows), tiles) int32`` distance block, row i = distances
        from ``rows[i]`` — bitwise the same rows of
        :meth:`_build_distance_matrix` (the lazy path's builder).
        Subclasses with vectorizable metrics should override."""
        out = np.empty((len(rows), self.tiles), dtype=np.int32)
        for i, r in enumerate(rows):
            for b in range(self.tiles):
                out[i, b] = self.distance(int(r), b)
        return out

    def _geometry_is_lazy(self) -> bool:
        """Whether matrices built *now* would be lazy.  Frozen per matrix
        at first access by ``cached_property``."""
        return self.tiles > _dense_tile_limit

    def _lazy_store(self) -> _LazyRowStore:
        key = self._shared_cache_key()
        if key is None:
            store = getattr(self, "_private_lazy_store", None)
            if store is None:
                store = self._private_lazy_store = _LazyRowStore()
            return store
        with _GEOMETRY_LOCK:
            slot = _SHARED_GEOMETRY_CACHE.setdefault(key, _new_slot(key))
            store = slot.get("lazy")
            if store is None:
                store = slot["lazy"] = _LazyRowStore()
            return store

    def _shared_matrix(self, name: str, build) -> np.ndarray:
        """Build *name* once per (class, dimensions) and share it
        process-wide; topologies without a shared key build privately.
        Either way the result is frozen read-only: the dense memo's
        arrays are the canonical shared views the immutability checker
        (and the equivalence tests) assume nobody writes through."""
        key = self._shared_cache_key()
        if key is None:
            arr = _freeze(build())
            _note_cached(arr, dense=True)
            return arr
        with _GEOMETRY_LOCK:
            slot = _SHARED_GEOMETRY_CACHE.setdefault(key, _new_slot(key))
            cached = slot.get(name)
            if cached is None:
                cached = _freeze(build())
                slot[name] = cached
                _note_cached(cached, dense=True)
            return cached

    @cached_property
    def distance_matrix(self) -> np.ndarray:
        """(tiles x tiles) hop-count matrix; placement algorithms index
        this instead of recomputing distances.  Lazy above the dense tile
        limit (see module docstring) — same indexing API, rows on demand."""
        if self._geometry_is_lazy():
            return LazyGeometryMatrix(
                self, "distance", self._lazy_store(), np.int32, symmetric=True
            )
        return self._shared_matrix("distance", self._build_distance_matrix)

    @cached_property
    def order_matrix(self) -> np.ndarray:
        """(tiles, tiles) visit order: row c = tiles sorted by (distance
        from c, tile id).  A stable argsort of the distance matrix yields
        exactly :meth:`tiles_by_distance` for every center at once."""
        if self._geometry_is_lazy():
            return LazyGeometryMatrix(
                self, "order", self._lazy_store(), np.int64, symmetric=False
            )
        return self._shared_matrix(
            "order",
            lambda: np.argsort(self.distance_matrix, axis=1, kind="stable"),
        )

    @cached_property
    def sorted_distance_matrix(self) -> np.ndarray:
        """(tiles, tiles): row c = distances from c in visit order (the
        j-th entry is the distance to the j-th-closest tile)."""
        if self._geometry_is_lazy():
            return LazyGeometryMatrix(
                self, "sorted_distance", self._lazy_store(), np.int32,
                symmetric=False,
            )
        return self._shared_matrix(
            "sorted_distance",
            lambda: np.take_along_axis(
                self.distance_matrix, self.order_matrix, axis=1
            ),
        )

    def tiles_by_distance(self, center: int) -> list[int]:
        """Tiles sorted by distance from *center* (ties broken by tile id,
        so the order is deterministic).  Cached on dense topologies:
        placement algorithms call this for every candidate center of every
        VC.  Lazy topologies rebuild the list per call (the underlying
        order row stays cached) — a 16384-entry Python list per distinct
        center would quietly dominate the sparse footprint."""
        cached = self._distance_order_cache.get(center)
        if cached is None:
            cached = [int(t) for t in self.order_matrix[center]]
            if not getattr(self.order_matrix, "is_lazy", False):
                self._distance_order_cache[center] = cached
        return cached

    def mean_distance(self, origin: int) -> float:
        """Average distance from *origin* to every tile (including itself).

        This is the S-NUCA expected hop count: lines are spread uniformly
        over all banks, so every access travels the mean distance.
        """
        return float(self.distance_matrix[origin].mean())

    def center_tile(self) -> int:
        """The tile minimizing mean distance to all others."""
        means = self.distance_matrix.mean(axis=1)
        return int(np.argmin(means))


class Mesh(Topology):
    """2-D mesh with dimension-ordered (X-Y) routing, as in Table 2."""

    def __init__(self, width: int, height: int):
        if width <= 0 or height <= 0:
            raise ValueError(f"invalid mesh {width}x{height}")
        self.width = width
        self.height = height
        super().__init__(width * height)

    def coords(self, tile: int) -> tuple[int, int]:
        """(x, y) coordinates of *tile*; tile ids are row-major."""
        if not 0 <= tile < self.tiles:
            raise IndexError(f"tile {tile} outside mesh of {self.tiles}")
        return tile % self.width, tile // self.width

    @cached_property
    def coord_array(self) -> np.ndarray:
        """(tiles, 2) int64 (x, y) coordinates, row t = ``coords(t)`` —
        the array the vectorized placement kernels use for centroid math."""
        ids = np.arange(self.tiles, dtype=np.int64)
        return np.stack([ids % self.width, ids // self.width], axis=1)

    def tile_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise IndexError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def distance(self, a: int, b: int) -> int:
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        return abs(ax - bx) + abs(ay - by)

    def _shared_cache_key(self) -> tuple | None:
        if type(self) in (Mesh, Torus):
            return (type(self).__name__, self.width, self.height)
        return None

    def cache_key(self) -> tuple:
        """Content identity for the runner's result cache: a mesh/torus is
        fully determined by its class and dimensions (needed so a
        :class:`repro.sched.problem.PlacementProblem` — e.g. one region of a
        partitioned solve — can be a content-hashed job input).  Exact
        classes only, mirroring :meth:`_shared_cache_key`: a subclass with
        an overridden metric is *not* determined by (class name, width,
        height) and must define its own key rather than silently colliding
        with the parent's cached results."""
        if type(self) not in (Mesh, Torus):
            raise NotImplementedError(
                f"{type(self).__name__} must define its own cache_key(): "
                f"(class, width, height) does not determine a subclass "
                f"with an overridden metric"
            )
        return (type(self).__name__, self.width, self.height)

    def _build_distance_matrix(self) -> np.ndarray:
        xs = np.arange(self.tiles, dtype=np.int32) % self.width
        ys = np.arange(self.tiles, dtype=np.int32) // self.width
        dx = np.abs(xs[:, None] - xs[None, :])
        dy = np.abs(ys[:, None] - ys[None, :])
        return (self._fold(dx, dy)).astype(np.int32)

    def _distance_rows(self, rows: np.ndarray) -> np.ndarray:
        # The dense builder's broadcast restricted to a row subset: the
        # same elementwise integer math, so blocks are bitwise dense rows.
        xs = np.arange(self.tiles, dtype=np.int32) % self.width
        ys = np.arange(self.tiles, dtype=np.int32) // self.width
        rows = np.asarray(rows, dtype=np.int64)
        dx = np.abs(xs[rows][:, None] - xs[None, :])
        dy = np.abs(ys[rows][:, None] - ys[None, :])
        return (self._fold(dx, dy)).astype(np.int32)

    def _fold(self, dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
        """Combine per-axis offsets into hop counts (mesh: plain sum)."""
        return dx + dy

    def neighbors(self, tile: int) -> list[int]:
        """Tiles one hop away (mesh links only)."""
        x, y = self.coords(tile)
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if 0 <= nx < self.width and 0 <= ny < self.height:
                out.append(self.tile_at(nx, ny))
        return out

    def memory_controller_tiles(self, controllers: int) -> list[int]:
        """Edge tiles adjacent to memory controllers.

        The paper's chip (Fig 3) puts controllers on all four edges; we
        spread ``controllers`` evenly around the perimeter, starting from the
        middle of each edge, matching the "average distance of all cores to
        memory controllers is the same" property Eq 1 relies on.
        """
        if controllers <= 0:
            raise ValueError("need at least one memory controller")
        perimeter: list[int] = []
        # Walk the perimeter clockwise from the top edge.
        for x in range(self.width):
            perimeter.append(self.tile_at(x, 0))
        for y in range(1, self.height):
            perimeter.append(self.tile_at(self.width - 1, y))
        if self.height > 1:
            for x in range(self.width - 2, -1, -1):
                perimeter.append(self.tile_at(x, self.height - 1))
        if self.width > 1:
            for y in range(self.height - 2, 0, -1):
                perimeter.append(self.tile_at(0, y))
        count = min(controllers, len(perimeter))
        step = len(perimeter) / count
        return [perimeter[int(i * step + step / 2) % len(perimeter)] for i in range(count)]

    def mean_memory_distance(self, origin: int, controllers: int) -> float:
        """Average hops from *origin* to a memory controller (pages are
        interleaved across controllers, Sec III)."""
        mcs = self.memory_controller_tiles(controllers)
        return float(np.mean([self.distance(origin, m) for m in mcs]))


class Torus(Mesh):
    """2-D torus: mesh with wraparound links.

    Not used in the paper's evaluation; it exists to exercise the
    arbitrary-topology claim of Sec IV-B in tests and examples.
    """

    def distance(self, a: int, b: int) -> int:
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        dx = abs(ax - bx)
        dy = abs(ay - by)
        return min(dx, self.width - dx) + min(dy, self.height - dy)

    def _fold(self, dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
        return np.minimum(dx, self.width - dx) + np.minimum(dy, self.height - dy)
