"""Chip topologies and network distance.

CDCS only needs a distance function between tiles (Sec IV-B: "CDCS uses
arbitrary distance vectors, so it works with arbitrary topologies").  We
provide an abstract :class:`Topology` plus the concrete :class:`Mesh` used in
the paper's evaluation (X-Y routed, memory controllers at the edges) and a
:class:`Torus` to demonstrate topology independence.

Shape conventions
-----------------
With ``N = topology.tiles``, the vectorized placement kernels index three
dense matrices instead of recomputing distances:

* ``distance_matrix`` — ``(N, N) int32``; ``[a, b]`` is hops from a to b;
* ``order_matrix`` — ``(N, N) int64``; row ``c`` lists all tiles sorted by
  ``(distance from c, tile id)`` — the outward spiral of Fig 8;
* ``sorted_distance_matrix`` — ``(N, N) int32``; row ``c`` is
  ``distance_matrix[c]`` reordered by ``order_matrix[c]`` (non-decreasing).

All three are memoized process-wide per concrete (class, width, height),
so rebuilding a :class:`Mesh` per placement problem costs nothing.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from functools import cached_property

import numpy as np

#: Process-wide geometry memo: exact-class key -> {matrix name -> array}.
#: Rebuilt Mesh/Torus instances of the same dimensions share the distance,
#: spiral-order, and sorted-distance matrices (placement problems construct
#: a fresh topology per mix; at 1024 tiles each argsort alone is a
#: 1024x1024 stable sort, far too hot to redo per epoch).
_SHARED_GEOMETRY_CACHE: dict[tuple, dict[str, np.ndarray]] = {}

#: Guards the shared memo.  The co-scheduling service solves concurrent
#: chips on a thread pool, so two solves may want the same (class, dims)
#: matrices at once; without the lock both would build (wasting the
#: hottest precompute and breaking the share-one-array invariant the
#: isolation tests pin).  An RLock because a build may itself read
#: another shared matrix (order_matrix builds from distance_matrix).
_GEOMETRY_LOCK = threading.RLock()


def shared_geometry_matrices(key: tuple) -> dict[str, np.ndarray] | None:
    """The cached matrices for *key* (read-only view for tests/tools)."""
    with _GEOMETRY_LOCK:
        slot = _SHARED_GEOMETRY_CACHE.get(key)
        return dict(slot) if slot is not None else None


class Topology(ABC):
    """A set of tiles with a hop-count metric between them."""

    def __init__(self, tiles: int):
        if tiles <= 0:
            raise ValueError(f"topology needs at least one tile, got {tiles}")
        self.tiles = tiles
        self._distance_order_cache: dict[int, list[int]] = {}

    @abstractmethod
    def distance(self, a: int, b: int) -> int:
        """Network distance between tiles *a* and *b* in hops."""

    def _shared_cache_key(self) -> tuple | None:
        """Key for the process-wide matrix memo; None disables sharing.
        Only exact, dimension-determined classes may share (a subclass with
        an overridden metric must not inherit the parent's matrices)."""
        return None

    def _build_distance_matrix(self) -> np.ndarray:
        mat = np.zeros((self.tiles, self.tiles), dtype=np.int32)
        for a in range(self.tiles):
            for b in range(self.tiles):
                mat[a, b] = self.distance(a, b)
        return mat

    def _shared_matrix(self, name: str, build) -> np.ndarray:
        """Build *name* once per (class, dimensions) and share it
        process-wide; topologies without a shared key build privately."""
        key = self._shared_cache_key()
        if key is None:
            return build()
        with _GEOMETRY_LOCK:
            slot = _SHARED_GEOMETRY_CACHE.setdefault(key, {})
            cached = slot.get(name)
            if cached is None:
                cached = build()
                slot[name] = cached
            return cached

    @cached_property
    def distance_matrix(self) -> np.ndarray:
        """Dense (tiles x tiles) hop-count matrix; placement algorithms index
        this instead of recomputing distances."""
        return self._shared_matrix("distance", self._build_distance_matrix)

    @cached_property
    def order_matrix(self) -> np.ndarray:
        """(tiles, tiles) visit order: row c = tiles sorted by (distance
        from c, tile id).  A stable argsort of the distance matrix yields
        exactly :meth:`tiles_by_distance` for every center at once."""
        return self._shared_matrix(
            "order",
            lambda: np.argsort(self.distance_matrix, axis=1, kind="stable"),
        )

    @cached_property
    def sorted_distance_matrix(self) -> np.ndarray:
        """(tiles, tiles): row c = distances from c in visit order (the
        j-th entry is the distance to the j-th-closest tile)."""
        return self._shared_matrix(
            "sorted_distance",
            lambda: np.take_along_axis(
                self.distance_matrix, self.order_matrix, axis=1
            ),
        )

    def tiles_by_distance(self, center: int) -> list[int]:
        """Tiles sorted by distance from *center* (ties broken by tile id,
        so the order is deterministic).  Cached: placement algorithms call
        this for every candidate center of every VC."""
        cached = self._distance_order_cache.get(center)
        if cached is None:
            cached = [int(t) for t in self.order_matrix[center]]
            self._distance_order_cache[center] = cached
        return cached

    def mean_distance(self, origin: int) -> float:
        """Average distance from *origin* to every tile (including itself).

        This is the S-NUCA expected hop count: lines are spread uniformly
        over all banks, so every access travels the mean distance.
        """
        return float(self.distance_matrix[origin].mean())

    def center_tile(self) -> int:
        """The tile minimizing mean distance to all others."""
        means = self.distance_matrix.mean(axis=1)
        return int(np.argmin(means))


class Mesh(Topology):
    """2-D mesh with dimension-ordered (X-Y) routing, as in Table 2."""

    def __init__(self, width: int, height: int):
        if width <= 0 or height <= 0:
            raise ValueError(f"invalid mesh {width}x{height}")
        self.width = width
        self.height = height
        super().__init__(width * height)

    def coords(self, tile: int) -> tuple[int, int]:
        """(x, y) coordinates of *tile*; tile ids are row-major."""
        if not 0 <= tile < self.tiles:
            raise IndexError(f"tile {tile} outside mesh of {self.tiles}")
        return tile % self.width, tile // self.width

    @cached_property
    def coord_array(self) -> np.ndarray:
        """(tiles, 2) int64 (x, y) coordinates, row t = ``coords(t)`` —
        the array the vectorized placement kernels use for centroid math."""
        ids = np.arange(self.tiles, dtype=np.int64)
        return np.stack([ids % self.width, ids // self.width], axis=1)

    def tile_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise IndexError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def distance(self, a: int, b: int) -> int:
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        return abs(ax - bx) + abs(ay - by)

    def _shared_cache_key(self) -> tuple | None:
        if type(self) in (Mesh, Torus):
            return (type(self).__name__, self.width, self.height)
        return None

    def cache_key(self) -> tuple:
        """Content identity for the runner's result cache: a mesh/torus is
        fully determined by its class and dimensions (needed so a
        :class:`repro.sched.problem.PlacementProblem` — e.g. one region of a
        partitioned solve — can be a content-hashed job input).  Exact
        classes only, mirroring :meth:`_shared_cache_key`: a subclass with
        an overridden metric is *not* determined by (class name, width,
        height) and must define its own key rather than silently colliding
        with the parent's cached results."""
        if type(self) not in (Mesh, Torus):
            raise NotImplementedError(
                f"{type(self).__name__} must define its own cache_key(): "
                f"(class, width, height) does not determine a subclass "
                f"with an overridden metric"
            )
        return (type(self).__name__, self.width, self.height)

    def _build_distance_matrix(self) -> np.ndarray:
        xs = np.arange(self.tiles, dtype=np.int32) % self.width
        ys = np.arange(self.tiles, dtype=np.int32) // self.width
        dx = np.abs(xs[:, None] - xs[None, :])
        dy = np.abs(ys[:, None] - ys[None, :])
        return (self._fold(dx, dy)).astype(np.int32)

    def _fold(self, dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
        """Combine per-axis offsets into hop counts (mesh: plain sum)."""
        return dx + dy

    def neighbors(self, tile: int) -> list[int]:
        """Tiles one hop away (mesh links only)."""
        x, y = self.coords(tile)
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if 0 <= nx < self.width and 0 <= ny < self.height:
                out.append(self.tile_at(nx, ny))
        return out

    def memory_controller_tiles(self, controllers: int) -> list[int]:
        """Edge tiles adjacent to memory controllers.

        The paper's chip (Fig 3) puts controllers on all four edges; we
        spread ``controllers`` evenly around the perimeter, starting from the
        middle of each edge, matching the "average distance of all cores to
        memory controllers is the same" property Eq 1 relies on.
        """
        if controllers <= 0:
            raise ValueError("need at least one memory controller")
        perimeter: list[int] = []
        # Walk the perimeter clockwise from the top edge.
        for x in range(self.width):
            perimeter.append(self.tile_at(x, 0))
        for y in range(1, self.height):
            perimeter.append(self.tile_at(self.width - 1, y))
        if self.height > 1:
            for x in range(self.width - 2, -1, -1):
                perimeter.append(self.tile_at(x, self.height - 1))
        if self.width > 1:
            for y in range(self.height - 2, 0, -1):
                perimeter.append(self.tile_at(0, y))
        count = min(controllers, len(perimeter))
        step = len(perimeter) / count
        return [perimeter[int(i * step + step / 2) % len(perimeter)] for i in range(count)]

    def mean_memory_distance(self, origin: int, controllers: int) -> float:
        """Average hops from *origin* to a memory controller (pages are
        interleaved across controllers, Sec III)."""
        mcs = self.memory_controller_tiles(controllers)
        return float(np.mean([self.distance(origin, m) for m in mcs]))


class Torus(Mesh):
    """2-D torus: mesh with wraparound links.

    Not used in the paper's evaluation; it exists to exercise the
    arbitrary-topology claim of Sec IV-B in tests and examples.
    """

    def distance(self, a: int, b: int) -> int:
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        dx = abs(ax - bx)
        dy = abs(ay - by)
        return min(dx, self.width - dx) + min(dy, self.height - dy)

    def _fold(self, dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
        return np.minimum(dx, self.width - dx) + np.minimum(dy, self.height - dy)
