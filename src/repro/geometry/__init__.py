"""Chip topologies (mesh/torus) and the geometric primitives used by
CDCS's placement steps (compact placement, contention windows, spirals,
centers of mass)."""

from repro.geometry.mesh import (
    DENSE_GEOMETRY_TILE_LIMIT,
    GeometryStats,
    LazyGeometryMatrix,
    Mesh,
    Topology,
    Torus,
    dense_geometry_bytes,
    dense_geometry_limit,
    geometry_allocation_stats,
    reset_geometry_allocation_stats,
)
from repro.geometry.placement_math import (
    center_of_mass,
    compact_mean_distance,
    compact_placement,
    contention_window,
    nearest_tile,
    placement_mean_distance,
    spiral,
    weighted_center_tile,
    window_contention,
)

__all__ = [
    "DENSE_GEOMETRY_TILE_LIMIT",
    "GeometryStats",
    "LazyGeometryMatrix",
    "Mesh",
    "Topology",
    "Torus",
    "dense_geometry_bytes",
    "dense_geometry_limit",
    "geometry_allocation_stats",
    "reset_geometry_allocation_stats",
    "center_of_mass",
    "compact_mean_distance",
    "compact_placement",
    "contention_window",
    "nearest_tile",
    "placement_mean_distance",
    "spiral",
    "weighted_center_tile",
    "window_contention",
]
