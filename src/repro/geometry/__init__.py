"""Chip topologies (mesh/torus) and the geometric primitives used by
CDCS's placement steps (compact placement, contention windows, spirals,
centers of mass)."""

from repro.geometry.mesh import Mesh, Topology, Torus
from repro.geometry.placement_math import (
    center_of_mass,
    compact_mean_distance,
    compact_placement,
    contention_window,
    nearest_tile,
    placement_mean_distance,
    spiral,
    weighted_center_tile,
    window_contention,
)

__all__ = [
    "Mesh",
    "Topology",
    "Torus",
    "center_of_mass",
    "compact_mean_distance",
    "compact_placement",
    "contention_window",
    "nearest_tile",
    "placement_mean_distance",
    "spiral",
    "weighted_center_tile",
    "window_contention",
]
