"""DRAM timing: zero-load latency plus bandwidth-dependent queueing.

Table 2 gives 120-cycle zero-load latency and 12.8 GB/s per channel.  The
case study (Sec II-B) depends on bandwidth feedback: when omnet's misses
disappear under Jigsaw/CDCS, milc speeds up "because omnet does not consume
memory bandwidth anymore".  We capture that with an M/D/1-style queueing
term on channel utilization; the analytic engine closes the IPC <-> demand
fixed point (model/system.py).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import MemoryConfig
from repro.util.units import CACHE_LINE_BYTES


@dataclass(frozen=True)
class DramModel:
    """Latency model for one memory channel population."""

    config: MemoryConfig
    #: Utilization ceiling: demand beyond this is throttled (row-buffer and
    #: refresh overheads keep real channels below unit efficiency).
    max_utilization: float = 0.90
    #: Mean service time of one line transfer, used by the queueing term.
    line_bytes: int = CACHE_LINE_BYTES

    def service_cycles_per_line(self) -> float:
        """Cycles one channel needs to transfer one cache line."""
        return self.line_bytes / self.config.bytes_per_cycle_per_channel

    def total_bytes_per_cycle(self) -> float:
        """Aggregate chip bandwidth over all channels."""
        return self.config.controllers * self.config.bytes_per_cycle_per_channel

    def utilization(self, demand_bytes_per_cycle: float) -> float:
        """Aggregate channel utilization for a given demand (clamped)."""
        if demand_bytes_per_cycle < 0:
            raise ValueError("demand cannot be negative")
        capacity = self.total_bytes_per_cycle()
        return min(demand_bytes_per_cycle / capacity, self.max_utilization)

    def queueing_delay(self, demand_bytes_per_cycle: float) -> float:
        """Extra cycles per access from channel contention.

        M/D/1 waiting time: ``rho / (2 (1 - rho))`` service times.  At low
        load this vanishes; near saturation it dominates — which is what
        throttles streaming apps sharing the chip.  Utilization is capped
        just below 1 (not at ``max_utilization``) so that over-demand maps
        to a large-but-finite latency the IPC fixed point can push against.
        """
        if demand_bytes_per_cycle < 0:
            raise ValueError("demand cannot be negative")
        capacity = self.total_bytes_per_cycle()
        rho = min(demand_bytes_per_cycle / capacity, 0.99)
        service = self.service_cycles_per_line()
        return service * rho / (2.0 * (1.0 - rho))

    def queueing_delay_batch(self, demand_bytes_per_cycle: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`queueing_delay` over a demand vector.

        Element *i* is bitwise-identical to
        ``queueing_delay(float(demand[i]))`` — the same divide, clamp, and
        M/D/1 expression applied elementwise, so the mega-batch bandwidth
        fixed point reproduces the per-mix solve exactly.
        """
        demand = np.asarray(demand_bytes_per_cycle, dtype=np.float64)
        if np.any(demand < 0):
            raise ValueError("demand cannot be negative")
        capacity = self.total_bytes_per_cycle()
        rho = np.minimum(demand / capacity, 0.99)
        service = self.service_cycles_per_line()
        return service * rho / (2.0 * (1.0 - rho))

    def access_latency(self, demand_bytes_per_cycle: float = 0.0) -> float:
        """Average DRAM access latency (excluding on-chip hops to the MC)."""
        return self.config.zero_load_latency + self.queueing_delay(
            demand_bytes_per_cycle
        )

    def sustainable_miss_bandwidth(self) -> float:
        """Upper bound on line transfers per cycle the chip can sustain."""
        return (
            self.total_bytes_per_cycle() * self.max_utilization / self.line_bytes
        )
