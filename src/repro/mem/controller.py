"""Memory controllers: placement at mesh edges and page interleaving.

Pages are interleaved across controllers "as in Tilera and Knights Corner
chips" (Sec III), so every core sees the same average distance to memory —
the property Eq 1 relies on.  The controller layer supplies (a) which tile a
given line's controller sits at (for the trace simulator) and (b) the mean
core-to-controller hop count (for the analytic model and traffic accounting).
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.config import MemoryConfig
from repro.geometry.mesh import Mesh
from repro.util.hashing import mix64


class MemoryControllers:
    """The chip's memory controllers and their address mapping."""

    def __init__(self, mesh: Mesh, config: MemoryConfig | None = None, seed: int = 11):
        self.mesh = mesh
        self.config = config or MemoryConfig()
        self.seed = seed
        self.tiles = mesh.memory_controller_tiles(self.config.controllers)

    def controller_for(self, line_addr: int, page_lines: int = 64) -> int:
        """Controller tile serving *line_addr* (page-granularity interleave;
        4 KB pages = 64 lines)."""
        page = line_addr // page_lines
        idx = mix64(page, self.seed) % len(self.tiles)
        return self.tiles[idx]

    @cached_property
    def mean_distance_matrix(self) -> np.ndarray:
        """mean hops from each tile to a (uniformly used) controller.

        One column-slice mean over the shared distance matrix; hop counts
        are small integers, so the reduction is exact regardless of order.
        """
        return self.mesh.distance_matrix[:, self.tiles].mean(axis=1)

    def mean_distance(self, origin: int) -> float:
        return float(self.mean_distance_matrix[origin])

    def chip_mean_distance(self) -> float:
        """Average over all tiles — the uniform-latency assumption of Eq 1."""
        return float(self.mean_distance_matrix.mean())
