"""Memory system: DRAM timing with bandwidth queueing, and edge memory
controllers with page interleaving."""

from repro.mem.controller import MemoryControllers
from repro.mem.dram import DramModel

__all__ = ["DramModel", "MemoryControllers"]
