"""A plain partitioned shared cache (UCP-style), placement-oblivious.

Sec II-A: "partitioned caches scale poorly because they do not optimize
placement."  This scheme sizes VCs by miss-driven Lookahead (as UCP would)
but spreads every VC's capacity uniformly across banks, so all accesses pay
the mean core-to-bank distance — capacity efficiency without locality.
Used as an extra comparison point in tests and ablation benches.
"""

from __future__ import annotations

from repro.nuca.base import NucaScheme, SchemeResult
from repro.sched.allocation import allocate_miss_driven
from repro.sched.problem import PlacementProblem, PlacementSolution
from repro.sched.thread_placement import random_thread_placement


class PartitionedShared(NucaScheme):
    name = "Partitioned"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def run(self, problem: PlacementProblem) -> SchemeResult:
        sizes = allocate_miss_driven(problem)
        tiles = problem.topology.tiles
        allocation = {
            vc_id: {b: max(size, 1.0) / tiles for b in range(tiles)}
            for vc_id, size in sizes.items()
            if size > 0 or sum(problem.accessors_of(vc_id).values()) > 0
        }
        solution = PlacementSolution(
            vc_sizes=sizes,
            vc_allocation=allocation,
            thread_cores=random_thread_placement(problem, self.seed),
        )
        return SchemeResult(self.name, solution)
