"""Emergent capacity sharing in unpartitioned caches.

S-NUCA and R-NUCA do not partition capacity; occupancy emerges from the
replacement policy.  We model LRU sharing with the standard insertion-
balance fixed point: in steady state each stream's insertion rate (its miss
rate at its occupancy) equals its eviction rate, and eviction pressure hits
streams in proportion to their occupancy.  Formally, find pressure ``P``
and occupancies ``o_d`` with::

    m_d(o_d) = P * o_d          (per-stream balance)
    sum_d o_d = C               (cache fills up)

unless all footprints fit (then ``P = 0`` and everyone keeps their working
set).  Both equations are monotone, so nested bisection converges fast.
This is how streaming apps (milc) crowd fitting apps (omnet) out of an
unmanaged LLC — the Sec II-B observation that motivates partitioning.

Two implementations solve the same system:

* :func:`shared_cache_occupancies` — the scalar reference: one nested
  bisection per stream, one ``np.interp`` per probe;
* :func:`shared_cache_occupancies_batch` — the vectorized kernel: all
  streams bisect in lockstep, each probe evaluating every miss curve in
  one :class:`~repro.cache.miss_curve.MissCurveBatch` call.  Per-stream
  arithmetic and summation order replicate the scalar path exactly, so
  the two return bitwise-identical occupancies.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.cache.miss_curve import MissCurveBatch

MissFn = Callable[[float], float]

#: Bisection iterations (both solvers; enough for double precision).
_BISECT_ITERS = 60


def _occupancy_at_pressure(
    miss_fn: MissFn, pressure: float, capacity: float
) -> float:
    """Solve ``m(o) = P * o`` for one stream (clamped to [0, capacity])."""
    if miss_fn(0.0) <= 0.0:
        return 0.0
    if pressure <= 0.0 or miss_fn(capacity) >= pressure * capacity:
        return capacity
    lo, hi = 0.0, capacity
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if miss_fn(mid) >= pressure * mid:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def shared_cache_occupancies(
    miss_fns: Sequence[MissFn], capacity: float
) -> list[float]:
    """Steady-state occupancy of each stream in a shared LRU cache.

    *miss_fns* give each stream's miss rate as a function of its own
    occupancy (units are arbitrary but must be common across streams).
    """
    if capacity <= 0:
        return [0.0] * len(miss_fns)
    # If everything fits at zero pressure, footprints are the answer.
    unconstrained = [
        _occupancy_at_pressure(fn, 0.0, capacity) for fn in miss_fns
    ]
    if sum(unconstrained) <= capacity:
        return unconstrained

    def total_occupancy(pressure: float) -> float:
        return sum(
            _occupancy_at_pressure(fn, pressure, capacity) for fn in miss_fns
        )

    lo, hi = 1e-12, 1.0
    while total_occupancy(hi) > capacity:
        hi *= 4.0
        if hi > 1e12:
            break
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if total_occupancy(mid) > capacity:
            lo = mid
        else:
            hi = mid
    pressure = 0.5 * (lo + hi)
    occ = [_occupancy_at_pressure(fn, pressure, capacity) for fn in miss_fns]
    total = sum(occ)
    if total > capacity and total > 0:
        scale = capacity / total
        occ = [o * scale for o in occ]
    return occ


# ---------------------------------------------------------------------------
# Vectorized kernel
# ---------------------------------------------------------------------------


def _occupancies_at_pressure_batch(
    batch: MissCurveBatch,
    pressure: float | np.ndarray,
    capacity: float | np.ndarray,
    miss_at_zero: np.ndarray,
    miss_at_cap: np.ndarray,
) -> np.ndarray:
    """All streams' ``m(o) = P * o`` solutions at once -> (K,).

    Lockstep bisection: every iteration evaluates all K curves in one
    batched call; per-lane arithmetic is element-for-element the scalar
    solver's, so each lane lands on the scalar result bitwise.  *pressure*
    is a scalar shared by every stream (one cache) or a ``(K,)`` vector of
    per-stream pressures (the grouped many-caches solve); *capacity* is
    likewise a scalar or a ``(K,)`` vector of per-stream cache capacities
    (lanes of different caches bisect over different brackets — each
    lane's arithmetic only ever sees its own capacity, so mixed-capacity
    solves stay bitwise equal to per-cache scalar solves).
    """
    k = len(batch)
    at_cap = (pressure <= 0.0) | (miss_at_cap >= pressure * capacity)
    inactive = miss_at_zero <= 0.0
    if bool(np.all(at_cap | inactive)):
        # Every lane resolves by an early-exit rule; the bisection would
        # only compute values the masks below discard.
        return np.where(inactive, 0.0, np.broadcast_to(capacity, (k,)).astype(np.float64))
    mid = batch.balance_bisect(pressure, capacity, _BISECT_ITERS)
    occ = np.where(at_cap, capacity, mid)
    return np.where(inactive, 0.0, occ)


def shared_cache_occupancies_batch(
    batch: MissCurveBatch, capacity: float
) -> list[float]:
    """Vectorized :func:`shared_cache_occupancies` over a curve batch.

    Returns bitwise-identical occupancies: probe totals are summed in
    stream order (so every outer-bisection branch matches), and the final
    rescale multiplies element-wise like the scalar path.
    """
    k = len(batch)
    if capacity <= 0:
        return [0.0] * k
    miss_at_zero = batch(0.0)
    miss_at_cap = batch(capacity)

    def solve(pressure: float) -> np.ndarray:
        return _occupancies_at_pressure_batch(
            batch, pressure, capacity, miss_at_zero, miss_at_cap
        )

    unconstrained = solve(0.0)
    if sum(unconstrained.tolist()) <= capacity:
        return unconstrained.tolist()

    def total_occupancy(pressure: float) -> float:
        return sum(solve(pressure).tolist())

    lo, hi = 1e-12, 1.0
    while total_occupancy(hi) > capacity:
        hi *= 4.0
        if hi > 1e12:
            break
    for _ in range(_BISECT_ITERS):
        mid = 0.5 * (lo + hi)
        if total_occupancy(mid) > capacity:
            lo = mid
        else:
            hi = mid
    pressure = 0.5 * (lo + hi)
    occ = solve(pressure)
    total = sum(occ.tolist())
    if total > capacity and total > 0:
        occ = occ * (capacity / total)
    return occ.tolist()


def shared_cache_occupancies_grouped(
    batch: MissCurveBatch,
    groups: Sequence[Sequence[int]],
    capacity: float | Sequence[float],
) -> np.ndarray:
    """Many independent sharing fixed points solved in lockstep -> (K,).

    *groups* partitions the batch's curve indices into independent caches
    (R-NUCA: one group of participants per bank).  *capacity* is one float
    shared by every group, or a per-group sequence — mixed capacities let
    the mega-batch path merge the sharing solves of *different* caches
    (S-NUCA's chip-wide LLC next to R-NUCA's per-bank pools, across many
    mixes) into one lockstep call.  Every group's nested bisection
    advances simultaneously — one batched curve evaluation covers every
    stream of every cache — and each group's probe sequence (expansion,
    branch decisions, final rescale) replicates running
    :func:`shared_cache_occupancies` on that group alone with that group's
    capacity, so the per-stream results are bitwise-identical to the
    scalar per-cache loop.
    """
    k = len(batch)
    index_lists = [np.asarray(list(g), dtype=np.int64) for g in groups]
    if np.isscalar(capacity) or isinstance(capacity, (int, float)):
        caps = [float(capacity)] * len(index_lists)
    else:
        caps = [float(c) for c in capacity]
        if len(caps) != len(index_lists):
            raise ValueError(
                f"need one capacity per group: {len(caps)} capacities "
                f"for {len(index_lists)} groups"
            )
    if all(c <= 0 for c in caps):
        return np.zeros(k)
    # Lanes of zero-capacity groups (and lanes outside every group) solve
    # against capacity 0 -> occupancy 0, matching the scalar early return.
    lane_cap = np.zeros(k)
    for idx, cap in zip(index_lists, caps):
        lane_cap[idx] = max(cap, 0.0)
    miss_at_zero = batch(0.0)
    miss_at_cap = batch(lane_cap)

    def solve(pressures: np.ndarray) -> np.ndarray:
        """Per-stream occupancies at per-stream pressures -> (K,)."""
        return _occupancies_at_pressure_batch(
            batch, pressures, lane_cap, miss_at_zero, miss_at_cap
        )

    def group_totals(occ: np.ndarray) -> list[float]:
        # Stream-order sequential sums, like the scalar per-cache sum().
        return [sum(occ[idx].tolist()) for idx in index_lists]

    unconstrained = solve(np.zeros(k))
    result = unconstrained.copy()
    pressured = [
        g for g, total in enumerate(group_totals(unconstrained))
        if caps[g] > 0 and total > caps[g]
    ]
    if not pressured:
        return result

    # Every probe from here on only reads pressured groups' lanes, so the
    # bisection iterates a row-subset batch of just those lanes.  Each
    # lane's arithmetic (and each group's stream-order total) is
    # element-for-element what the full-width solve computes — unpressured
    # lanes keep their unconstrained occupancies in *result* either way.
    lanes = np.concatenate([index_lists[g] for g in pressured])
    sub_batch = batch.take(lanes)
    sub_cap = lane_cap[lanes]
    sub_zero = miss_at_zero[lanes]
    sub_cap_miss = miss_at_cap[lanes]
    local: dict[int, np.ndarray] = {}
    pos = 0
    for g in pressured:
        n = len(index_lists[g])
        local[g] = np.arange(pos, pos + n)
        pos += n

    lane_pressure = np.zeros(len(lanes))

    def solve_sub(pressures: np.ndarray) -> np.ndarray:
        return _occupancies_at_pressure_batch(
            sub_batch, pressures, sub_cap, sub_zero, sub_cap_miss
        )

    lo_g = {g: 1e-12 for g in pressured}
    hi_g = {g: 1.0 for g in pressured}

    def probe(values: dict[int, float]) -> dict[int, float]:
        """Evaluate pressured groups' totals at per-group pressures."""
        for g, p in values.items():
            lane_pressure[local[g]] = p
        occ = solve_sub(lane_pressure)
        return {g: sum(occ[local[g]].tolist()) for g in values}

    # Bracket expansion, in lockstep (settled groups drop out but the
    # per-group hi sequence matches the scalar while-loop's).
    expanding = list(pressured)
    while expanding:
        totals = probe({g: hi_g[g] for g in expanding})
        still = []
        for g in expanding:
            if totals[g] > caps[g]:
                hi_g[g] *= 4.0
                if hi_g[g] <= 1e12:
                    still.append(g)
        expanding = still

    for _ in range(_BISECT_ITERS):
        mids = {g: 0.5 * (lo_g[g] + hi_g[g]) for g in pressured}
        totals = probe(mids)
        for g in pressured:
            if totals[g] > caps[g]:
                lo_g[g] = mids[g]
            else:
                hi_g[g] = mids[g]

    for g in pressured:
        lane_pressure[local[g]] = 0.5 * (lo_g[g] + hi_g[g])
    occ = solve_sub(lane_pressure)
    for g in pressured:
        rows = occ[local[g]]
        total = sum(rows.tolist())
        if total > caps[g] and total > 0:
            result[index_lists[g]] = rows * (caps[g] / total)
        else:
            result[index_lists[g]] = rows
    return result


# ---------------------------------------------------------------------------
# Cross-solve plan merging (the mega-batch kernel entry point)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SharingPlan:
    """One scheme invocation's sharing fixed points, as data.

    A plan is everything :func:`shared_cache_occupancies_grouped` needs —
    the participant curves (with R-NUCA's slice transforms), how they
    partition into independent caches, and each cache's capacity — split
    from the scheme object so that *many* invocations (every scheme of
    every mix in a mega-batch) can be concatenated and solved as one
    lockstep call.  Indices in *groups* are local to this plan's curves.
    """

    curves: tuple
    groups: tuple[tuple[int, ...], ...]
    capacities: tuple[float, ...]
    arg_scale: tuple[float, ...] | None = None
    value_divisor: tuple[float, ...] | None = None

    def __post_init__(self):
        if len(self.groups) != len(self.capacities):
            raise ValueError("need one capacity per group")


def solve_sharing_plans(plans: Sequence[SharingPlan]) -> list[np.ndarray]:
    """Solve every plan's sharing fixed points in one lockstep call.

    Concatenates all plans' curves into a single :class:`MissCurveBatch`
    (identity slice transforms where a plan has none), offsets each plan's
    groups into the merged index space, and runs one
    :func:`shared_cache_occupancies_grouped` solve over the union.  Each
    group's bisection decisions depend only on its own lanes, padding a
    curve batch wider never changes row results, and identity transforms
    (``x * 1.0``, ``x / 1.0``) are exact — so every returned slice is
    bitwise what solving that plan alone returns.
    """
    curves: list = []
    arg_scale: list[float] = []
    divisors: list[float] = []
    groups: list[tuple[int, ...]] = []
    caps: list[float] = []
    spans: list[tuple[int, int]] = []
    for plan in plans:
        offset = len(curves)
        n = len(plan.curves)
        curves.extend(plan.curves)
        arg_scale.extend(plan.arg_scale if plan.arg_scale is not None else [1.0] * n)
        divisors.extend(
            plan.value_divisor if plan.value_divisor is not None else [1.0] * n
        )
        groups.extend(
            tuple(offset + i for i in group) for group in plan.groups
        )
        caps.extend(plan.capacities)
        spans.append((offset, offset + n))
    if not curves:
        return [np.zeros(0) for _ in plans]
    batch = MissCurveBatch(curves, arg_scale=arg_scale, value_divisor=divisors)
    merged = shared_cache_occupancies_grouped(batch, groups, caps)
    return [merged[lo:hi] for lo, hi in spans]
