"""Emergent capacity sharing in unpartitioned caches.

S-NUCA and R-NUCA do not partition capacity; occupancy emerges from the
replacement policy.  We model LRU sharing with the standard insertion-
balance fixed point: in steady state each stream's insertion rate (its miss
rate at its occupancy) equals its eviction rate, and eviction pressure hits
streams in proportion to their occupancy.  Formally, find pressure ``P``
and occupancies ``o_d`` with::

    m_d(o_d) = P * o_d          (per-stream balance)
    sum_d o_d = C               (cache fills up)

unless all footprints fit (then ``P = 0`` and everyone keeps their working
set).  Both equations are monotone, so nested bisection converges fast.
This is how streaming apps (milc) crowd fitting apps (omnet) out of an
unmanaged LLC — the Sec II-B observation that motivates partitioning.

Two implementations solve the same system:

* :func:`shared_cache_occupancies` — the scalar reference: one nested
  bisection per stream, one ``np.interp`` per probe;
* :func:`shared_cache_occupancies_batch` — the vectorized kernel: all
  streams bisect in lockstep, each probe evaluating every miss curve in
  one :class:`~repro.cache.miss_curve.MissCurveBatch` call.  Per-stream
  arithmetic and summation order replicate the scalar path exactly, so
  the two return bitwise-identical occupancies.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.cache.miss_curve import MissCurveBatch

MissFn = Callable[[float], float]

#: Bisection iterations (both solvers; enough for double precision).
_BISECT_ITERS = 60


def _occupancy_at_pressure(
    miss_fn: MissFn, pressure: float, capacity: float
) -> float:
    """Solve ``m(o) = P * o`` for one stream (clamped to [0, capacity])."""
    if miss_fn(0.0) <= 0.0:
        return 0.0
    if pressure <= 0.0 or miss_fn(capacity) >= pressure * capacity:
        return capacity
    lo, hi = 0.0, capacity
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if miss_fn(mid) >= pressure * mid:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def shared_cache_occupancies(
    miss_fns: Sequence[MissFn], capacity: float
) -> list[float]:
    """Steady-state occupancy of each stream in a shared LRU cache.

    *miss_fns* give each stream's miss rate as a function of its own
    occupancy (units are arbitrary but must be common across streams).
    """
    if capacity <= 0:
        return [0.0] * len(miss_fns)
    # If everything fits at zero pressure, footprints are the answer.
    unconstrained = [
        _occupancy_at_pressure(fn, 0.0, capacity) for fn in miss_fns
    ]
    if sum(unconstrained) <= capacity:
        return unconstrained

    def total_occupancy(pressure: float) -> float:
        return sum(
            _occupancy_at_pressure(fn, pressure, capacity) for fn in miss_fns
        )

    lo, hi = 1e-12, 1.0
    while total_occupancy(hi) > capacity:
        hi *= 4.0
        if hi > 1e12:
            break
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if total_occupancy(mid) > capacity:
            lo = mid
        else:
            hi = mid
    pressure = 0.5 * (lo + hi)
    occ = [_occupancy_at_pressure(fn, pressure, capacity) for fn in miss_fns]
    total = sum(occ)
    if total > capacity and total > 0:
        scale = capacity / total
        occ = [o * scale for o in occ]
    return occ


# ---------------------------------------------------------------------------
# Vectorized kernel
# ---------------------------------------------------------------------------


def _occupancies_at_pressure_batch(
    batch: MissCurveBatch,
    pressure: float | np.ndarray,
    capacity: float,
    miss_at_zero: np.ndarray,
    miss_at_cap: np.ndarray,
) -> np.ndarray:
    """All streams' ``m(o) = P * o`` solutions at once -> (K,).

    Lockstep bisection: every iteration evaluates all K curves in one
    batched call; per-lane arithmetic is element-for-element the scalar
    solver's, so each lane lands on the scalar result bitwise.  *pressure*
    is a scalar shared by every stream (one cache) or a ``(K,)`` vector of
    per-stream pressures (the grouped many-caches solve).
    """
    k = len(batch)
    at_cap = (pressure <= 0.0) | (miss_at_cap >= pressure * capacity)
    inactive = miss_at_zero <= 0.0
    if bool(np.all(at_cap | inactive)):
        # Every lane resolves by an early-exit rule; the bisection would
        # only compute values the masks below discard.
        return np.where(inactive, 0.0, np.full(k, capacity))
    lo = np.zeros(k)
    hi = np.full(k, capacity)
    for _ in range(_BISECT_ITERS):
        mid = 0.5 * (lo + hi)
        cond = batch(mid) >= pressure * mid
        lo = np.where(cond, mid, lo)
        hi = np.where(cond, hi, mid)
    occ = np.where(at_cap, capacity, 0.5 * (lo + hi))
    return np.where(inactive, 0.0, occ)


def shared_cache_occupancies_batch(
    batch: MissCurveBatch, capacity: float
) -> list[float]:
    """Vectorized :func:`shared_cache_occupancies` over a curve batch.

    Returns bitwise-identical occupancies: probe totals are summed in
    stream order (so every outer-bisection branch matches), and the final
    rescale multiplies element-wise like the scalar path.
    """
    k = len(batch)
    if capacity <= 0:
        return [0.0] * k
    miss_at_zero = batch(0.0)
    miss_at_cap = batch(capacity)

    def solve(pressure: float) -> np.ndarray:
        return _occupancies_at_pressure_batch(
            batch, pressure, capacity, miss_at_zero, miss_at_cap
        )

    unconstrained = solve(0.0)
    if sum(unconstrained.tolist()) <= capacity:
        return unconstrained.tolist()

    def total_occupancy(pressure: float) -> float:
        return sum(solve(pressure).tolist())

    lo, hi = 1e-12, 1.0
    while total_occupancy(hi) > capacity:
        hi *= 4.0
        if hi > 1e12:
            break
    for _ in range(_BISECT_ITERS):
        mid = 0.5 * (lo + hi)
        if total_occupancy(mid) > capacity:
            lo = mid
        else:
            hi = mid
    pressure = 0.5 * (lo + hi)
    occ = solve(pressure)
    total = sum(occ.tolist())
    if total > capacity and total > 0:
        occ = occ * (capacity / total)
    return occ.tolist()


def shared_cache_occupancies_grouped(
    batch: MissCurveBatch,
    groups: Sequence[Sequence[int]],
    capacity: float,
) -> np.ndarray:
    """Many independent sharing fixed points solved in lockstep -> (K,).

    *groups* partitions the batch's curve indices into independent caches
    of the same *capacity* (R-NUCA: one group of participants per bank).
    Every group's nested bisection advances simultaneously — one batched
    curve evaluation covers every stream of every cache — and each group's
    probe sequence (expansion, branch decisions, final rescale) replicates
    running :func:`shared_cache_occupancies` on that group alone, so the
    per-stream results are bitwise-identical to the scalar per-cache loop.
    """
    k = len(batch)
    if capacity <= 0:
        return np.zeros(k)
    miss_at_zero = batch(0.0)
    miss_at_cap = batch(capacity)
    index_lists = [np.asarray(list(g), dtype=np.int64) for g in groups]

    def solve(pressures: np.ndarray) -> np.ndarray:
        """Per-stream occupancies at per-stream pressures -> (K,)."""
        return _occupancies_at_pressure_batch(
            batch, pressures, capacity, miss_at_zero, miss_at_cap
        )

    def group_totals(occ: np.ndarray) -> list[float]:
        # Stream-order sequential sums, like the scalar per-cache sum().
        return [sum(occ[idx].tolist()) for idx in index_lists]

    stream_pressure = np.zeros(k)
    unconstrained = solve(stream_pressure)
    result = unconstrained.copy()
    pressured = [
        g for g, total in enumerate(group_totals(unconstrained))
        if total > capacity
    ]
    if not pressured:
        return result

    lo_g = {g: 1e-12 for g in pressured}
    hi_g = {g: 1.0 for g in pressured}

    def probe(values: dict[int, float]) -> dict[int, float]:
        """Evaluate pressured groups' totals at per-group pressures."""
        for g, p in values.items():
            stream_pressure[index_lists[g]] = p
        occ = solve(stream_pressure)
        totals = group_totals(occ)
        return {g: totals[g] for g in values}

    # Bracket expansion, in lockstep (settled groups drop out but the
    # per-group hi sequence matches the scalar while-loop's).
    expanding = list(pressured)
    while expanding:
        totals = probe({g: hi_g[g] for g in expanding})
        still = []
        for g in expanding:
            if totals[g] > capacity:
                hi_g[g] *= 4.0
                if hi_g[g] <= 1e12:
                    still.append(g)
        expanding = still

    for _ in range(_BISECT_ITERS):
        mids = {g: 0.5 * (lo_g[g] + hi_g[g]) for g in pressured}
        totals = probe(mids)
        for g in pressured:
            if totals[g] > capacity:
                lo_g[g] = mids[g]
            else:
                hi_g[g] = mids[g]

    final = {g: 0.5 * (lo_g[g] + hi_g[g]) for g in pressured}
    for g, p in final.items():
        stream_pressure[index_lists[g]] = p
    occ = solve(stream_pressure)
    totals = group_totals(occ)
    for g in pressured:
        idx = index_lists[g]
        total = totals[g]
        if total > capacity and total > 0:
            result[idx] = occ[idx] * (capacity / total)
        else:
            result[idx] = occ[idx]
    return result
