"""Emergent capacity sharing in unpartitioned caches.

S-NUCA and R-NUCA do not partition capacity; occupancy emerges from the
replacement policy.  We model LRU sharing with the standard insertion-
balance fixed point: in steady state each stream's insertion rate (its miss
rate at its occupancy) equals its eviction rate, and eviction pressure hits
streams in proportion to their occupancy.  Formally, find pressure ``P``
and occupancies ``o_d`` with::

    m_d(o_d) = P * o_d          (per-stream balance)
    sum_d o_d = C               (cache fills up)

unless all footprints fit (then ``P = 0`` and everyone keeps their working
set).  Both equations are monotone, so nested bisection converges fast.
This is how streaming apps (milc) crowd fitting apps (omnet) out of an
unmanaged LLC — the Sec II-B observation that motivates partitioning.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

MissFn = Callable[[float], float]


def _occupancy_at_pressure(
    miss_fn: MissFn, pressure: float, capacity: float
) -> float:
    """Solve ``m(o) = P * o`` for one stream (clamped to [0, capacity])."""
    if miss_fn(0.0) <= 0.0:
        return 0.0
    if pressure <= 0.0 or miss_fn(capacity) >= pressure * capacity:
        return capacity
    lo, hi = 0.0, capacity
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if miss_fn(mid) >= pressure * mid:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def shared_cache_occupancies(
    miss_fns: Sequence[MissFn], capacity: float
) -> list[float]:
    """Steady-state occupancy of each stream in a shared LRU cache.

    *miss_fns* give each stream's miss rate as a function of its own
    occupancy (units are arbitrary but must be common across streams).
    """
    if capacity <= 0:
        return [0.0] * len(miss_fns)
    # If everything fits at zero pressure, footprints are the answer.
    unconstrained = [
        _occupancy_at_pressure(fn, 0.0, capacity) for fn in miss_fns
    ]
    if sum(unconstrained) <= capacity:
        return unconstrained

    def total_occupancy(pressure: float) -> float:
        return sum(
            _occupancy_at_pressure(fn, pressure, capacity) for fn in miss_fns
        )

    lo, hi = 1e-12, 1.0
    while total_occupancy(hi) > capacity:
        hi *= 4.0
        if hi > 1e12:
            break
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if total_occupancy(mid) > capacity:
            lo = mid
        else:
            hi = mid
    pressure = 0.5 * (lo + hi)
    occ = [_occupancy_at_pressure(fn, pressure, capacity) for fn in miss_fns]
    total = sum(occ)
    if total > capacity and total > 0:
        scale = capacity / total
        occ = [o * scale for o in occ]
    return occ
