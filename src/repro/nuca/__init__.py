"""NUCA organizations: the paper's baselines (S-NUCA, R-NUCA, Jigsaw+C/+R)
and CDCS, all expressed through one scheme interface."""

from repro.nuca.base import (
    GLOBAL_VC_ID,
    NucaScheme,
    SchemeResult,
    build_problem,
    default_mem_latency,
    process_vc_id,
)
from repro.nuca.cdcs import Cdcs, factor_variant
from repro.nuca.jigsaw import Jigsaw
from repro.nuca.partitioned import PartitionedShared
from repro.nuca.rnuca import RNuca, rotational_cluster
from repro.nuca.sharing import shared_cache_occupancies
from repro.nuca.snuca import SNuca

#: The comparison schemes of the paper's tables/figures, in presentation
#: order (S-NUCA is the baseline they are normalized against).  The single
#: source of truth for every table header and row ordering — the CLI,
#: the experiment specs, and the benchmark drivers all import this.
SCHEMES: tuple[str, ...] = ("R-NUCA", "Jigsaw+C", "Jigsaw+R", "CDCS")


def standard_schemes(seed: int = 0) -> list[NucaScheme]:
    """The five schemes of Fig 11/13/15: S-NUCA, R-NUCA, Jigsaw+C,
    Jigsaw+R, CDCS (in the paper's plotting order)."""
    return [
        SNuca(seed),
        RNuca(seed),
        Jigsaw("clustered", seed),
        Jigsaw("random", seed),
        Cdcs(seed=seed),
    ]


__all__ = [
    "Cdcs",
    "GLOBAL_VC_ID",
    "Jigsaw",
    "NucaScheme",
    "PartitionedShared",
    "RNuca",
    "SCHEMES",
    "SNuca",
    "SchemeResult",
    "build_problem",
    "default_mem_latency",
    "factor_variant",
    "process_vc_id",
    "rotational_cluster",
    "shared_cache_occupancies",
    "standard_schemes",
]
