"""CDCS: the paper's scheme — the full 4-step co-scheduling pipeline.

Also exposes the partial variants used by the factor analysis of Fig 12
(+L, +T, +D on top of Jigsaw+R), and scheme-level selection of the solve
strategy (``full``/``incremental``/``partitioned``/``hierarchical`` —
see :mod:`repro.sched.engine`): the scheme keeps one
:class:`~repro.sched.engine.ReconfigEngine` alive across ``run()`` calls,
so repeated solves of a drifting problem warm-start exactly like the
periodic runtime of Sec IV-G.
"""

from __future__ import annotations

from repro.nuca.base import NucaScheme, SchemeResult
from repro.sched.engine import ReconfigEngine, SolveStrategy
from repro.sched.problem import PlacementProblem
from repro.sched.reconfigure import ReconfigPolicy
from repro.sched.thread_placement import random_thread_placement


class Cdcs(NucaScheme):
    name = "CDCS"

    def __init__(
        self,
        policy: ReconfigPolicy | None = None,
        seed: int = 0,
        strategy: str | SolveStrategy = "full",
        **strategy_kwargs,
    ):
        self.policy = policy or ReconfigPolicy.cdcs()
        self.seed = seed
        self.engine = ReconfigEngine(
            strategy, policy=self.policy, **strategy_kwargs
        )
        if self.policy != ReconfigPolicy.cdcs():
            self.name = f"Jigsaw+R{self.policy.label()}"

    def run(self, problem: PlacementProblem) -> SchemeResult:
        if not self.policy.place_threads:
            self.engine.external_thread_cores = random_thread_placement(
                problem, self.seed
            )
        result = self.engine.solve(problem)
        return SchemeResult(self.name, result.solution, result.step_cycles())


def factor_variant(latency: bool, threads: bool, data: bool, seed: int = 0) -> Cdcs:
    """A Fig 12 variant: Jigsaw+R plus any subset of {L, T, D}."""
    return Cdcs(
        ReconfigPolicy(
            latency_aware_allocation=latency,
            place_threads=threads,
            trade_refinement=data,
        ),
        seed=seed,
    )
