"""Jigsaw [4]: partitioned NUCA with miss-driven sizing and greedy
placement, but **no thread placement** — threads come from an external
scheduler (clustered or random), which is exactly the sensitivity the
paper exploits (Fig 1b/1c, Fig 11a).
"""

from __future__ import annotations

from repro.nuca.base import NucaScheme, SchemeResult
from repro.sched.problem import PlacementProblem
from repro.sched.reconfigure import ReconfigPolicy, reconfigure
from repro.sched.thread_placement import (
    clustered_thread_placement,
    random_thread_placement,
)


class Jigsaw(NucaScheme):
    """Jigsaw with a fixed external thread scheduler.

    *scheduler* is ``"clustered"`` (Jigsaw+C: processes grouped in adjacent
    tiles) or ``"random"`` (Jigsaw+R: threads pinned randomly).
    """

    def __init__(self, scheduler: str = "random", seed: int = 0):
        if scheduler not in ("clustered", "random"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        self.scheduler = scheduler
        self.seed = seed
        self.name = "Jigsaw+C" if scheduler == "clustered" else "Jigsaw+R"

    def thread_cores(self, problem: PlacementProblem) -> dict[int, int]:
        if self.scheduler == "clustered":
            return clustered_thread_placement(problem)
        return random_thread_placement(problem, self.seed)

    def run(self, problem: PlacementProblem) -> SchemeResult:
        result = reconfigure(
            problem,
            ReconfigPolicy.jigsaw(),
            external_thread_cores=self.thread_cores(problem),
        )
        return SchemeResult(self.name, result.solution, result.step_cycles())
