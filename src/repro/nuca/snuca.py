"""S-NUCA: static line-to-bank interleaving (the paper's baseline).

Lines hash across all banks, so (a) every VC's data is spread uniformly over
the chip — every access travels the mean core-to-bank distance — and (b)
capacity is one big unmanaged pool, divided by the LRU-sharing fixed point.
Thread placement is irrelevant by construction (Sec VI-A measures <= 1%).
"""

from __future__ import annotations

from repro.cache.miss_curve import MissCurveBatch
from repro.kernels import use_vectorized
from repro.nuca.base import NucaScheme, SchemeResult
from repro.nuca.sharing import (
    shared_cache_occupancies,
    shared_cache_occupancies_batch,
)
from repro.sched.problem import PlacementProblem, PlacementSolution
from repro.sched.thread_placement import random_thread_placement


class SNuca(NucaScheme):
    name = "S-NUCA"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def run(self, problem: PlacementProblem) -> SchemeResult:
        tiles = problem.topology.tiles
        active = [
            vc for vc in problem.vcs
            if sum(problem.accessors_of(vc.vc_id).values()) > 0
        ]
        miss_fns = [vc.miss_curve for vc in active]
        if use_vectorized() and miss_fns:
            occupancies = shared_cache_occupancies_batch(
                MissCurveBatch(miss_fns), float(problem.total_bytes)
            )
        else:
            occupancies = shared_cache_occupancies(
                [fn.__call__ for fn in miss_fns], float(problem.total_bytes)
            )
        vc_sizes: dict[int, float] = {}
        vc_allocation: dict[int, dict[int, float]] = {}
        for vc, occ in zip(active, occupancies):
            vc_sizes[vc.vc_id] = occ
            # Interleaving spreads both data and accesses uniformly.  The
            # allocation encodes the *access* spread for Eq 2; give spread
            # entries even when occupancy ~ 0 so latency stays mean-distance.
            share = max(occ, 1.0) / tiles
            vc_allocation[vc.vc_id] = {b: share for b in range(tiles)}
        thread_cores = random_thread_placement(problem, self.seed)
        solution = PlacementSolution(vc_sizes, vc_allocation, thread_cores)
        return SchemeResult(self.name, solution)
