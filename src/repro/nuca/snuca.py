"""S-NUCA: static line-to-bank interleaving (the paper's baseline).

Lines hash across all banks, so (a) every VC's data is spread uniformly over
the chip — every access travels the mean core-to-bank distance — and (b)
capacity is one big unmanaged pool, divided by the LRU-sharing fixed point.
Thread placement is irrelevant by construction (Sec VI-A measures <= 1%).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.kernels import use_vectorized
from repro.nuca.base import NucaScheme, SchemeResult
from repro.nuca.sharing import (
    SharingPlan,
    shared_cache_occupancies,
    solve_sharing_plans,
)
from repro.sched.problem import PlacementProblem, PlacementSolution
from repro.sched.thread_placement import random_thread_placement


class SNuca(NucaScheme):
    name = "S-NUCA"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def sharing_stage(
        self, problem: PlacementProblem
    ) -> tuple[SharingPlan | None, Any]:
        """Stage this invocation's LRU-sharing solve as a plan.

        The whole LLC is one shared pool: one group holding every active
        VC's curve at the chip's total capacity.  Splitting the plan from
        :meth:`finish_sharing` lets the mega-batch runner merge many
        mixes' S-NUCA solves into one lockstep bisection.
        """
        active = [
            vc for vc in problem.vcs
            if sum(problem.accessors_of(vc.vc_id).values()) > 0
        ]
        plan = None
        if active:
            plan = SharingPlan(
                curves=tuple(vc.miss_curve for vc in active),
                groups=(tuple(range(len(active))),),
                capacities=(float(problem.total_bytes),),
            )
        return plan, active

    def finish_sharing(
        self,
        problem: PlacementProblem,
        context: Any,
        occupancies: np.ndarray,
    ) -> SchemeResult:
        """Turn solved occupancies into the S-NUCA placement solution."""
        tiles = problem.topology.tiles
        active = context
        vc_sizes: dict[int, float] = {}
        vc_allocation: dict[int, dict[int, float]] = {}
        for vc, occ in zip(active, occupancies):
            vc_sizes[vc.vc_id] = occ
            # Interleaving spreads both data and accesses uniformly.  The
            # allocation encodes the *access* spread for Eq 2; give spread
            # entries even when occupancy ~ 0 so latency stays mean-distance.
            share = max(occ, 1.0) / tiles
            vc_allocation[vc.vc_id] = {b: share for b in range(tiles)}
        thread_cores = random_thread_placement(problem, self.seed)
        solution = PlacementSolution(vc_sizes, vc_allocation, thread_cores)
        return SchemeResult(self.name, solution)

    def run(self, problem: PlacementProblem) -> SchemeResult:
        plan, context = self.sharing_stage(problem)
        if use_vectorized() and plan is not None:
            occupancies = solve_sharing_plans([plan])[0]
        else:
            miss_fns = [vc.miss_curve for vc in context]
            occupancies = np.asarray(
                shared_cache_occupancies(
                    [fn.__call__ for fn in miss_fns],
                    float(problem.total_bytes),
                )
            )
        return self.finish_sharing(problem, context, occupancies)
