"""Common scheme interface and the mix -> placement-problem builder.

Every NUCA organization is expressed as: given a mix on a chip, produce a
:class:`PlacementSolution` (VC sizes, per-bank allocations, thread cores).
The analytic engine then evaluates any scheme through the same Eq 1/Eq 2
machinery — including S-NUCA and R-NUCA, whose "allocations" encode their
fixed hashing/classification policies rather than managed decisions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.geometry.mesh import Mesh, Topology
from repro.sched.problem import PlacementProblem, PlacementSolution, ThreadSpec
from repro.vcache.virtual_cache import VCKind, VirtualCache
from repro.workloads.mixes import Mix

#: VC id layout: thread VCs use the thread id; process VCs and the global
#: VC live above this base so ids never collide.
PROCESS_VC_BASE = 1 << 20
GLOBAL_VC_ID = (1 << 21) + 1


def process_vc_id(process_id: int) -> int:
    return PROCESS_VC_BASE + process_id


def default_mem_latency(config: SystemConfig, topology: Mesh) -> float:
    """Eq 1's MemLatency constant: zero-load DRAM plus the round trip from
    an average bank to an average controller."""
    from repro.mem.controller import MemoryControllers

    mcs = MemoryControllers(topology, config.memory)
    per_hop = 2.0 * config.noc.hop_latency
    return config.memory.zero_load_latency + per_hop * mcs.chip_mean_distance()


def build_problem(
    mix: Mix,
    config: SystemConfig,
    topology: Topology | None = None,
) -> PlacementProblem:
    """Construct the co-scheduling problem for *mix* on *config*'s chip.

    Creates the Sec III VC structure: one thread VC per thread, one process
    VC per multithreaded process (single-threaded processes have no shared
    accesses, so their process VC would be empty and is omitted), plus one
    global VC (zero-rate in these workloads, kept for interface fidelity).
    """
    topo = topology or Mesh(config.mesh_width, config.mesh_height)
    if mix.total_threads > topo.tiles:
        raise ValueError(
            f"mix needs {mix.total_threads} cores but chip has {topo.tiles}"
        )
    vcs: list[VirtualCache] = []
    threads: list[ThreadSpec] = []
    for proc in mix.processes:
        profile = proc.profile
        shared_vc: VirtualCache | None = None
        if profile.shared_fraction > 0 and profile.shared_curve is not None:
            shared_vc = VirtualCache(
                vc_id=process_vc_id(proc.process_id),
                kind=VCKind.PROCESS,
                process_id=proc.process_id,
                miss_curve=profile.shared_curve.scaled(profile.threads),
            )
            vcs.append(shared_vc)
        for thread_id in proc.thread_ids:
            thread_vc = VirtualCache(
                vc_id=thread_id,
                kind=VCKind.THREAD,
                process_id=proc.process_id,
                miss_curve=profile.private_curve,
                owner_thread=thread_id,
            )
            thread_vc.accesses[thread_id] = profile.private_apki
            vcs.append(thread_vc)
            accesses = {thread_id: profile.private_apki}
            if shared_vc is not None:
                shared_vc.accesses[thread_id] = profile.shared_apki
                accesses[shared_vc.vc_id] = profile.shared_apki
            threads.append(
                ThreadSpec(
                    thread_id=thread_id,
                    process_id=proc.process_id,
                    vc_accesses=accesses,
                    cluster_key=profile.name,
                )
            )
    from repro.cache.miss_curve import flat_curve

    vcs.append(
        VirtualCache(
            vc_id=GLOBAL_VC_ID,
            kind=VCKind.GLOBAL,
            process_id=-1,
            miss_curve=flat_curve(float(config.llc_bytes), 0.0),
        )
    )
    return PlacementProblem(
        config=config,
        topology=topo,
        vcs=vcs,
        threads=threads,
        mem_latency=default_mem_latency(config, topo),  # type: ignore[arg-type]
    )


@dataclass
class SchemeResult:
    """What a scheme hands the evaluation engine."""

    name: str
    solution: PlacementSolution
    #: Reconfiguration runtime accounting, if the scheme has a runtime.
    step_cycles: dict[str, float] | None = None


class NucaScheme(ABC):
    """A cache organization + (possibly trivial) thread scheduler."""

    name: str = "base"

    @abstractmethod
    def run(self, problem: PlacementProblem) -> SchemeResult:
        """Produce sizes, placements, and thread assignment for *problem*."""
