"""R-NUCA: classification-based placement (Hardavellas et al. [20]).

Policies modeled (Sec II-A/II-B):

* **private data** -> the accessing core's local bank (zero network hops);
  each bank is shared, unpartitioned, between its local thread's private
  data and the chip-spread shared data, so occupancy within the bank comes
  from the LRU-sharing fixed point.
* **shared data** -> spread across all banks (R-NUCA interleaves shared
  pages chip-wide), so shared accesses travel the mean core-to-bank
  distance.  A VC spread over N banks behaves as N independent caches each
  receiving 1/N of the accesses over 1/N of the data.
* **instructions** -> rotational interleaving in the paper; our profiles
  have negligible code footprints (as in the paper's mixes, Sec II-B), so
  code gets no capacity.  :func:`rotational_cluster` models the 4-bank
  rotational interleaving for completeness/tests.

R-NUCA is thread-placement-insensitive (its private data never leaves the
local tile), so threads are pinned randomly as in the paper's evaluation.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.kernels import use_vectorized
from repro.nuca.base import NucaScheme, SchemeResult
from repro.nuca.sharing import (
    SharingPlan,
    shared_cache_occupancies,
    solve_sharing_plans,
)
from repro.sched.problem import PlacementProblem, PlacementSolution
from repro.sched.thread_placement import random_thread_placement
from repro.vcache.virtual_cache import VCKind


def rotational_cluster(tile: int, mesh_width: int, degree: int = 4) -> list[int]:
    """The R-NUCA rotational-interleaving cluster of *tile*: the 2x2 window
    anchored at the tile's even corner (degree 4), as used for code pages."""
    x, y = tile % mesh_width, tile // mesh_width
    bx, by = (x // 2) * 2, (y // 2) * 2
    cluster = []
    for dy in (0, 1):
        for dx in (0, 1):
            cluster.append((by + dy) * mesh_width + (bx + dx))
    return cluster[:degree]


class RNuca(NucaScheme):
    name = "R-NUCA"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def sharing_stage(
        self, problem: PlacementProblem
    ) -> tuple[SharingPlan | None, Any]:
        """Stage the per-bank LRU sharing solves as one plan.

        Each bank shares capacity between its local thread's private data
        and every shared VC's 1/N slice — one independent fixed point per
        bank, expressed as one plan group per bank at the bank capacity.
        The mega-batch runner merges these groups with every other staged
        solve (other mixes, other schemes) into one lockstep bisection.
        """
        topo = problem.topology
        tiles = topo.tiles
        thread_cores = random_thread_placement(problem, self.seed)

        thread_vcs = {
            vc.owner_thread: vc
            for vc in problem.vcs
            if vc.kind is VCKind.THREAD and vc.owner_thread is not None
        }
        shared_vcs = [
            vc
            for vc in problem.vcs
            if vc.kind is not VCKind.THREAD
            and sum(problem.accessors_of(vc.vc_id).values()) > 0
        ]
        thread_on_bank = {core: t for t, core in thread_cores.items()}

        curves, arg_scale, divisors, groups = [], [], [], []
        all_labels: list[tuple[str, int]] = []
        for bank in range(tiles):
            start = len(curves)
            local_thread = thread_on_bank.get(bank)
            if local_thread is not None and local_thread in thread_vcs:
                curves.append(thread_vcs[local_thread].miss_curve)
                arg_scale.append(1.0)
                divisors.append(1.0)
                all_labels.append(("private", local_thread))
            for vc in shared_vcs:
                curves.append(vc.miss_curve)
                arg_scale.append(float(tiles))
                divisors.append(float(tiles))
                all_labels.append(("shared", vc.vc_id))
            groups.append(tuple(range(start, len(curves))))
        context = {
            "thread_cores": thread_cores,
            "thread_vcs": thread_vcs,
            "shared_vcs": shared_vcs,
            "labels": all_labels,
        }
        plan = None
        if curves:
            plan = SharingPlan(
                curves=tuple(curves),
                groups=tuple(groups),
                capacities=(float(problem.bank_bytes),) * len(groups),
                arg_scale=tuple(arg_scale),
                value_divisor=tuple(divisors),
            )
        return plan, context

    def finish_sharing(
        self,
        problem: PlacementProblem,
        context: Any,
        occupancies: np.ndarray,
    ) -> SchemeResult:
        """Fold solved per-bank occupancies into the R-NUCA solution."""
        tiles = problem.topology.tiles
        thread_cores = context["thread_cores"]
        thread_vcs = context["thread_vcs"]
        shared_vcs = context["shared_vcs"]
        core_of = thread_cores
        private_occ: dict[int, float] = {}
        shared_occ: dict[int, float] = {vc.vc_id: 0.0 for vc in shared_vcs}
        for (kind, ident), o in zip(context["labels"], occupancies):
            if kind == "private":
                private_occ[ident] = o
            else:
                shared_occ[ident] += o

        vc_sizes: dict[int, float] = {}
        vc_allocation: dict[int, dict[int, float]] = {}
        for thread_id, vc in thread_vcs.items():
            occ = private_occ.get(thread_id, 0.0)
            vc_sizes[vc.vc_id] = occ
            # All private accesses go to the local bank regardless of how
            # much capacity survives there (R-NUCA's fixed mapping).
            vc_allocation[vc.vc_id] = {core_of[thread_id]: max(occ, 1.0)}
        for vc in shared_vcs:
            occ = shared_occ[vc.vc_id]
            vc_sizes[vc.vc_id] = occ
            share = max(occ, 1.0) / tiles
            vc_allocation[vc.vc_id] = {b: share for b in range(tiles)}

        solution = PlacementSolution(vc_sizes, vc_allocation, thread_cores)
        return SchemeResult(self.name, solution)

    def run(self, problem: PlacementProblem) -> SchemeResult:
        # Per-bank LRU sharing between the local thread's private data and
        # every shared VC's 1/N slice.  Each bank is an independent sharing
        # fixed point; the vectorized path solves all of them in lockstep
        # through one grouped curve batch (bitwise-identical occupancies).
        if use_vectorized():
            plan, context = self.sharing_stage(problem)
            occupancies = (
                solve_sharing_plans([plan])[0] if plan is not None
                else np.zeros(0)
            )
            return self.finish_sharing(problem, context, occupancies)

        topo = problem.topology
        tiles = topo.tiles
        bank_bytes = float(problem.bank_bytes)
        thread_cores = random_thread_placement(problem, self.seed)
        thread_vcs = {
            vc.owner_thread: vc
            for vc in problem.vcs
            if vc.kind is VCKind.THREAD and vc.owner_thread is not None
        }
        shared_vcs = [
            vc
            for vc in problem.vcs
            if vc.kind is not VCKind.THREAD
            and sum(problem.accessors_of(vc.vc_id).values()) > 0
        ]
        thread_on_bank = {core: t for t, core in thread_cores.items()}
        all_labels: list[tuple[str, int]] = []
        occupancies = []
        for bank in range(tiles):
            participants = []
            local_thread = thread_on_bank.get(bank)
            if local_thread is not None and local_thread in thread_vcs:
                curve = thread_vcs[local_thread].miss_curve
                participants.append(curve.__call__)
                all_labels.append(("private", local_thread))
            for vc in shared_vcs:
                curve = vc.miss_curve

                def slice_fn(occ: float, curve=curve, n=tiles) -> float:
                    return float(curve(occ * n)) / n

                participants.append(slice_fn)
                all_labels.append(("shared", vc.vc_id))
            if participants:
                occupancies.extend(
                    shared_cache_occupancies(participants, bank_bytes)
                )
        context = {
            "thread_cores": thread_cores,
            "thread_vcs": thread_vcs,
            "shared_vcs": shared_vcs,
            "labels": all_labels,
        }
        return self.finish_sharing(problem, context, np.asarray(occupancies))
