"""Hash functions used by the VTB, virtual-cache descriptors, monitors —
and the experiment runner's result cache.

The paper uses an H3-class universal hash to (a) spread line addresses across
the buckets of a VC descriptor and (b) produce the 16-bit hashed tags stored
in GMONs (Sec IV-G).  We implement a small family of deterministic integer
mixers seeded by an index so that different hardware units (each VTB, each
monitor) can use independent hash functions while staying reproducible.

On top of that, :func:`content_digest` provides the stable content hash that
``repro.runner`` uses to key cached experiment results: it canonicalizes
arbitrary configuration objects (dataclasses, dicts, numpy arrays, ...) into
a deterministic byte string and digests it with SHA-256, so two jobs share a
cache entry exactly when their (config, workload, scheme, seed) agree.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any

_MASK64 = (1 << 64) - 1

#: Odd 64-bit multipliers for the finalizer family (splitmix64-style).
_MIXERS = (
    0xBF58476D1CE4E5B9,
    0x94D049BB133111EB,
    0xFF51AFD7ED558CCD,
    0xC4CEB9FE1A85EC53,
    0x9E3779B97F4A7C15,
    0xD6E8FEB86659FD93,
    0xA5A5A5A5A5A5A5A5 | 1,
    0x2545F4914F6CDD1D,
)


def mix64(value: int, seed: int = 0) -> int:
    """Return a well-mixed 64-bit hash of *value*.

    Deterministic, stateless, and avalanche-complete enough for address
    spreading; the *seed* selects a member of the hash family.
    """
    x = (value + 0x9E3779B97F4A7C15 * (seed + 1)) & _MASK64
    x ^= x >> 30
    x = (x * _MIXERS[seed % len(_MIXERS)]) & _MASK64
    x ^= x >> 27
    x = (x * _MIXERS[(seed + 1) % len(_MIXERS)]) & _MASK64
    x ^= x >> 31
    return x


def bucket_hash(address: int, buckets: int, seed: int = 0) -> int:
    """Map a line address to a descriptor bucket in ``[0, buckets)``.

    This is the hash ``H`` in Fig 3: it selects which entry of the VC
    descriptor array (and hence which bank/bank-partition) serves the line.
    """
    if buckets <= 0:
        raise ValueError(f"bucket count must be positive, got {buckets}")
    return mix64(address, seed) % buckets


def tag_hash16(address: int, seed: int = 0) -> int:
    """16-bit hashed tag stored in monitor arrays (GMONs store these instead
    of full tags; rare false positives are fine for monitoring)."""
    return mix64(address, seed) & 0xFFFF


def sample_fraction(address: int, fraction: float, seed: int = 0) -> bool:
    """Deterministically decide whether *address* falls in a sampled subset
    of approximately *fraction* of the address space.

    Used for monitor set-sampling (e.g. sampling every 64th access by hash
    rather than by position, so the choice is unbiased).
    """
    if fraction >= 1.0:
        return True
    if fraction <= 0.0:
        return False
    threshold = int(fraction * (1 << 32))
    return (mix64(address, seed) & 0xFFFFFFFF) < threshold


# ---------------------------------------------------------------------------
# Content hashing for the experiment runner's result cache.
# ---------------------------------------------------------------------------


def canonical_repr(obj: Any) -> str:
    """Return a deterministic string encoding of *obj* for hashing.

    Covers everything experiment job keys are built from: primitives,
    containers (dicts sorted by key), enums, dataclasses (tagged with their
    qualified class name so distinct config types never collide), numpy
    scalars and arrays, and callables (identified by module-qualified name).
    Objects outside that set must expose ``cache_key()`` returning any
    canonicalizable value; a plain ``repr`` fallback is deliberately not
    offered because default reprs embed memory addresses.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return f"{type(obj).__name__}:{obj!r}"
    if isinstance(obj, float):
        # repr() round-trips doubles exactly; hex removes any ambiguity.
        return f"float:{obj.hex() if obj == obj else 'nan'}"
    if isinstance(obj, bytes):
        return f"bytes:{obj.hex()}"
    if isinstance(obj, enum.Enum):
        return f"enum:{type(obj).__qualname__}.{obj.name}"
    if isinstance(obj, (list, tuple)):
        inner = ",".join(canonical_repr(v) for v in obj)
        return f"{type(obj).__name__}:[{inner}]"
    if isinstance(obj, (set, frozenset)):
        inner = ",".join(sorted(canonical_repr(v) for v in obj))
        return f"set:[{inner}]"
    if isinstance(obj, dict):
        items = sorted(
            (canonical_repr(k), canonical_repr(v)) for k, v in obj.items()
        )
        inner = ",".join(f"{k}={v}" for k, v in items)
        return f"dict:{{{inner}}}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)
        }
        return f"dc:{type(obj).__qualname__}:{canonical_repr(fields)}"
    cache_key = getattr(obj, "cache_key", None)
    if callable(cache_key):
        return f"ck:{type(obj).__qualname__}:{canonical_repr(cache_key())}"
    if callable(obj):  # functions / methods: identity is their import path
        module = getattr(obj, "__module__", "?")
        name = getattr(obj, "__qualname__", getattr(obj, "__name__", "?"))
        return f"fn:{module}.{name}"
    try:  # numpy scalars and arrays, without importing numpy eagerly
        import numpy as np

        if isinstance(obj, np.generic):
            return canonical_repr(obj.item())
        if isinstance(obj, np.ndarray):
            arr = np.ascontiguousarray(obj)
            return (
                f"ndarray:{arr.dtype.str}:{arr.shape}:"
                f"{hashlib.sha256(arr.tobytes()).hexdigest()}"
            )
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        pass
    raise TypeError(
        f"cannot canonicalize {type(obj).__qualname__} for content hashing; "
        f"add a cache_key() method or use hashable primitives"
    )


def content_digest(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of *parts*.

    This is the cache key of ``repro.runner.ResultStore``: stable across
    processes and interpreter runs (unlike built-in ``hash``), and sensitive
    to every field of every part.
    """
    blob = "\x1e".join(canonical_repr(p) for p in parts)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
