"""Hash functions used by the VTB, virtual-cache descriptors and monitors.

The paper uses an H3-class universal hash to (a) spread line addresses across
the buckets of a VC descriptor and (b) produce the 16-bit hashed tags stored
in GMONs (Sec IV-G).  We implement a small family of deterministic integer
mixers seeded by an index so that different hardware units (each VTB, each
monitor) can use independent hash functions while staying reproducible.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1

#: Odd 64-bit multipliers for the finalizer family (splitmix64-style).
_MIXERS = (
    0xBF58476D1CE4E5B9,
    0x94D049BB133111EB,
    0xFF51AFD7ED558CCD,
    0xC4CEB9FE1A85EC53,
    0x9E3779B97F4A7C15,
    0xD6E8FEB86659FD93,
    0xA5A5A5A5A5A5A5A5 | 1,
    0x2545F4914F6CDD1D,
)


def mix64(value: int, seed: int = 0) -> int:
    """Return a well-mixed 64-bit hash of *value*.

    Deterministic, stateless, and avalanche-complete enough for address
    spreading; the *seed* selects a member of the hash family.
    """
    x = (value + 0x9E3779B97F4A7C15 * (seed + 1)) & _MASK64
    x ^= x >> 30
    x = (x * _MIXERS[seed % len(_MIXERS)]) & _MASK64
    x ^= x >> 27
    x = (x * _MIXERS[(seed + 1) % len(_MIXERS)]) & _MASK64
    x ^= x >> 31
    return x


def bucket_hash(address: int, buckets: int, seed: int = 0) -> int:
    """Map a line address to a descriptor bucket in ``[0, buckets)``.

    This is the hash ``H`` in Fig 3: it selects which entry of the VC
    descriptor array (and hence which bank/bank-partition) serves the line.
    """
    if buckets <= 0:
        raise ValueError(f"bucket count must be positive, got {buckets}")
    return mix64(address, seed) % buckets


def tag_hash16(address: int, seed: int = 0) -> int:
    """16-bit hashed tag stored in monitor arrays (GMONs store these instead
    of full tags; rare false positives are fine for monitoring)."""
    return mix64(address, seed) & 0xFFFF


def sample_fraction(address: int, fraction: float, seed: int = 0) -> bool:
    """Deterministically decide whether *address* falls in a sampled subset
    of approximately *fraction* of the address space.

    Used for monitor set-sampling (e.g. sampling every 64th access by hash
    rather than by position, so the choice is unbiased).
    """
    if fraction >= 1.0:
        return True
    if fraction <= 0.0:
        return False
    threshold = int(fraction * (1 << 32))
    return (mix64(address, seed) & 0xFFFFFFFF) < threshold
