"""Shared utilities: unit constants, hash families, seeded RNG streams."""

from repro.util.hashing import bucket_hash, mix64, sample_fraction, tag_hash16
from repro.util.rng import child_rng, make_rng, spawn_seeds
from repro.util.units import (
    CACHE_LINE_BYTES,
    CORE_CLOCK_HZ,
    KB,
    MB,
    gbps_to_bytes_per_cycle,
    kb,
    lines,
    mb,
    ms_to_cycles,
)

__all__ = [
    "CACHE_LINE_BYTES",
    "CORE_CLOCK_HZ",
    "KB",
    "MB",
    "bucket_hash",
    "child_rng",
    "gbps_to_bytes_per_cycle",
    "kb",
    "lines",
    "make_rng",
    "mb",
    "mix64",
    "ms_to_cycles",
    "sample_fraction",
    "spawn_seeds",
    "tag_hash16",
]
