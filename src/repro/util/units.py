"""Size and timing unit constants used throughout the library.

The paper (Table 2) expresses capacities in KB/MB, latencies in core cycles
at 2 GHz, and bandwidth in GB/s.  All capacities inside the library are held
in **bytes**, all times in **cycles**, and all rates in **bytes per cycle**,
so these helpers exist to keep call sites readable.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB

CACHE_LINE_BYTES = 64

#: Core clock from Table 2; used to convert wall-clock periods into cycles.
CORE_CLOCK_HZ = 2_000_000_000


def kb(value: float) -> int:
    """Return *value* kilobytes expressed in bytes."""
    return int(value * KB)


def mb(value: float) -> int:
    """Return *value* megabytes expressed in bytes."""
    return int(value * MB)


def lines(capacity_bytes: float) -> int:
    """Number of 64-byte cache lines in *capacity_bytes*."""
    return int(capacity_bytes // CACHE_LINE_BYTES)


def gbps_to_bytes_per_cycle(gbps: float, clock_hz: int = CORE_CLOCK_HZ) -> float:
    """Convert a GB/s channel bandwidth into bytes per core cycle.

    Table 2 gives 12.8 GB/s per memory channel; at 2 GHz that is 6.4 B/cycle.
    """
    return gbps * 1e9 / clock_hz


def ms_to_cycles(milliseconds: float, clock_hz: int = CORE_CLOCK_HZ) -> int:
    """Convert a wall-clock period (e.g. the 25 ms reconfiguration interval)
    into core cycles."""
    return int(milliseconds * 1e-3 * clock_hz)
