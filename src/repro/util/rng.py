"""Seeded random-number helpers.

Every stochastic component (mix selection, synthetic address streams, the
annealing placer) takes an explicit seed so experiments are reproducible;
these helpers derive independent child streams from a root seed without the
correlation pitfalls of reusing one generator everywhere.
"""

from __future__ import annotations

import random

import numpy as np


def reseed_global(digest: str, seed: int) -> int:
    """Reseed Python's and NumPy's *global* RNGs from a job identity.

    The one sanctioned reseed site in the codebase: ``Job.execute`` (the
    per-job path) and the mega-batch slice replay both call this, so the
    global-RNG state a job body observes is identical no matter which
    path ran it — the property behind ``--jobs N`` and mega-batching
    being bitwise-identical to serial execution.  ``tools/analyze``'s
    determinism checker flags any other ``random.*`` / ``np.random.*``
    global-state call outside this module.

    Returns the derived seed (handy for logging/debugging).
    """
    h = int(digest[:16], 16) ^ seed
    random.seed(h)
    np.random.seed(h & 0xFFFFFFFF)
    return h


def make_rng(seed: int) -> np.random.Generator:
    """Return a PCG64 generator seeded with *seed*."""
    return np.random.default_rng(seed)


def child_rng(seed: int, *stream_ids: int) -> np.random.Generator:
    """Return a generator for an independent child stream.

    ``child_rng(seed, mix_id, app_id)`` gives every (mix, app) pair its own
    stream, so adding apps to a mix does not perturb the streams of others.
    """
    return np.random.default_rng(np.random.SeedSequence((seed, *stream_ids)))


def spawn_seeds(seed: int, count: int) -> list[int]:
    """Derive *count* independent 32-bit seeds from *seed*."""
    ss = np.random.SeedSequence(seed)
    return [int(s) for s in ss.generate_state(count)]
