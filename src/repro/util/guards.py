"""Runtime lock-discipline harness (``REPRO_CHECK_LOCKS=1``).

The static pass in ``tools/analyze`` proves that registered
process-wide state is only touched *lexically* inside its owning lock
(or a registered accessor).  This module is the dynamic complement: with
``REPRO_CHECK_LOCKS=1`` in the environment, guarded mappings are
replaced by :class:`LockCheckedDict`, which asserts on **every** access
— including ones reached through aliases the static pass cannot see —
that the owning lock is actually held.  The debug mode costs one lock
query per dict operation and is off by default; CI runs the slow
concurrency suite under it (see docs/ANALYSIS.md).

Ownership semantics: an :class:`threading.RLock` knows its owner, so
the check is exact ("held *by this thread*").  A plain
:class:`threading.Lock` (and ``asyncio.Lock``) only exposes
``locked()``, so the check degrades to "held by someone" — still enough
to catch the classic bug of touching guarded state with no lock at all.
"""

from __future__ import annotations

import os

#: Frozen at import: the harness swaps dict implementations at module
#: definition time, so flipping the env var later cannot take effect
#: (tests that want the checks run in a subprocess with the var set).
CHECK_LOCKS = os.environ.get("REPRO_CHECK_LOCKS", "") == "1"


class LockDisciplineError(AssertionError):
    """Guarded state was accessed without its owning lock held."""


def lock_is_held(lock) -> bool:
    """Best-available "is the owning lock held" query (see module doc)."""
    is_owned = getattr(lock, "_is_owned", None)
    if is_owned is not None:
        return is_owned()
    return lock.locked()


def assert_lock_held(lock, name: str) -> None:
    """Raise :class:`LockDisciplineError` unless *lock* is held.

    No-op unless ``REPRO_CHECK_LOCKS=1`` — callers sprinkle this on
    guarded accessors without paying for it in production runs.
    """
    if CHECK_LOCKS and not lock_is_held(lock):
        raise LockDisciplineError(
            f"{name}: accessed without its owning lock held "
            f"(REPRO_CHECK_LOCKS=1 harness)"
        )


class LockCheckedDict(dict):
    """A dict that asserts its owning lock is held on every access.

    Used only under ``REPRO_CHECK_LOCKS=1`` (see :func:`guarded_mapping`)
    so the instrumented path never taxes normal runs.  Read *and* write
    operations are checked: an unguarded read can see a half-updated
    cache, which is exactly the race the geometry memo's lock exists to
    prevent.
    """

    def __init__(self, lock, name: str, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._lock = lock
        self._name = name

    def _check(self) -> None:
        if not lock_is_held(self._lock):
            raise LockDisciplineError(
                f"{self._name}: accessed without its owning lock held "
                f"(REPRO_CHECK_LOCKS=1 harness)"
            )

    def __getitem__(self, key):
        self._check()
        return super().__getitem__(key)

    def __setitem__(self, key, value):
        self._check()
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._check()
        super().__delitem__(key)

    def __contains__(self, key):
        self._check()
        return super().__contains__(key)

    def __iter__(self):
        self._check()
        return super().__iter__()

    def __len__(self):
        self._check()
        return super().__len__()

    def get(self, key, default=None):
        self._check()
        return super().get(key, default)

    def setdefault(self, key, default=None):
        self._check()
        return super().setdefault(key, default)

    def pop(self, *args):
        self._check()
        return super().pop(*args)

    def clear(self):
        self._check()
        super().clear()

    def update(self, *args, **kwargs):
        self._check()
        super().update(*args, **kwargs)

    def items(self):
        self._check()
        return super().items()

    def keys(self):
        self._check()
        return super().keys()

    def values(self):
        self._check()
        return super().values()


def guarded_mapping(lock, name: str, *args, **kwargs) -> dict:
    """A dict whose accesses must happen under *lock*.

    Returns a plain dict unless ``REPRO_CHECK_LOCKS=1``, so production
    code pays nothing for the instrumentation hook.
    """
    if CHECK_LOCKS:
        return LockCheckedDict(lock, name, *args, **kwargs)
    return dict(*args, **kwargs)
