"""Blocking trace core for the trace-driven simulator.

Models one hardware thread as: retire instructions at ``base_cpi`` until
the next LLC access is due (spacing drawn from the APKI), then block for
that access's latency (divided by the core's MLP factor to credit overlap).
Coarse, but it produces the aggregate-IPC dynamics Fig 17 needs: when a
reconfiguration stalls LLC accesses, cores stall proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CoreConfig
from repro.workloads.generator import StackDistanceStream


@dataclass
class TraceCoreStats:
    instructions: int = 0
    llc_accesses: int = 0
    stall_cycles: float = 0.0


class TraceCore:
    """One thread's execution state in the trace simulator."""

    def __init__(
        self,
        thread_id: int,
        base_cpi: float,
        apki: float,
        stream_of: "dict[str, StackDistanceStream]",
        stream_picker,
        core_config: CoreConfig | None = None,
    ):
        """*stream_of* maps VC-class name ('private'/'shared') to address
        streams; *stream_picker* is a callable(rng-free) returning which
        class the next access targets (deterministic round-robin mixing by
        access fractions keeps the core model reproducible)."""
        self.thread_id = thread_id
        self.base_cpi = base_cpi
        self.apki = max(apki, 1e-9)
        self.streams = stream_of
        self.stream_picker = stream_picker
        self.config = core_config or CoreConfig()
        self.time = 0.0
        self.stats = TraceCoreStats()

    @property
    def instructions_per_access(self) -> float:
        return 1000.0 / self.apki

    def next_access(self) -> tuple[float, str, int]:
        """Advance to the next LLC access.

        Returns (issue_time, vc_class, line_addr).  The core retires
        ``instructions_per_access`` instructions at base CPI before issuing.
        """
        compute_cycles = self.instructions_per_access * self.base_cpi
        self.time += compute_cycles
        self.stats.instructions += int(self.instructions_per_access)
        vc_class = self.stream_picker()
        addr = self.streams[vc_class].next_address()
        self.stats.llc_accesses += 1
        return self.time, vc_class, addr

    def complete_access(self, onchip_latency: float, offchip_latency: float = 0.0) -> None:
        """Block the thread for the access's exposed latency (on-chip fully
        exposed; off-chip discounted by the core's miss overlap)."""
        exposed = (
            onchip_latency / self.config.mlp_onchip
            + offchip_latency / self.config.mlp_offchip
        )
        self.time += exposed
        self.stats.stall_cycles += exposed

    def ipc_so_far(self) -> float:
        if self.time <= 0:
            return 0.0
        return self.stats.instructions / self.time
