"""Analytic core model: lean 2-way OOO (Silvermont-like, Table 2).

The analytic engine computes each thread's CPI as

    CPI = base_CPI + (APKI / 1000) x exposed_latency

where the exposed latency of an LLC access separates its two components:

* **on-chip** latency (network + bank, tens of cycles) divided by
  ``mlp_onchip`` — a lean 2-way OOO core with a 32-entry ROB hides nearly
  none of it, so the default is 1.0 (fully exposed);
* **off-chip** latency (miss ratio x DRAM, hundreds of cycles) divided by
  ``mlp_offchip`` — independent misses overlap through the load queue.

This split is what lets placement-induced hop differences show up in IPC
at the paper's magnitude (Fig 11a vs Fig 11b) while DRAM-bound apps remain
bandwidth- rather than pure-latency-limited.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CoreConfig


@dataclass(frozen=True)
class CoreModel:
    """Converts memory latencies into per-thread performance."""

    config: CoreConfig

    def exposed_latency(self, onchip: float, offchip: float) -> float:
        """Stall cycles one LLC access contributes to the pipeline."""
        if onchip < 0 or offchip < 0:
            raise ValueError("latencies cannot be negative")
        return (
            onchip / self.config.mlp_onchip
            + offchip / self.config.mlp_offchip
        )

    def cpi(self, base_cpi: float, apki: float, onchip: float, offchip: float) -> float:
        """CPI given per-access on-chip and off-chip latency (cycles)."""
        if base_cpi <= 0:
            raise ValueError("base CPI must be positive")
        if apki < 0:
            raise ValueError("APKI cannot be negative")
        return base_cpi + (apki / 1000.0) * self.exposed_latency(onchip, offchip)

    def ipc(self, base_cpi: float, apki: float, onchip: float, offchip: float) -> float:
        return 1.0 / self.cpi(base_cpi, apki, onchip, offchip)

    def instructions_in(
        self,
        cycles: float,
        base_cpi: float,
        apki: float,
        onchip: float,
        offchip: float,
    ) -> float:
        """Instructions retired in *cycles* (FIESTA reference runs)."""
        return cycles * self.ipc(base_cpi, apki, onchip, offchip)
