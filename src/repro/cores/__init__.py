"""Core models: analytic CPI model and the blocking trace core."""

from repro.cores.ooo_core import CoreModel
from repro.cores.trace_core import TraceCore, TraceCoreStats

__all__ = ["CoreModel", "TraceCore", "TraceCoreStats"]
