"""Virtual-cache layer: VCs, bucket descriptors, and the per-tile VTB."""

from repro.vcache.descriptor import BucketTarget, VCDescriptor, build_descriptor
from repro.vcache.virtual_cache import VCKind, VirtualCache
from repro.vcache.vtb import VTB, VTBEntry, VTBLookup

__all__ = [
    "BucketTarget",
    "VCDescriptor",
    "VCKind",
    "VTB",
    "VTBEntry",
    "VTBLookup",
    "VirtualCache",
    "build_descriptor",
]
