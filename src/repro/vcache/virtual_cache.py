"""Virtual caches (VCs): the software-visible unit of capacity.

CDCS gangs bank partitions into *virtual caches* (Jigsaw's "shares",
Sec III).  The runtime creates one thread-private VC per thread, one
per-process VC per process, and one global VC; pages are mapped to VCs by
classification, and each VC is sized and placed every reconfiguration.

A :class:`VirtualCache` carries its identity, the access rates of the
threads that use it (the ``a_{t,d}`` of Eq 1/2), its miss curve, and its
current placement (bytes per bank).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.cache.miss_curve import MissCurve


class VCKind(Enum):
    """VC classes of Sec III ("Types of VCs")."""

    THREAD = "thread"
    PROCESS = "process"
    GLOBAL = "global"


@dataclass
class VirtualCache:
    """One virtual cache and its current configuration.

    ``accesses`` maps thread id -> access rate (accesses per kilo-instruction
    or per interval — units only need to be consistent across VCs).
    ``allocation`` maps bank id -> bytes currently allocated there.
    """

    vc_id: int
    kind: VCKind
    process_id: int
    miss_curve: MissCurve
    accesses: dict[int, float] = field(default_factory=dict)
    allocation: dict[int, float] = field(default_factory=dict)
    #: Thread that owns a THREAD-kind VC (None otherwise).
    owner_thread: int | None = None

    @property
    def size(self) -> float:
        """Total allocated bytes across banks."""
        return sum(self.allocation.values())

    @property
    def total_accesses(self) -> float:
        return sum(self.accesses.values())

    @property
    def intensity_capacity_product(self) -> float:
        """Sec IV-E tie-break: accesses x size; big, hot VCs place first."""
        return self.total_accesses * self.size

    def set_allocation(self, allocation: dict[int, float]) -> None:
        """Replace the placement (dropping zero/negative entries)."""
        self.allocation = {b: v for b, v in allocation.items() if v > 1e-9}

    def misses(self) -> float:
        """Miss rate at the current total size (same units as accesses)."""
        return float(self.miss_curve(self.size))

    def access_fraction(self, bank: int) -> float:
        """Fraction of this VC's accesses served by *bank* (the VTB spreads
        accesses in proportion to per-bank capacity, Sec III)."""
        total = self.size
        if total <= 0:
            return 0.0
        return self.allocation.get(bank, 0.0) / total

    def __repr__(self) -> str:
        return (
            f"VirtualCache(id={self.vc_id}, {self.kind.value}, "
            f"proc={self.process_id}, size={self.size / 1024:.0f}KB, "
            f"banks={len(self.allocation)})"
        )
