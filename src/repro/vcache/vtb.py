"""The virtual-cache translation buffer (VTB).

Fig 3: each tile's VTB holds one entry per VC the running thread can access
(3 entries: thread, process, global).  Each entry has a *current* descriptor
and a *shadow* descriptor; between reconfigurations only the current one is
used.  During an incremental reconfiguration (Sec IV-H) the shadow holds the
previous configuration, and lookups return both locations so misses in the
new bank can be forwarded to the old one (demand moves, Fig 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vcache.descriptor import BucketTarget, VCDescriptor


@dataclass
class VTBEntry:
    """One VC's translation state on a tile."""

    vc_id: int
    current: VCDescriptor
    shadow: VCDescriptor | None = None

    @property
    def reconfiguring(self) -> bool:
        return self.shadow is not None


@dataclass(frozen=True)
class VTBLookup:
    """Result of a VTB lookup: where the line lives now, and (during
    reconfigurations) where it lived before."""

    vc_id: int
    target: BucketTarget
    old_target: BucketTarget | None

    @property
    def moved(self) -> bool:
        """True if this line's location changed in the last reconfiguration
        (the access must check the old bank on a miss)."""
        return self.old_target is not None and self.old_target != self.target


class VTB:
    """Per-tile translation buffer; raises on lookups of unmapped VCs
    (the paper's "exception on miss")."""

    def __init__(self, max_entries: int = 3):
        self.max_entries = max_entries
        self._entries: dict[int, VTBEntry] = {}

    def install(self, vc_id: int, descriptor: VCDescriptor) -> None:
        """Install/replace a VC's descriptor (no reconfiguration in flight)."""
        if vc_id not in self._entries and len(self._entries) >= self.max_entries:
            raise ValueError(
                f"VTB full ({self.max_entries} entries); unmap a VC first"
            )
        self._entries[vc_id] = VTBEntry(vc_id, descriptor)

    def evict(self, vc_id: int) -> None:
        self._entries.pop(vc_id, None)

    def begin_reconfiguration(self, vc_id: int, new_descriptor: VCDescriptor) -> None:
        """Copy the current descriptor into the shadow and switch to the new
        one (the simultaneous update cores coordinate via IPIs, Sec III)."""
        entry = self._entries.get(vc_id)
        if entry is None:
            self.install(vc_id, new_descriptor)
            return
        entry.shadow = entry.current
        entry.current = new_descriptor

    def end_reconfiguration(self, vc_id: int) -> None:
        """Drop the shadow descriptor (after background invalidations have
        walked the whole array, Sec IV-H)."""
        entry = self._entries.get(vc_id)
        if entry is not None:
            entry.shadow = None

    @property
    def reconfiguring(self) -> bool:
        return any(e.reconfiguring for e in self._entries.values())

    def lookup(self, vc_id: int, line_addr: int) -> VTBLookup:
        """Translate an access; exception on miss, as in Fig 3."""
        entry = self._entries.get(vc_id)
        if entry is None:
            raise KeyError(f"VTB miss: VC {vc_id} is not mapped on this tile")
        target = entry.current.lookup(line_addr)
        old = entry.shadow.lookup(line_addr) if entry.shadow else None
        return VTBLookup(vc_id, target, old)

    def mapped_vcs(self) -> list[int]:
        return sorted(self._entries)
