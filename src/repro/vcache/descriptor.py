"""VC descriptors: the bucket arrays that route accesses to banks.

Fig 3: a VC descriptor is an array of N buckets (N = 64), each naming a
(bank, bank-partition).  The line address is hashed to pick a bucket, so a
bank holding k/N of the buckets receives k/N of the VC's accesses — which
is how a set of bank partitions behaves as one cache of their aggregate
size.  Bucket counts are apportioned from the placement by largest
remainder, so rounding error is at most one bucket per bank.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.util.hashing import bucket_hash


@dataclass(frozen=True)
class BucketTarget:
    """Where one bucket points."""

    bank: int
    partition: int


class VCDescriptor:
    """An immutable bucket array for one VC configuration."""

    def __init__(self, buckets: list[BucketTarget], hash_seed: int = 0):
        if not buckets:
            raise ValueError("descriptor needs at least one bucket")
        self._buckets = tuple(buckets)
        self._hash_seed = hash_seed

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    def lookup(self, line_addr: int) -> BucketTarget:
        """Bank/partition serving *line_addr* (the Fig 3 H-hash lookup)."""
        idx = bucket_hash(line_addr, len(self._buckets), self._hash_seed)
        return self._buckets[idx]

    def bank_fractions(self) -> dict[int, float]:
        """Fraction of buckets (= of accesses) pointing at each bank."""
        counts: dict[int, int] = {}
        for target in self._buckets:
            counts[target.bank] = counts.get(target.bank, 0) + 1
        n = len(self._buckets)
        return {bank: c / n for bank, c in counts.items()}

    def targets(self) -> tuple[BucketTarget, ...]:
        return self._buckets

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VCDescriptor):
            return NotImplemented
        return self._buckets == other._buckets and self._hash_seed == other._hash_seed

    def __hash__(self) -> int:
        return hash((self._buckets, self._hash_seed))


def build_descriptor(
    allocation: Mapping[int, float],
    partition_of_bank: Mapping[int, int],
    num_buckets: int = 64,
    hash_seed: int = 0,
) -> VCDescriptor:
    """Apportion *num_buckets* buckets across banks proportionally to
    *allocation* (bytes per bank), largest-remainder rounding.

    *partition_of_bank* gives the bank-partition id this VC owns in each
    bank.  Banks with positive allocation are guaranteed at least the
    rounding the remainder gives them; if the allocation is empty the
    descriptor cannot be built (a VC with no capacity routes nowhere).
    """
    positive = {b: v for b, v in allocation.items() if v > 0}
    if not positive:
        raise ValueError("cannot build a descriptor for an empty allocation")
    total = sum(positive.values())
    quotas = {b: num_buckets * v / total for b, v in positive.items()}
    counts = {b: int(q) for b, q in quotas.items()}
    remainder = num_buckets - sum(counts.values())
    # Largest fractional remainders get the leftover buckets (ties by id).
    order = sorted(positive, key=lambda b: (counts[b] - quotas[b], b))
    for b in order[:remainder]:
        counts[b] += 1
    buckets: list[BucketTarget] = []
    for bank in sorted(counts):
        if counts[bank] == 0:
            continue
        part = partition_of_bank[bank]
        buckets.extend([BucketTarget(bank, part)] * counts[bank])
    # Bucket order is irrelevant for distribution (the address hash picks an
    # index uniformly), so a deterministic bank-sorted layout is fine.
    return VCDescriptor(buckets, hash_seed)
