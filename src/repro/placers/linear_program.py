"""LP-optimal data placement (the paper's ILP comparator, Sec VI-C).

With thread locations and VC sizes fixed, minimizing Eq 2 over per-bank
allocations is a transportation problem: variables ``x[d, b]`` (bytes of VC
d in bank b), cost ``rate_d / size_d * D(VC_d, b)`` per byte, supply =
each VC's size, demand = bank capacities.  The LP relaxation of this
transportation polytope has integral vertices in quantum units, so scipy's
``linprog`` recovers what Gurobi's ILP found in the paper — at a cost that
is likewise "far too long to be practical" online, which is the point of
the comparison (ILP beat CDCS by only 0.5%).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.sched.problem import PlacementProblem


def lp_data_placement(
    problem: PlacementProblem,
    vc_sizes: dict[int, float],
    thread_cores: dict[int, int],
) -> dict[int, dict[int, float]]:
    """Eq 2-optimal allocation for fixed thread placement and VC sizes.

    Returns vc_id -> {bank -> bytes}.  Raises ``RuntimeError`` if the LP
    solver fails (infeasible inputs: total size beyond chip capacity).
    """
    topo = problem.topology
    tiles = topo.tiles
    dist = topo.distance_matrix
    active = [
        vc for vc in problem.vcs if vc_sizes.get(vc.vc_id, 0.0) > 0
    ]
    if not active:
        return {}
    total_size = sum(vc_sizes[vc.vc_id] for vc in active)
    if total_size > problem.total_bytes + 1e-6:
        raise RuntimeError(
            f"total VC size {total_size} exceeds LLC {problem.total_bytes}"
        )

    n_vcs = len(active)
    # Per-byte cost of placing VC d in bank b (access-weighted distance).
    cost = np.zeros((n_vcs, tiles))
    for i, vc in enumerate(active):
        accessors = problem.accessors_of(vc.vc_id)
        rate = sum(accessors.values())
        size = vc_sizes[vc.vc_id]
        if rate <= 0 or size <= 0:
            continue
        vec = np.zeros(tiles)
        for thread_id, r in accessors.items():
            vec += r * dist[thread_cores[thread_id]].astype(float)
        cost[i] = vec / size  # rate-weighted distance per byte

    c = cost.reshape(-1)
    # Equality: each VC places exactly its size.
    a_eq = np.zeros((n_vcs, n_vcs * tiles))
    b_eq = np.zeros(n_vcs)
    for i, vc in enumerate(active):
        a_eq[i, i * tiles : (i + 1) * tiles] = 1.0
        b_eq[i] = vc_sizes[vc.vc_id]
    # Inequality: bank capacity (variable layout: x[i * tiles + b]).
    a_ub = np.zeros((tiles, n_vcs * tiles))
    for b in range(tiles):
        a_ub[b, b::tiles] = 1.0
    b_ub = np.full(tiles, float(problem.bank_bytes))

    result = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
        bounds=(0, None), method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP placement failed: {result.message}")
    x = result.x.reshape((n_vcs, tiles))
    allocation: dict[int, dict[int, float]] = {}
    for i, vc in enumerate(active):
        allocation[vc.vc_id] = {
            b: float(x[i, b]) for b in range(tiles) if x[i, b] > 1.0
        }
    return allocation
