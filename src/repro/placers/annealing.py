"""Simulated-annealing thread placer (the paper's comparator, Sec VI-C).

The paper tried a 5000-round annealer over thread swaps and found it only
0.6% better than CDCS's constructive placement at ~1000x the cost.  We
reproduce it: the state is the thread->core assignment, moves swap two
threads (or move one to a free core), and the objective is Eq 2 with each
VC's data held at a fixed placement (its access spread), so a swap's delta
is O(VCs-per-thread).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sched.problem import PlacementProblem
from repro.util.rng import child_rng


@dataclass
class AnnealResult:
    thread_cores: dict[int, int]
    initial_cost: float
    final_cost: float
    rounds: int
    accepted: int


def _vc_core_costs(
    problem: PlacementProblem,
    allocation: dict[int, dict[int, float]],
) -> dict[int, np.ndarray]:
    """Per-VC vector: capacity-weighted distance from each core to the VC's
    data (so a thread's on-chip cost is a table lookup per accessed VC)."""
    topo = problem.topology
    dist = topo.distance_matrix
    out: dict[int, np.ndarray] = {}
    for vc_id, per_bank in allocation.items():
        size = sum(per_bank.values())
        if size <= 0:
            continue
        vec = np.zeros(topo.tiles)
        for bank, amount in per_bank.items():
            vec += (amount / size) * dist[:, bank].astype(float)
        out[vc_id] = vec
    return out


def anneal_thread_placement(
    problem: PlacementProblem,
    allocation: dict[int, dict[int, float]],
    initial_cores: dict[int, int],
    rounds: int = 5000,
    initial_temperature: float = 5.0,
    seed: int = 0,
) -> AnnealResult:
    """Minimize Eq 2 over thread placements by annealed swaps."""
    rng = child_rng(seed, 0xA22EA1)
    vc_costs = _vc_core_costs(problem, allocation)
    threads = sorted(problem.threads, key=lambda t: t.thread_id)
    cores = dict(initial_cores)
    occupied = {core: tid for tid, core in cores.items()}
    all_cores = list(range(problem.topology.tiles))

    def thread_cost(thread, core: int) -> float:
        total = 0.0
        for vc_id, rate in thread.vc_accesses.items():
            vec = vc_costs.get(vc_id)
            if vec is not None:
                total += rate * vec[core]
        return total

    def total_cost() -> float:
        return sum(thread_cost(t, cores[t.thread_id]) for t in threads)

    initial = current = total_cost()
    accepted = 0
    for step in range(rounds):
        temperature = initial_temperature * (1.0 - step / rounds) + 1e-9
        t1 = threads[int(rng.integers(len(threads)))]
        target_core = all_cores[int(rng.integers(len(all_cores)))]
        src_core = cores[t1.thread_id]
        if target_core == src_core:
            continue
        other_tid = occupied.get(target_core)
        delta = thread_cost(t1, target_core) - thread_cost(t1, src_core)
        if other_tid is not None:
            t2 = next(t for t in threads if t.thread_id == other_tid)
            delta += thread_cost(t2, src_core) - thread_cost(t2, target_core)
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            cores[t1.thread_id] = target_core
            occupied[target_core] = t1.thread_id
            if other_tid is not None:
                cores[other_tid] = src_core
                occupied[src_core] = other_tid
            else:
                del occupied[src_core]
            current += delta
            accepted += 1
    return AnnealResult(cores, initial, current, rounds, accepted)
