"""Graph-partitioning co-placement (the paper's METIS comparator, Sec VI-C).

Threads and VCs form a bipartite graph weighted by access rates; recursive
bisection splits the graph and the chip region together, assigning each
half of the graph to each half of the mesh.  The paper observed that this
family "recursively divide[s] threads and data into equal-sized partitions
of the chip, splitting around the center of the chip first", whereas CDCS
can cluster one app at the chip center — costing graph partitioning ~2.5%
network latency.  We implement Kernighan-Lin bisection via networkx.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.sched.problem import PlacementProblem, PlacementSolution
from repro.util.rng import child_rng


@dataclass
class _Region:
    tiles: list[int]
    threads: list
    vcs: list[int]


def _split_tiles(problem: PlacementProblem, tiles: list[int]) -> tuple[list[int], list[int]]:
    """Split a tile set geometrically along its longer axis."""
    topo = problem.topology
    coords = {t: topo.coords(t) for t in tiles}  # type: ignore[attr-defined]
    xs = [c[0] for c in coords.values()]
    ys = [c[1] for c in coords.values()]
    axis = 0 if (max(xs) - min(xs)) >= (max(ys) - min(ys)) else 1
    ordered = sorted(tiles, key=lambda t: (coords[t][axis], t))
    half = len(ordered) // 2
    return ordered[:half], ordered[half:]


def _bisect_graph(
    problem: PlacementProblem,
    threads: list,
    vcs: list[int],
    max_threads: tuple[int, int],
    seed: int,
) -> tuple[_Region, _Region]:
    """Kernighan-Lin bisection of the thread/VC affinity graph, repaired to
    respect each side's core budget."""
    graph = nx.Graph()
    for t in threads:
        graph.add_node(("t", t.thread_id))
    for vc_id in vcs:
        graph.add_node(("v", vc_id))
    for t in threads:
        for vc_id, rate in t.vc_accesses.items():
            if vc_id in vcs and rate > 0:
                graph.add_edge(("t", t.thread_id), ("v", vc_id), weight=rate)
    if len(graph) < 2:
        half_a = _Region([], list(threads), list(vcs))
        half_b = _Region([], [], [])
        return half_a, half_b
    rng_seed = int(child_rng(seed, len(threads)).integers(1 << 31))
    part_a, part_b = nx.algorithms.community.kernighan_lin_bisection(
        graph, weight="weight", seed=rng_seed
    )

    def unpack(part) -> tuple[list, list[int]]:
        ths = [t for t in threads if ("t", t.thread_id) in part]
        vcl = [v for v in vcs if ("v", v) in part]
        return ths, vcl

    threads_a, vcs_a = unpack(part_a)
    threads_b, vcs_b = unpack(part_b)
    # Repair core-budget violations by moving the lightest threads across.
    def weight_of(t) -> float:
        return t.total_accesses

    while len(threads_a) > max_threads[0]:
        mover = min(threads_a, key=weight_of)
        threads_a.remove(mover)
        threads_b.append(mover)
    while len(threads_b) > max_threads[1]:
        mover = min(threads_b, key=weight_of)
        threads_b.remove(mover)
        threads_a.append(mover)
    return (
        _Region([], threads_a, vcs_a),
        _Region([], threads_b, vcs_b),
    )


def graph_partition_placement(
    problem: PlacementProblem,
    vc_sizes: dict[int, float],
    seed: int = 0,
) -> PlacementSolution:
    """Recursive-bisection joint thread+data placement."""
    active_vcs = [
        vc.vc_id for vc in problem.vcs if vc_sizes.get(vc.vc_id, 0.0) > 0
    ]
    root = _Region(
        list(range(problem.topology.tiles)),
        list(problem.threads),
        active_vcs,
    )
    thread_cores: dict[int, int] = {}
    vc_region: dict[int, list[int]] = {}
    stack = [root]
    while stack:
        region = stack.pop()
        if len(region.tiles) == 1 or len(region.threads) + len(region.vcs) <= 1:
            for i, t in enumerate(region.threads):
                # Core budgets guarantee at most one thread per leaf tile.
                thread_cores[t.thread_id] = region.tiles[min(i, len(region.tiles) - 1)]
            for vc_id in region.vcs:
                vc_region[vc_id] = region.tiles
            continue
        tiles_a, tiles_b = _split_tiles(problem, region.tiles)
        half_a, half_b = _bisect_graph(
            problem,
            region.threads,
            region.vcs,
            (len(tiles_a), len(tiles_b)),
            seed,
        )
        half_a.tiles = tiles_a
        half_b.tiles = tiles_b
        stack.append(half_a)
        stack.append(half_b)

    # Data: spread each VC across its final region, capacity-capped.
    bank_free = {b: float(problem.bank_bytes) for b in range(problem.topology.tiles)}
    allocation: dict[int, dict[int, float]] = {}
    for vc_id in active_vcs:
        region_tiles = vc_region.get(vc_id, list(range(problem.topology.tiles)))
        want = vc_sizes[vc_id]
        per_bank: dict[int, float] = {}
        # Fill region tiles round-robin, then spill to nearest free banks.
        candidates = list(region_tiles) + [
            b for b in range(problem.topology.tiles) if b not in region_tiles
        ]
        for bank in candidates:
            if want <= 0:
                break
            take = min(want, bank_free[bank])
            if take > 0:
                per_bank[bank] = take
                bank_free[bank] -= take
                want -= take
        allocation[vc_id] = per_bank
    return PlacementSolution(
        vc_sizes={vc: sum(per.values()) for vc, per in allocation.items()},
        vc_allocation=allocation,
        thread_cores=thread_cores,
    )
