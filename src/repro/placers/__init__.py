"""Alternative thread/data placers used as comparators in Sec VI-C:
LP-optimal data placement (ILP stand-in), simulated annealing, and
recursive-bisection graph partitioning."""

from repro.placers.annealing import AnnealResult, anneal_thread_placement
from repro.placers.graph_partition import graph_partition_placement
from repro.placers.linear_program import lp_data_placement

__all__ = [
    "AnnealResult",
    "anneal_thread_placement",
    "graph_partition_placement",
    "lp_data_placement",
]
