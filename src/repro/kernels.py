"""Kernel dispatch: vectorized fast path vs scalar reference path.

Every hot inner loop of the epoch pipeline (miss-curve evaluation, the
LRU-sharing fixed point, candidate scoring in VC placement, the Eq 1/Eq 2
cost model, thread geometry) exists in two implementations:

* the **vectorized** kernels — NumPy array math, the default;
* the **scalar reference** kernels — the original, loop-at-a-time code,
  kept verbatim as the trusted baseline.

Both paths produce identical discrete decisions (placements, allocations,
trades) and metrics equal to within the documented tolerance
(``EQUIV_RTOL``; see docs/PERFORMANCE.md).  The golden equivalence tests
in ``tests/test_kernels_equivalence.py`` enforce this, and
``benchmarks/bench_kernels.py`` measures the speedup.

Use :func:`scalar_reference` to force a whole pipeline through the scalar
path (for equivalence tests and honest before/after benchmarks)::

    from repro.kernels import scalar_reference

    with scalar_reference():
        slow_result = run_sweep(config, n_apps=64, n_mixes=1)
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Relative tolerance at which vectorized metrics must agree with the
#: scalar reference (continuous outputs only — discrete decisions are
#: required to be identical, not merely close).
EQUIV_RTOL = 1e-9

#: Environment flag mirroring the in-process switch, so runner worker
#: processes (forked or spawned inside a ``scalar_reference`` block)
#: inherit the selected path instead of silently running vectorized.
_ENV_FLAG = "REPRO_SCALAR_KERNELS"

_VECTORIZED = os.environ.get(_ENV_FLAG, "") != "1"


def use_vectorized() -> bool:
    """True when the vectorized kernels are active (the default)."""
    return _VECTORIZED


@contextmanager
def scalar_reference() -> Iterator[None]:
    """Run everything inside the block through the scalar reference path.

    Also exported via the ``REPRO_SCALAR_KERNELS`` environment variable so
    worker processes a runner starts inside the block pick the same path.
    (Runner cache entries need no path tag: the equivalence contract makes
    both paths' results interchangeable.)
    """
    global _VECTORIZED
    previous = _VECTORIZED
    previous_env = os.environ.get(_ENV_FLAG)
    _VECTORIZED = False
    os.environ[_ENV_FLAG] = "1"
    try:
        yield
    finally:
        _VECTORIZED = previous
        if previous_env is None:
            os.environ.pop(_ENV_FLAG, None)
        else:
            os.environ[_ENV_FLAG] = previous_env
