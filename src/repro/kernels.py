"""Kernel dispatch: vectorized fast path vs scalar reference path.

Every hot inner loop of the epoch pipeline (miss-curve evaluation, the
LRU-sharing fixed point, candidate scoring in VC placement, the Eq 1/Eq 2
cost model, thread geometry) exists in two implementations:

* the **vectorized** kernels — NumPy array math, the default;
* the **scalar reference** kernels — the original, loop-at-a-time code,
  kept verbatim as the trusted baseline.

Both paths produce identical discrete decisions (placements, allocations,
trades) and metrics equal to within the documented tolerance
(``EQUIV_RTOL``; see docs/PERFORMANCE.md).  The golden equivalence tests
in ``tests/test_kernels_equivalence.py`` enforce this, and
``benchmarks/bench_kernels.py`` measures the speedup.

Use :func:`scalar_reference` to force a whole pipeline through the scalar
path (for equivalence tests and honest before/after benchmarks)::

    from repro.kernels import scalar_reference

    with scalar_reference():
        slow_result = run_sweep(config, n_apps=64, n_mixes=1)
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator

#: Relative tolerance at which vectorized metrics must agree with the
#: scalar reference (continuous outputs only — discrete decisions are
#: required to be identical, not merely close).
EQUIV_RTOL = 1e-9

#: Environment flag mirroring the in-process switch, so runner worker
#: processes (forked or spawned inside a ``scalar_reference`` block)
#: inherit the selected path instead of silently running vectorized.
_ENV_FLAG = "REPRO_SCALAR_KERNELS"

_VECTORIZED = os.environ.get(_ENV_FLAG, "") != "1"

#: Environment flag for the cross-job mega-batch path (``=0`` disables).
#: Mirrors the in-process switch the same way ``REPRO_SCALAR_KERNELS``
#: does, so worker processes inherit the caller's choice.
_MEGA_ENV_FLAG = "REPRO_MEGA_BATCH"

_MEGA_BATCH = os.environ.get(_MEGA_ENV_FLAG, "") != "0"

#: Serializes toggles of the process-wide kernel-path flags.  The
#: co-scheduling service solves on a thread pool, so two tests flipping
#: paths concurrently must not interleave their save/restore pairs.
#: Reads stay lock-free through the registered accessors
#: (:func:`use_vectorized` / :func:`use_mega_batch`): a single bool load
#: is atomic under the GIL, and the lock makes every *transition*
#: well-ordered.  Registered in ``tools/analyze``'s lock-discipline
#: state registry.
_KERNEL_STATE_LOCK = threading.Lock()


def use_vectorized() -> bool:
    """True when the vectorized kernels are active (the default)."""
    return _VECTORIZED


def use_mega_batch() -> bool:
    """True when cross-job mega-batch kernels are active (the default).

    Mega-batching stacks many same-chip jobs into one leading batch axis
    (see :mod:`repro.runner.mega`); it builds on the vectorized kernels,
    so forcing :func:`scalar_reference` also disables it.
    """
    return _MEGA_BATCH and _VECTORIZED


@contextmanager
def scalar_reference() -> Iterator[None]:
    """Run everything inside the block through the scalar reference path.

    Also exported via the ``REPRO_SCALAR_KERNELS`` environment variable so
    worker processes a runner starts inside the block pick the same path.
    (Runner cache entries need no path tag: the equivalence contract makes
    both paths' results interchangeable.)
    """
    global _VECTORIZED
    with _KERNEL_STATE_LOCK:
        previous = _VECTORIZED
        _VECTORIZED = False
    previous_env = os.environ.get(_ENV_FLAG)
    os.environ[_ENV_FLAG] = "1"
    try:
        yield
    finally:
        with _KERNEL_STATE_LOCK:
            _VECTORIZED = previous
        if previous_env is None:
            os.environ.pop(_ENV_FLAG, None)
        else:
            os.environ[_ENV_FLAG] = previous_env


@contextmanager
def per_mix_reference() -> Iterator[None]:
    """Run sweeps through the per-mix (one job at a time) kernel path.

    Disables only the cross-job mega-batching — the vectorized per-mix
    kernels stay active — which is the trusted reference the mega-batch
    equivalence tests pin against and the honest baseline for the runner
    throughput benchmark.  Exported via ``REPRO_MEGA_BATCH=0`` so worker
    processes started inside the block pick the same path.
    """
    global _MEGA_BATCH
    with _KERNEL_STATE_LOCK:
        previous = _MEGA_BATCH
        _MEGA_BATCH = False
    previous_env = os.environ.get(_MEGA_ENV_FLAG)
    os.environ[_MEGA_ENV_FLAG] = "0"
    try:
        yield
    finally:
        with _KERNEL_STATE_LOCK:
            _MEGA_BATCH = previous
        if previous_env is None:
            os.environ.pop(_MEGA_ENV_FLAG, None)
        else:
            os.environ[_MEGA_ENV_FLAG] = previous_env
