"""Bounded-memory miss-curve sketches for streaming telemetry.

A :class:`MissCurveSketch` is the monitor-side summary the ROADMAP's
streaming-reconfiguration item calls for: instead of shipping a full
exact miss curve every epoch (65+ float64 knots per VC), a monitor emits
a fixed-byte-budget sketch — the curve sampled at a *geometric* capacity
grid (the GMON way-sizing idiom: fine resolution at small capacities,
coarse at large) in float32, plus a per-interval error bound (``slack``)
that makes the sketch *sound*: the true curve is guaranteed to lie
within ``slack`` of the sketch's piecewise-linear reconstruction on
every grid interval.

That soundness is what makes ``delta(other)`` useful: it returns an
upper bound on :func:`repro.sched.engine.curve_distance` between the two
*source* curves computed purely from the sketches (O(points), no curve
materialization, no union grids).  A dirty-VC detector that marks a VC
dirty whenever the sketch delta exceeds the threshold therefore can
never miss a VC the exact detector would have flagged — sketch-driven
detection is a superset of exact detection (pinned by
``tests/test_sketch_properties.py``).

The bound is exact for sketches built by :meth:`MissCurveSketch.from_curve`.
Derived sketches (:meth:`merged`, :meth:`decayed`, :meth:`blended`) keep
the *numerator* of the bound sound against the combined source curves,
but their ``peak`` normalizer is an estimate (the sum/convex combination
of the parents' peaks, which upper-bounds the combined curve's true
peak), so deltas between derived sketches are estimates, not bounds.

Shape conventions
-----------------
* ``grid``: (P,) float64, strictly increasing capacities in bytes,
  ``grid[0] == 0``; shared across every sketch of one chip (same
  ``(grid_max, points)`` key) via a process-wide cache.
* ``values``: (P,) float32, the curve sampled at ``grid``.
* ``slack``: (P,) float32; ``slack[i]`` bounds the reconstruction error
  on ``[grid[i], grid[i+1])`` for ``i < P-1`` and on the tail
  ``[grid[P-1], inf)`` for ``i == P-1``.
* :class:`SketchBank` stacks K same-grid sketches into (K, P) banks so
  all-VC deltas are one vectorized pass.

All published arrays are frozen (``writeable=False``); see
docs/ANALYSIS.md (immutability rule).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.cache.miss_curve import MissCurve
from repro.util.guards import guarded_mapping

__all__ = [
    "DEFAULT_SKETCH_BYTES",
    "MissCurveSketch",
    "SketchBank",
    "points_for_budget",
    "problem_sketch_bank",
    "sketch_grid",
]

#: Default per-VC telemetry budget.  At 8 bytes/point (float32 value +
#: float32 slack) this is ~61 grid points — a quarter of the 65-knot
#: float64 exact curves the service ships today, with the geometric grid
#: spending its resolution where miss curves actually bend.
DEFAULT_SKETCH_BYTES = 512

#: Fixed per-sketch overhead we account for in ``nbytes``: the grid key
#: (grid_max + points) and the float64 peak.
SKETCH_HEADER_BYTES = 24

#: ``grid[1] == grid_max / GRID_SPAN``: the smallest resolved capacity.
#: 4096 mirrors a 64 KiB first way on a 256 MiB LLC.
GRID_SPAN = 4096.0

#: A sketch needs at least two grid points to carry an interval.
MIN_POINTS = 4

# Process-wide grid cache: every sketch of one chip shares one frozen
# grid array, so bank stacking never re-derives or copies grids.
# Registered in tools/analyze/locks.py; the guarded_mapping wrapper adds
# the REPRO_CHECK_LOCKS=1 runtime assertion at zero production cost.
_GRID_LOCK = threading.Lock()
_GRID_CACHE: dict[tuple[float, int], np.ndarray] = guarded_mapping(
    _GRID_LOCK, "sketch grid cache"
)


def points_for_budget(budget_bytes: int) -> int:
    """Grid points affordable under *budget_bytes* (8 bytes per point)."""
    points = (int(budget_bytes) - SKETCH_HEADER_BYTES) // 8
    if points < MIN_POINTS:
        raise ValueError(
            f"sketch budget {budget_bytes}B affords {points} grid points; "
            f"need >= {MIN_POINTS} "
            f"(>= {SKETCH_HEADER_BYTES + 8 * MIN_POINTS}B)"
        )
    return points


def sketch_grid(grid_max: float, points: int) -> np.ndarray:
    """The shared geometric capacity grid for ``(grid_max, points)``.

    ``[0, grid_max/GRID_SPAN, ..., grid_max]`` with geometric spacing —
    the GMON way-capacity layout.  Returned arrays are cached
    process-wide and frozen; callers must treat them as immutable.
    """
    grid_max = float(grid_max)
    points = int(points)
    if grid_max <= 0.0:
        raise ValueError(f"grid_max must be positive, got {grid_max}")
    if points < MIN_POINTS:
        raise ValueError(f"need >= {MIN_POINTS} grid points, got {points}")
    key = (grid_max, points)
    with _GRID_LOCK:
        grid = _GRID_CACHE.get(key)
        if grid is None:
            tail = np.geomspace(
                grid_max / GRID_SPAN, grid_max, points - 1, dtype=np.float64
            )
            tail[-1] = grid_max  # geomspace endpoint is not always exact
            grid = np.concatenate(([0.0], tail))
            grid.setflags(write=False)
            _GRID_CACHE[key] = grid
    return grid


def _freeze(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


def _round_up_f32(exact: np.ndarray) -> np.ndarray:
    """float32 cast of non-negative *exact* that never rounds below it."""
    out = exact.astype(np.float32)
    low = out.astype(np.float64) < exact
    if np.any(low):
        out = np.where(low, np.nextafter(out, np.float32(np.inf)), out)
    return out


def _delta_arrays(
    values_a: np.ndarray,
    slack_a: np.ndarray,
    values_b: np.ndarray,
    slack_b: np.ndarray,
) -> float:
    """Unnormalized sup-distance bound between two same-grid sketches.

    For any capacity x in grid interval i, each true curve lies within
    ``slack[i]`` of its stored chord, and the chords' pointwise gap on
    the interval is at most the larger endpoint gap — so the true curves'
    gap is bounded per interval by ``max(dv[i], dv[i+1]) + sa[i] + sb[i]``
    (tail: ``dv[-1] + sa[-1] + sb[-1]``).
    """
    dv = np.abs(values_a.astype(np.float64) - values_b.astype(np.float64))
    comb = slack_a.astype(np.float64) + slack_b.astype(np.float64)
    body = np.maximum(dv[:-1], dv[1:]) + comb[:-1]
    tail = dv[-1] + comb[-1]
    return float(max(float(np.max(body)), float(tail)))


@dataclass(frozen=True, eq=False)
class MissCurveSketch:
    """A fixed-budget, mergeable summary of one miss curve.

    Built with :meth:`from_curve`; combined with :meth:`merged` /
    :meth:`blended` / :meth:`decayed`; compared with :meth:`delta`;
    materialized with :meth:`to_curve`.  All arrays are frozen.
    """

    grid: np.ndarray
    values: np.ndarray
    slack: np.ndarray
    peak: float
    #: False for sketches derived by merge/blend/decay, whose ``peak``
    #: (and hence delta normalizer) is an estimate, not an exact bound.
    exact: bool = True

    # -- construction --------------------------------------------------------

    @classmethod
    def from_curve(
        cls,
        curve: MissCurve,
        budget_bytes: int = DEFAULT_SKETCH_BYTES,
        grid_max: float | None = None,
        points: int | None = None,
    ) -> "MissCurveSketch":
        """Sketch *curve* on the geometric grid for *grid_max*.

        *grid_max* defaults to the curve's own largest knot; pass the
        chip's LLC capacity so every VC of one chip shares a grid (a
        :class:`SketchBank` requires it).  *points* overrides the
        budget-derived grid size.
        """
        if points is None:
            points = points_for_budget(budget_bytes)
        span = float(grid_max) if grid_max is not None else float(curve.max_size)
        grid = sketch_grid(span, points)

        exact64 = np.asarray(curve(grid), dtype=np.float64)
        values = exact64.astype(np.float32)
        stored64 = values.astype(np.float64)

        # Per-interval sup error of the stored float32 chord against the
        # true curve.  Both are piecewise linear, so their difference is
        # piecewise linear too and peaks at a breakpoint of either: the
        # grid points (where the error is pure float32 quantization) or
        # the curve's own knots.
        slack64 = np.abs(stored64 - exact64)
        # Each grid point's quantization error bounds both intervals it
        # borders; fold the right endpoint into the preceding interval.
        slack64[:-1] = np.maximum(slack64[:-1], slack64[1:])
        knots = np.asarray(curve.sizes, dtype=np.float64)
        knot_true = np.asarray(curve.values, dtype=np.float64)
        knot_chord = np.interp(knots, grid, stored64)
        knot_err = np.abs(knot_true - knot_chord)
        spans = np.clip(
            np.searchsorted(grid, knots, side="right") - 1, 0, points - 1
        )
        np.maximum.at(slack64, spans, knot_err)

        sketch = cls(
            grid=grid,
            values=_freeze(values),
            slack=_freeze(_round_up_f32(slack64)),
            peak=float(np.max(np.asarray(curve.values, dtype=np.float64))),
        )
        return sketch

    # -- telemetry accounting ------------------------------------------------

    @property
    def points(self) -> int:
        return int(self.grid.shape[0])

    @property
    def nbytes(self) -> int:
        """Wire footprint: values + slack payload plus the fixed header."""
        return int(self.values.nbytes + self.slack.nbytes + SKETCH_HEADER_BYTES)

    def cache_key(self) -> tuple:
        """Content identity for :mod:`repro.util.hashing`."""
        return (self.grid, self.values, self.slack, self.peak, self.exact)

    def compatible(self, other: "MissCurveSketch") -> bool:
        """True when both sketches live on the same grid."""
        return self.grid is other.grid or np.array_equal(self.grid, other.grid)

    # -- reconstruction ------------------------------------------------------

    def to_curve(self) -> MissCurve:
        """Materialize the sketch as a (monotone) miss curve."""
        values = np.maximum(self.values.astype(np.float64), 0.0)
        return MissCurve(self.grid, values).monotone_decreasing()

    # -- comparison ----------------------------------------------------------

    def delta(self, other: "MissCurveSketch") -> float:
        """Upper bound on ``curve_distance`` between the source curves.

        Same normalization as :func:`repro.sched.engine.curve_distance`
        (sup gap over the larger curve peak), so thresholding the delta
        is directly comparable with thresholding the exact distance.
        Raises ``ValueError`` on mismatched grids.
        """
        if self is other:
            return 0.0
        if not self.compatible(other):
            raise ValueError(
                f"sketch grids differ ({self.points} pts to "
                f"{float(self.grid[-1]):.0f}B vs {other.points} pts to "
                f"{float(other.grid[-1]):.0f}B); rebuild on a shared grid"
            )
        numerator = _delta_arrays(
            self.values, self.slack, other.values, other.slack
        )
        scale = max(self.peak, other.peak, 1e-12)
        return numerator / scale

    # -- combination ---------------------------------------------------------

    def _combined(
        self, values64: np.ndarray, slack64: np.ndarray, peak: float
    ) -> "MissCurveSketch":
        values = values64.astype(np.float32)
        requant = np.abs(values.astype(np.float64) - values64)
        requant[:-1] = np.maximum(requant[:-1], requant[1:])
        return MissCurveSketch(
            grid=self.grid,
            values=_freeze(values),
            slack=_freeze(_round_up_f32(slack64 + requant)),
            peak=float(peak),
            exact=False,
        )

    def merged(self, other: "MissCurveSketch") -> "MissCurveSketch":
        """Sketch of the summed curves (two VCs folded into one)."""
        if not self.compatible(other):
            raise ValueError("cannot merge sketches on different grids")
        return self._combined(
            self.values.astype(np.float64) + other.values.astype(np.float64),
            self.slack.astype(np.float64) + other.slack.astype(np.float64),
            self.peak + other.peak,
        )

    def decayed(self, factor: float) -> "MissCurveSketch":
        """Sketch of the curve scaled by ``factor`` (heat decay)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"decay factor must be in [0, 1], got {factor}")
        return self._combined(
            self.values.astype(np.float64) * factor,
            self.slack.astype(np.float64) * factor,
            self.peak * factor,
        )

    def blended(
        self, fresh: "MissCurveSketch", decay: float
    ) -> "MissCurveSketch":
        """EWMA of this sketch with *fresh*: ``decay*self + (1-decay)*fresh``.

        The BCache heat-sketch idiom: successive monitor snapshots fade
        geometrically instead of resetting, smoothing phase noise.
        """
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        if not self.compatible(fresh):
            raise ValueError("cannot blend sketches on different grids")
        keep = float(decay)
        take = 1.0 - keep
        return self._combined(
            self.values.astype(np.float64) * keep
            + fresh.values.astype(np.float64) * take,
            self.slack.astype(np.float64) * keep
            + fresh.slack.astype(np.float64) * take,
            self.peak * keep + fresh.peak * take,
        )


class SketchBank:
    """K same-grid sketches stacked for one vectorized all-VC delta.

    Rows keep the per-curve sketch *objects* (identity is meaningful:
    two banks sharing a row object share a source curve, so that row's
    delta is exactly zero without touching the arrays).
    """

    def __init__(self, vc_ids: tuple[int, ...], sketches: tuple[MissCurveSketch, ...]):
        if len(vc_ids) != len(sketches):
            raise ValueError("one sketch per vc id required")
        if sketches:
            grid = sketches[0].grid
            for sketch in sketches[1:]:
                if sketch.grid is not grid and not np.array_equal(
                    sketch.grid, grid
                ):
                    raise ValueError("bank sketches must share one grid")
        self.vc_ids = tuple(int(v) for v in vc_ids)
        self.sketches = tuple(sketches)
        self.index = {vc_id: row for row, vc_id in enumerate(self.vc_ids)}
        points = sketches[0].points if sketches else 0
        self.values2d = _freeze(
            np.stack([s.values for s in sketches])
            if sketches
            else np.zeros((0, points), dtype=np.float32)
        )
        self.slack2d = _freeze(
            np.stack([s.slack for s in sketches])
            if sketches
            else np.zeros((0, points), dtype=np.float32)
        )
        self.peaks = _freeze(
            np.asarray([s.peak for s in sketches], dtype=np.float64)
        )

    @classmethod
    def from_curves(
        cls,
        curves: list[tuple[int, MissCurve]],
        grid_max: float,
        points: int,
    ) -> "SketchBank":
        """Bank for ``[(vc_id, curve), ...]`` on one shared grid.

        Sketches are memoized per curve *object* (keyed by grid), so
        rebuilding a bank over unchanged curves reuses their rows — the
        identity fast path in :meth:`deltas_to` then sees them as clean
        for free.
        """
        sketches = []
        key = (float(grid_max), int(points))
        for _, curve in curves:
            memo = getattr(curve, "_sketch_memo", None)
            if memo is None:
                memo = {}
                curve._sketch_memo = memo
            sketch = memo.get(key)
            if sketch is None:
                sketch = MissCurveSketch.from_curve(
                    curve, grid_max=grid_max, points=points
                )
                memo[key] = sketch
            sketches.append(sketch)
        return cls(tuple(vc_id for vc_id, _ in curves), tuple(sketches))

    @property
    def nbytes(self) -> int:
        return sum(sketch.nbytes for sketch in self.sketches)

    def grid_key(self) -> tuple[float, int] | None:
        if not self.sketches:
            return None
        grid = self.sketches[0].grid
        return (float(grid[-1]), int(grid.shape[0]))

    def deltas_to(self, prev: "SketchBank") -> dict[int, float]:
        """``{vc_id: delta}`` for every id present in both banks.

        One vectorized pass over the stacked arrays; rows whose sketch
        objects are identical short-circuit to exactly 0.0.  Raises
        ``ValueError`` when the banks' grids differ (callers treat that
        as everything-dirty).
        """
        common = [vc_id for vc_id in self.vc_ids if vc_id in prev.index]
        if not common:
            return {}
        if self.grid_key() != prev.grid_key():
            raise ValueError("banks live on different grids")
        rows = np.asarray([self.index[v] for v in common])
        prev_rows = np.asarray([prev.index[v] for v in common])
        same = np.asarray(
            [
                self.sketches[self.index[v]] is prev.sketches[prev.index[v]]
                for v in common
            ]
        )
        va = self.values2d[rows].astype(np.float64)
        vb = prev.values2d[prev_rows].astype(np.float64)
        dv = np.abs(va - vb)
        comb = self.slack2d[rows].astype(np.float64) + prev.slack2d[
            prev_rows
        ].astype(np.float64)
        body = np.maximum(dv[:, :-1], dv[:, 1:]) + comb[:, :-1]
        tail = dv[:, -1] + comb[:, -1]
        numerator = np.maximum(np.max(body, axis=1), tail)
        scale = np.maximum(
            np.maximum(self.peaks[rows], prev.peaks[prev_rows]), 1e-12
        )
        deltas = numerator / scale
        deltas[same] = 0.0
        return {vc_id: float(d) for vc_id, d in zip(common, deltas)}


def problem_sketch_bank(
    problem, budget_bytes: int = DEFAULT_SKETCH_BYTES
) -> SketchBank:
    """The sketch bank of *problem*'s VC curves, memoized on the problem.

    The grid spans the chip's LLC (``problem.total_bytes``), so every VC
    of one chip — and every epoch of one chip — shares a grid.  Because
    :class:`~repro.sim.engine.EpochEngine` reuses the problem object
    across stationary epochs, stationary epochs hit this memo and never
    rebuild the bank (and their per-row identity makes deltas exactly
    zero).
    """
    grid_max = float(problem.total_bytes)
    points = points_for_budget(budget_bytes)
    key = (grid_max, points)
    memo = getattr(problem, "_sketch_banks", None)
    if memo is None:
        memo = {}
        problem._sketch_banks = memo
    bank = memo.get(key)
    if bank is None:
        bank = SketchBank.from_curves(
            [(vc.vc_id, vc.miss_curve) for vc in problem.vcs],
            grid_max,
            points,
        )
        memo[key] = bank
    return bank
