"""Miss-curve monitors: conventional UMONs and the paper's GMONs (Sec IV-G).

Both monitors observe a (sampled) stream of line addresses and maintain a
small LRU tag array with per-way hit counters; the position of a hit in the
LRU stack gives the stack distance, from which a miss curve follows.

* :class:`UMon` is the utility monitor of Qureshi & Patt: every way models
  the same capacity (``cache_size / ways``), so fine granularity over a
  large LLC needs prohibitively many ways (512 for 64 KB grain on 32 MB).

* :class:`GMon` adds a **limit register per way**: when tags shift down the
  stack, a tag whose 16-bit hash exceeds the next way's limit is discarded
  instead of shifted.  This makes the per-way sampling rate decay
  geometrically (rate ``gamma**w`` at way *w*), so each deeper way models
  geometrically more capacity — fine detail at small sizes, full-LLC
  coverage at the tail, with only 64 ways.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cache.miss_curve import MissCurve
from repro.cache.sketch import DEFAULT_SKETCH_BYTES, MissCurveSketch
from repro.util.hashing import mix64, sample_fraction, tag_hash16


class _StackMonitor:
    """Shared machinery: a set-associative array of 16-bit hashed tags kept
    in LRU-stack order per set, with per-way hit counters."""

    def __init__(self, sets: int, ways: int, seed: int):
        if sets <= 0 or ways <= 0:
            raise ValueError("monitor needs positive sets and ways")
        self.sets = sets
        self.ways = ways
        self.seed = seed
        # stacks[s] is a list of hashed tags, most-recently-used first.
        self._stacks: list[list[int]] = [[] for _ in range(sets)]
        self.hit_counters = np.zeros(ways, dtype=np.int64)
        self.sampled_accesses = 0

    def reset(self) -> None:
        self._stacks = [[] for _ in range(self.sets)]
        self.hit_counters[:] = 0
        self.sampled_accesses = 0

    def _set_index(self, address: int) -> int:
        return mix64(address, self.seed + 1) % self.sets

    def _survives(self, tag: int, way: int) -> bool:
        """Whether *tag* survives the shift into *way* (UMONs: always)."""
        return True

    def observe(self, address: int) -> None:
        """Feed one (already sampled) line address to the monitor."""
        self.sampled_accesses += 1
        stack = self._stacks[self._set_index(address)]
        tag = tag_hash16(address, self.seed)
        try:
            depth = stack.index(tag)
        except ValueError:
            depth = -1
        if depth >= 0:
            self.hit_counters[depth] += 1
            del stack[depth]
        # Insert at MRU; shifted tags must survive each way's limit check.
        stack.insert(0, tag)
        # The insertion pushed shallower tags down one way; apply the
        # survival filter top-down, stopping at the first discard (the
        # discard opens a hole, so deeper tags stop shifting -- Sec IV-G).
        # On a hit at depth d only positions 1..d moved; on a miss all did.
        deepest_moved = depth if depth >= 0 else min(len(stack), self.ways) - 1
        for way in range(1, deepest_moved + 1):
            if not self._survives(stack[way], way):
                del stack[way]
                break
        del stack[self.ways :]


class UMon(_StackMonitor):
    """Conventional utility monitor: uniform capacity per way.

    *modeled_capacity* is the full cache capacity the monitor spans (each
    way models ``modeled_capacity / ways`` bytes).  *sample_rate* is the
    fraction of accesses fed to :meth:`access` that are monitored.
    """

    def __init__(
        self,
        modeled_capacity: float,
        ways: int = 256,
        sets: int = 16,
        seed: int = 7,
        line_bytes: int = 64,
    ):
        super().__init__(sets, ways, seed)
        if modeled_capacity <= 0:
            raise ValueError("modeled capacity must be positive")
        self.modeled_capacity = float(modeled_capacity)
        # The sample rate is fixed by the array geometry: a monitor with
        # sets x ways tags modeling `modeled_capacity` bytes must sample
        # raw_capacity / modeled_capacity of the stream so that measured
        # stack distances line up with the claimed per-way capacities.
        raw_capacity = sets * ways * line_bytes
        self.sample_rate = min(1.0, raw_capacity / self.modeled_capacity)
        # Last emitted telemetry sketch (EWMA state for snapshot_sketch).
        self._sketch: MissCurveSketch | None = None

    def reset(self) -> None:
        super().reset()
        self._sketch = None

    def snapshot_sketch(
        self,
        budget_bytes: int = DEFAULT_SKETCH_BYTES,
        per_kilo_instructions: float | None = None,
        decay: float = 0.0,
        grid_max: float | None = None,
    ) -> MissCurveSketch:
        """Emit the monitored curve as a bounded-memory telemetry sketch.

        This is the monitor's native streaming output: a fixed
        *budget_bytes* summary of :meth:`miss_curve` on the geometric
        grid spanning *grid_max* (default: the monitor's modeled
        capacity; pass the chip's LLC size so sketches from every
        monitor share a grid).  With ``decay > 0`` successive snapshots
        are EWMA-blended (``decay * previous + (1-decay) * fresh``) —
        decayed per-way heat instead of a hard reset between epochs.
        """
        fresh = MissCurveSketch.from_curve(
            self.miss_curve(per_kilo_instructions),
            budget_bytes=budget_bytes,
            grid_max=grid_max if grid_max is not None else self.modeled_capacity,
        )
        if decay > 0.0 and self._sketch is not None and self._sketch.compatible(
            fresh
        ):
            fresh = self._sketch.blended(fresh, decay)
        self._sketch = fresh
        return fresh

    def access(self, address: int) -> None:
        """Feed a raw access; hash-sampling decides whether it is monitored."""
        if sample_fraction(address, self.sample_rate, self.seed + 2):
            self.observe(address)

    def way_capacities(self) -> np.ndarray:
        """Capacity modeled by each way (uniform for UMONs)."""
        return np.full(self.ways, self.modeled_capacity / self.ways)

    def way_weights(self) -> np.ndarray:
        """How many real hits each counted hit represents (uniform)."""
        return np.full(self.ways, 1.0 / self.sample_rate)

    def miss_curve(self, per_kilo_instructions: float | None = None) -> MissCurve:
        """Extract the monitored miss curve.

        Point *k* gives the misses if the stream ran in a cache of the
        cumulative capacity of ways ``0..k``; by stack inclusion these are
        ``total - hits_at_or_above(k)``.  If *per_kilo_instructions* is
        given, counts are divided by it (yielding MPKI).
        """
        weights = self.way_weights()
        total = self.sampled_accesses * (1.0 / self.sample_rate)
        cum_caps = np.cumsum(self.way_capacities())
        cum_hits = np.cumsum(self.hit_counters * weights)
        misses = np.maximum(total - cum_hits, 0.0)
        sizes = np.concatenate(([0.0], cum_caps))
        values = np.concatenate(([total], misses))
        if per_kilo_instructions:
            values = values / per_kilo_instructions
        return MissCurve(sizes, values).monotone_decreasing()


class GMon(UMon):
    """Geometric monitor (Sec IV-G).

    The per-way survival probability *gamma* makes the sampling rate at way
    *w* equal ``sample_rate * gamma**w``, so way *w* models
    ``raw_way_capacity / (sample_rate * gamma**w)`` bytes.  With 1024 tags,
    64 ways, a 1/64 sample rate and gamma ~ 0.95, coverage spans 64 KB to a
    full 32 MB LLC (the paper's 26x growth across ways).
    """

    def __init__(
        self,
        first_way_capacity: float,
        total_capacity: float,
        ways: int = 64,
        sets: int = 16,
        seed: int = 7,
        line_bytes: int = 64,
    ):
        if first_way_capacity <= 0 or total_capacity < first_way_capacity:
            raise ValueError("need 0 < first_way_capacity <= total_capacity")
        super().__init__(
            modeled_capacity=total_capacity,
            ways=ways,
            sets=sets,
            seed=seed,
            line_bytes=line_bytes,
        )
        # Geometric monitors sample at the *first way's* rate; deeper ways
        # thin the stream further via the limit registers.
        raw_way_capacity = sets * line_bytes  # tags per way x line size
        self.sample_rate = min(1.0, raw_way_capacity / first_way_capacity)
        self.gamma = solve_gamma(first_way_capacity, total_capacity, ways)
        # Per-way survival limits (hash < limit survives), as 16-bit values.
        self._limits = [
            int(min(1.0, self.gamma) * 0xFFFF) for _ in range(ways)
        ]
        self._first_way_capacity = float(first_way_capacity)

    def _survives(self, tag: int, way: int) -> bool:
        # An independent hash of the tag decides survival into `way`; using
        # the tag itself would correlate survival with set indexing.
        return (mix64(tag, self.seed + 3 + way) & 0xFFFF) <= self._limits[way]

    def way_capacities(self) -> np.ndarray:
        rates = self.sample_rate * np.power(self.gamma, np.arange(self.ways))
        raw = self._first_way_capacity * self.sample_rate  # == sets*line_bytes
        return raw / rates

    def way_weights(self) -> np.ndarray:
        rates = self.sample_rate * np.power(self.gamma, np.arange(self.ways))
        return 1.0 / rates


def solve_gamma(
    first_way_capacity: float, total_capacity: float, ways: int
) -> float:
    """Choose gamma so *ways* geometric ways cover *total_capacity*.

    Solves ``first * sum(gamma**-w for w in 0..ways-1) = total`` by
    bisection on gamma in (0, 1].  gamma = 1 degenerates to a UMON.
    """
    target = total_capacity / first_way_capacity
    if target <= ways:  # uniform ways already cover it
        return 1.0

    def coverage(gamma: float) -> float:
        return float(np.sum(np.power(gamma, -np.arange(ways))))

    lo, hi = 0.5, 1.0
    while coverage(lo) < target:
        lo *= 0.9
        if lo < 1e-3:
            raise ValueError("cannot cover total capacity with these ways")
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if coverage(mid) >= target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def required_umon_ways(
    total_capacity: float, granularity: float
) -> int:
    """Ways a conventional UMON needs for *granularity* resolution over
    *total_capacity* (the paper's example: 32 MB / 64 KB = 512 ways)."""
    return math.ceil(total_capacity / granularity)
