"""Partitioned LLC banks.

The paper partitions each 512 KB bank into up to 64 line-granularity
partitions using Vantage [53].  Vantage's value is that it enforces
partition sizes with negligible hardware and near-full associativity; its
*behavioral contract* — each partition behaves like an isolated cache of
its configured size — is what CDCS builds on.  We implement that contract
directly: each bank holds named partitions, each an LRU cache with a
line-count quota (see the substitution notes in docs/ARCHITECTURE.md).

Banks also expose the hooks reconfiguration needs (Sec IV-H): lines can be
extracted ("moved") with their coherence state, partitions can be resized
or retired, and a background walker can scan the array incrementally.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class BankStats:
    """Per-bank access counters (monotonic; snapshot-diff for intervals)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    moves_out: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


@dataclass
class _Partition:
    quota_lines: int
    lru: "OrderedDict[int, bool]" = field(default_factory=OrderedDict)
    # values are dirty bits; OrderedDict preserves LRU order (MRU last).


class PartitionedBank:
    """One LLC bank: a set of partitions, each an LRU cache with a quota.

    Addresses are line addresses (already shifted; the bank never sees byte
    offsets).  A line lives in exactly one partition of one bank — the VTB
    guarantees a single lookup location (Sec III).
    """

    def __init__(self, bank_id: int, capacity_lines: int):
        if capacity_lines <= 0:
            raise ValueError("bank capacity must be positive")
        self.bank_id = bank_id
        self.capacity_lines = capacity_lines
        self._partitions: dict[int, _Partition] = {}
        self.stats = BankStats()

    # -- configuration ------------------------------------------------------

    def configure_partition(
        self, partition_id: int, quota_lines: int, lazy: bool = False
    ) -> None:
        """Create or resize a partition.

        With ``lazy=False``, shrinking below current occupancy evicts LRU
        lines immediately.  With ``lazy=True`` (reconfigurations), resident
        lines stay put even above the new quota — Vantage demotes lazily,
        and during incremental reconfigurations the overflow drains through
        demand moves and background invalidations instead (Sec IV-H).
        The sum of quotas may not exceed the bank capacity.
        """
        if quota_lines < 0:
            raise ValueError("quota cannot be negative")
        other = sum(
            p.quota_lines for pid, p in self._partitions.items() if pid != partition_id
        )
        if other + quota_lines > self.capacity_lines:
            raise ValueError(
                f"bank {self.bank_id}: quotas {other + quota_lines} exceed "
                f"capacity {self.capacity_lines}"
            )
        part = self._partitions.get(partition_id)
        if part is None:
            if quota_lines == 0:
                return
            self._partitions[partition_id] = _Partition(quota_lines)
            return
        part.quota_lines = quota_lines
        if not lazy:
            while len(part.lru) > quota_lines:
                part.lru.popitem(last=False)
                self.stats.evictions += 1
        if quota_lines == 0 and not part.lru:
            del self._partitions[partition_id]

    def drop_partition(self, partition_id: int) -> int:
        """Invalidate a whole partition; returns lines invalidated."""
        part = self._partitions.pop(partition_id, None)
        if part is None:
            return 0
        count = len(part.lru)
        self.stats.invalidations += count
        return count

    def partition_ids(self) -> list[int]:
        return sorted(self._partitions)

    def quota(self, partition_id: int) -> int:
        part = self._partitions.get(partition_id)
        return part.quota_lines if part else 0

    def occupancy(self, partition_id: int | None = None) -> int:
        """Lines resident in one partition (or the whole bank)."""
        if partition_id is not None:
            part = self._partitions.get(partition_id)
            return len(part.lru) if part else 0
        return sum(len(p.lru) for p in self._partitions.values())

    # -- access path --------------------------------------------------------

    def access(self, line_addr: int, partition_id: int, write: bool = False) -> bool:
        """Look up *line_addr* in *partition_id*; fill on miss.

        Returns True on hit.  A miss inserts the line, evicting the
        partition's LRU line if the partition is at quota (no interference
        across partitions — the Vantage contract).
        """
        part = self._partitions.get(partition_id)
        if part is None:
            raise KeyError(
                f"bank {self.bank_id} has no partition {partition_id}"
            )
        if line_addr in part.lru:
            self.stats.hits += 1
            dirty = part.lru.pop(line_addr) or write
            part.lru[line_addr] = dirty
            return True
        self.stats.misses += 1
        self._insert(part, line_addr, write)
        return False

    def probe(self, line_addr: int, partition_id: int) -> bool:
        """Lookup without side effects (no fill, no LRU update, no stats)."""
        part = self._partitions.get(partition_id)
        return part is not None and line_addr in part.lru

    def fill(self, line_addr: int, partition_id: int, dirty: bool = False) -> None:
        """Insert a line without counting an access (used by moves)."""
        part = self._partitions.get(partition_id)
        if part is None:
            raise KeyError(f"bank {self.bank_id} has no partition {partition_id}")
        if line_addr in part.lru:
            prev = part.lru.pop(line_addr)
            part.lru[line_addr] = prev or dirty
            return
        self._insert(part, line_addr, dirty)

    def _insert(self, part: _Partition, line_addr: int, dirty: bool) -> None:
        if part.quota_lines == 0:
            return  # zero-quota partitions hold nothing (bypass)
        while len(part.lru) >= part.quota_lines:
            part.lru.popitem(last=False)
            self.stats.evictions += 1
        part.lru[line_addr] = dirty
        self.stats.insertions += 1

    def extract(self, line_addr: int, partition_id: int) -> bool | None:
        """Remove a line, returning its dirty state (None if absent).

        This is the "MOVE response" of Fig 10a: the old bank hands the line
        and its coherence state to the new bank and invalidates its copy.
        """
        part = self._partitions.get(partition_id)
        if part is None or line_addr not in part.lru:
            return None
        dirty = part.lru.pop(line_addr)
        self.stats.moves_out += 1
        return dirty

    def invalidate(self, line_addr: int, partition_id: int) -> bool:
        """Invalidate one line; returns True if it was present."""
        part = self._partitions.get(partition_id)
        if part is None or line_addr not in part.lru:
            return False
        part.lru.pop(line_addr)
        self.stats.invalidations += 1
        return True

    # -- walking (for background invalidations, Sec IV-H) --------------------

    def resident_lines(self, partition_id: int) -> list[int]:
        """Snapshot of line addresses in a partition, LRU order first."""
        part = self._partitions.get(partition_id)
        if part is None:
            return []
        return list(part.lru)

    def all_lines(self) -> list[tuple[int, int]]:
        """Snapshot of (partition_id, line_addr) for every resident line."""
        out: list[tuple[int, int]] = []
        for pid, part in self._partitions.items():
            out.extend((pid, addr) for addr in part.lru)
        return out
