"""Miss curves: misses-per-kilo-instruction as a function of cache capacity.

Miss curves are the currency of every allocation decision in the paper
(Fig 2, Sec IV-C).  A :class:`MissCurve` is a piecewise-linear function
sampled at increasing capacities; it supports interpolation, scaling,
convex minorants (what Lookahead/Peekahead allocate over), and combination
of curves (for modeling unpartitioned sharing).

Capacities are in **bytes**; values are in **misses per kilo-instruction**
(or any other per-unit rate — monitors produce miss *counts* per interval,
which behave identically).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


class MissCurve:
    """Piecewise-linear, non-negative function of capacity.

    Points must have strictly increasing sizes.  Evaluation clamps outside
    the sampled range (constant extrapolation), matching how monitors with
    finite coverage are used.
    """

    def __init__(self, sizes: Sequence[float], values: Sequence[float]):
        sizes_arr = np.asarray(sizes, dtype=np.float64)
        values_arr = np.asarray(values, dtype=np.float64)
        if sizes_arr.ndim != 1 or sizes_arr.shape != values_arr.shape:
            raise ValueError("sizes and values must be 1-D and equal length")
        if len(sizes_arr) == 0:
            raise ValueError("miss curve needs at least one point")
        if np.any(np.diff(sizes_arr) <= 0):
            raise ValueError("sizes must be strictly increasing")
        if np.any(values_arr < 0):
            raise ValueError("miss rates cannot be negative")
        if sizes_arr[0] < 0:
            raise ValueError("sizes cannot be negative")
        self.sizes = sizes_arr
        self.values = values_arr

    # -- evaluation ---------------------------------------------------------

    def __call__(self, size: float | np.ndarray) -> float | np.ndarray:
        """Miss rate at *size* (linear interpolation, clamped ends)."""
        result = np.interp(size, self.sizes, self.values)
        if np.isscalar(size):
            return float(result)
        return result

    def cache_key(self) -> tuple:
        """Content identity for the runner's result cache (the sampled
        points fully determine the curve)."""
        return (self.sizes, self.values)

    @property
    def max_size(self) -> float:
        return float(self.sizes[-1])

    @property
    def min_value(self) -> float:
        return float(self.values.min())

    def misses_at(self, size: float) -> float:
        """Alias for ``self(size)`` that reads better at call sites."""
        return float(self(size))

    # -- transforms ---------------------------------------------------------

    def scaled(self, factor: float) -> "MissCurve":
        """Scale the miss rate (e.g. convert MPKI to misses/cycle)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return MissCurve(self.sizes, self.values * factor)

    def scaled_sizes(self, factor: float) -> "MissCurve":
        """Scale the capacity axis (used to shrink workloads for scaled-down
        trace simulations: a cache at 1/k capacity with a curve at 1/k sizes
        behaves identically)."""
        if factor <= 0:
            raise ValueError("size scale factor must be positive")
        return MissCurve(self.sizes * factor, self.values)

    def effective_footprint(self, tolerance: float = 0.05) -> float:
        """Smallest size at which the curve is within *tolerance* of its
        floor (relative to its total drop) — the app's working set."""
        floor = self.values.min()
        drop = self.values[0] - floor
        if drop <= 0:
            return float(self.sizes[0])
        threshold = floor + tolerance * drop
        for size, value in zip(self.sizes, self.values):
            if value <= threshold:
                return float(size)
        return float(self.sizes[-1])

    def resampled(self, sizes: Sequence[float]) -> "MissCurve":
        """Resample onto a new (strictly increasing) size grid."""
        sizes_arr = np.asarray(sizes, dtype=np.float64)
        return MissCurve(sizes_arr, np.asarray(self(sizes_arr)))

    def monotone_decreasing(self) -> "MissCurve":
        """Running minimum of the curve.

        Real workloads' miss curves are non-increasing, but *monitored*
        curves are noisy; allocation assumes more capacity never hurts
        misses, so monitored curves are cleaned up with this first.
        """
        return MissCurve(self.sizes, np.minimum.accumulate(self.values))

    def convex_points(self) -> tuple[np.ndarray, np.ndarray]:
        """Vertices of the lower convex hull (the convex minorant).

        Lookahead-style allocation walks the hull: hull segments give the
        best achievable marginal miss reduction per byte at each size, which
        is what Peekahead exploits to run in linear time [Jigsaw, Talus].
        """
        xs, ys = self.sizes, self.values
        hull_x: list[float] = [float(xs[0])]
        hull_y: list[float] = [float(ys[0])]
        for x, y in zip(xs[1:], ys[1:]):
            hull_x.append(float(x))
            hull_y.append(float(y))
            # Pop middle points that lie above the chord (cross-product test).
            while len(hull_x) >= 3:
                x0, y0 = hull_x[-3], hull_y[-3]
                x1, y1 = hull_x[-2], hull_y[-2]
                x2, y2 = hull_x[-1], hull_y[-1]
                if (y1 - y0) * (x2 - x1) <= (y2 - y1) * (x1 - x0) + 1e-12:
                    break
                del hull_x[-2]
                del hull_y[-2]
        return np.asarray(hull_x), np.asarray(hull_y)

    def convex_hull(self) -> "MissCurve":
        """The convex minorant as a new curve."""
        xs, ys = self.convex_points()
        return MissCurve(xs, ys)

    # -- combination --------------------------------------------------------

    def __add__(self, other: "MissCurve") -> "MissCurve":
        """Pointwise sum on the union grid (total misses if both streams had
        the same capacity — used to aggregate threads sharing a VC)."""
        grid = np.union1d(self.sizes, other.sizes)
        return MissCurve(grid, np.asarray(self(grid)) + np.asarray(other(grid)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MissCurve):
            return NotImplemented
        return (
            self.sizes.shape == other.sizes.shape
            and bool(np.allclose(self.sizes, other.sizes))
            and bool(np.allclose(self.values, other.values))
        )

    def __hash__(self) -> int:  # curves are mutable-free; hash by identity
        return id(self)

    def __repr__(self) -> str:
        return (
            f"MissCurve({len(self.sizes)} pts, "
            f"[{self.sizes[0]:.0f}..{self.sizes[-1]:.0f}] B, "
            f"{self.values[0]:.2f}->{self.values[-1]:.2f})"
        )


def flat_curve(max_size: float, value: float) -> MissCurve:
    """A capacity-insensitive (streaming) curve, e.g. milc in Fig 2."""
    return MissCurve([0.0, max_size], [value, value])


def cliff_curve(
    max_size: float,
    base_mpki: float,
    cliff_size: float,
    after_mpki: float,
    cliff_sharpness: float = 0.05,
) -> MissCurve:
    """A working-set "cliff" curve, e.g. omnet in Fig 2: high misses until
    the footprint fits, then a sharp drop to *after_mpki*.

    *cliff_sharpness* is the fraction of *cliff_size* over which the drop
    happens (real cliffs are steep but not vertical).
    """
    if not 0 < cliff_size <= max_size:
        raise ValueError("cliff must lie inside (0, max_size]")
    drop_start = cliff_size * (1.0 - cliff_sharpness)
    sizes = [0.0, drop_start, cliff_size]
    values = [base_mpki, base_mpki, after_mpki]
    if cliff_size < max_size:
        sizes.append(max_size)
        values.append(after_mpki)
    return MissCurve(sizes, values)


def exponential_curve(
    max_size: float,
    base_mpki: float,
    floor_mpki: float,
    half_size: float,
    points: int = 65,
) -> MissCurve:
    """A smoothly-decaying curve (friendly apps): misses halve every
    *half_size* bytes of capacity, floored at *floor_mpki*."""
    if half_size <= 0:
        raise ValueError("half_size must be positive")
    sizes = np.linspace(0.0, max_size, points)
    values = floor_mpki + (base_mpki - floor_mpki) * np.power(0.5, sizes / half_size)
    return MissCurve(sizes, values)
