"""Miss curves: misses-per-kilo-instruction as a function of cache capacity.

Miss curves are the currency of every allocation decision in the paper
(Fig 2, Sec IV-C).  A :class:`MissCurve` is a piecewise-linear function
sampled at increasing capacities; it supports interpolation, scaling,
convex minorants (what Lookahead/Peekahead allocate over), and combination
of curves (for modeling unpartitioned sharing).

Capacities are in **bytes**; values are in **misses per kilo-instruction**
(or any other per-unit rate — monitors produce miss *counts* per interval,
which behave identically).

Shape conventions
-----------------
:class:`MissCurveBatch` packs ``K`` curves into padded ``float64`` arrays
so every VC's curve is evaluated in one NumPy call:

* ``sizes2d``, ``values2d`` — ``(K, P)``; rows are the sampled points of
  each curve, right-padded by repeating the last point (``P`` is the
  longest curve's point count; padding preserves clamped extrapolation);
* ``lengths`` — ``(K,) int64``; each row's true point count;
* ``batch(x)`` with scalar or ``(K,)`` *x* returns ``(K,)`` (one query per
  curve); ``batch.at_grid(grid)`` with a ``(Q,)`` grid returns ``(K, Q)``
  (all curves on a shared capacity grid).

Batch evaluation is bitwise-identical to per-curve ``np.interp`` (it runs
the same ``slope * (x - x0) + y0`` arithmetic), which the equivalence
tests assert exactly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


class MissCurve:
    """Piecewise-linear, non-negative function of capacity.

    Points must have strictly increasing sizes.  Evaluation clamps outside
    the sampled range (constant extrapolation), matching how monitors with
    finite coverage are used.
    """

    def __init__(self, sizes: Sequence[float], values: Sequence[float]):
        sizes_arr = np.asarray(sizes, dtype=np.float64)
        values_arr = np.asarray(values, dtype=np.float64)
        if sizes_arr.ndim != 1 or sizes_arr.shape != values_arr.shape:
            raise ValueError("sizes and values must be 1-D and equal length")
        if len(sizes_arr) == 0:
            raise ValueError("miss curve needs at least one point")
        if np.any(np.diff(sizes_arr) <= 0):
            raise ValueError("sizes must be strictly increasing")
        if np.any(values_arr < 0):
            raise ValueError("miss rates cannot be negative")
        if sizes_arr[0] < 0:
            raise ValueError("sizes cannot be negative")
        self.sizes = sizes_arr
        self.values = values_arr

    # -- evaluation ---------------------------------------------------------

    def __call__(self, size: float | np.ndarray) -> float | np.ndarray:
        """Miss rate at *size* (linear interpolation, clamped ends)."""
        result = np.interp(size, self.sizes, self.values)
        if np.isscalar(size):
            return float(result)
        return result

    def cache_key(self) -> tuple:
        """Content identity for the runner's result cache (the sampled
        points fully determine the curve)."""
        return (self.sizes, self.values)

    @property
    def max_size(self) -> float:
        return float(self.sizes[-1])

    @property
    def min_value(self) -> float:
        return float(self.values.min())

    def misses_at(self, size: float) -> float:
        """Alias for ``self(size)`` that reads better at call sites."""
        return float(self(size))

    # -- transforms ---------------------------------------------------------

    def scaled(self, factor: float) -> "MissCurve":
        """Scale the miss rate (e.g. convert MPKI to misses/cycle)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return MissCurve(self.sizes, self.values * factor)

    def scaled_sizes(self, factor: float) -> "MissCurve":
        """Scale the capacity axis (used to shrink workloads for scaled-down
        trace simulations: a cache at 1/k capacity with a curve at 1/k sizes
        behaves identically)."""
        if factor <= 0:
            raise ValueError("size scale factor must be positive")
        return MissCurve(self.sizes * factor, self.values)

    def effective_footprint(self, tolerance: float = 0.05) -> float:
        """Smallest size at which the curve is within *tolerance* of its
        floor (relative to its total drop) — the app's working set."""
        floor = self.values.min()
        drop = self.values[0] - floor
        if drop <= 0:
            return float(self.sizes[0])
        threshold = floor + tolerance * drop
        for size, value in zip(self.sizes, self.values):
            if value <= threshold:
                return float(size)
        return float(self.sizes[-1])

    def resampled(self, sizes: Sequence[float]) -> "MissCurve":
        """Resample onto a new (strictly increasing) size grid."""
        sizes_arr = np.asarray(sizes, dtype=np.float64)
        return MissCurve(sizes_arr, np.asarray(self(sizes_arr)))

    def monotone_decreasing(self) -> "MissCurve":
        """Running minimum of the curve.

        Real workloads' miss curves are non-increasing, but *monitored*
        curves are noisy; allocation assumes more capacity never hurts
        misses, so monitored curves are cleaned up with this first.
        """
        return MissCurve(self.sizes, np.minimum.accumulate(self.values))

    def convex_points(self) -> tuple[np.ndarray, np.ndarray]:
        """Vertices of the lower convex hull (the convex minorant).

        Lookahead-style allocation walks the hull: hull segments give the
        best achievable marginal miss reduction per byte at each size, which
        is what Peekahead exploits to run in linear time [Jigsaw, Talus].
        """
        xs, ys = self.sizes, self.values
        hull_x: list[float] = [float(xs[0])]
        hull_y: list[float] = [float(ys[0])]
        for x, y in zip(xs[1:], ys[1:]):
            hull_x.append(float(x))
            hull_y.append(float(y))
            # Pop middle points that lie above the chord (cross-product test).
            while len(hull_x) >= 3:
                x0, y0 = hull_x[-3], hull_y[-3]
                x1, y1 = hull_x[-2], hull_y[-2]
                x2, y2 = hull_x[-1], hull_y[-1]
                if (y1 - y0) * (x2 - x1) <= (y2 - y1) * (x1 - x0) + 1e-12:
                    break
                del hull_x[-2]
                del hull_y[-2]
        return np.asarray(hull_x), np.asarray(hull_y)

    def convex_hull(self) -> "MissCurve":
        """The convex minorant as a new curve."""
        xs, ys = self.convex_points()
        return MissCurve(xs, ys)

    # -- combination --------------------------------------------------------

    def __add__(self, other: "MissCurve") -> "MissCurve":
        """Pointwise sum on the union grid (total misses if both streams had
        the same capacity — used to aggregate threads sharing a VC)."""
        grid = np.union1d(self.sizes, other.sizes)
        return MissCurve(grid, np.asarray(self(grid)) + np.asarray(other(grid)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MissCurve):
            return NotImplemented
        return (
            self.sizes.shape == other.sizes.shape
            and bool(np.allclose(self.sizes, other.sizes))
            and bool(np.allclose(self.values, other.values))
        )

    def __hash__(self) -> int:  # curves are mutable-free; hash by identity
        return id(self)

    def __repr__(self) -> str:
        return (
            f"MissCurve({len(self.sizes)} pts, "
            f"[{self.sizes[0]:.0f}..{self.sizes[-1]:.0f}] B, "
            f"{self.values[0]:.2f}->{self.values[-1]:.2f})"
        )


class MissCurveBatch:
    """K miss curves evaluated together with one NumPy call per query set.

    The batch is immutable and cheap to build (one pass over the curves);
    build it once per placement problem and reuse it across epochs.  See
    the module docstring for the shape conventions.

    *arg_scale* / *value_divisor* (optional ``(K,)`` vectors) evaluate row
    *i* as ``curve_i(x * arg_scale[i]) / value_divisor[i]`` — the slice
    transform R-NUCA applies to chip-spread shared VCs (a VC interleaved
    over N banks behaves per bank as 1/N of the accesses over 1/N of the
    data).  The scale is applied before the segment search and the divisor
    after, exactly like the scalar closure, so bitwise equivalence holds.
    """

    def __init__(
        self,
        curves: Sequence[MissCurve],
        arg_scale: Sequence[float] | None = None,
        value_divisor: Sequence[float] | None = None,
    ):
        if len(curves) == 0:
            raise ValueError("batch needs at least one curve")
        self.curves = list(curves)
        k = len(self.curves)
        # >= 2 columns so segment indexing (j, j+1) is always in bounds,
        # even when every curve is a single point.
        p = max(2, max(len(c.sizes) for c in self.curves))
        # Pack into locals first; the banks only become shared (and are
        # frozen) once published on self at the end of construction.
        lengths = np.array([len(c.sizes) for c in self.curves], dtype=np.int64)
        sizes2d = np.empty((k, p), dtype=np.float64)
        values2d = np.empty((k, p), dtype=np.float64)
        for i, curve in enumerate(self.curves):
            n = len(curve.sizes)
            sizes2d[i, :n] = curve.sizes
            sizes2d[i, n:] = curve.sizes[-1]
            values2d[i, :n] = curve.values
            values2d[i, n:] = curve.values[-1]
        self.lengths = lengths
        self.sizes2d = sizes2d
        self.values2d = values2d
        self._arg_scale = None
        if arg_scale is not None:
            self._arg_scale = np.asarray(arg_scale, dtype=np.float64)
            if self._arg_scale.shape != (k,):
                raise ValueError("arg_scale must be one factor per curve")
        self._value_divisor = None
        if value_divisor is not None:
            self._value_divisor = np.asarray(value_divisor, dtype=np.float64)
            if self._value_divisor.shape != (k,):
                raise ValueError("value_divisor must be one divisor per curve")
        self._rows = np.arange(k)
        # Highest valid segment index per row (0 for single-point curves,
        # whose every query the clamp masks resolve).
        self._seg_hi = np.maximum(self.lengths - 2, 0)
        self._first_x = self.sizes2d[:, 0]
        self._first_y = self.values2d[:, 0]
        self._last_x = self.sizes2d[self._rows, self.lengths - 1]
        self._last_y = self.values2d[self._rows, self.lengths - 1]
        self._freeze_banks()

    def _freeze_banks(self) -> None:
        """Publish the packed banks read-only.  Batches are shared across
        schemes, epochs, and (via mega-batching) whole job groups; an
        in-place write would corrupt every later query, so mutation must
        fail loudly at the write site (see docs/ANALYSIS.md)."""
        self.lengths.flags.writeable = False
        self.sizes2d.flags.writeable = False
        self.values2d.flags.writeable = False

    def __len__(self) -> int:
        return len(self.curves)

    def take(self, indices: Sequence[int] | np.ndarray) -> "MissCurveBatch":
        """Row-subset batch: lane ``i`` of the result is lane
        ``indices[i]`` of this batch (transforms included).

        Every per-lane quantity is sliced from the parent's arrays, so a
        query against the subset runs arithmetic element-for-element equal
        to the same lanes of the full batch — the padded width ``P`` is
        shared and padding never affects results.  The sharing solver uses
        this to iterate only the lanes of pressured groups.
        """
        idx = np.asarray(indices, dtype=np.int64)
        sub = object.__new__(MissCurveBatch)
        sub.curves = [self.curves[i] for i in idx]
        sub.lengths = self.lengths[idx]
        sub.sizes2d = self.sizes2d[idx]
        sub.values2d = self.values2d[idx]
        sub._arg_scale = (
            None if self._arg_scale is None else self._arg_scale[idx]
        )
        sub._value_divisor = (
            None if self._value_divisor is None else self._value_divisor[idx]
        )
        sub._rows = np.arange(len(idx))
        sub._seg_hi = self._seg_hi[idx]
        sub._first_x = self._first_x[idx]
        sub._first_y = self._first_y[idx]
        sub._last_x = self._last_x[idx]
        sub._last_y = self._last_y[idx]
        sub._freeze_banks()
        return sub

    @staticmethod
    def _interp(queries, x0, x1, y0, y1):
        """np.interp's segment arithmetic: ``slope * (x - x0) + y0`` with
        ``slope = (y1 - y0) / (x1 - x0)`` — bitwise what the scalar path
        computes curve by curve.  Degenerate segments only occur in
        padding / single-point rows, all of which the end masks overwrite;
        the division is guarded so no warning fires for discarded lanes."""
        denom = x1 - x0
        slope = (y1 - y0) / np.where(denom == 0.0, 1.0, denom)
        return slope * (queries - x0) + y0

    def __call__(self, sizes: float | np.ndarray) -> np.ndarray:
        """Evaluate each curve at its own query -> (K,).

        *sizes* is a scalar (shared by all curves) or a (K,) vector (one
        capacity per curve) — the batched form of ``curve(size)`` used by
        the sharing fixed point and Eq 1.
        """
        q = np.asarray(sizes, dtype=np.float64)
        if q.ndim == 0:
            q = np.full(len(self.curves), float(q))
        if q.shape != (len(self.curves),):
            raise ValueError(
                f"expected scalar or ({len(self.curves)},) queries, "
                f"got shape {q.shape}"
            )
        if self._arg_scale is not None:
            q = q * self._arg_scale
        # Segment index: number of knots <= x, minus one, clamped to the
        # row's true segments.  Padded knots equal the last real knot, so
        # they are only counted when x lies past the end — which the
        # clamp-to-last mask below handles anyway.
        j = (self.sizes2d <= q[:, None]).sum(axis=1) - 1
        j = np.minimum(np.maximum(j, 0), self._seg_hi)
        rows = self._rows
        result = self._interp(
            q,
            self.sizes2d[rows, j],
            self.sizes2d[rows, j + 1],
            self.values2d[rows, j],
            self.values2d[rows, j + 1],
        )
        result = np.where(q <= self._first_x, self._first_y, result)
        result = np.where(q >= self._last_x, self._last_y, result)
        if self._value_divisor is not None:
            result = result / self._value_divisor
        return result

    def balance_bisect(
        self,
        pressure: float | np.ndarray,
        capacity: float | np.ndarray,
        iters: int,
    ) -> np.ndarray:
        """Lockstep bisection of ``m(o) = pressure * o`` per lane -> (K,).

        The inner loop of the sharing fixed point, with the per-iteration
        evaluation inlined: each round runs exactly ``__call__``'s
        arithmetic (same operations, same order, so results stay bitwise
        equal to ``batch(mid)``) without re-resolving attributes or
        re-validating shapes 60 times.  Returns the midpoint of the final
        bracket; lanes that an early-exit rule covers (zero curves,
        at-capacity lanes) return whatever the bracket converges to and
        must be masked by the caller, as before.
        """
        k = len(self.curves)
        lo = np.zeros(k)
        hi = np.full(k, capacity, dtype=np.float64)
        sizes2d, values2d = self.sizes2d, self.values2d
        sizes_flat, values_flat = sizes2d.ravel(), values2d.ravel()
        row_base = self._rows * sizes2d.shape[1]  # flat offsets of column 0
        seg_hi = self._seg_hi
        first_x, first_y = self._first_x, self._first_y
        last_x, last_y = self._last_x, self._last_y
        arg_scale, divisor = self._arg_scale, self._value_divisor
        for _ in range(iters):
            mid = 0.5 * (lo + hi)
            q = mid if arg_scale is None else mid * arg_scale
            j = (sizes2d <= q[:, None]).sum(axis=1) - 1
            flat = row_base + j.clip(0, seg_hi)
            x0 = sizes_flat.take(flat)
            y0 = values_flat.take(flat)
            denom = sizes_flat.take(flat + 1) - x0
            slope = (values_flat.take(flat + 1) - y0) / np.where(
                denom == 0.0, 1.0, denom
            )
            val = slope * (q - x0) + y0
            val = np.where(q <= first_x, first_y, val)
            val = np.where(q >= last_x, last_y, val)
            if divisor is not None:
                val = val / divisor
            cond = val >= pressure * mid
            lo = np.where(cond, mid, lo)
            hi = np.where(cond, hi, mid)
        return 0.5 * (lo + hi)

    def at_grid(self, grid: Sequence[float] | np.ndarray) -> np.ndarray:
        """Evaluate every curve on a shared capacity grid -> (K, Q).

        The matrix form of ``[curve(grid) for curve in curves]`` that
        batched allocation uses to build all latency curves at once.  Each
        row is one fused ``np.interp`` pass over the whole grid — for
        grid-shaped queries that single C kernel beats any composition of
        elementwise array ops, and row-for-row bitwise equality with the
        scalar path is free.  (The per-curve-query form in ``__call__`` is
        where the one-call batched search pays off.)
        """
        g = np.asarray(grid, dtype=np.float64)
        if g.ndim != 1:
            raise ValueError(f"grid must be 1-D, got shape {g.shape}")
        out = np.empty((len(self.curves), len(g)), dtype=np.float64)
        for i, curve in enumerate(self.curves):
            q = g if self._arg_scale is None else g * self._arg_scale[i]
            out[i] = np.interp(q, curve.sizes, curve.values)
        if self._value_divisor is not None:
            out = out / self._value_divisor[:, None]
        return out


def flat_curve(max_size: float, value: float) -> MissCurve:
    """A capacity-insensitive (streaming) curve, e.g. milc in Fig 2."""
    return MissCurve([0.0, max_size], [value, value])


def cliff_curve(
    max_size: float,
    base_mpki: float,
    cliff_size: float,
    after_mpki: float,
    cliff_sharpness: float = 0.05,
) -> MissCurve:
    """A working-set "cliff" curve, e.g. omnet in Fig 2: high misses until
    the footprint fits, then a sharp drop to *after_mpki*.

    *cliff_sharpness* is the fraction of *cliff_size* over which the drop
    happens (real cliffs are steep but not vertical).
    """
    if not 0 < cliff_size <= max_size:
        raise ValueError("cliff must lie inside (0, max_size]")
    drop_start = cliff_size * (1.0 - cliff_sharpness)
    sizes = [0.0, drop_start, cliff_size]
    values = [base_mpki, base_mpki, after_mpki]
    if cliff_size < max_size:
        sizes.append(max_size)
        values.append(after_mpki)
    return MissCurve(sizes, values)


def exponential_curve(
    max_size: float,
    base_mpki: float,
    floor_mpki: float,
    half_size: float,
    points: int = 65,
) -> MissCurve:
    """A smoothly-decaying curve (friendly apps): misses halve every
    *half_size* bytes of capacity, floored at *floor_mpki*."""
    if half_size <= 0:
        raise ValueError("half_size must be positive")
    sizes = np.linspace(0.0, max_size, points)
    values = floor_mpki + (base_mpki - floor_mpki) * np.power(0.5, sizes / half_size)
    return MissCurve(sizes, values)
