"""Cache substrate: miss curves, partitioned banks (Vantage-contract LRU),
and miss-curve monitors (UMON / geometric GMON)."""

from repro.cache.bank import BankStats, PartitionedBank
from repro.cache.miss_curve import (
    MissCurve,
    cliff_curve,
    exponential_curve,
    flat_curve,
)
from repro.cache.monitor import GMon, UMon, required_umon_ways, solve_gamma

__all__ = [
    "BankStats",
    "GMon",
    "MissCurve",
    "PartitionedBank",
    "UMon",
    "cliff_curve",
    "exponential_curve",
    "flat_curve",
    "required_umon_ways",
    "solve_gamma",
]
