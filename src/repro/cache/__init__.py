"""Cache substrate: miss curves, partitioned banks (Vantage-contract LRU),
miss-curve monitors (UMON / geometric GMON), and bounded-memory telemetry
sketches (:mod:`repro.cache.sketch`)."""

from repro.cache.bank import BankStats, PartitionedBank
from repro.cache.miss_curve import (
    MissCurve,
    cliff_curve,
    exponential_curve,
    flat_curve,
)
from repro.cache.monitor import GMon, UMon, required_umon_ways, solve_gamma
from repro.cache.sketch import (
    DEFAULT_SKETCH_BYTES,
    MissCurveSketch,
    SketchBank,
    points_for_budget,
    problem_sketch_bank,
    sketch_grid,
)

__all__ = [
    "BankStats",
    "DEFAULT_SKETCH_BYTES",
    "GMon",
    "MissCurve",
    "MissCurveSketch",
    "PartitionedBank",
    "SketchBank",
    "UMon",
    "cliff_curve",
    "exponential_curve",
    "flat_curve",
    "points_for_budget",
    "problem_sketch_bank",
    "required_umon_ways",
    "sketch_grid",
    "solve_gamma",
]
