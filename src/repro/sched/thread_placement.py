"""Thread placement (Sec IV-E).

Given the optimistic data placement, each thread wants to sit at the
center of mass of its accesses: the access-weighted average of the
centroids of the VCs it touches.  Threads are placed in descending
**intensity-capacity product** (sum over accessed VCs of rate x size):
threads whose data is large and hot are hardest to serve from afar and
their VCs are hardest to move, so they pick cores first (omnet before
ilbdc before milc in the case study).

Multithreaded processes need no special casing: shared-heavy threads all
gravitate to their shared VC's centroid (clustering), private-heavy
threads follow their private VCs (spreading) — the behavior Fig 16b shows.

Shape conventions
-----------------
Each thread's candidate scan indexes one ``(N,) float64`` vector of
squared Euclidean distances from every tile to the thread's ideal point
(``N = topology.tiles``), built by
:func:`repro.geometry.placement_math.squared_point_distances` with the
scalar per-coordinate accumulation order.  The greedy taken-core scan
itself is sequential by design (each pick removes a core from ``free``).
"""

from __future__ import annotations

from repro.geometry.placement_math import squared_point_distances
from repro.kernels import use_vectorized
from repro.sched.opcount import StepCounter
from repro.sched.problem import PlacementProblem
from repro.sched.vc_placement import OptimisticPlacement


def place_threads(
    problem: PlacementProblem,
    vc_sizes: dict[int, float],
    optimistic: OptimisticPlacement,
    counter: StepCounter | None = None,
    only_threads: set[int] | None = None,
    taken_cores: set[int] | None = None,
) -> dict[int, int]:
    """Assign each thread a core; returns thread_id -> tile.

    *only_threads*/*taken_cores* are the incremental warm start: only the
    named threads are (re)placed, competing for the cores not already held
    by the threads staying put.  The returned dict covers only the placed
    threads in that mode.
    """
    counter = counter if counter is not None else StepCounter()
    topo = problem.topology
    chip_center = topo.coords(topo.center_tile())  # type: ignore[attr-defined]

    def ideal_point(thread) -> tuple[float, ...]:
        weight = 0.0
        acc = [0.0] * len(chip_center)
        for vc_id, rate in thread.vc_accesses.items():
            centroid = optimistic.centroids.get(vc_id)
            if centroid is None or rate <= 0:
                continue
            for i, c in enumerate(centroid):
                acc[i] += rate * c
            weight += rate
        if weight <= 0:
            return chip_center  # no placed data: any core is as good
        return tuple(a / weight for a in acc)

    def priority(thread) -> float:
        return sum(
            rate * vc_sizes.get(vc_id, 0.0)
            for vc_id, rate in thread.vc_accesses.items()
        )

    order = sorted(
        (
            t
            for t in problem.threads
            if only_threads is None or t.thread_id in only_threads
        ),
        key=lambda t: (-priority(t), t.thread_id),
    )
    # Build `free` exactly as before when nothing is pinned: the candidate
    # scan iterates this set, so even its construction order is part of the
    # pinned full-path behavior.
    if taken_cores:
        free = {c for c in range(topo.tiles) if c not in taken_cores}
    else:
        free = set(range(topo.tiles))
    assignment: dict[int, int] = {}
    vectorized = use_vectorized()
    for thread in order:
        point = ideal_point(thread)
        if vectorized:
            # One (N,) distance vector per thread; the scan below indexes
            # it instead of recomputing coordinates core by core.
            distances = squared_point_distances(topo, point).tolist()
        else:
            distances = None
        best_core = -1
        best_dist = float("inf")
        for core in free:
            if distances is not None:
                dist = distances[core]
            else:
                coords = topo.coords(core)  # type: ignore[attr-defined]
                dist = sum((c - p) ** 2 for c, p in zip(coords, point))
            counter.add("thread_placement")
            if dist < best_dist - 1e-12 or (
                abs(dist - best_dist) <= 1e-12 and core < best_core
            ):
                best_dist = dist
                best_core = core
        free.remove(best_core)
        assignment[thread.thread_id] = best_core
    return assignment


def clustered_thread_placement(problem: PlacementProblem) -> dict[int, int]:
    """The "clustered" external scheduler (Jigsaw+C, Sec VI): applications
    are grouped by type — instances of the same benchmark (and threads of
    the same process) occupy consecutive tiles in row-major order.  This is
    exactly the placement whose capacity contention Fig 1b exhibits:
    "different instances of the same benchmark are placed close by" (VI-A).
    """
    assignment: dict[int, int] = {}
    next_core = 0
    order = sorted(
        problem.threads,
        key=lambda t: (t.cluster_key, t.process_id, t.thread_id),
    )
    for thread in order:
        assignment[thread.thread_id] = next_core
        next_core += 1
    return assignment


def random_thread_placement(problem: PlacementProblem, seed: int = 0) -> dict[int, int]:
    """The "random" external scheduler (Jigsaw+R): threads pinned to random
    cores at initialization (Sec VI-A)."""
    from repro.util.rng import child_rng

    rng = child_rng(seed, 0xC0DE)
    cores = rng.permutation(problem.topology.tiles)
    return {
        thread.thread_id: int(cores[i])
        for i, thread in enumerate(
            sorted(problem.threads, key=lambda t: t.thread_id)
        )
    }
