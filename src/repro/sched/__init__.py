"""CDCS's core scheduling algorithms: the cost model (Eqs 1-2), latency-
aware allocation, optimistic VC placement, thread placement, trade-based
refinement, and the 4-step reconfiguration pipeline (Fig 4)."""

from repro.sched.allocation import (
    allocate_latency_aware,
    allocate_latency_aware_subset,
    allocate_miss_driven,
    convex_hull_indices,
)
from repro.sched.engine import (
    STRATEGIES,
    EngineState,
    FullSolve,
    IncrementalSolve,
    PartitionedSolve,
    ReconfigEngine,
    SolveStrategy,
    auto_regions,
    make_strategy,
    strategy_names,
)
from repro.sched.cost_model import (
    latency_curve,
    miss_only_curve,
    off_chip_latency,
    on_chip_latency,
    optimistic_on_chip_curve,
    total_latency,
    vc_mean_distance,
)
from repro.sched.opcount import CYCLES_PER_OP, StepCounter
from repro.sched.problem import PlacementProblem, PlacementSolution, ThreadSpec
from repro.sched.reconfigure import ReconfigPolicy, ReconfigResult, reconfigure
from repro.sched.refinement import (
    greedy_placement,
    refined_placement,
    trade_refinement,
)
from repro.sched.thread_placement import (
    clustered_thread_placement,
    place_threads,
    random_thread_placement,
)
from repro.sched.vc_placement import OptimisticPlacement, place_optimistic

__all__ = [
    "CYCLES_PER_OP",
    "EngineState",
    "FullSolve",
    "IncrementalSolve",
    "OptimisticPlacement",
    "PartitionedSolve",
    "PlacementProblem",
    "PlacementSolution",
    "ReconfigEngine",
    "ReconfigPolicy",
    "ReconfigResult",
    "STRATEGIES",
    "SolveStrategy",
    "StepCounter",
    "ThreadSpec",
    "allocate_latency_aware",
    "allocate_latency_aware_subset",
    "allocate_miss_driven",
    "auto_regions",
    "make_strategy",
    "strategy_names",
    "clustered_thread_placement",
    "convex_hull_indices",
    "greedy_placement",
    "latency_curve",
    "miss_only_curve",
    "off_chip_latency",
    "on_chip_latency",
    "optimistic_on_chip_curve",
    "place_optimistic",
    "place_threads",
    "random_thread_placement",
    "reconfigure",
    "refined_placement",
    "total_latency",
    "trade_refinement",
    "vc_mean_distance",
]
