"""The analytical cost model of Sec IV-A (Eqs 1 and 2).

Total memory access latency splits into:

* **off-chip** (Eq 1): ``sum_{t,d} a_{t,d} * M_d(s_d) * MemLatency`` —
  every miss pays the (placement-independent) memory latency;
* **on-chip** (Eq 2): ``sum_{t,b} alpha_{t,b} * D(c_t, b)`` — every LLC
  access pays the network distance to the bank serving it, where
  ``alpha_{t,b}`` spreads thread t's accesses across banks in proportion
  to each VC's per-bank capacity (the VTB hashing property).

The same functions also build the *latency curves* allocation optimizes
over (Fig 5): off-chip falls with capacity, on-chip rises, and the sweet
spot minimizes the sum.  Before placement is known, the on-chip term uses
the **optimistic** compact placement around the chip center (Fig 6).

Shape conventions
-----------------
With ``K = len(problem.vcs)``, ``N = topology.tiles`` and
``Q = total_bytes // quantum`` (all ``float64`` unless noted):

* ``latency_curves_batch`` / ``miss_only_curves_batch`` — ``(K, Q+1)``;
  row *i* is VC *i*'s total-latency (resp. off-chip-only) curve indexed by
  allocated quanta, bitwise row-for-row what the scalar
  :func:`latency_curve` / :func:`miss_only_curve` return;
* ``optimistic_on_chip_curve`` — ``(Q+1,)`` mean hops per allocation size;
* the vectorized Eq 1/Eq 2 evaluators flatten their ``(threads, banks)``
  term matrices in the scalar loop's iteration order and reduce with
  ``np.cumsum`` (sequential adds), so totals equal the scalar reference
  bitwise, not just approximately.

Scalar and vectorized paths are both exported; the public entry points
dispatch on :func:`repro.kernels.use_vectorized`.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.cache.miss_curve import MissCurve, MissCurveBatch
from repro.geometry.mesh import Topology
from repro.kernels import use_vectorized
from repro.sched.problem import PlacementProblem, PlacementSolution


def round_trip_cycles_per_hop(problem: PlacementProblem) -> float:
    """Cost of one hop of distance, counted both ways (request + response)."""
    return 2.0 * problem.config.noc.hop_latency


def off_chip_latency_scalar(
    problem: PlacementProblem, solution: PlacementSolution
) -> float:
    """Eq 1, scalar reference: one miss-curve probe per VC."""
    total = 0.0
    for vc in problem.vcs:
        size = solution.vc_sizes.get(vc.vc_id, 0.0)
        accessors = problem.accessors_of(vc.vc_id)
        rate = sum(accessors.values())
        if rate <= 0:
            continue
        miss_fraction = min(float(vc.miss_curve(size)), rate) / rate
        total += rate * miss_fraction * problem.mem_latency
    return total


def off_chip_latency_vectorized(
    problem: PlacementProblem, solution: PlacementSolution
) -> float:
    """Eq 1, vectorized: all VCs' miss curves probed in one batched call.

    Terms are reduced in VC order with sequential adds, so the result is
    bitwise the scalar reference's.
    """
    vcs = problem.vcs
    if not vcs:
        return 0.0
    rates = [sum(problem.accessors_of(vc.vc_id).values()) for vc in vcs]
    sizes = np.array(
        [solution.vc_sizes.get(vc.vc_id, 0.0) for vc in vcs], dtype=np.float64
    )
    misses = MissCurveBatch([vc.miss_curve for vc in vcs])(sizes)
    rate_arr = np.array(rates, dtype=np.float64)
    active = rate_arr > 0
    if not np.any(active):
        return 0.0
    fractions = np.minimum(misses[active], rate_arr[active]) / rate_arr[active]
    terms = rate_arr[active] * fractions * problem.mem_latency
    return float(np.cumsum(terms)[-1])


def off_chip_latency(problem: PlacementProblem, solution: PlacementSolution) -> float:
    """Eq 1: total off-chip latency (access-rate units x cycles)."""
    if use_vectorized():
        return off_chip_latency_vectorized(problem, solution)
    return off_chip_latency_scalar(problem, solution)


def on_chip_latency_scalar(
    problem: PlacementProblem, solution: PlacementSolution
) -> float:
    """Eq 2, scalar reference: Python loops over (VC, thread, bank)."""
    per_hop = round_trip_cycles_per_hop(problem)
    dist = problem.topology.distance_matrix
    total = 0.0
    for vc in problem.vcs:
        per_bank = solution.vc_allocation.get(vc.vc_id, {})
        size = sum(per_bank.values())
        if size <= 0:
            continue
        accessors = problem.accessors_of(vc.vc_id)
        for thread_id, rate in accessors.items():
            core = solution.thread_cores[thread_id]
            for bank, cap in per_bank.items():
                total += rate * (cap / size) * dist[core, bank] * per_hop
    return total


def on_chip_latency_vectorized(
    problem: PlacementProblem, solution: PlacementSolution
) -> float:
    """Eq 2, vectorized: per VC, an (accessors x banks) outer-product term
    matrix against the distance matrix, flattened in the scalar loop's
    row-major order and reduced sequentially (bitwise-equal totals)."""
    per_hop = round_trip_cycles_per_hop(problem)
    dist = problem.topology.distance_matrix
    term_blocks: list[np.ndarray] = []
    for vc in problem.vcs:
        per_bank = solution.vc_allocation.get(vc.vc_id, {})
        size = sum(per_bank.values())
        if size <= 0:
            continue
        accessors = problem.accessors_of(vc.vc_id)
        if not accessors:
            continue
        banks = np.fromiter(per_bank.keys(), dtype=np.int64, count=len(per_bank))
        caps = np.fromiter(per_bank.values(), dtype=np.float64, count=len(per_bank))
        rates = np.fromiter(accessors.values(), dtype=np.float64, count=len(accessors))
        cores = np.fromiter(
            (solution.thread_cores[t] for t in accessors),
            dtype=np.int64,
            count=len(accessors),
        )
        weights = rates[:, None] * (caps / size)[None, :]
        term_blocks.append(
            ((weights * dist[cores[:, None], banks[None, :]]) * per_hop).ravel()
        )
    if not term_blocks:
        return 0.0
    return float(np.cumsum(np.concatenate(term_blocks))[-1])


def on_chip_latency(problem: PlacementProblem, solution: PlacementSolution) -> float:
    """Eq 2: total on-chip (L2 <-> LLC) latency under a placement."""
    if use_vectorized():
        return on_chip_latency_vectorized(problem, solution)
    return on_chip_latency_scalar(problem, solution)


def total_latency(problem: PlacementProblem, solution: PlacementSolution) -> float:
    """The objective CDCS minimizes: Eq 1 + Eq 2."""
    return off_chip_latency(problem, solution) + on_chip_latency(problem, solution)


def vc_mean_distance(
    problem: PlacementProblem,
    solution: PlacementSolution,
    vc_id: int,
) -> float:
    """Access-weighted average hops between a VC's accessors and its data
    (the D(VC, b) aggregate used when valuing trades, Sec IV-F)."""
    problem.vc_by_id(vc_id)  # validates the id
    per_bank = solution.vc_allocation.get(vc_id, {})
    size = sum(per_bank.values())
    accessors = problem.accessors_of(vc_id)
    rate = sum(accessors.values())
    if size <= 0 or rate <= 0:
        return 0.0
    dist = problem.topology.distance_matrix
    acc = 0.0
    for thread_id, r in accessors.items():
        core = solution.thread_cores[thread_id]
        for bank, cap in per_bank.items():
            acc += (r / rate) * (cap / size) * dist[core, bank]
    return float(acc)


# ---------------------------------------------------------------------------
# Batched placement scoring (the mega-batch evaluation kernel)
# ---------------------------------------------------------------------------

#: Element budget of one transient block in :func:`spread_hops_batch`
#: (``chunk * tiles * width`` float64 terms, ~32 MiB) — large enough to
#: amortize the pass, small enough to never balloon on big meshes.
_SPREAD_CHUNK_ELEMS = 4_000_000


def spread_hops_batch(
    dist: np.ndarray,
    mc_dist: np.ndarray,
    spreads: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Expected access hops of many VC spreads in one array pass.

    *spreads* holds one ``(banks, fracs)`` pair per VC — the banks its
    accesses spread over and the normalized access fractions.  Returns
    ``(hops, mc_hops)``: ``hops[i]`` is VC *i*'s expected distance from
    every possible core (``(V, tiles)``), ``mc_hops[i]`` its expected
    memory-controller distance.  This is the Eq 2 scoring term of *every*
    VC of *every* stacked evaluation, computed as chunked broadcast
    passes instead of one small cumsum per VC.

    Bitwise contract: row *i* equals the per-VC kernel
    ``np.cumsum(fracs[None, :] * dist[:, banks], axis=1)[:, -1]`` exactly.
    Rows are padded to the chunk's widest spread with zero-weight terms;
    every padded term contributes ``x + 0.0`` to a non-negative partial
    sum, which is the identity in IEEE float64, so padding width (and
    hence batch composition) never changes a row's result.
    """
    v = len(spreads)
    tiles = dist.shape[0]
    hops = np.empty((v, tiles), dtype=np.float64)
    mc_hops = np.empty(v, dtype=np.float64)
    chunk_rows = max(1, _SPREAD_CHUNK_ELEMS // (tiles * tiles))
    for lo in range(0, v, chunk_rows):
        chunk = spreads[lo:lo + chunk_rows]
        width = max(len(banks) for banks, _ in chunk)
        bank_idx = np.zeros((len(chunk), width), dtype=np.int64)
        weights = np.zeros((len(chunk), width), dtype=np.float64)
        for i, (banks, fracs) in enumerate(chunk):
            bank_idx[i, :len(banks)] = banks
            weights[i, :len(fracs)] = fracs
        # (tiles, C, W): distance from every core to every spread's banks.
        terms = weights[None, :, :] * dist[:, bank_idx]
        hops[lo:lo + len(chunk)] = np.cumsum(terms, axis=2)[:, :, -1].T
        mc_hops[lo:lo + len(chunk)] = np.cumsum(
            weights * mc_dist[bank_idx], axis=1
        )[:, -1]
    return hops, mc_hops


# ---------------------------------------------------------------------------
# Latency curves for allocation (Sec IV-C)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=64)
def _optimistic_distance_table(
    topology: Topology, bank_bytes: int, quantum: int
) -> np.ndarray:
    """Mean hops of a compact center placement, per allocation size.

    Entry q is the average access distance of a VC of ``q`` quanta placed
    compactly around the chip's center tile (Fig 6).  Cached per topology:
    every VC shares the table.

    Built from one prefix sum over the center's spiral distances: a
    q-quanta footprint covers ``n`` full banks plus a fractional one, so
    its weighted distance is ``prefix[n-1] + frac * D[n]``.  Full-bank
    hop sums are integer-exact in float64, so every entry is bitwise what
    :func:`~repro.geometry.placement_math.compact_mean_distance` returns.
    """
    center = topology.center_tile()
    max_quanta = topology.tiles * (bank_bytes // quantum)
    # Spiral distances from the center and their (exact) prefix sums.
    ranked = topology.sorted_distance_matrix[center].astype(np.float64)
    prefix = np.cumsum(ranked)
    q = np.arange(max_quanta + 1, dtype=np.int64)
    size_banks = np.minimum(q * quantum / bank_bytes, float(topology.tiles))
    full = np.floor(size_banks).astype(np.int64)
    frac = size_banks - full
    partial = frac > 1e-12
    last = ranked[np.minimum(full, topology.tiles - 1)]
    weighted = np.where(full > 0, prefix[np.maximum(full, 1) - 1], 0.0)
    weighted = weighted + np.where(partial, frac * last, 0.0)
    total = full + np.where(partial, frac, 0.0)
    table = np.divide(
        weighted, total, out=np.zeros_like(weighted), where=total > 0
    )
    table[0] = 0.0
    return table


def optimistic_on_chip_curve(problem: PlacementProblem) -> np.ndarray:
    """Per-quantum optimistic on-chip hop distances for this chip."""
    return _optimistic_distance_table(
        problem.topology, problem.bank_bytes, problem.quantum
    )


def latency_curve(
    problem: PlacementProblem,
    miss_curve: MissCurve,
    access_rate: float,
) -> np.ndarray:
    """Total-latency curve of one VC, indexed by allocated quanta.

    ``L(q) = MemLat * misses(q) + per_hop * access_rate * dist_opt(q)``
    (Fig 5).  Allocation minimizes the sum of these over VCs.  The distance
    term uses the optimistic table; Sec IV-C notes this underestimates
    contention, which the later steps correct.
    """
    if access_rate < 0:
        raise ValueError("access rate cannot be negative")
    dist = optimistic_on_chip_curve(problem)
    quanta = np.arange(len(dist), dtype=np.float64)
    sizes = quanta * problem.quantum
    misses = np.minimum(np.asarray(miss_curve(sizes)), access_rate)
    per_hop = round_trip_cycles_per_hop(problem)
    return problem.mem_latency * misses + per_hop * access_rate * dist


def miss_only_curve(
    problem: PlacementProblem,
    miss_curve: MissCurve,
    access_rate: float,
) -> np.ndarray:
    """Off-chip-only latency curve (what Jigsaw's allocator optimizes)."""
    max_quanta = problem.total_bytes // problem.quantum
    sizes = np.arange(max_quanta + 1, dtype=np.float64) * problem.quantum
    misses = np.minimum(np.asarray(miss_curve(sizes)), access_rate)
    return problem.mem_latency * misses


# ---------------------------------------------------------------------------
# Batched latency curves (all VCs at once)
# ---------------------------------------------------------------------------


def vc_access_rates(problem: PlacementProblem) -> list[float]:
    """Aggregate access rate per VC, in ``problem.vcs`` order."""
    return [
        sum(problem.accessors_of(vc.vc_id).values()) for vc in problem.vcs
    ]


def latency_curves_batch(
    problem: PlacementProblem,
    rates: list[float] | None = None,
    vc_indices: list[int] | None = None,
) -> np.ndarray:
    """All VCs' total-latency curves as one (K, Q+1) matrix.

    Row *i* equals ``latency_curve(problem, problem.vcs[i].miss_curve,
    rates[i])`` bitwise: the shared quanta grid is evaluated through a
    :class:`MissCurveBatch` (same interpolation arithmetic) and the Eq 1 /
    Eq 2 terms are combined with the scalar expression's operation order.

    *vc_indices* restricts the build to those rows of ``problem.vcs``
    (the incremental warm start's dirty subset) — each row is per-VC
    independent, so the subset rows are bitwise the corresponding
    full-batch rows at O(subset) cost.
    """
    rates = vc_access_rates(problem) if rates is None else rates
    if vc_indices is None:
        vcs = problem.vcs
    else:
        vcs = [problem.vcs[i] for i in vc_indices]
        rates = [rates[i] for i in vc_indices]
    if any(r < 0 for r in rates):
        raise ValueError("access rate cannot be negative")
    dist = optimistic_on_chip_curve(problem)
    quanta = np.arange(len(dist), dtype=np.float64)
    sizes = quanta * problem.quantum
    batch = MissCurveBatch([vc.miss_curve for vc in vcs])
    rate_arr = np.array(rates, dtype=np.float64)
    misses = np.minimum(batch.at_grid(sizes), rate_arr[:, None])
    per_hop = round_trip_cycles_per_hop(problem)
    return problem.mem_latency * misses + (per_hop * rate_arr)[:, None] * dist[None, :]


def miss_only_curves_batch(
    problem: PlacementProblem,
    rates: list[float] | None = None,
) -> np.ndarray:
    """All VCs' off-chip-only curves as one (K, Q+1) matrix (rows bitwise
    equal :func:`miss_only_curve`)."""
    rates = vc_access_rates(problem) if rates is None else rates
    max_quanta = problem.total_bytes // problem.quantum
    sizes = np.arange(max_quanta + 1, dtype=np.float64) * problem.quantum
    batch = MissCurveBatch([vc.miss_curve for vc in problem.vcs])
    rate_arr = np.array(rates, dtype=np.float64)
    misses = np.minimum(batch.at_grid(sizes), rate_arr[:, None])
    return problem.mem_latency * misses
