"""The analytical cost model of Sec IV-A (Eqs 1 and 2).

Total memory access latency splits into:

* **off-chip** (Eq 1): ``sum_{t,d} a_{t,d} * M_d(s_d) * MemLatency`` —
  every miss pays the (placement-independent) memory latency;
* **on-chip** (Eq 2): ``sum_{t,b} alpha_{t,b} * D(c_t, b)`` — every LLC
  access pays the network distance to the bank serving it, where
  ``alpha_{t,b}`` spreads thread t's accesses across banks in proportion
  to each VC's per-bank capacity (the VTB hashing property).

The same functions also build the *latency curves* allocation optimizes
over (Fig 5): off-chip falls with capacity, on-chip rises, and the sweet
spot minimizes the sum.  Before placement is known, the on-chip term uses
the **optimistic** compact placement around the chip center (Fig 6).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.cache.miss_curve import MissCurve
from repro.geometry.mesh import Topology
from repro.geometry.placement_math import compact_mean_distance
from repro.sched.problem import PlacementProblem, PlacementSolution


def round_trip_cycles_per_hop(problem: PlacementProblem) -> float:
    """Cost of one hop of distance, counted both ways (request + response)."""
    return 2.0 * problem.config.noc.hop_latency


def off_chip_latency(problem: PlacementProblem, solution: PlacementSolution) -> float:
    """Eq 1: total off-chip latency (access-rate units x cycles)."""
    total = 0.0
    for vc in problem.vcs:
        size = solution.vc_sizes.get(vc.vc_id, 0.0)
        accessors = problem.accessors_of(vc.vc_id)
        rate = sum(accessors.values())
        if rate <= 0:
            continue
        miss_fraction = min(float(vc.miss_curve(size)), rate) / rate
        total += rate * miss_fraction * problem.mem_latency
    return total


def on_chip_latency(problem: PlacementProblem, solution: PlacementSolution) -> float:
    """Eq 2: total on-chip (L2 <-> LLC) latency under a placement."""
    per_hop = round_trip_cycles_per_hop(problem)
    dist = problem.topology.distance_matrix
    total = 0.0
    for vc in problem.vcs:
        per_bank = solution.vc_allocation.get(vc.vc_id, {})
        size = sum(per_bank.values())
        if size <= 0:
            continue
        accessors = problem.accessors_of(vc.vc_id)
        for thread_id, rate in accessors.items():
            core = solution.thread_cores[thread_id]
            for bank, cap in per_bank.items():
                total += rate * (cap / size) * dist[core, bank] * per_hop
    return total


def total_latency(problem: PlacementProblem, solution: PlacementSolution) -> float:
    """The objective CDCS minimizes: Eq 1 + Eq 2."""
    return off_chip_latency(problem, solution) + on_chip_latency(problem, solution)


def vc_mean_distance(
    problem: PlacementProblem,
    solution: PlacementSolution,
    vc_id: int,
) -> float:
    """Access-weighted average hops between a VC's accessors and its data
    (the D(VC, b) aggregate used when valuing trades, Sec IV-F)."""
    vc = problem.vc_by_id(vc_id)
    per_bank = solution.vc_allocation.get(vc_id, {})
    size = sum(per_bank.values())
    accessors = problem.accessors_of(vc_id)
    rate = sum(accessors.values())
    if size <= 0 or rate <= 0:
        return 0.0
    dist = problem.topology.distance_matrix
    acc = 0.0
    for thread_id, r in accessors.items():
        core = solution.thread_cores[thread_id]
        for bank, cap in per_bank.items():
            acc += (r / rate) * (cap / size) * dist[core, bank]
    return float(acc)


# ---------------------------------------------------------------------------
# Latency curves for allocation (Sec IV-C)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=64)
def _optimistic_distance_table(
    topology: Topology, bank_bytes: int, quantum: int
) -> np.ndarray:
    """Mean hops of a compact center placement, per allocation size.

    Entry q is the average access distance of a VC of ``q`` quanta placed
    compactly around the chip's center tile (Fig 6).  Cached per topology:
    every VC shares the table.
    """
    center = topology.center_tile()
    max_quanta = topology.tiles * (bank_bytes // quantum)
    table = np.zeros(max_quanta + 1, dtype=np.float64)
    for q in range(1, max_quanta + 1):
        size_banks = q * quantum / bank_bytes
        table[q] = compact_mean_distance(topology, center, size_banks)
    return table


def optimistic_on_chip_curve(problem: PlacementProblem) -> np.ndarray:
    """Per-quantum optimistic on-chip hop distances for this chip."""
    return _optimistic_distance_table(
        problem.topology, problem.bank_bytes, problem.quantum
    )


def latency_curve(
    problem: PlacementProblem,
    miss_curve: MissCurve,
    access_rate: float,
) -> np.ndarray:
    """Total-latency curve of one VC, indexed by allocated quanta.

    ``L(q) = MemLat * misses(q) + per_hop * access_rate * dist_opt(q)``
    (Fig 5).  Allocation minimizes the sum of these over VCs.  The distance
    term uses the optimistic table; Sec IV-C notes this underestimates
    contention, which the later steps correct.
    """
    if access_rate < 0:
        raise ValueError("access rate cannot be negative")
    dist = optimistic_on_chip_curve(problem)
    quanta = np.arange(len(dist), dtype=np.float64)
    sizes = quanta * problem.quantum
    misses = np.minimum(np.asarray(miss_curve(sizes)), access_rate)
    per_hop = round_trip_cycles_per_hop(problem)
    return problem.mem_latency * misses + per_hop * access_rate * dist


def miss_only_curve(
    problem: PlacementProblem,
    miss_curve: MissCurve,
    access_rate: float,
) -> np.ndarray:
    """Off-chip-only latency curve (what Jigsaw's allocator optimizes)."""
    max_quanta = problem.total_bytes // problem.quantum
    sizes = np.arange(max_quanta + 1, dtype=np.float64) * problem.quantum
    misses = np.minimum(np.asarray(miss_curve(sizes)), access_rate)
    return problem.mem_latency * misses
