"""Optimistic contention-aware VC placement (Sec IV-D, Fig 7).

Once VC sizes are known, this step sketches where data should live so that
thread placement (the next step) can see, e.g., that two large VCs must not
sit in adjacent corners.  VCs are placed **largest first**; each one scans
every bank as a candidate center, scores it by the *claimed capacity* under
its compact footprint (capacity constraints relaxed — banks may be claimed
beyond their size), and settles around the least-contended center.

The result is deliberately rough: it exists to expose capacity contention,
not to be the final placement (which step 4 refines).

Shape conventions
-----------------
The vectorized step scores **every** candidate center of one VC as two
``(N,)`` ``float64`` vectors (``N = topology.tiles``): ``contention`` (the
claimed capacity under the candidate's compact window) and ``spread`` (the
window's mean access distance), both produced by
:func:`repro.geometry.placement_math.batched_window_scores` from the
topology's ``(N, N)`` order/sorted-distance matrices.  The running
``claimed`` tally is a ``(N,)`` ``float64`` vector.  Candidate selection
replicates the scalar key ``(round(contention, 9), spread, candidate)``
with a lexicographic sort, so the chosen centers — and therefore the whole
downstream placement — are identical to the scalar reference's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.placement_math import (
    batched_window_scores,
    center_of_mass,
    compact_placement,
    compact_window_weights,
    placement_mean_distance,
)
from repro.kernels import use_vectorized
from repro.sched.opcount import StepCounter
from repro.sched.problem import PlacementProblem


@dataclass
class OptimisticPlacement:
    """Output of the optimistic step: rough footprints and their centers."""

    #: vc_id -> {bank -> bytes} (footprints may overlap across VCs).
    footprints: dict[int, dict[int, float]]
    #: vc_id -> center bank chosen.
    centers: dict[int, int]
    #: vc_id -> fractional (x, y) center of mass of the footprint.
    centroids: dict[int, tuple[float, ...]]
    #: Final claimed-capacity tally, in banks (diagnostics/tests).
    claimed: np.ndarray


def _placement_order(problem, vc_sizes, vc_ids):
    """Largest-first visit order over the VCs being (re)placed."""
    return sorted(
        (
            vc
            for vc in problem.vcs
            if vc_sizes.get(vc.vc_id, 0.0) > 0
            and (vc_ids is None or vc.vc_id in vc_ids)
        ),
        key=lambda vc: (-vc_sizes[vc.vc_id], vc.vc_id),
    )


def _initial_claimed(topo, claimed_init) -> np.ndarray:
    if claimed_init is None:
        return np.zeros(topo.tiles, dtype=np.float64)
    return np.array(claimed_init, dtype=np.float64)


def place_optimistic_scalar(
    problem: PlacementProblem,
    vc_sizes: dict[int, float],
    counter: StepCounter | None = None,
    vc_ids: set[int] | None = None,
    claimed_init: np.ndarray | None = None,
) -> OptimisticPlacement:
    """Scalar reference: one compact window built and scored per candidate.

    *vc_ids*/*claimed_init* are the incremental warm start: only the named
    VCs are placed, scored against a claimed-capacity tally pre-seeded with
    the footprints of the VCs that are staying put.
    """
    counter = counter if counter is not None else StepCounter()
    topo = problem.topology
    bank_bytes = problem.bank_bytes
    claimed = _initial_claimed(topo, claimed_init)
    footprints: dict[int, dict[int, float]] = {}
    centers: dict[int, int] = {}
    centroids: dict[int, tuple[float, ...]] = {}

    order = _placement_order(problem, vc_sizes, vc_ids)
    for vc in order:
        size_banks = vc_sizes[vc.vc_id] / bank_bytes
        best_bank = -1
        best_key: tuple[float, float] | None = None
        for candidate in range(topo.tiles):
            window = compact_placement(topo, candidate, size_banks)
            contention = sum(frac * claimed[t] for t, frac in window.items())
            # Tie-break toward geometrically compact windows (edge/corner
            # centers spread the same capacity over longer distances).
            spread = placement_mean_distance(topo, candidate, window)
            counter.add("vc_placement", len(window))
            key = (round(contention, 9), spread)
            if best_key is None or key < best_key or (
                key == best_key and candidate < best_bank
            ):
                best_key = key
                best_bank = candidate
        window = compact_placement(topo, best_bank, size_banks)
        for t, frac in window.items():
            claimed[t] += frac
        footprints[vc.vc_id] = {t: frac * bank_bytes for t, frac in window.items()}
        centers[vc.vc_id] = best_bank
        centroids[vc.vc_id] = center_of_mass(topo, window)
    return OptimisticPlacement(footprints, centers, centroids, claimed)


def place_optimistic_vectorized(
    problem: PlacementProblem,
    vc_sizes: dict[int, float],
    counter: StepCounter | None = None,
    vc_ids: set[int] | None = None,
    claimed_init: np.ndarray | None = None,
) -> OptimisticPlacement:
    """Vectorized Sec IV-D: per VC, every candidate center is scored in one
    matrix pass over the precomputed spiral-order matrices.

    The selection key is the scalar reference's ``(round(contention, 9),
    spread, candidate)``; spiral-ordered ``cumsum`` reductions make both
    score vectors bitwise-equal to the per-candidate loops, so the chosen
    centers (and footprints, centroids, claimed tally) are identical.
    *vc_ids*/*claimed_init* warm-start an incremental re-place exactly as
    in :func:`place_optimistic_scalar`.
    """
    counter = counter if counter is not None else StepCounter()
    topo = problem.topology
    bank_bytes = problem.bank_bytes
    claimed = _initial_claimed(topo, claimed_init)
    footprints: dict[int, dict[int, float]] = {}
    centers: dict[int, int] = {}
    centroids: dict[int, tuple[float, ...]] = {}

    order = _placement_order(problem, vc_sizes, vc_ids)
    candidates = np.arange(topo.tiles)
    for vc in order:
        size_banks = vc_sizes[vc.vc_id] / bank_bytes
        contention, spread = batched_window_scores(topo, claimed, size_banks)
        weights = compact_window_weights(topo, size_banks)
        counter.add("vc_placement", topo.tiles * len(weights))
        # Python round (not np.round) so the noise-absorbing primary key is
        # digit-for-digit the scalar one; lexsort is stable, so full ties
        # fall back to the lowest candidate id, like the scalar scan.
        rounded = np.array([round(float(c), 9) for c in contention])
        best_bank = int(np.lexsort((candidates, spread, rounded))[0])
        window_banks = topo.order_matrix[best_bank, : len(weights)]
        claimed[window_banks] += weights
        window = {
            int(t): frac for t, frac in zip(window_banks, weights.tolist())
        }
        footprints[vc.vc_id] = {t: frac * bank_bytes for t, frac in window.items()}
        centers[vc.vc_id] = best_bank
        centroids[vc.vc_id] = center_of_mass(topo, window)
    return OptimisticPlacement(footprints, centers, centroids, claimed)


def place_optimistic(
    problem: PlacementProblem,
    vc_sizes: dict[int, float],
    counter: StepCounter | None = None,
    vc_ids: set[int] | None = None,
    claimed_init: np.ndarray | None = None,
) -> OptimisticPlacement:
    """Run the Sec IV-D placement for all VCs with non-zero size (or, with
    *vc_ids*/*claimed_init*, an incremental warm-started subset)."""
    if use_vectorized():
        return place_optimistic_vectorized(
            problem, vc_sizes, counter, vc_ids, claimed_init
        )
    return place_optimistic_scalar(
        problem, vc_sizes, counter, vc_ids, claimed_init
    )
