"""Optimistic contention-aware VC placement (Sec IV-D, Fig 7).

Once VC sizes are known, this step sketches where data should live so that
thread placement (the next step) can see, e.g., that two large VCs must not
sit in adjacent corners.  VCs are placed **largest first**; each one scans
every bank as a candidate center, scores it by the *claimed capacity* under
its compact footprint (capacity constraints relaxed — banks may be claimed
beyond their size), and settles around the least-contended center.

The result is deliberately rough: it exists to expose capacity contention,
not to be the final placement (which step 4 refines).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.placement_math import (
    center_of_mass,
    compact_placement,
    placement_mean_distance,
)
from repro.sched.opcount import StepCounter
from repro.sched.problem import PlacementProblem


@dataclass
class OptimisticPlacement:
    """Output of the optimistic step: rough footprints and their centers."""

    #: vc_id -> {bank -> bytes} (footprints may overlap across VCs).
    footprints: dict[int, dict[int, float]]
    #: vc_id -> center bank chosen.
    centers: dict[int, int]
    #: vc_id -> fractional (x, y) center of mass of the footprint.
    centroids: dict[int, tuple[float, ...]]
    #: Final claimed-capacity tally, in banks (diagnostics/tests).
    claimed: np.ndarray


def place_optimistic(
    problem: PlacementProblem,
    vc_sizes: dict[int, float],
    counter: StepCounter | None = None,
) -> OptimisticPlacement:
    """Run the Sec IV-D placement for all VCs with non-zero size."""
    counter = counter if counter is not None else StepCounter()
    topo = problem.topology
    bank_bytes = problem.bank_bytes
    claimed = np.zeros(topo.tiles, dtype=np.float64)
    footprints: dict[int, dict[int, float]] = {}
    centers: dict[int, int] = {}
    centroids: dict[int, tuple[float, ...]] = {}

    order = sorted(
        (vc for vc in problem.vcs if vc_sizes.get(vc.vc_id, 0.0) > 0),
        key=lambda vc: (-vc_sizes[vc.vc_id], vc.vc_id),
    )
    for vc in order:
        size_banks = vc_sizes[vc.vc_id] / bank_bytes
        best_bank = -1
        best_key: tuple[float, float] | None = None
        for candidate in range(topo.tiles):
            window = compact_placement(topo, candidate, size_banks)
            contention = sum(frac * claimed[t] for t, frac in window.items())
            # Tie-break toward geometrically compact windows (edge/corner
            # centers spread the same capacity over longer distances).
            spread = placement_mean_distance(topo, candidate, window)
            counter.add("vc_placement", len(window))
            key = (round(contention, 9), spread)
            if best_key is None or key < best_key or (
                key == best_key and candidate < best_bank
            ):
                best_key = key
                best_bank = candidate
        window = compact_placement(topo, best_bank, size_banks)
        for t, frac in window.items():
            claimed[t] += frac
        footprints[vc.vc_id] = {t: frac * bank_bytes for t, frac in window.items()}
        centers[vc.vc_id] = best_bank
        centroids[vc.vc_id] = center_of_mass(topo, window)
    return OptimisticPlacement(footprints, centers, centroids, claimed)
