"""The co-scheduling problem statement shared by every placement algorithm.

A :class:`PlacementProblem` bundles what Sec IV-A's cost model needs: the
chip (topology + bank capacities + latencies), the VCs with their miss
curves and per-thread access rates (``a_{t,d}``), and the thread list.
A :class:`PlacementSolution` is what any scheme produces: VC sizes and
per-bank allocations, plus thread-to-core assignments.

Units: capacity in bytes, access rates in accesses per kilo-instruction
(aggregated over the interval — only ratios matter), distance in hops,
latency in cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.geometry.mesh import Topology
from repro.vcache.virtual_cache import VirtualCache


@dataclass(frozen=True)
class ThreadSpec:
    """One schedulable thread and the VCs it accesses."""

    thread_id: int
    process_id: int
    #: vc_id -> accesses per kilo-instruction (the a_{t,d} of Eq 1/2).
    vc_accesses: dict[int, float]
    #: Grouping key for the "clustered" external scheduler: threads with the
    #: same key (benchmark name) are placed adjacently, reproducing the
    #: paper's "applications grouped by type" (Sec II-B, Sec VI-A).
    cluster_key: str = ""

    @property
    def total_accesses(self) -> float:
        return sum(self.vc_accesses.values())


@dataclass
class PlacementProblem:
    """Inputs to one reconfiguration."""

    config: SystemConfig
    topology: Topology
    vcs: list[VirtualCache]
    threads: list[ThreadSpec]
    #: Memory latency constant used by Eq 1 during allocation (zero-load
    #: DRAM + average on-chip distance to a controller, in cycles).
    mem_latency: float = 160.0

    def __post_init__(self) -> None:
        if self.topology.tiles != self.config.tiles:
            raise ValueError(
                f"topology has {self.topology.tiles} tiles but config "
                f"says {self.config.tiles}"
            )
        if len(self.threads) > self.config.tiles:
            raise ValueError(
                f"{len(self.threads)} threads exceed {self.config.tiles} cores"
            )
        ids = [vc.vc_id for vc in self.vcs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate VC ids")

    @property
    def bank_bytes(self) -> int:
        return self.config.cache.bank_bytes

    @property
    def total_bytes(self) -> int:
        return self.config.llc_bytes

    @property
    def quantum(self) -> int:
        return self.config.scheduler.allocation_quantum

    def vc_by_id(self, vc_id: int) -> VirtualCache:
        for vc in self.vcs:
            if vc.vc_id == vc_id:
                return vc
        raise KeyError(f"no VC with id {vc_id}")

    def accessors_of(self, vc_id: int) -> dict[int, float]:
        """thread_id -> access rate into this VC."""
        out = {}
        for t in self.threads:
            rate = t.vc_accesses.get(vc_id, 0.0)
            if rate > 0:
                out[t.thread_id] = rate
        return out


@dataclass
class PlacementSolution:
    """Outputs of one reconfiguration."""

    #: vc_id -> total bytes allocated.
    vc_sizes: dict[int, float] = field(default_factory=dict)
    #: vc_id -> {bank -> bytes}.
    vc_allocation: dict[int, dict[int, float]] = field(default_factory=dict)
    #: thread_id -> tile (core) id.
    thread_cores: dict[int, int] = field(default_factory=dict)

    def copy(self) -> "PlacementSolution":
        """Deep-enough copy: mutating the clone's dicts never touches the
        original (what warm engines and the serving control plane hand out
        so callers cannot corrupt retained state)."""
        return PlacementSolution(
            vc_sizes=dict(self.vc_sizes),
            vc_allocation={
                vc_id: dict(per_bank)
                for vc_id, per_bank in self.vc_allocation.items()
            },
            thread_cores=dict(self.thread_cores),
        )

    def bank_usage(self, tiles: int) -> list[float]:
        """Total bytes placed in each bank."""
        usage = [0.0] * tiles
        for per_bank in self.vc_allocation.values():
            for bank, b in per_bank.items():
                usage[bank] += b
        return usage

    def validate(self, problem: PlacementProblem, tolerance: float = 1.0) -> None:
        """Assert physical feasibility: bank capacities respected, every
        thread on a distinct core, sizes consistent with allocations."""
        usage = self.bank_usage(problem.topology.tiles)
        for bank, used in enumerate(usage):
            if used > problem.bank_bytes + tolerance:
                raise AssertionError(
                    f"bank {bank} over capacity: {used} > {problem.bank_bytes}"
                )
        cores = list(self.thread_cores.values())
        if len(set(cores)) != len(cores):
            raise AssertionError("two threads share a core")
        for core in cores:
            if not 0 <= core < problem.topology.tiles:
                raise AssertionError(f"core {core} out of range")
        for vc_id, per_bank in self.vc_allocation.items():
            total = sum(per_bank.values())
            size = self.vc_sizes.get(vc_id, 0.0)
            if abs(total - size) > tolerance * problem.topology.tiles:
                raise AssertionError(
                    f"VC {vc_id}: allocation {total} != size {size}"
                )
