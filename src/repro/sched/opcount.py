"""Operation accounting for the reconfiguration runtime (Table 3).

The paper reports the software runtime of each reconfiguration step in
Mcycles on the simulated chip.  We count the dominant primitive operations
of each step (hull walks, bank scans, trade evaluations, ...) and convert
them to cycles with a fixed cycles-per-operation constant — the steps'
*scaling* with threads and tiles (linear vs quadratic) is what Table 3 is
about, and op counts capture it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Cycles charged per counted primitive operation.  Each counted op is a
#: composite step (a candidate-bank contention evaluation, a trade valuation,
#: a hull-segment pop): several dependent, cache-missing memory references
#: plus arithmetic on the runtime core.  500 cycles/op lands the 64-thread /
#: 64-tile runtime in the paper's range (6.49 Mcycles total); the *ratios*
#: between configurations come from the measured operation counts.
CYCLES_PER_OP = 500.0


@dataclass
class StepCounter:
    """Mutable op counters, one per reconfiguration step."""

    ops: dict[str, int] = field(default_factory=dict)

    def add(self, step: str, count: int = 1) -> None:
        self.ops[step] = self.ops.get(step, 0) + count

    def cycles(self, step: str) -> float:
        return self.ops.get(step, 0) * CYCLES_PER_OP

    def total_cycles(self) -> float:
        return sum(self.ops.values()) * CYCLES_PER_OP

    def merged(self, other: "StepCounter") -> "StepCounter":
        out = StepCounter(dict(self.ops))
        for step, count in other.ops.items():
            out.ops[step] = out.ops.get(step, 0) + count
        return out
