"""The reconfiguration engine: interchangeable solve strategies (PR 5).

The paper's pitch is that co-scheduling runs in near-linear time so
reconfiguration stays cheap at hundreds of tiles (Sec IV, Table 3) — but a
single-shot :func:`repro.sched.reconfigure.reconfigure` of a fully
committed 256-tile mesh costs ~80 Mcycles of modeled runtime, overrunning
the 50 Mcycle interval.  This module turns the monolithic pipeline into an
engine with interchangeable :class:`SolveStrategy` implementations:

* :class:`FullSolve` (``"full"``) — the classic 4-step pipeline, bitwise
  identical to calling ``reconfigure()`` directly.  The pinned equivalence
  reference for everything else.
* :class:`IncrementalSolve` (``"incremental"``) — warm-starts from the
  previous epoch's solution.  VCs whose miss curves or access rates moved
  beyond ``dirty_threshold`` (plus new/removed VCs and their threads) are
  re-allocated and re-placed through the same kernels; everything else
  keeps its capacity, banks, and cores.  ``dirty_threshold=0`` means "no
  tolerance": every VC is dirty and the solve is exactly the full
  pipeline, which is the degenerate-equivalence contract the tests pin.
* :class:`PartitionedSolve` (``"partitioned"``) — splits the mesh into
  ``regions`` × ``regions`` rectangular sub-meshes, solves each region as
  an independent sub-problem (one runtime core per region, so the modeled
  critical path is the *slowest region*, not the sum), then stitches with
  a boundary-trade refinement pass restricted to VCs holding data next to
  a region seam.  ``regions=1`` is the full pipeline with no stitch, again
  bitwise identical by construction.
* :class:`HierarchicalSolve` (``"hierarchical"``, PR 7) — regions of
  regions: recursive splits by the smallest common divisor of the mesh
  axes down to paper-sized (~8x8) leaves, with the same boundary-trade
  stitch at every level.  The modeled critical path is the slowest leaf
  plus one stitch per level, each stitch an anytime pass capped at
  :data:`STITCH_OPS_BUDGET` ops — that is what keeps 4096-tile and
  larger meshes inside the 50 Mcycle interval.  ``depth=1`` is bitwise
  the flat partitioned strategy; ``depth=1, regions=1`` is bitwise
  ``full``.

:class:`ReconfigEngine` carries solver state (the previous problem and
solution) across epochs, which is what the periodic runtime of Sec IV-G
actually does — it never solves a frozen problem from scratch.

All strategies run through the dual-path kernels of
:mod:`repro.kernels`; their discrete decisions are identical between the
vectorized and scalar-reference paths (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.cache.sketch import DEFAULT_SKETCH_BYTES, problem_sketch_bank
from repro.geometry.mesh import Mesh
from repro.geometry.placement_math import center_of_mass
from repro.sched.allocation import allocate_latency_aware_subset
from repro.sched.opcount import CYCLES_PER_OP, StepCounter
from repro.sched.problem import PlacementProblem, PlacementSolution
from repro.sched.reconfigure import ReconfigPolicy, ReconfigResult, reconfigure
from repro.sched.refinement import refined_placement, trade_refinement
from repro.sched.thread_placement import place_threads
from repro.sched.vc_placement import OptimisticPlacement, place_optimistic


#: Default op budget for one stitch pass (10 Mcycles at CYCLES_PER_OP).
#: The stitch is an anytime pass — seam VCs refine hottest-first, and no
#: new scan starts past the budget — so the modeled critical path of a
#: split solve is bounded by construction: slowest leaf (~5 Mcyc for an
#: 8x8 region) plus one budget slice per level, which keeps even the
#: four-level 128x128 hierarchy inside the paper's 50 Mcycle interval.
#: Every stitch at 1024 tiles or below measures well under the budget
#: (~14 kops at the 32x32 flat split), so the budget only ever binds at
#: 4096+ tiles and the pre-budget behavior is preserved bitwise
#: everywhere the tests pin it.
STITCH_OPS_BUDGET = 20_000


@dataclass
class EngineState:
    """What a warm-started solve may assume about the previous epoch."""

    problem: PlacementProblem | None = None
    solution: PlacementSolution | None = None


class SolveStrategy(Protocol):
    """One way to turn a :class:`PlacementProblem` into a solution."""

    name: str

    def solve(
        self,
        problem: PlacementProblem,
        policy: ReconfigPolicy,
        external_thread_cores: dict[int, int] | None,
        state: EngineState,
    ) -> ReconfigResult:
        """Solve *problem*; *state* holds the previous epoch's outcome."""
        ...  # pragma: no cover - protocol


def _copy_solution(solution: PlacementSolution) -> PlacementSolution:
    """Deep-enough copy so reusing a solution never aliases engine state."""
    return solution.copy()


def _full_solve(
    problem: PlacementProblem,
    policy: ReconfigPolicy,
    external_thread_cores: dict[int, int] | None,
    strategy: str,
) -> ReconfigResult:
    """The shared cold-start/degenerate path: the classic pipeline, tagged
    with the strategy that requested it."""
    result = reconfigure(problem, policy, external_thread_cores)
    result.strategy = strategy
    return result


class FullSolve:
    """Today's single-shot 4-step pipeline (the equivalence reference)."""

    name = "full"

    def solve(self, problem, policy, external_thread_cores, state):
        return _full_solve(problem, policy, external_thread_cores, self.name)


# ---------------------------------------------------------------------------
# Incremental
# ---------------------------------------------------------------------------


def curve_distance(a, b) -> float:
    """Relative L-inf distance between two miss curves, normalized by the
    larger curve peak.  0 means identical; 1 means a point moved by the
    full peak miss rate.  Identity is free (stationary mixes reuse the
    very same curve objects epoch to epoch).

    Edges: duck-typed inputs whose union grid is empty have no points to
    compare and count as identical, and a zero normalizer (two all-zero
    curves — no misses anywhere) is also distance 0 rather than a
    division blow-up.
    """
    if a is b:
        return 0.0
    sizes = np.union1d(a.sizes, b.sizes)
    if sizes.size == 0:
        return 0.0
    va = np.asarray(a(sizes), dtype=np.float64)
    vb = np.asarray(b(sizes), dtype=np.float64)
    peak = max(float(np.max(va)), float(np.max(vb)))
    if peak <= 0.0:
        return 0.0
    return float(np.max(np.abs(va - vb))) / max(peak, 1e-12)


def _vc_accessors(problem: PlacementProblem) -> dict[int, dict[int, float]]:
    """vc_id -> {thread_id -> rate} in one pass over the thread list."""
    out: dict[int, dict[int, float]] = {}
    for thread in problem.threads:
        for vc_id, rate in thread.vc_accesses.items():
            if rate > 0:
                out.setdefault(vc_id, {})[thread.thread_id] = rate
    return out


def _rate_distance(a: dict[int, float], b: dict[int, float]) -> float:
    """Relative change between two accessor-rate maps (union of threads).

    Two empty maps (a VC nobody accesses, before and after) are
    identical; a thread present on only one side counts as a full
    relative move of that thread's rate.
    """
    if not a and not b:
        return 0.0
    worst = 0.0
    # Pure max-reduction: the result is identical under any visit order,
    # so the unordered union cannot leak into placement decisions.
    for tid in set(a) | set(b):  # repro: allow[determinism]
        ra, rb = a.get(tid, 0.0), b.get(tid, 0.0)
        denom = max(abs(ra), abs(rb), 1e-12)
        worst = max(worst, abs(ra - rb) / denom)
    return worst


class IncrementalSolve:
    """Warm-start from the previous solution, re-solving only dirty VCs.

    A VC is dirty when its miss curve or accessor rates moved beyond
    *dirty_threshold* (relative), or it did not exist last epoch.  Dirty
    VCs release their capacity, banks, and their accessor threads' cores;
    the pipeline then runs over just that released slice: subset hull
    allocation, warm-started optimistic placement (clean footprints
    pre-claimed), subset thread placement over the freed cores, greedy
    seeding into the free capacity, and trades initiated by dirty VCs
    (clean VCs may still be swap counterparties — the displaced
    neighbors).

    ``dirty_threshold <= 0`` marks every VC dirty, reducing to the full
    pipeline — the pinned degenerate-equivalence case.  Cold starts
    (no previous solution), topology/thread-set changes, and policies
    without latency-aware allocation also fall back to the full pipeline.

    With ``use_sketches=True`` dirty detection runs on bounded-memory
    curve sketches (:mod:`repro.cache.sketch`) instead of exact curves:
    O(sketch points) per VC in one vectorized pass, with exact curves
    materialized only for the VCs the sketches flag.  Sketch deltas
    upper-bound :func:`curve_distance`, so the sketch-driven dirty set is
    always a superset of the exact one — the warm start never misses a
    moved VC, it only occasionally re-solves a clean one.
    """

    name = "incremental"

    def __init__(
        self,
        dirty_threshold: float = 0.05,
        use_sketches: bool = False,
        sketch_bytes: int = DEFAULT_SKETCH_BYTES,
    ):
        self.dirty_threshold = dirty_threshold
        self.use_sketches = use_sketches
        self.sketch_bytes = sketch_bytes

    # -- dirty detection ----------------------------------------------------

    def dirty_vcs(
        self, prev: PlacementProblem, problem: PlacementProblem
    ) -> set[int]:
        """Ids of VCs that must be re-solved against *prev*."""
        if self.dirty_threshold <= 0:
            return {vc.vc_id for vc in problem.vcs}
        prev_by_id = {vc.vc_id: vc for vc in prev.vcs}
        prev_rates = _vc_accessors(prev)
        cur_rates = _vc_accessors(problem)
        dirty: set[int] = set()
        for vc in problem.vcs:
            old = prev_by_id.get(vc.vc_id)
            if old is None:
                dirty.add(vc.vc_id)
                continue
            if curve_distance(old.miss_curve, vc.miss_curve) > self.dirty_threshold:
                dirty.add(vc.vc_id)
                continue
            delta = _rate_distance(
                prev_rates.get(vc.vc_id, {}), cur_rates.get(vc.vc_id, {})
            )
            if delta > self.dirty_threshold:
                dirty.add(vc.vc_id)
        return dirty

    def dirty_vcs_from_sketches(
        self, prev: PlacementProblem, problem: PlacementProblem
    ) -> set[int]:
        """Sketch-driven dirty detection: O(sketch) per VC, superset of
        :meth:`dirty_vcs` at the same threshold.

        Curve movement is judged from the per-problem sketch banks (one
        vectorized pass over all VCs; stationary problems reuse bank rows
        so their deltas are exactly zero).  Accessor-rate movement uses
        the same exact :func:`_rate_distance` as the exact path — rates
        are scalars, there is nothing to sketch.  ``dirty_threshold <= 0``
        degenerates bitwise to the full set, like the exact path.
        """
        if self.dirty_threshold <= 0:
            return {vc.vc_id for vc in problem.vcs}
        try:
            deltas = problem_sketch_bank(problem, self.sketch_bytes).deltas_to(
                problem_sketch_bank(prev, self.sketch_bytes)
            )
        except ValueError:
            # Grid mismatch (the chip's LLC size changed): every delta is
            # unbounded, so everything is conservatively dirty.
            return {vc.vc_id for vc in problem.vcs}
        prev_rates = _vc_accessors(prev)
        cur_rates = _vc_accessors(problem)
        dirty: set[int] = set()
        for vc in problem.vcs:
            delta = deltas.get(vc.vc_id)
            if delta is None or delta > self.dirty_threshold:
                dirty.add(vc.vc_id)
                continue
            moved = _rate_distance(
                prev_rates.get(vc.vc_id, {}), cur_rates.get(vc.vc_id, {})
            )
            if moved > self.dirty_threshold:
                dirty.add(vc.vc_id)
        return dirty

    def _can_warm_start(self, problem, policy, state) -> bool:
        if state.problem is None or state.solution is None:
            return False
        if not policy.latency_aware_allocation:
            # The warm start re-allocates through the latency-aware subset
            # kernels; Jigsaw-style miss-driven policies take the full path.
            return False
        prev = state.problem
        if prev.topology.tiles != problem.topology.tiles:
            return False
        if {t.thread_id for t in prev.threads} != {
            t.thread_id for t in problem.threads
        }:
            return False
        return True

    # -- solve --------------------------------------------------------------

    def solve(self, problem, policy, external_thread_cores, state):
        if not self._can_warm_start(problem, policy, state):
            return _full_solve(
                problem, policy, external_thread_cores, self.name
            )
        if self.use_sketches:
            dirty = self.dirty_vcs_from_sketches(state.problem, problem)
        else:
            dirty = self.dirty_vcs(state.problem, problem)
        all_ids = {vc.vc_id for vc in problem.vcs}
        if dirty == all_ids:
            return _full_solve(
                problem, policy, external_thread_cores, self.name
            )
        prev_sol = state.solution
        removed = set(prev_sol.vc_allocation) - all_ids
        if not dirty and not removed:
            # Nothing moved: the previous placement is this epoch's answer.
            return ReconfigResult(
                _copy_solution(prev_sol), StepCounter(), {},
                strategy=self.name,
            )

        counter = StepCounter()
        wall: dict[str, float] = {}
        topo = problem.topology
        bank_bytes = float(problem.bank_bytes)
        quantum = problem.quantum
        clean_ids = all_ids - dirty

        # 1. Capacity: clean VCs keep their sizes; dirty VCs compete for
        # everything else through the hull allocator.
        t0 = time.perf_counter()  # repro: allow[determinism] reported wall time, never a decision input
        clean_sizes = {
            vc_id: prev_sol.vc_sizes.get(vc_id, 0.0) for vc_id in clean_ids
        }
        clean_quanta = sum(
            int(round(size / quantum)) for size in clean_sizes.values()
        )
        budget = problem.total_bytes // quantum - clean_quanta
        dirty_sizes = allocate_latency_aware_subset(
            problem, dirty, budget, counter
        )
        sizes = {**clean_sizes, **dirty_sizes}
        wall["allocation"] = time.perf_counter() - t0  # repro: allow[determinism] reported wall time, never a decision input

        # 2. Optimistic placement of dirty VCs, scored against the clean
        # VCs' real footprints (claimed capacity in banks).
        t0 = time.perf_counter()  # repro: allow[determinism] reported wall time, never a decision input
        claimed = np.zeros(topo.tiles, dtype=np.float64)
        for vc_id in clean_ids:
            for bank, amount in prev_sol.vc_allocation.get(vc_id, {}).items():
                claimed[bank] += amount / bank_bytes
        optimistic = place_optimistic(
            problem, sizes, counter, vc_ids=dirty, claimed_init=claimed
        )
        # Clean VCs anchor thread placement at their *actual* data's center
        # of mass (where the previous refinement left it).
        centroids = dict(optimistic.centroids)
        for vc_id in clean_ids:
            per_bank = prev_sol.vc_allocation.get(vc_id)
            if per_bank:
                centroids[vc_id] = center_of_mass(
                    topo,
                    {b: amt / bank_bytes for b, amt in per_bank.items()},
                )
        merged = OptimisticPlacement(
            footprints=optimistic.footprints,
            centers=optimistic.centers,
            centroids=centroids,
            claimed=optimistic.claimed,
        )
        wall["vc_placement"] = time.perf_counter() - t0  # repro: allow[determinism] reported wall time, never a decision input

        # 3. Threads touching a dirty VC re-place over the cores they
        # released; everyone else stays put.
        t0 = time.perf_counter()  # repro: allow[determinism] reported wall time, never a decision input
        if policy.place_threads:
            dirty_threads = {
                t.thread_id
                for t in problem.threads
                if t.thread_id not in prev_sol.thread_cores
                or any(vc_id in dirty for vc_id in t.vc_accesses)
            }
            clean_cores = {
                t.thread_id: prev_sol.thread_cores[t.thread_id]
                for t in problem.threads
                if t.thread_id not in dirty_threads
            }
            placed = place_threads(
                problem, sizes, merged, counter,
                only_threads=dirty_threads,
                taken_cores=set(clean_cores.values()),
            )
            thread_cores = {**clean_cores, **placed}
        else:
            if external_thread_cores is None:
                raise ValueError(
                    "policy does not place threads; provide "
                    "external_thread_cores"
                )
            missing = {t.thread_id for t in problem.threads} - set(
                external_thread_cores
            )
            if missing:
                raise ValueError(
                    f"external placement misses threads {sorted(missing)}"
                )
            thread_cores = dict(external_thread_cores)
        wall["thread_placement"] = time.perf_counter() - t0  # repro: allow[determinism] reported wall time, never a decision input

        # 4. Data: clean banks pinned, dirty VCs seeded into the remaining
        # free capacity, trades initiated by the dirty set only.
        t0 = time.perf_counter()  # repro: allow[determinism] reported wall time, never a decision input
        preplaced = {
            vc_id: dict(prev_sol.vc_allocation[vc_id])
            for vc_id in clean_ids
            if vc_id in prev_sol.vc_allocation
        }
        allocation = refined_placement(
            problem, sizes, thread_cores, counter,
            trades=policy.trade_refinement,
            only_vcs=dirty, preplaced=preplaced,
        )
        wall["data_placement"] = time.perf_counter() - t0  # repro: allow[determinism] reported wall time, never a decision input

        solution = PlacementSolution(
            vc_sizes={
                vc_id: sum(per.values())
                for vc_id, per in allocation.items()
            },
            vc_allocation=allocation,
            thread_cores=thread_cores,
        )
        return ReconfigResult(
            solution, counter, wall, strategy=self.name,
        )


# ---------------------------------------------------------------------------
# Partitioned
# ---------------------------------------------------------------------------


def _solve_region(
    problem: PlacementProblem,
    policy: ReconfigPolicy,
    external_thread_cores: dict[int, int] | None,
) -> ReconfigResult:
    """Module-level region solve (picklable, so it can be a runner job)."""
    return reconfigure(problem, policy, external_thread_cores)


def auto_regions(topology) -> int:
    """Split factor so each region is roughly the paper's 8x8 design
    point: the largest k <= min(W, H) // 8 that divides both axes
    (1 when the mesh is too small or indivisible — i.e. a full solve)."""
    width = getattr(topology, "width", None)
    height = getattr(topology, "height", None)
    if not width or not height:
        return 1
    for k in range(min(width, height) // 8, 1, -1):
        if width % k == 0 and height % k == 0:
            return k
    return 1


def _split_dims(topo: Mesh, k: int) -> tuple[int, int]:
    """Region (width, height) of a k x k split; validates the topology."""
    if type(topo) is not Mesh:
        raise ValueError(
            "partitioned solves need a plain Mesh topology "
            f"(got {type(topo).__name__})"
        )
    if topo.width % k or topo.height % k:
        raise ValueError(
            f"regions={k} does not divide the "
            f"{topo.width}x{topo.height} mesh"
        )
    return topo.width // k, topo.height // k


def _map_region_solves(sub_problems, policy, sub_externals, runner):
    """Solve each region through the full pipeline, serially or fanned
    over a runner's worker processes (results identical either way)."""
    if runner is None:
        return [
            _solve_region(sub, policy, ext)
            for sub, ext in zip(sub_problems, sub_externals)
        ]
    from repro.runner import Job  # lazy: sched must not need the runner

    jobs = [
        Job(
            fn=_solve_region,
            kwargs=dict(
                problem=sub, policy=policy, external_thread_cores=ext
            ),
            label=f"region-{i}",
        )
        for i, (sub, ext) in enumerate(zip(sub_problems, sub_externals))
    ]
    return runner.map(jobs)


def _split_solve(
    problem: PlacementProblem,
    policy: ReconfigPolicy,
    external_thread_cores: dict[int, int] | None,
    k: int,
    strategy_name: str,
    solve_children,
    stitch_ops_budget: int | None = STITCH_OPS_BUDGET,
) -> ReconfigResult:
    """One level of a region split: partition, solve children, merge,
    stitch.

    The shared body of :class:`PartitionedSolve` (children = full-pipeline
    region solves) and :class:`HierarchicalSolve` (children = recursive
    split solves).  *solve_children* maps ``(sub_problems, policy,
    sub_externals)`` to one :class:`ReconfigResult` per region.  The
    modeled critical path is the slowest child's ``modeled_cycles()``
    plus this level's stitch — for a leaf child that is its op count,
    for a nested split its own critical path, so the recursion yields
    slowest-leaf + per-level stitches, each stitch capped at
    *stitch_ops_budget* ops (see :data:`STITCH_OPS_BUDGET`).
    """
    topo = problem.topology
    rw, rh = _split_dims(topo, k)
    n_regions = k * k

    def region_of(tile: int) -> int:
        x, y = topo.coords(tile)
        return (y // rh) * k + (x // rw)

    def to_local(tile: int) -> int:
        x, y = topo.coords(tile)
        return (y % rh) * rw + (x % rw)

    def to_global(region: int, local: int) -> int:
        gx = (region % k) * rw + local % rw
        gy = (region // k) * rh + local // rw
        return topo.tile_at(gx, gy)

    # -- assign processes (and with them, threads + VCs) to regions ----
    region_threads: dict[int, list] = {r: [] for r in range(n_regions)}
    if external_thread_cores is not None:
        thread_region: dict[int, int] = {}
        for thread in problem.threads:
            core = external_thread_cores.get(thread.thread_id)
            if core is None:
                raise ValueError(
                    f"external placement misses thread {thread.thread_id}"
                )
            region = region_of(core)
            seen = thread_region.get(thread.process_id)
            if seen is not None and seen != region:
                # A process's shared VCs live in exactly one region;
                # threads scattered across regions would silently
                # under-allocate them.  Refuse rather than diverge.
                raise ValueError(
                    f"external placement splits process "
                    f"{thread.process_id} across regions; partitioned "
                    f"solves need region-local processes (use fewer "
                    f"regions or a region-aligned placement)"
                )
            thread_region[thread.process_id] = region
            region_threads[region].append(thread)
    else:
        by_process: dict[int, list] = {}
        for thread in problem.threads:
            by_process.setdefault(thread.process_id, []).append(thread)
        free = {r: rw * rh for r in range(n_regions)}
        order = sorted(
            by_process.items(), key=lambda kv: (-len(kv[1]), kv[0])
        )
        for process_id, threads in order:
            target = max(
                range(n_regions), key=lambda r: (free[r], -r)
            )
            if len(threads) > free[target]:
                raise ValueError(
                    f"process {process_id} has {len(threads)} threads "
                    f"but the largest region has {free[target]} free "
                    f"cores; use fewer regions"
                )
            region_threads[target].extend(threads)
            free[target] -= len(threads)

    process_region = {
        t.process_id: r
        for r, threads in region_threads.items()
        for t in threads
    }
    # Orphan VCs (the zero-rate global VC's process id maps nowhere) go
    # to the first region that actually has threads, so no region ends up
    # holding VCs it has no accessors for.
    default_region = next(
        (r for r in range(n_regions) if region_threads[r]), 0
    )
    region_vcs: dict[int, list] = {r: [] for r in range(n_regions)}
    for vc in problem.vcs:
        region_vcs[process_region.get(vc.process_id, default_region)].append(vc)

    # -- solve each region as an independent sub-problem ---------------
    sub_config = problem.config.with_mesh(rw, rh)
    sub_problems = []
    sub_externals = []
    for region in range(n_regions):
        sub_problems.append(
            PlacementProblem(
                config=sub_config,
                topology=Mesh(rw, rh),
                vcs=region_vcs[region],
                threads=region_threads[region],
                # The DRAM round trip is a chip-level constant; regions
                # see the same memory the whole mesh does.
                mem_latency=problem.mem_latency,
            )
        )
        if external_thread_cores is None:
            sub_externals.append(None)
        else:
            sub_externals.append(
                {
                    t.thread_id: to_local(
                        external_thread_cores[t.thread_id]
                    )
                    for t in region_threads[region]
                }
            )

    # Regions no process landed in (small meshes, forced splits) have
    # nothing to solve: give them an empty result instead of running the
    # pipeline on a degenerate zero-thread problem.
    live = [
        i for i, sub in enumerate(sub_problems) if sub.threads or sub.vcs
    ]
    live_results = dict(zip(live, solve_children(
        [sub_problems[i] for i in live],
        policy,
        [sub_externals[i] for i in live],
    )))
    region_results = [
        live_results[i] if i in live_results else ReconfigResult(
            PlacementSolution(
                vc_sizes={}, vc_allocation={}, thread_cores={}
            ),
            StepCounter(), {}, strategy=strategy_name,
        )
        for i in range(n_regions)
    ]

    # -- merge local solutions back into chip coordinates ---------------
    counter = StepCounter()
    wall: dict[str, float] = {}
    allocation: dict[int, dict[int, float]] = {}
    thread_cores: dict[int, int] = {}
    critical = 0.0
    for region, result in enumerate(region_results):
        counter = counter.merged(result.counter)
        # A leaf's modeled cycles are its op count; a nested split's are
        # its own critical path — identical for flat partitioned solves
        # (leaves carry no critical_path_cycles), recursive otherwise.
        critical = max(critical, result.modeled_cycles())
        for step, seconds in result.wall_seconds.items():
            wall[step] = wall.get(step, 0.0) + seconds
        for vc_id, per_bank in result.solution.vc_allocation.items():
            allocation[vc_id] = {
                to_global(region, bank): amount
                for bank, amount in per_bank.items()
            }
        for thread_id, core in result.solution.thread_cores.items():
            thread_cores[thread_id] = to_global(region, core)

    # -- stitch: boundary VCs trade across the seams --------------------
    if policy.trade_refinement:
        t0 = time.perf_counter()  # repro: allow[determinism] reported wall time, never a decision input
        boundary_banks = {
            tile
            for tile in range(topo.tiles)
            if any(
                region_of(n) != region_of(tile)
                for n in topo.neighbors(tile)
            )
        }
        boundary_vcs = {
            vc_id
            for vc_id, per_bank in allocation.items()
            if any(
                bank in boundary_banks and amount > 1e-9
                for bank, amount in per_bank.items()
            )
        }
        stitch_counter = StepCounter()
        trade_refinement(
            problem, allocation, thread_cores, stitch_counter,
            initiators=boundary_vcs, ops_budget=stitch_ops_budget,
        )
        stitch_ops = sum(stitch_counter.ops.values())
        if stitch_ops:
            counter.add("stitch", stitch_ops)
        critical += stitch_ops * CYCLES_PER_OP
        wall["stitch"] = time.perf_counter() - t0  # repro: allow[determinism] reported wall time, never a decision input

    solution = PlacementSolution(
        vc_sizes={
            vc_id: sum(per.values())
            for vc_id, per in allocation.items()
        },
        vc_allocation=allocation,
        thread_cores=thread_cores,
    )
    return ReconfigResult(
        solution, counter, wall,
        strategy=strategy_name, critical_path_cycles=critical,
    )


class PartitionedSolve:
    """Solve k x k mesh regions independently, then stitch the seams.

    Each region is a rectangular sub-mesh solved as its own
    :class:`PlacementProblem` through the unchanged pipeline (one runtime
    core per region — the modeled critical path is the slowest region's
    op count, not the total).  Threads follow their process into exactly
    one region (bin-packed largest-first; with external placements, the
    region owning the external core), and each process's VCs come along.
    The stitch is a boundary-trade pass: VCs holding data in a bank
    adjacent to another region may trade across the seam, with anyone as
    counterparty — op-counted under the ``stitch`` step and capped at
    ``stitch_ops_budget`` ops (anytime, hottest VCs first; the default
    :data:`STITCH_OPS_BUDGET` never binds at 1024 tiles or below).

    ``regions=1`` solves the whole mesh as one region and skips the
    stitch (there are no seams), making it bitwise-identical to
    :class:`FullSolve`.  ``regions=None`` (the default) picks
    :func:`auto_regions` per problem.  An optional
    :class:`repro.runner.ProcessPoolRunner` fans region solves over
    worker processes (results are identical either way).
    """

    name = "partitioned"

    def __init__(
        self,
        regions: int | None = None,
        runner=None,
        stitch_ops_budget: int | None = STITCH_OPS_BUDGET,
    ):
        if regions is not None and regions < 1:
            raise ValueError(f"regions must be >= 1, got {regions}")
        if stitch_ops_budget is not None and stitch_ops_budget < 1:
            raise ValueError(
                f"stitch_ops_budget must be >= 1, got {stitch_ops_budget}"
            )
        self.regions = regions
        self.runner = runner
        self.stitch_ops_budget = stitch_ops_budget

    def solve(self, problem, policy, external_thread_cores, state):
        topo = problem.topology
        k = self.regions if self.regions is not None else auto_regions(topo)
        if k <= 1:
            return _full_solve(
                problem, policy, external_thread_cores, self.name
            )
        return _split_solve(
            problem, policy, external_thread_cores, k, self.name,
            lambda subs, pol, exts: _map_region_solves(
                subs, pol, exts, self.runner
            ),
            stitch_ops_budget=self.stitch_ops_budget,
        )


class HierarchicalSolve:
    """Regions of regions: recursive splits down to paper-sized leaves.

    A flat k x k split stops scaling once k² regions each still hold
    hundreds of tiles (or the stitch seam grows to a large fraction of
    the chip).  This strategy splits by the *smallest* common divisor
    k >= 2 of the mesh axes at every level, recursing until a region is
    at most *leaf_tiles* tiles (default 64 — the paper's 8x8 design
    point), then solves the leaves through the unchanged pipeline.  Every
    level merges its children with the shared :func:`_split_solve` body
    and runs the same boundary-trade stitch over its seams, so data still
    migrates across region borders at every scale.  The modeled critical
    path compounds as slowest-leaf + one stitch per level (regions at one
    level solve on parallel runtime cores; stitches are sequential), and
    each stitch is an anytime pass capped at ``stitch_ops_budget`` ops —
    that cap is what bounds the whole chain: leaf + levels x budget stays
    inside the 50 Mcycle interval even for the four-level 128x128 mesh.

    ``regions`` fixes the *top-level* split factor (deeper levels stay
    automatic); ``depth`` caps the number of split levels.  The pinned
    degenerate contracts: ``depth=1`` is bitwise the flat
    :class:`PartitionedSolve` with the same split factor (the recursion
    collapses to one level over full-pipeline leaves, through the same
    shared body), and ``depth=1, regions=1`` is bitwise
    :class:`FullSolve`.  Leaves re-solve cold every epoch, exactly like
    the flat strategy — warm per-leaf engines would break those
    contracts.  An optional runner fans the deepest level's leaf solves
    over worker processes.
    """

    name = "hierarchical"

    def __init__(
        self,
        regions: int | None = None,
        depth: int | None = None,
        leaf_tiles: int = 64,
        runner=None,
        stitch_ops_budget: int | None = STITCH_OPS_BUDGET,
    ):
        if regions is not None and regions < 1:
            raise ValueError(f"regions must be >= 1, got {regions}")
        if depth is not None and depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if leaf_tiles < 1:
            raise ValueError(f"leaf_tiles must be >= 1, got {leaf_tiles}")
        if stitch_ops_budget is not None and stitch_ops_budget < 1:
            raise ValueError(
                f"stitch_ops_budget must be >= 1, got {stitch_ops_budget}"
            )
        self.regions = regions
        self.depth = depth
        self.leaf_tiles = leaf_tiles
        self.runner = runner
        self.stitch_ops_budget = stitch_ops_budget

    def _auto_k(self, topo) -> int:
        """Smallest common divisor >= 2 of the mesh axes (1 = leaf:
        the region is small enough, or the axes share no divisor)."""
        width = getattr(topo, "width", None)
        height = getattr(topo, "height", None)
        if not width or not height:
            return 1
        if topo.tiles <= self.leaf_tiles:
            return 1
        for k in range(2, min(width, height) + 1):
            if width % k == 0 and height % k == 0:
                return k
        return 1

    def _level_k(self, topo, remaining: int | None) -> int:
        if remaining is not None and remaining <= 0:
            return 1
        return self._auto_k(topo)

    def solve(self, problem, policy, external_thread_cores, state):
        topo = problem.topology
        k = self.regions if self.regions is not None else self._auto_k(topo)
        if k <= 1:
            return _full_solve(
                problem, policy, external_thread_cores, self.name
            )
        remaining = None if self.depth is None else self.depth - 1
        return _split_solve(
            problem, policy, external_thread_cores, k, self.name,
            lambda subs, pol, exts: self._solve_children(
                subs, pol, exts, remaining
            ),
            stitch_ops_budget=self.stitch_ops_budget,
        )

    def _solve_children(self, subs, policy, exts, remaining):
        if not subs:
            return []
        # Regions at one level share dimensions, so one decision covers
        # them all: recurse deeper, or solve this level's regions as
        # leaves (the flat strategy's path, runner fan-out included).
        child_k = self._level_k(subs[0].topology, remaining)
        if child_k <= 1:
            return _map_region_solves(subs, policy, exts, self.runner)
        next_remaining = None if remaining is None else remaining - 1
        return [
            _split_solve(
                sub, policy, ext, child_k, self.name,
                lambda s, p, e: self._solve_children(
                    s, p, e, next_remaining
                ),
                stitch_ops_budget=self.stitch_ops_budget,
            )
            for sub, ext in zip(subs, exts)
        ]


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

#: Registered strategy names -> constructors (the scheme/CLI vocabulary).
STRATEGIES = {
    "full": FullSolve,
    "incremental": IncrementalSolve,
    "partitioned": PartitionedSolve,
    "hierarchical": HierarchicalSolve,
}


def strategy_names() -> list[str]:
    return sorted(STRATEGIES)


def make_strategy(name: str, **kwargs) -> SolveStrategy:
    """Build a strategy from its registered name (kwargs pass through)."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown solve strategy {name!r} "
            f"(have: {', '.join(strategy_names())})"
        ) from None
    return cls(**kwargs)


class ReconfigEngine:
    """Carries solver state across epochs and applies one strategy.

    ``engine.solve(problem)`` runs the configured strategy against the
    previous epoch's (problem, solution) pair and records the new pair —
    exactly the warm state the periodic runtime of Sec IV-G keeps between
    intervals.  Construct with a strategy name (``"full"``,
    ``"incremental"``, ``"partitioned"``) or a ready
    :class:`SolveStrategy` instance.
    """

    def __init__(
        self,
        strategy: str | SolveStrategy = "full",
        policy: ReconfigPolicy | None = None,
        external_thread_cores: dict[int, int] | None = None,
        **strategy_kwargs,
    ):
        if isinstance(strategy, str):
            strategy = make_strategy(strategy, **strategy_kwargs)
        elif strategy_kwargs:
            raise ValueError(
                "strategy kwargs only apply when the strategy is named"
            )
        self.strategy = strategy
        self.policy = policy or ReconfigPolicy.cdcs()
        self.external_thread_cores = external_thread_cores
        self.state = EngineState()

    def solve(self, problem: PlacementProblem) -> ReconfigResult:
        """Solve one epoch's problem and advance the engine state."""
        result = self.strategy.solve(
            problem, self.policy, self.external_thread_cores, self.state
        )
        # Snapshot the solution: callers own the returned object and may
        # mutate it without corrupting the next epoch's warm start.
        self.state = EngineState(
            problem=problem, solution=_copy_solution(result.solution)
        )
        return result

    def last_solution(self) -> PlacementSolution | None:
        """A copy of the most recent solution, or ``None`` before the
        first solve.  This is the "last good placement" a serving control
        plane degrades to when a fresh solve times out or fails — the
        copy means handing it to a client can never corrupt warm state."""
        if self.state.solution is None:
            return None
        return _copy_solution(self.state.solution)

    def reset(self) -> None:
        """Drop the warm state (the next solve is a cold start)."""
        self.state = EngineState()
