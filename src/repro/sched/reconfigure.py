"""The periodic reconfiguration pipeline (Fig 4).

``reconfigure(problem, policy)`` runs the four steps of Sec IV-B:

1. latency-aware capacity allocation          (Sec IV-C)
2. optimistic contention-aware VC placement   (Sec IV-D)
3. thread placement                           (Sec IV-E)
4. refined VC placement (greedy + trades)     (Sec IV-F)

:class:`ReconfigPolicy` toggles each CDCS ingredient independently, which
is exactly the factor analysis of Fig 12: Jigsaw+R is all toggles off with
random external thread placement; +L enables latency-aware allocation; +T
enables thread placement; +D enables trade refinement; +LTD is CDCS.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cache.sketch import problem_sketch_bank
from repro.sched.allocation import allocate_latency_aware, allocate_miss_driven
from repro.sched.opcount import StepCounter
from repro.sched.problem import PlacementProblem, PlacementSolution
from repro.sched.refinement import refined_placement
from repro.sched.thread_placement import place_threads
from repro.sched.vc_placement import place_optimistic


@dataclass(frozen=True)
class ReconfigPolicy:
    """Which CDCS ingredients are active."""

    latency_aware_allocation: bool = True
    place_threads: bool = True
    trade_refinement: bool = True

    @staticmethod
    def cdcs() -> "ReconfigPolicy":
        return ReconfigPolicy(True, True, True)

    @staticmethod
    def jigsaw() -> "ReconfigPolicy":
        """Jigsaw's runtime: miss-driven sizing, external thread placement,
        greedy-only data placement (Sec IV: "Jigsaw uses a simple runtime
        that sizes VCs obliviously to their latency, places them greedily,
        and does not place threads")."""
        return ReconfigPolicy(False, False, False)

    def label(self) -> str:
        parts = []
        if self.latency_aware_allocation:
            parts.append("L")
        if self.place_threads:
            parts.append("T")
        if self.trade_refinement:
            parts.append("D")
        return "+" + "".join(parts) if parts else "base"


#: The canonical Fig 4 pipeline steps, in order.  Strategies may count
#: extra steps (e.g. the partitioned solve's ``stitch`` pass); these four
#: are always reported, present or not.
PIPELINE_STEPS = (
    "allocation", "vc_placement", "thread_placement", "data_placement",
)


@dataclass
class ReconfigResult:
    """A solution plus per-step accounting (Table 3).

    *strategy* names the :mod:`repro.sched.engine` strategy that produced
    the solution (``"full"`` for the classic single-shot pipeline).
    *critical_path_cycles*, when set, is the modeled runtime along the
    longest dependent chain — a partitioned solve runs its regions on
    separate cores, so its critical path is the slowest region plus the
    stitch pass, not the op-count total.
    """

    solution: PlacementSolution
    counter: StepCounter
    wall_seconds: dict[str, float] = field(default_factory=dict)
    strategy: str = "full"
    critical_path_cycles: float | None = None

    def step_cycles(self) -> dict[str, float]:
        """Modeled cycles per step: the four pipeline steps always, plus
        any strategy-specific steps the counter saw (e.g. ``stitch``)."""
        cycles = {step: self.counter.cycles(step) for step in PIPELINE_STEPS}
        for step in sorted(self.counter.ops):
            if step not in cycles:
                cycles[step] = self.counter.cycles(step)
        return cycles

    def modeled_cycles(self) -> float:
        """The runtime the reconfiguration interval must absorb: the
        critical path when the strategy solved in parallel, the op-count
        total otherwise."""
        if self.critical_path_cycles is not None:
            return self.critical_path_cycles
        return self.counter.total_cycles()


def _optimistic_for(
    problem: PlacementProblem,
    sizes: dict[int, float],
    counter: StepCounter,
):
    """:func:`place_optimistic`, memoized per problem object.

    The optimistic placement depends only on (problem, sizes) — policies
    that share both (Jigsaw's clustered and random variants differ only in
    thread placement, which runs later) recompute it identically.  The
    memo lives on the problem object, so it ends with the problem; hits
    replay the recorded op counts (``StepCounter.add`` aggregates, so a
    bulk add equals the loop's unit adds) and every caller gets a private
    copy, since refinement treats the placement as scratch state.
    """
    key = tuple(sorted(sizes.items()))
    memo = getattr(problem, "_optimistic_memo", None)
    if memo is None:
        memo = problem._optimistic_memo = {}

    def private_copy(placement):
        return type(placement)(
            {vc: dict(banks) for vc, banks in placement.footprints.items()},
            dict(placement.centers),
            dict(placement.centroids),
            placement.claimed.copy(),
        )

    hit = memo.get(key)
    if hit is not None:
        placement, ops = hit
        for step, count in ops.items():
            counter.add(step, count)
        return private_copy(placement)
    sub = StepCounter()
    placement = place_optimistic(problem, sizes, sub)
    memo[key] = (placement, dict(sub.ops))
    for step, count in sub.ops.items():
        counter.add(step, count)
    return private_copy(placement)


def reconfigure(
    problem: PlacementProblem,
    policy: ReconfigPolicy | None = None,
    external_thread_cores: dict[int, int] | None = None,
) -> ReconfigResult:
    """Run one full reconfiguration.

    If the policy does not place threads, *external_thread_cores* must give
    the fixed assignment (Jigsaw's clustered/random schedulers).
    """
    policy = policy or ReconfigPolicy.cdcs()
    counter = StepCounter()
    wall: dict[str, float] = {}

    t0 = time.perf_counter()  # repro: allow[determinism] reported wall time, never a decision input
    if policy.latency_aware_allocation:
        sizes = allocate_latency_aware(problem, counter)
    else:
        sizes = allocate_miss_driven(problem, counter)
    wall["allocation"] = time.perf_counter() - t0  # repro: allow[determinism] reported wall time, never a decision input

    t0 = time.perf_counter()  # repro: allow[determinism] reported wall time, never a decision input
    optimistic = _optimistic_for(problem, sizes, counter)
    wall["vc_placement"] = time.perf_counter() - t0  # repro: allow[determinism] reported wall time, never a decision input

    t0 = time.perf_counter()  # repro: allow[determinism] reported wall time, never a decision input
    if policy.place_threads:
        thread_cores = place_threads(problem, sizes, optimistic, counter)
    else:
        if external_thread_cores is None:
            raise ValueError(
                "policy does not place threads; provide external_thread_cores"
            )
        missing = {t.thread_id for t in problem.threads} - set(
            external_thread_cores
        )
        if missing:
            raise ValueError(f"external placement misses threads {sorted(missing)}")
        thread_cores = dict(external_thread_cores)
    wall["thread_placement"] = time.perf_counter() - t0  # repro: allow[determinism] reported wall time, never a decision input

    t0 = time.perf_counter()  # repro: allow[determinism] reported wall time, never a decision input
    allocation = refined_placement(
        problem, sizes, thread_cores, counter, trades=policy.trade_refinement
    )
    wall["data_placement"] = time.perf_counter() - t0  # repro: allow[determinism] reported wall time, never a decision input

    solution = PlacementSolution(
        vc_sizes={vc_id: sum(per.values()) for vc_id, per in allocation.items()},
        vc_allocation=allocation,
        thread_cores=thread_cores,
    )
    return ReconfigResult(solution, counter, wall)


def reconfigure_epoch(
    mix,
    config,
    policy: ReconfigPolicy | None = None,
    external_thread_cores: dict[int, int] | None = None,
    topology=None,
    prior_problem: PlacementProblem | None = None,
    sketch_bytes: int | None = None,
) -> tuple[ReconfigResult, PlacementProblem]:
    """One epoch-boundary reconfiguration against the mix's *current* curves.

    The periodic runtime (Sec IV-G) does not solve a frozen problem: at
    every interval it re-reads the GMONs, whose sampled miss curves track
    whatever the applications are doing *now*.  With phased workloads
    (:class:`repro.workloads.phased.PhasedProfile`) that matters — the
    caller snapshots the mix at the current instruction count (e.g.
    ``EpochEngine.current_mix()``), and this helper rebuilds the placement
    problem from those active curves before solving, returning both the
    result and the rebuilt problem so evaluation and solution agree.

    For stationary mixes this is ``reconfigure(build_problem(mix, config))``
    — the classic single-shot pipeline.  Pass the previous epoch's problem
    as *prior_problem* and it is reused outright when the mix is stationary
    (its curves cannot have moved), skipping the per-epoch VC/thread/
    topology rebuild entirely; phased mixes always rebuild against the
    active snapshot, reusing only the prior problem's topology (whose
    geometry matrices are shared process-wide regardless).

    *sketch_bytes* feeds the sketch stream forward: the returned
    problem's telemetry bank (:func:`repro.cache.sketch.problem_sketch_bank`)
    is built at that budget and memoized on the problem object, so a
    sketch-driven engine consuming consecutive epochs never re-sketches a
    stationary epoch — the reused problem object carries its bank.
    """
    from repro.nuca.base import build_problem  # sched must not import nuca eagerly
    from repro.workloads.mixes import mix_is_phased

    if prior_problem is not None:
        if not mix_is_phased(mix):
            if sketch_bytes is not None:
                problem_sketch_bank(prior_problem, sketch_bytes)
            result = reconfigure(prior_problem, policy, external_thread_cores)
            return result, prior_problem
        if topology is None:
            topology = prior_problem.topology
    problem = build_problem(mix, config, topology)
    if sketch_bytes is not None:
        problem_sketch_bank(problem, sketch_bytes)
    result = reconfigure(problem, policy, external_thread_cores)
    return result, problem
