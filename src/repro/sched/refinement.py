"""Refined VC placement: greedy seeding plus trade-based improvement
(Sec IV-F, Fig 8).

With thread locations fixed, data placement becomes concrete:

1. **Greedy round-robin** (Jigsaw's placer, reused as the seed): VCs take
   turns claiming one quantum from the closest bank (to their accessors)
   with free capacity.  Round-robin means every thread VC gets its local
   bank first — reasonable, but blind to intensity.
2. **Trades**: each VC spirals outward from its data's center of mass,
   keeping a list of *desirable banks* (banks it does not fully own) and
   trying to move its far data into closer desirable banks, either into
   free space or by **swapping capacity** with another VC.  A trade's value
   follows the paper's per-byte rule: ``Accesses/Capacity x (D(VC, from) -
   D(VC, to))`` summed over both parties; only net-negative (latency-
   reducing) trades execute.  Each VC trades once — the paper found a
   single pass discovers most beneficial trades.

Shape conventions
-----------------
All trade valuation runs against per-VC arrays (``N = topology.tiles``):

* ``dvec[vc_id]`` — ``(N,) float64``; access-weighted mean hops from the
  VC's accessors to every bank (``D(VC, b)``, Sec IV-F).  Built as an
  ``(accessors, N)`` row stack of ``(rate / total) * dist[core]`` reduced
  with ``np.cumsum`` along the accessor axis, so each entry matches the
  scalar accumulation loop bitwise — trade accept/reject decisions are
  therefore identical between paths;
* ``used`` — ``(N,) float64`` bytes occupied per bank;
* the 1-median anchors come from the vectorized
  :func:`repro.geometry.placement_math.weighted_center_tile`.

The trade scan itself (spiral walk, swap bookkeeping) stays sequential:
its decisions feed back into the very capacities it iterates over.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.placement_math import weighted_center_tile
from repro.kernels import use_vectorized
from repro.sched.opcount import StepCounter
from repro.sched.problem import PlacementProblem


#: Accessor rows reduced per block when building one distance vector.
#: Chunking bounds the transient at ``(256, N)`` — a chip-wide VC (every
#: core an accessor) on a 16384-tile mesh would otherwise stack an
#: ``(N, N)`` float64 slab, exactly the dense build the lazy geometry
#: path exists to avoid.
_DVEC_ACCESSOR_CHUNK = 256


def _sequential_weighted_row_sum(
    dist, cores: np.ndarray, coeffs: np.ndarray
) -> np.ndarray:
    """``cumsum(coeffs[:, None] * dist[cores], axis=0)[-1]`` in chunks.

    ``cumsum`` is sequential addition, so seeding each chunk's reduction
    with the running vector keeps every add in the same order — bitwise
    the one-shot cumsum and the scalar ``vec += ...`` loop.
    """
    running: np.ndarray | None = None
    for lo in range(0, len(cores), _DVEC_ACCESSOR_CHUNK):
        hi = min(lo + _DVEC_ACCESSOR_CHUNK, len(cores))
        block = coeffs[lo:hi, None] * dist[cores[lo:hi]]
        if running is not None:
            block = np.vstack([running[None, :], block])
        running = np.cumsum(block, axis=0)[-1]
    return running


class DistanceVectors:
    """Lazily materialized ``dvec`` mapping: vc_id -> ``(N,) float64``.

    Keys are fixed up front (every accessed, placed VC, in problem
    order); each vector builds on first read and is then cached.  With
    restricted trade *initiators* (the incremental dirty set, a
    partitioned/hierarchical stitch's boundary VCs) most VCs are never an
    initiator or a swap counterparty, so their vectors — the dominant
    allocation of a chip-level refinement at scale — are never built.
    Values are bitwise what the eager build produced, so trade decisions
    are unchanged.
    """

    def __init__(
        self,
        topology,
        thread_cores: dict[int, int],
        eligible: dict[int, dict[int, float]],
        vectorized: bool,
    ):
        self._topology = topology
        self._thread_cores = thread_cores
        self._eligible = eligible
        self._vectorized = vectorized
        self._vecs: dict[int, np.ndarray] = {}

    def __iter__(self):
        return iter(self._eligible)

    def __len__(self) -> int:
        return len(self._eligible)

    def __contains__(self, vc_id) -> bool:
        return vc_id in self._eligible

    def __getitem__(self, vc_id: int) -> np.ndarray:
        vec = self._vecs.get(vc_id)
        if vec is None:
            accessors = self._eligible.get(vc_id)
            if accessors is None:
                raise KeyError(vc_id)
            vec = self._vecs[vc_id] = self._compute(accessors)
        return vec

    def get(self, vc_id: int, default=None):
        if vc_id not in self._eligible:
            return default
        return self[vc_id]

    def _compute(self, accessors: dict[int, float]) -> np.ndarray:
        total_rate = sum(accessors.values())
        dist = self._topology.distance_matrix
        if self._vectorized:
            cores = np.fromiter(
                (self._thread_cores[t] for t in accessors),
                dtype=np.int64,
                count=len(accessors),
            )
            coeffs = np.fromiter(
                ((rate / total_rate) for rate in accessors.values()),
                dtype=np.float64,
                count=len(accessors),
            )
            return _sequential_weighted_row_sum(dist, cores, coeffs)
        vec = np.zeros(self._topology.tiles, dtype=np.float64)
        for thread_id, rate in accessors.items():
            vec += (rate / total_rate) * dist[self._thread_cores[thread_id]]
        return vec


def access_distance_vectors(
    problem: PlacementProblem,
    allocation: dict[int, dict[int, float]],
    thread_cores: dict[int, int],
) -> tuple[DistanceVectors, dict[int, float]]:
    """``(dvec, rate_per_byte)`` for every accessed, placed VC.

    ``dvec[vc_id][b]`` is the access-weighted mean distance from the VC's
    accessors to bank *b*; ``rate_per_byte`` is its access intensity.
    Vectors build as one ``(rate / total) * dist[core]`` row per accessor
    reduced with sequential ``cumsum`` adds — bitwise the scalar
    ``vec += ...`` loop — and only when a VC's vector is actually read
    (see :class:`DistanceVectors`).
    """
    vectorized = use_vectorized()
    eligible: dict[int, dict[int, float]] = {}
    rate_per_byte: dict[int, float] = {}
    for vc in problem.vcs:
        accessors = problem.accessors_of(vc.vc_id)
        total_rate = sum(accessors.values())
        size = sum(allocation.get(vc.vc_id, {}).values())
        if total_rate <= 0 or size <= 0:
            continue
        eligible[vc.vc_id] = accessors
        rate_per_byte[vc.vc_id] = total_rate / size
    dvec = DistanceVectors(
        problem.topology, thread_cores, eligible, vectorized
    )
    return dvec, rate_per_byte


def _vc_anchor(problem: PlacementProblem, vc_id: int, thread_cores: dict[int, int]) -> int:
    """Tile a VC's data gravitates to: the access-weighted 1-median of its
    accessors' cores (a thread VC's anchor is simply its owner's core)."""
    accessors = problem.accessors_of(vc_id)
    weights: dict[int, float] = {}
    for thread_id, rate in accessors.items():
        core = thread_cores[thread_id]
        weights[core] = weights.get(core, 0.0) + rate
    if not weights:
        return problem.topology.center_tile()
    return weighted_center_tile(problem.topology, weights)


def greedy_placement(
    problem: PlacementProblem,
    vc_sizes: dict[int, float],
    thread_cores: dict[int, int],
    counter: StepCounter | None = None,
    only_vcs: set[int] | None = None,
    preplaced: dict[int, dict[int, float]] | None = None,
) -> dict[int, dict[int, float]]:
    """Round-robin nearest-bank placement; returns vc_id -> {bank: bytes}.

    *only_vcs*/*preplaced* warm-start an incremental re-place: VCs in
    *preplaced* keep their banks (their capacity is subtracted from the
    free tally) and only *only_vcs* compete for what remains.
    """
    counter = counter if counter is not None else StepCounter()
    topo = problem.topology
    free = np.full(topo.tiles, float(problem.bank_bytes))
    allocation: dict[int, dict[int, float]] = {}
    for vc_id, per_bank in (preplaced or {}).items():
        allocation[vc_id] = dict(per_bank)
        for bank, amount in per_bank.items():
            free[bank] -= amount

    states = []
    for vc in problem.vcs:
        if only_vcs is not None and vc.vc_id not in only_vcs:
            continue
        size = vc_sizes.get(vc.vc_id, 0.0)
        allocation[vc.vc_id] = {}
        if size <= 0:
            continue
        anchor = _vc_anchor(problem, vc.vc_id, thread_cores)
        states.append(
            {
                "vc_id": vc.vc_id,
                "order": topo.tiles_by_distance(anchor),
                "ptr": 0,
                "remaining": float(size),
            }
        )

    # Each turn a VC claims everything it still wants from its closest
    # non-full bank (not one quantum): Jigsaw's greedy is first-claimant-
    # wins at bank granularity, which is precisely why capacity contention
    # between neighboring big VCs hurts (Fig 1b) — a fairer interleaving
    # would mask the pathology CDCS exists to fix.
    active = [s for s in states if s["remaining"] > 0]
    while active:
        still_active = []
        for state in active:
            # Advance past full banks; capacity checks guarantee progress.
            while state["ptr"] < len(state["order"]) and free[
                state["order"][state["ptr"]]
            ] <= 1e-9:
                state["ptr"] += 1
            if state["ptr"] >= len(state["order"]):
                continue  # chip full: drop the tail of this VC's demand
            bank = state["order"][state["ptr"]]
            take = min(state["remaining"], float(free[bank]))
            counter.add("data_placement")
            free[bank] -= take
            state["remaining"] -= take
            alloc = allocation[state["vc_id"]]
            alloc[bank] = alloc.get(bank, 0.0) + take
            if state["remaining"] > 1e-9:
                still_active.append(state)
        active = still_active
    return allocation


def trade_refinement(
    problem: PlacementProblem,
    allocation: dict[int, dict[int, float]],
    thread_cores: dict[int, int],
    counter: StepCounter | None = None,
    initiators: set[int] | None = None,
    ops_budget: int | None = None,
) -> int:
    """Improve *allocation* in place via spiral trades; returns trades done.

    With *initiators*, only the named VCs start trades (the incremental
    dirty set, or a partitioned solve's boundary VCs); any VC can still be
    the counterparty of a swap — that is how displaced neighbors move.

    With *ops_budget*, the pass is anytime: initiators refine
    hottest-first (the existing order), and no new initiator starts a
    scan once the ops counted by this pass reach the budget.  The pass
    can overrun by at most the final initiator's scan — cutting off
    mid-scan would leave that VC's spiral half-applied for no modeled
    saving.  Budgets are how the partitioned/hierarchical stitch fits a
    fixed reconfiguration-interval slice at 4096+ tiles; passes that stay
    under the budget are bitwise unaffected by it.
    """
    counter = counter if counter is not None else StepCounter()
    ops_at_entry = sum(counter.ops.values())
    topo = problem.topology
    dist = topo.distance_matrix
    bank_bytes = float(problem.bank_bytes)

    # Access-weighted distance vector D(VC, b) for every accessed VC.
    dvec, rate_per_byte = access_distance_vectors(
        problem, allocation, thread_cores
    )

    used = np.zeros(topo.tiles, dtype=np.float64)
    holders: dict[int, set[int]] = {b: set() for b in range(topo.tiles)}
    for vc_id, per_bank in allocation.items():
        for bank, amount in per_bank.items():
            used[bank] += amount
            if amount > 1e-9:
                holders[bank].add(vc_id)

    def move(vc_id: int, src: int, dst: int, amount: float) -> None:
        per_bank = allocation[vc_id]
        per_bank[src] -= amount
        if per_bank[src] <= 1e-9:
            del per_bank[src]
            holders[src].discard(vc_id)
        per_bank[dst] = per_bank.get(dst, 0.0) + amount
        holders[dst].add(vc_id)

    trades = 0
    # Hot VCs (most accesses per byte) refine first: their data is the most
    # latency-sensitive and other VCs' data is cheap to displace.
    order = sorted(dvec, key=lambda v: (-rate_per_byte[v], v))
    if initiators is not None:
        order = [v for v in order if v in initiators]
    for vc1 in order:
        if (ops_budget is not None
                and sum(counter.ops.values()) - ops_at_entry >= ops_budget):
            break
        per_bank1 = allocation[vc1]
        if not per_bank1:
            continue
        com = weighted_center_tile(topo, per_bank1)
        d1 = dvec[vc1]
        desirable: list[int] = []
        for bank in topo.tiles_by_distance(com):
            data_banks = [b for b, amt in per_bank1.items() if amt > 1e-9]
            if not data_banks:
                break
            max_dist = max(dist[com, b] for b in data_banks)
            if dist[com, bank] > max_dist:
                break  # spiral end: all of this VC's data has been seen
            if per_bank1.get(bank, 0.0) < bank_bytes - 1e-9:
                desirable.append(bank)
            here = per_bank1.get(bank, 0.0)
            if here <= 1e-9:
                continue
            for target in desirable:
                if target == bank:
                    continue
                counter.add("data_placement")
                gain1 = d1[target] - d1[bank]  # negative: target is closer
                if gain1 >= -1e-12:
                    continue
                # First use free capacity: a move with no counterparty.
                free_room = bank_bytes - used[target]
                if free_room > 1e-9:
                    amount = min(free_room, per_bank1.get(bank, 0.0))
                    move(vc1, bank, target, amount)
                    used[target] += amount
                    used[bank] -= amount
                    trades += 1
                    if per_bank1.get(bank, 0.0) <= 1e-9:
                        break
                # Then offer swaps to VCs holding capacity in the target.
                for vc2 in list(holders[target]):
                    if vc2 == vc1:
                        continue
                    counter.add("data_placement")
                    d2 = dvec.get(vc2)
                    # Unaccessed VCs trade for free (no latency stake).
                    delta2 = 0.0
                    if d2 is not None:
                        delta2 = rate_per_byte[vc2] * (d2[bank] - d2[target])
                    delta1 = rate_per_byte[vc1] * gain1
                    if delta1 + delta2 >= -1e-12:
                        continue
                    amount = min(
                        per_bank1.get(bank, 0.0),
                        allocation[vc2].get(target, 0.0),
                    )
                    if amount <= 1e-9:
                        continue
                    move(vc1, bank, target, amount)
                    move(vc2, target, bank, amount)
                    trades += 1
                    if per_bank1.get(bank, 0.0) <= 1e-9:
                        break
                if per_bank1.get(bank, 0.0) <= 1e-9:
                    break
    return trades


def refined_placement(
    problem: PlacementProblem,
    vc_sizes: dict[int, float],
    thread_cores: dict[int, int],
    counter: StepCounter | None = None,
    trades: bool = True,
    only_vcs: set[int] | None = None,
    preplaced: dict[int, dict[int, float]] | None = None,
) -> dict[int, dict[int, float]]:
    """Greedy seed + (optionally) one round of trades — the full Sec IV-F.

    With *only_vcs*/*preplaced* this is the incremental step 4: the named
    VCs are greedily seeded into the capacity left free by the preplaced
    ones, and only they initiate trades afterwards.
    """
    counter = counter if counter is not None else StepCounter()
    allocation = greedy_placement(
        problem, vc_sizes, thread_cores, counter,
        only_vcs=only_vcs, preplaced=preplaced,
    )
    if trades:
        trade_refinement(
            problem, allocation, thread_cores, counter, initiators=only_vcs
        )
    return allocation
