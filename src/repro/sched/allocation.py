"""Latency-aware capacity allocation (Sec IV-C).

Divides LLC capacity among VCs to minimize the sum of their total-latency
curves (off-chip + optimistic on-chip, Fig 5).  The optimizer is the
convex-hull variant of Lookahead: walking each curve's convex minorant
yields, at every point, the best achievable marginal latency reduction per
quantum, so a best-first greedy over hull segments is optimal over the
hulls — the same result Peekahead [Jigsaw] computes, and the reason the
allocator runs in near-linear time instead of Lookahead's quadratic.

Two policies:

* :func:`allocate_latency_aware` (CDCS): allocates over total-latency
  curves and **stops when marginal benefit turns negative** — capacity may
  go unused (Sec IV-C: "it is sometimes better to leave cache capacity
  unused").
* :func:`allocate_miss_driven` (Jigsaw): allocates over off-chip-only
  curves and then distributes leftover capacity (a partitioned LLC leaves
  no bank idle), which is what makes Jigsaw over-allocate in
  under-committed systems (Fig 12b/14).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.kernels import use_vectorized
from repro.sched.cost_model import (
    latency_curve,
    latency_curves_batch,
    miss_only_curve,
    miss_only_curves_batch,
    vc_access_rates,
)
from repro.sched.opcount import StepCounter
from repro.sched.problem import PlacementProblem


def convex_hull_indices(values: np.ndarray) -> list[int]:
    """Indices of the lower convex hull vertices of ``(i, values[i])``.

    Monotone-chain over an already-sorted x axis: O(n).  The chain is
    inherently sequential (each vertex can pop earlier ones), so it stays
    a Python loop — but over plain floats: element-indexing a NumPy array
    builds a scalar object per access and dominates the walk's cost.
    """
    vals = values.tolist() if isinstance(values, np.ndarray) else values
    hull: list[int] = []
    for i in range(len(vals)):
        while len(hull) >= 2:
            i0, i1 = hull[-2], hull[-1]
            # Keep i1 only if it bends the chain downward-convex.
            lhs = (vals[i1] - vals[i0]) * (i - i1)
            rhs = (vals[i] - vals[i1]) * (i1 - i0)
            if lhs <= rhs + 1e-12:
                break
            hull.pop()
        hull.append(i)
    return hull


#: Content-keyed memo for :func:`convex_hull_indices`.  Sweeps recompute
#: hulls of identical curves constantly — duplicated app profiles within a
#: mix, and Jigsaw variants allocating over the same miss-only curves —
#: and the hull of a curve is pure data, safe to share (callers only read
#: it).  Bounded by wholesale clearing; keys are the raw curve bytes.
_HULL_CACHE: dict[bytes, list[int]] = {}
_HULL_CACHE_MAX = 4096


def _hull_of(values) -> list[int]:
    if not isinstance(values, np.ndarray):
        return convex_hull_indices(values)
    key = values.tobytes()
    hull = _HULL_CACHE.get(key)
    if hull is None:
        if len(_HULL_CACHE) >= _HULL_CACHE_MAX:
            _HULL_CACHE.clear()
        hull = convex_hull_indices(values)
        _HULL_CACHE[key] = hull
    return hull


#: Memo for whole hull walks keyed by (budget, curve contents).  A sweep
#: runs several policies over identical curve sets (Jigsaw's clustered and
#: random variants allocate over the same miss-only curves), and the walk
#: is deterministic in its inputs.  The counter's op accounting is
#: replayed from the stored pop count — ``StepCounter.add`` aggregates, so
#: one bulk add is indistinguishable from the loop's unit adds.
_WALK_CACHE: dict[tuple, tuple[list[int], int]] = {}
_WALK_CACHE_MAX = 1024


def _greedy_hull_allocation(
    curves: list[np.ndarray],
    budget_quanta: int,
    counter: StepCounter,
    step_name: str,
) -> list[int]:
    """Best-first walk over hull segments; returns quanta per curve."""
    hulls = [_hull_of(c) for c in curves]
    for h in hulls:
        counter.add(step_name, len(h))
    walk_key = None
    if all(isinstance(c, np.ndarray) for c in curves):
        walk_key = (budget_quanta, tuple(c.tobytes() for c in curves))
        cached = _WALK_CACHE.get(walk_key)
        if cached is not None:
            sizes, pops = cached
            if pops:
                counter.add(step_name, pops)
            return list(sizes)  # callers mutate the result
    sizes = [0] * len(curves)
    pops = 0
    cursor = [0] * len(curves)  # index into each hull's vertex list
    heap: list[tuple[float, int]] = []

    def push_next(d: int) -> None:
        h = hulls[d]
        if cursor[d] + 1 >= len(h):
            return
        i0, i1 = h[cursor[d]], h[cursor[d] + 1]
        benefit = (curves[d][i0] - curves[d][i1]) / (i1 - i0)
        heapq.heappush(heap, (-benefit, d))

    for d in range(len(curves)):
        push_next(d)

    remaining = budget_quanta
    while heap and remaining > 0:
        neg_benefit, d = heapq.heappop(heap)
        counter.add(step_name)
        pops += 1
        if -neg_benefit <= 1e-12:
            break  # further capacity only adds latency
        h = hulls[d]
        i0, i1 = h[cursor[d]], h[cursor[d] + 1]
        take = min(i1 - i0, remaining)
        sizes[d] += take
        remaining -= take
        if take == i1 - i0:
            cursor[d] += 1
            push_next(d)
        # Partial take: budget exhausted; loop exits via remaining == 0.
    if walk_key is not None:
        if len(_WALK_CACHE) >= _WALK_CACHE_MAX:
            _WALK_CACHE.clear()
        _WALK_CACHE[walk_key] = (list(sizes), pops)
    return sizes


def _ensure_minimum_quanta(
    problem: PlacementProblem,
    sizes: list[int],
    budget: int,
    curves: list[np.ndarray],
) -> None:
    """Every VC with live accessors needs >= 1 quantum: its descriptor must
    point at a real bank partition (Fig 3).  Spare budget covers it; if the
    chip is fully allocated, the quantum is taken from the donor whose
    curve loses the least by shrinking (never from the middle of a cliff).
    """
    spare = budget - sum(sizes)
    for i, vc in enumerate(problem.vcs):
        if sizes[i] > 0:
            continue
        rate = sum(problem.accessors_of(vc.vc_id).values())
        if rate <= 0:
            continue
        if spare > 0:
            spare -= 1
        else:
            candidates = [j for j in range(len(sizes)) if sizes[j] > 1]
            if not candidates:
                continue  # nothing sensible to steal
            donor = min(
                candidates,
                key=lambda j: curves[j][sizes[j] - 1] - curves[j][sizes[j]],
            )
            sizes[donor] -= 1
        sizes[i] = 1


def allocate_latency_aware(
    problem: PlacementProblem,
    counter: StepCounter | None = None,
) -> dict[int, float]:
    """CDCS capacity allocation: vc_id -> bytes (may not use all capacity)."""
    counter = counter if counter is not None else StepCounter()
    if use_vectorized():
        # One batched build: rows are bitwise the per-VC scalar curves, so
        # the hull walk below makes identical discrete decisions.
        curves = list(latency_curves_batch(problem))
    else:
        curves = [
            latency_curve(problem, vc.miss_curve, rate)
            for vc, rate in zip(problem.vcs, vc_access_rates(problem))
        ]
    budget = problem.total_bytes // problem.quantum
    sizes = _greedy_hull_allocation(curves, budget, counter, "allocation")
    _ensure_minimum_quanta(problem, sizes, budget, curves)
    return {
        vc.vc_id: sizes[i] * problem.quantum for i, vc in enumerate(problem.vcs)
    }


def allocate_latency_aware_subset(
    problem: PlacementProblem,
    vc_ids: set[int],
    budget_quanta: int,
    counter: StepCounter | None = None,
) -> dict[int, float]:
    """Warm-start allocation over a subset of VCs (the incremental solve).

    Re-runs the hull walk only for *vc_ids*, competing for *budget_quanta*
    (the capacity not pinned by clean VCs); every other VC keeps whatever
    the caller already holds for it.  Curve rows are the same per-VC
    latency curves the full allocator builds, so a subset equal to all VCs
    with the full budget reproduces :func:`allocate_latency_aware` exactly.
    """
    counter = counter if counter is not None else StepCounter()
    subset = [
        (i, vc) for i, vc in enumerate(problem.vcs) if vc.vc_id in vc_ids
    ]
    if not subset:
        return {}
    if use_vectorized():
        # Batched build over the dirty rows only: per-VC independent, so
        # bitwise the full-batch rows at O(dirty) cost.
        curves = list(
            latency_curves_batch(problem, vc_indices=[i for i, _ in subset])
        )
    else:
        rates = vc_access_rates(problem)
        curves = [
            latency_curve(problem, vc.miss_curve, rates[i])
            for i, vc in subset
        ]
    budget = max(0, budget_quanta)
    sizes = _greedy_hull_allocation(curves, budget, counter, "allocation")
    # Minimum-quantum guarantee, donors restricted to the subset: a clean
    # VC's capacity is pinned, so an accessed-but-zero dirty VC can only be
    # seeded from spare dirty budget or another dirty VC's tail.
    spare = budget - sum(sizes)
    for j, (_, vc) in enumerate(subset):
        if sizes[j] > 0:
            continue
        rate = sum(problem.accessors_of(vc.vc_id).values())
        if rate <= 0:
            continue
        if spare > 0:
            spare -= 1
        else:
            candidates = [k for k in range(len(sizes)) if sizes[k] > 1]
            if not candidates:
                continue
            donor = min(
                candidates,
                key=lambda k: curves[k][sizes[k] - 1] - curves[k][sizes[k]],
            )
            sizes[donor] -= 1
        sizes[j] = 1
    return {
        vc.vc_id: sizes[j] * problem.quantum
        for j, (_, vc) in enumerate(subset)
    }


def allocate_miss_driven(
    problem: PlacementProblem,
    counter: StepCounter | None = None,
    distribute_leftover: bool = True,
) -> dict[int, float]:
    """Jigsaw-style allocation: misses only, leftover handed out anyway.

    Leftover goes to VCs in proportion to their access rates (an LLC with
    partitioned banks has no reason to idle capacity if misses are already
    minimized — but the extra banks raise on-chip latency, which Jigsaw's
    allocator cannot see).
    """
    counter = counter if counter is not None else StepCounter()
    rates = vc_access_rates(problem)
    if use_vectorized():
        curves = list(miss_only_curves_batch(problem, rates))
    else:
        curves = [
            miss_only_curve(problem, vc.miss_curve, rate)
            for vc, rate in zip(problem.vcs, rates)
        ]
    budget = problem.total_bytes // problem.quantum
    sizes = _greedy_hull_allocation(curves, budget, counter, "allocation")
    leftover = budget - sum(sizes)
    if distribute_leftover and leftover > 0:
        total_rate = sum(rates)
        if total_rate > 0:
            quotas = [leftover * r / total_rate for r in rates]
        else:
            quotas = [leftover / len(sizes)] * len(sizes)
        # Largest-remainder rounding of the leftover distribution.
        floors = [int(q) for q in quotas]
        residue = leftover - sum(floors)
        order = sorted(
            range(len(sizes)), key=lambda d: floors[d] - quotas[d]
        )
        for d in order[:residue]:
            floors[d] += 1
        max_quanta = budget
        for d in range(len(sizes)):
            sizes[d] = min(sizes[d] + floors[d], max_quanta)
    _ensure_minimum_quanta(problem, sizes, budget, curves)
    return {
        vc.vc_id: sizes[i] * problem.quantum for i, vc in enumerate(problem.vcs)
    }
