"""System configuration objects mirroring Table 2 of the paper.

``SystemConfig`` describes the modeled chip: tile grid, cache hierarchy,
NoC timing, memory channels, and the scheduler parameters (reconfiguration
interval, monitor geometry).  The default construction reproduces the
64-tile CMP of Table 2; ``scaled(...)`` builds the 36-tile case-study chip
of Sec II-B and other reduced configurations used in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.util.units import (
    CORE_CLOCK_HZ,
    gbps_to_bytes_per_cycle,
    kb,
    ms_to_cycles,
)


@dataclass(frozen=True)
class CoreConfig:
    """Lean 2-way OOO core, Silvermont-like (Table 2)."""

    issue_width: int = 2
    #: CPI of the core when every LLC access hits instantly; calibrated so
    #: memory-light apps run near the paper's reported IPCs.
    base_cpi: float = 1.0
    #: How much of an LLC access's *on-chip* latency (tens of cycles) is
    #: exposed: a lean 2-way OOO with a 32-entry ROB hides very little
    #: (the small residual overlap comes from its 2-wide issue and L1/L2
    #: prefetchers).
    mlp_onchip: float = 1.15
    #: Overlap across *DRAM* misses (hundreds of cycles): the 10-entry load
    #: queue sustains a couple of outstanding misses.
    mlp_offchip: float = 1.8


@dataclass(frozen=True)
class CacheConfig:
    """Private levels + one LLC bank per tile (Table 2)."""

    l1d_bytes: int = kb(32)
    l1_latency: int = 3
    l2_bytes: int = kb(128)
    l2_latency: int = 6
    bank_bytes: int = kb(512)
    bank_latency: int = 9
    bank_ways: int = 16
    #: Vantage-style partitions supported per bank.
    partitions_per_bank: int = 64
    line_bytes: int = 64


@dataclass(frozen=True)
class NocConfig:
    """8x8 mesh, 128-bit flits, 3-cycle routers + 1-cycle links (Table 2)."""

    router_latency: int = 3
    link_latency: int = 1
    flit_bits: int = 128

    @property
    def hop_latency(self) -> int:
        """Latency added per network hop (router traversal + link)."""
        return self.router_latency + self.link_latency

    def flits_for_bytes(self, payload_bytes: int, header_bytes: int = 2) -> int:
        """Number of flits for a message carrying *payload_bytes*.

        A 64 B line on 128-bit flits takes 4 data flits + 1 header flit;
        a request/control message takes a single flit.
        """
        if payload_bytes == 0:
            return 1
        flit_bytes = self.flit_bits // 8
        return 1 + math.ceil(payload_bytes / flit_bytes)


@dataclass(frozen=True)
class MemoryConfig:
    """8 single-channel MCUs at the mesh edges (Table 2)."""

    controllers: int = 8
    zero_load_latency: int = 120
    channel_gbps: float = 12.8

    @property
    def bytes_per_cycle_per_channel(self) -> float:
        return gbps_to_bytes_per_cycle(self.channel_gbps)


@dataclass(frozen=True)
class MonitorConfig:
    """GMON geometry (Sec IV-G): 1K hashed tags, 64 ways, geometric ratio
    chosen to cover the whole LLC starting from a 64 KB first way."""

    monitor_lines: int = 1024
    ways: int = 64
    first_way_coverage: int = kb(64)
    sample_seed: int = 7


@dataclass(frozen=True)
class SchedulerConfig:
    """Software-runtime parameters (Sec IV)."""

    #: Reconfiguration period: 25 ms at 2 GHz = 50 Mcycles.
    reconfigure_interval_cycles: int = ms_to_cycles(25.0)
    #: Buckets in each VC descriptor (Fig 3: N = 64).
    descriptor_buckets: int = 64
    #: Capacity-allocation granularity in bytes (the 64 KB chunks of
    #: Sec IV-G, i.e. one L1's worth).
    allocation_quantum: int = kb(64)


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of a modeled CMP."""

    mesh_width: int = 8
    mesh_height: int = 8
    core: CoreConfig = field(default_factory=CoreConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    clock_hz: int = CORE_CLOCK_HZ

    @property
    def tiles(self) -> int:
        return self.mesh_width * self.mesh_height

    @property
    def llc_bytes(self) -> int:
        """Aggregate LLC capacity (e.g. 64 x 512 KB = 32 MB)."""
        return self.tiles * self.cache.bank_bytes

    @property
    def bank_quanta(self) -> int:
        """Allocation quanta that fit in one bank."""
        return self.cache.bank_bytes // self.scheduler.allocation_quantum

    @property
    def total_quanta(self) -> int:
        return self.tiles * self.bank_quanta

    def with_mesh(self, width: int, height: int) -> "SystemConfig":
        """Return a copy with a different tile grid (LLC scales with tiles)."""
        return replace(self, mesh_width=width, mesh_height=height)

    def with_banks(self, bank_bytes: int, partitions_per_bank: int) -> "SystemConfig":
        """Return a copy with different bank geometry (used by the
        bank-granularity NUCA ablation of Sec IV-I / VI-C)."""
        return replace(
            self,
            cache=replace(
                self.cache,
                bank_bytes=bank_bytes,
                partitions_per_bank=partitions_per_bank,
            ),
        )


def default_config() -> SystemConfig:
    """The 64-tile chip of Table 2."""
    return SystemConfig()


def case_study_config() -> SystemConfig:
    """The 36-tile (6x6) scaled-down chip of the Sec II-B case study."""
    return SystemConfig(mesh_width=6, mesh_height=6)


def small_test_config(width: int = 4, height: int = 4) -> SystemConfig:
    """A small chip for fast unit tests."""
    return SystemConfig(mesh_width=width, mesh_height=height)
