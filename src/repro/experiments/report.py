"""Plain-text rendering of experiment results (tables and series).

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.3f}" if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    name: str, points: Sequence[tuple[float, float]], fmt: str = "{:.3f}"
) -> str:
    """One figure series as 'name: x=y, x=y, ...'."""
    body = ", ".join(
        f"{x:g}={fmt.format(y)}" for x, y in points
    )
    return f"{name}: {body}"


def format_breakdown(name: str, parts: Mapping[str, float]) -> str:
    body = ", ".join(f"{k}={v:.3f}" for k, v in parts.items())
    return f"{name}: {body}"
