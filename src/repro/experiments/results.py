"""Typed, serializable experiment results.

Every experiment run — CLI, :class:`repro.api.Session`, or a future
service endpoint — produces one :class:`RunRecord`: the experiment's
name, the fully-resolved parameters, and its presentation as tables
(:class:`ResultTable`) and series (:class:`ResultSeries`).  The record is
a plain dataclass tree that round-trips losslessly through
``to_dict``/``from_dict`` (``RunRecord.from_dict(r.to_dict()) == r``),
which is what makes ``--format json`` output machine-consumable instead
of print-only.

Three renderers sit on top:

* :func:`render_text` — the fixed-width tables/series the CLI always
  printed (via :mod:`repro.experiments.report`);
* :func:`render_json` — the ``to_dict`` tree as a JSON document;
* :func:`render_csv` — one CSV section per table/series, titles as
  ``#``-prefixed comment rows.

Cell values are normalized to plain ``int``/``float``/``str`` at
construction (numpy scalars included), so every record is JSON-safe by
construction, not by luck.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.experiments.report import format_series, format_table


def _cell(value: Any) -> Any:
    """Normalize one table cell / parameter leaf to a JSON-safe scalar."""
    if isinstance(value, str) or value is None:
        return value
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_cell(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _cell(v) for k, v in value.items()}
    raise TypeError(f"cannot serialize result cell of type {type(value)!r}")


def jsonify_params(params: Mapping[str, Any]) -> dict[str, Any]:
    """Resolved parameters as the JSON-safe dict a :class:`RunRecord`
    stores (tuples become lists, numpy scalars become Python scalars)."""
    return {str(k): _cell(v) for k, v in params.items()}


@dataclass(frozen=True)
class ResultTable:
    """One titled table: what :func:`format_table` renders."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]

    @classmethod
    def make(
        cls,
        title: str,
        headers: Sequence[str],
        rows: Sequence[Sequence[Any]],
    ) -> "ResultTable":
        """Build with normalized (JSON-safe, tuple-shaped) cells."""
        return cls(
            title=title,
            headers=tuple(str(h) for h in headers),
            rows=tuple(tuple(_cell(c) for c in row) for row in rows),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultTable":
        return cls(
            title=data["title"],
            headers=tuple(data["headers"]),
            rows=tuple(tuple(row) for row in data["rows"]),
        )


@dataclass(frozen=True)
class ResultSeries:
    """One named (x, y) series: what :func:`format_series` renders."""

    name: str
    points: tuple[tuple[float, float], ...]
    fmt: str = "{:.3f}"

    @classmethod
    def make(
        cls,
        name: str,
        points: Sequence[Sequence[float]],
        fmt: str = "{:.3f}",
    ) -> "ResultSeries":
        return cls(
            name=name,
            points=tuple((float(x), float(y)) for x, y in points),
            fmt=fmt,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "points": [[x, y] for x, y in self.points],
            "fmt": self.fmt,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultSeries":
        return cls(
            name=data["name"],
            points=tuple((x, y) for x, y in data["points"]),
            fmt=data.get("fmt", "{:.3f}"),
        )


@dataclass(frozen=True)
class RunRecord:
    """One experiment run's typed outcome.

    ``result`` holds the experiment's rich legacy result object (e.g. a
    :class:`repro.experiments.sweeps.SweepResult`) for programmatic
    consumers; it is deliberately excluded from equality and from
    ``to_dict``, so serialization round-trips compare equal without it.
    """

    experiment: str
    params: dict[str, Any]
    tables: tuple[ResultTable, ...] = ()
    series: tuple[ResultSeries, ...] = ()
    result: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", jsonify_params(self.params))
        object.__setattr__(self, "tables", tuple(self.tables))
        object.__setattr__(self, "series", tuple(self.series))

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "params": dict(self.params),
            "tables": [t.to_dict() for t in self.tables],
            "series": [s.to_dict() for s in self.series],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        return cls(
            experiment=data["experiment"],
            params=dict(data["params"]),
            tables=tuple(
                ResultTable.from_dict(t) for t in data.get("tables", ())
            ),
            series=tuple(
                ResultSeries.from_dict(s) for s in data.get("series", ())
            ),
        )


# -- renderers ---------------------------------------------------------------

FORMATS = ("table", "json", "csv")


def render_text(record: RunRecord) -> str:
    """The classic CLI presentation: tables then series, in order."""
    blocks = [
        format_table(t.headers, t.rows, title=t.title) for t in record.tables
    ]
    blocks += [
        format_series(s.name, s.points, fmt=s.fmt) for s in record.series
    ]
    return "\n".join(blocks)


def render_json(record: RunRecord) -> str:
    return json.dumps(record.to_dict(), indent=2)


def render_csv(record: RunRecord) -> str:
    """CSV sections: ``# title`` comment row, header row, data rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    for table in record.tables:
        writer.writerow([f"# {table.title}"])
        writer.writerow(table.headers)
        writer.writerows(table.rows)
        writer.writerow([])
    for series in record.series:
        writer.writerow([f"# {series.name}"])
        writer.writerow(["x", "y"])
        writer.writerows(series.points)
        writer.writerow([])
    return buffer.getvalue().rstrip("\n")


def render(record: RunRecord, fmt: str = "table") -> str:
    """Render *record* in one of :data:`FORMATS`."""
    if fmt == "table":
        return render_text(record)
    if fmt == "json":
        return render_json(record)
    if fmt == "csv":
        return render_csv(record)
    raise ValueError(f"unknown format {fmt!r} (choose from {FORMATS})")
