"""Solver study: solve strategy x mesh size x phase dynamism.

The scalability sweep showed the single-shot ``full`` solve overrunning
the paper's 50 Mcycle reconfiguration interval past ~144 tiles.  This
study measures what the :mod:`repro.sched.engine` strategies do about it
in the setting that actually matters — a periodic runtime re-solving
every interval while the workload drifts:

* each point runs an :class:`~repro.sim.engine.EpochEngine` for several
  epochs, reconfiguring at every boundary through one warm
  :class:`~repro.sched.engine.ReconfigEngine` (state threads across
  epochs, Sec IV-G style);
* **stationary** mixes never move their curves: ``incremental`` re-solves
  are free, ``full`` pays the whole pipeline every interval anyway;
* **phased** mixes (:func:`repro.workloads.mixes.random_phased_mix`)
  move a few processes' curves per interval: ``incremental`` re-solves
  only the dirty slice, ``partitioned`` caps the critical path at the
  slowest ~8x8 region regardless of dynamism, and ``hierarchical``
  keeps that cap at 4096+ tiles by nesting the splits.

The headline number per point is the worst warm re-solve in modeled
Mcycles (via :class:`~repro.sched.opcount.StepCounter`; critical path for
partitioned solves) against the 50 Mcycle interval, with the per-step
breakdown exposed so an overrun is attributable to a step, not just to
the aggregate.  Each (tiles, strategy, dynamism, mix) tuple is one
:class:`repro.runner.Job`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.results import ResultTable, RunRecord
from repro.experiments.scalability import mesh_width, scaled_mesh_config
from repro.experiments.spec import ExperimentSpec, Param, register
from repro.nuca.base import build_problem
from repro.runner import Job, ProcessPoolRunner, run_jobs
from repro.sched.engine import ReconfigEngine, strategy_names
from repro.sim.engine import EpochEngine
from repro.workloads.mixes import (
    random_phased_mix,
    random_single_threaded_mix,
)

#: The paper's reconfiguration interval: 25 ms at 2 GHz = 50 Mcycles.
#: A solve that does not fit here delays the placement it computes.
INTERVAL_MCYCLES = 50.0

#: Default strategy sweep (every registered engine strategy).
STRATEGY_SWEEP = ("full", "incremental", "partitioned", "hierarchical")

#: Default dynamism arms.
DYNAMISM_SWEEP = ("stationary", "phased")

#: Default epoch length in Mcycles: 4x the paper's interval, long enough
#: that the 150M-600M-instruction phases of the generator actually flip
#: between solves within a short study.
DEFAULT_PERIOD_MCYCLES = 200.0


def solver_point(
    tiles: int,
    strategy: str,
    dynamism: str,
    seed: int,
    mix_id: int,
    epochs: int = 6,
    period_mcycles: float = DEFAULT_PERIOD_MCYCLES,
) -> dict:
    """Job body: one warm engine driven for *epochs* reconfigurations.

    Returns a plain, picklable record.  All reductions are ordered Python
    sums, so records are bitwise-identical between kernel paths; wall
    clock lives under ``solve_seconds*`` keys (excluded from the
    equivalence contract by convention).
    """
    if epochs < 2:
        raise ValueError("solver_point needs >= 2 epochs (cold + warm)")
    config = scaled_mesh_config(tiles)
    if dynamism == "phased":
        mix = random_phased_mix(tiles, seed, mix_id)
    elif dynamism == "stationary":
        mix = random_single_threaded_mix(tiles, seed, mix_id)
    else:
        raise ValueError(
            f"unknown dynamism {dynamism!r} (stationary or phased)"
        )
    problem = build_problem(mix, config)
    sim = EpochEngine(mix, problem)
    engine = ReconfigEngine(strategy)
    period = period_mcycles * 1e6
    results = sim.run_reconfigured(engine, period, epochs)

    epoch_mcycles = [r.modeled_cycles() / 1e6 for r in results]
    warm = epoch_mcycles[1:]
    warm_mean = 0.0
    for value in warm:
        warm_mean += value
    warm_mean /= len(warm)
    warm_max = max(warm)

    # Per-step warm breakdown (mean over warm epochs, ordered sums).
    step_mcycles: dict[str, float] = {}
    for result in results[1:]:
        for step, cycles in result.step_cycles().items():
            step_mcycles[step] = step_mcycles.get(step, 0.0) + cycles / 1e6
    step_mcycles = {
        step: total / len(warm) for step, total in step_mcycles.items()
    }

    solve_seconds: dict[str, float] = {}
    for result in results:
        for step, seconds in result.wall_seconds.items():
            solve_seconds[step] = solve_seconds.get(step, 0.0) + seconds

    ipc_mean = 0.0
    for epoch in sim.trace.results:
        ipc_mean += epoch.aggregate_ipc
    ipc_mean /= len(sim.trace.results)

    phase_changes = 0
    previous = None
    for epoch in sim.trace.results:
        if previous is not None and epoch.phases != previous:
            phase_changes += 1
        previous = epoch.phases

    return {
        "tiles": tiles,
        "strategy": strategy,
        "dynamism": dynamism,
        "mix_id": mix_id,
        "epochs": epochs,
        "period_mcycles": period_mcycles,
        "phase_changes": phase_changes,
        "cold_mcycles": epoch_mcycles[0],
        "warm_mean_mcycles": warm_mean,
        "warm_max_mcycles": warm_max,
        "within_interval": warm_max <= INTERVAL_MCYCLES,
        "step_mcycles": step_mcycles,
        "aggregate_ipc": ipc_mean,
        "solve_seconds": solve_seconds,
        "solve_seconds_total": sum(solve_seconds.values()),
    }


def parse_names(text: str, allowed: tuple[str, ...], what: str) -> tuple[str, ...]:
    """Parse a comma-separated sweep list against an allowed vocabulary."""
    names = tuple(p.strip() for p in text.split(",") if p.strip())
    if not names:
        raise ValueError(f"{what} sweep needs at least one name")
    for name in names:
        if name not in allowed:
            raise ValueError(
                f"unknown {what} {name!r} (have: {', '.join(allowed)})"
            )
    return names


def solver_study_jobs(
    tiles: tuple[int, ...] = (16, 64),
    strategies: tuple[str, ...] = STRATEGY_SWEEP,
    dynamism: tuple[str, ...] = DYNAMISM_SWEEP,
    n_mixes: int = 2,
    seed: int = 42,
    epochs: int = 6,
    period_mcycles: float = DEFAULT_PERIOD_MCYCLES,
) -> list[Job]:
    """One :class:`Job` per (tiles, strategy, dynamism, mix) point."""
    for count in tiles:
        mesh_width(count)  # validate early
    for name in strategies:
        if name not in strategy_names():
            raise ValueError(
                f"unknown solve strategy {name!r} "
                f"(have: {', '.join(strategy_names())})"
            )
    return [
        Job(
            fn=solver_point,
            kwargs=dict(
                tiles=count, strategy=strategy, dynamism=arm, seed=seed,
                mix_id=mix_id, epochs=epochs,
                period_mcycles=period_mcycles,
            ),
            seed=seed,
            label=f"solver-{count}t-{strategy}-{arm}-mix{mix_id}",
        )
        for count in tiles
        for strategy in strategies
        for arm in dynamism
        for mix_id in range(n_mixes)
    ]


@dataclass
class SolverStudyResult:
    """Aggregated study outcome, keyed by (strategy, dynamism, tiles)."""

    #: (strategy, dynamism, tiles) -> one record per mix.
    records: dict[tuple[str, str, int], list[dict]]

    def points(self) -> list[tuple[str, str, int]]:
        return sorted(self.records)

    def mean(self, point: tuple[str, str, int], key: str) -> float:
        rows = self.records[point]
        total = 0.0
        for row in rows:
            total += row[key]
        return total / len(rows)

    def worst(self, point: tuple[str, str, int], key: str) -> float:
        return max(row[key] for row in self.records[point])

    def within_interval(self, point: tuple[str, str, int]) -> bool:
        """Every mix's worst warm re-solve fits the 50 Mcycle interval."""
        return all(row["within_interval"] for row in self.records[point])

    def mean_step_mcycles(
        self, point: tuple[str, str, int]
    ) -> dict[str, float]:
        rows = self.records[point]
        steps: dict[str, float] = {}
        for row in rows:
            for step, mcycles in row["step_mcycles"].items():
                steps[step] = steps.get(step, 0.0) + mcycles
        return {step: total / len(rows) for step, total in steps.items()}

    def table_rows(self) -> list[tuple]:
        return [
            (
                f"{tiles}",
                strategy,
                arm,
                self.mean((strategy, arm, tiles), "cold_mcycles"),
                self.mean((strategy, arm, tiles), "warm_mean_mcycles"),
                self.worst((strategy, arm, tiles), "warm_max_mcycles"),
                "yes" if self.within_interval((strategy, arm, tiles))
                else "NO",
                self.mean((strategy, arm, tiles), "aggregate_ipc"),
            )
            for strategy, arm, tiles in self.points()
        ]

    def breakdown_rows(self) -> list[tuple]:
        rows = []
        for strategy, arm, tiles in self.points():
            for step, mcycles in sorted(
                self.mean_step_mcycles((strategy, arm, tiles)).items()
            ):
                rows.append((f"{tiles}", strategy, arm, step, mcycles))
        return rows


def reduce_solver_records(records: list[dict]) -> SolverStudyResult:
    """Group per-point payloads by (strategy, dynamism, tiles)."""
    grouped: dict[tuple[str, str, int], list[dict]] = {}
    for record in records:
        key = (record["strategy"], record["dynamism"], record["tiles"])
        grouped.setdefault(key, []).append(record)
    return SolverStudyResult(grouped)


def run_solver_study(
    tiles: tuple[int, ...] = (16, 64),
    strategies: tuple[str, ...] = STRATEGY_SWEEP,
    dynamism: tuple[str, ...] = DYNAMISM_SWEEP,
    n_mixes: int = 2,
    seed: int = 42,
    epochs: int = 6,
    period_mcycles: float = DEFAULT_PERIOD_MCYCLES,
    runner: ProcessPoolRunner | None = None,
) -> SolverStudyResult:
    """Sweep strategies x dynamism x mesh sizes on warm engines."""
    jobs = solver_study_jobs(
        tiles=tiles, strategies=strategies, dynamism=dynamism,
        n_mixes=n_mixes, seed=seed, epochs=epochs,
        period_mcycles=period_mcycles,
    )
    return reduce_solver_records(run_jobs(jobs, runner))


# -- spec registry -----------------------------------------------------------


def _solver_jobs(params: dict) -> list[Job]:
    return solver_study_jobs(
        tiles=tuple(params["tiles"]),
        strategies=parse_names(
            params["strategies"], tuple(strategy_names()), "strategy"
        ),
        dynamism=parse_names(params["dynamism"], DYNAMISM_SWEEP, "dynamism"),
        n_mixes=params["mixes"],
        seed=params["seed"],
        epochs=params["epochs"],
        period_mcycles=params["period_mcycles"],
    )


def _solver_reduce(records: list, params: dict) -> SolverStudyResult:
    return reduce_solver_records(records)


def _solver_present(result: SolverStudyResult, params: dict) -> RunRecord:
    table = ResultTable.make(
        title=f"Solver study: warm re-solve cost vs the "
              f"{INTERVAL_MCYCLES:g} Mcycle interval "
              f"({params['mixes']} mixes/point, "
              f"{params['epochs']} epochs of "
              f"{params['period_mcycles']:g} Mcycles)",
        headers=("tiles", "strategy", "dynamism", "cold Mcyc",
                 "warm mean Mcyc", "warm max Mcyc", "fits 50M", "IPC"),
        rows=result.table_rows(),
    )
    breakdown = ResultTable.make(
        title="Warm re-solve breakdown per step (mean modeled Mcycles; "
              "'stitch' is the partitioned boundary-trade pass)",
        headers=("tiles", "strategy", "dynamism", "step", "step Mcyc"),
        rows=result.breakdown_rows(),
    )
    return RunRecord(
        experiment="solver_study", params=params,
        tables=(table, breakdown),
    )


register(ExperimentSpec(
    name="solver_study",
    summary="solve strategies vs the reconfiguration interval",
    figure="beyond paper",
    params=(
        Param("tiles", "tiles", (16, 64),
              "comma-separated square tile counts"),
        Param("strategies", "str", ",".join(STRATEGY_SWEEP),
              "comma-separated solve strategies to sweep"),
        Param("dynamism", "str", ",".join(DYNAMISM_SWEEP),
              "comma-separated workload arms (stationary, phased)"),
        Param("mixes", "int", 2, "random mixes per point"),
        Param("seed", "int", 42, "mix RNG seed"),
        Param("epochs", "int", 6, "reconfigurations per point (>= 2)"),
        Param("period_mcycles", "float", DEFAULT_PERIOD_MCYCLES,
              "epoch length in Mcycles"),
    ),
    build_jobs=_solver_jobs,
    reduce=_solver_reduce,
    present=_solver_present,
))
