"""Mix sweeps: the workhorse behind Figs 11, 13, 14, 15, 16.

``run_sweep`` evaluates every scheme on N random mixes and collects
weighted speedups plus the latency / traffic / energy aggregates the
paper's figure panels report.  Single- and multi-threaded pools share the
same machinery.

Each mix is one :class:`repro.runner.Job` (:func:`sweep_jobs` builds the
job list, :func:`_mix_point` is the job body), so a sweep parallelizes
across ``--jobs`` workers and memoizes per-mix results in the runner's
cache; pass ``runner=`` to exploit that, or call ``run_sweep`` without one
for the classic serial in-process path — both produce identical numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.model.metrics import gmean, inverse_cdf, weighted_speedup
from repro.model.system import AnalyticSystem, MixEvaluation
from repro.nuca.base import NucaScheme
from repro.nuca import standard_schemes
from repro.runner import Job, ProcessPoolRunner, run_jobs
from repro.workloads.mixes import (
    Mix,
    random_multithreaded_mix,
    random_single_threaded_mix,
)

BASELINE = "S-NUCA"


@dataclass
class SweepResult:
    """Aggregated results of one sweep."""

    n_apps: int
    n_mixes: int
    #: scheme -> weighted speedups, one per mix (vs S-NUCA).
    speedups: dict[str, list[float]] = field(default_factory=dict)
    #: scheme -> mean on-chip network latency per LLC access (cycles).
    onchip_latency: dict[str, list[float]] = field(default_factory=dict)
    #: scheme -> off-chip latency per kilo-instruction.
    offchip_latency: dict[str, list[float]] = field(default_factory=dict)
    #: scheme -> traffic breakdown (flit-hops/instr) per mix.
    traffic: dict[str, list[dict[str, float]]] = field(default_factory=dict)
    #: scheme -> energy-per-instruction breakdown (nJ) per mix.
    energy: dict[str, list[dict[str, float]]] = field(default_factory=dict)

    def gmean_speedup(self, scheme: str) -> float:
        return gmean(self.speedups[scheme])

    def max_speedup(self, scheme: str) -> float:
        return max(self.speedups[scheme])

    def speedup_cdf(self, scheme: str) -> list[float]:
        """Fig 11a presentation: speedups sorted descending."""
        return inverse_cdf(self.speedups[scheme])

    def mean_onchip(self, scheme: str) -> float:
        vals = self.onchip_latency[scheme]
        return sum(vals) / len(vals)

    def mean_offchip(self, scheme: str) -> float:
        vals = self.offchip_latency[scheme]
        return sum(vals) / len(vals)

    def mean_traffic(self, scheme: str) -> dict[str, float]:
        rows = self.traffic[scheme]
        keys = rows[0].keys()
        return {k: sum(r[k] for r in rows) / len(rows) for k in keys}

    def mean_energy(self, scheme: str) -> dict[str, float]:
        rows = self.energy[scheme]
        keys = rows[0].keys()
        return {k: sum(r[k] for r in rows) / len(rows) for k in keys}

    def schemes(self) -> list[str]:
        return [s for s in self.speedups if s != BASELINE]


def _record(
    result: SweepResult,
    name: str,
    evaluation: MixEvaluation,
    bank_latency: float,
) -> None:
    # Fig 11b reports *network* latency: subtract the bank lookup.
    result.onchip_latency.setdefault(name, []).append(
        evaluation.mean_onchip_latency_per_access() - bank_latency
    )
    result.offchip_latency.setdefault(name, []).append(
        evaluation.offchip_latency_per_kiloinstr()
    )
    result.traffic.setdefault(name, []).append(evaluation.traffic_per_instr())
    result.energy.setdefault(name, []).append(evaluation.energy.as_dict())


def mix_record(result: SweepResult, mix_index: int = 0) -> dict:
    """Extract one mix's rows from *result* as a plain, picklable dict.

    This is the payload a sweep job returns (and the cache persists):
    scheme-keyed scalars/breakdowns for exactly one evaluated mix.
    """
    return {
        "speedups": {s: v[mix_index] for s, v in result.speedups.items()},
        "onchip": {s: v[mix_index] for s, v in result.onchip_latency.items()},
        "offchip": {
            s: v[mix_index] for s, v in result.offchip_latency.items()
        },
        "traffic": {s: v[mix_index] for s, v in result.traffic.items()},
        "energy": {s: v[mix_index] for s, v in result.energy.items()},
    }


def merge_mix_record(result: SweepResult, record: dict) -> None:
    """Append one job's :func:`mix_record` payload onto *result*."""
    for scheme, value in record["speedups"].items():
        result.speedups.setdefault(scheme, []).append(value)
    for scheme, value in record["onchip"].items():
        result.onchip_latency.setdefault(scheme, []).append(value)
        result.offchip_latency.setdefault(scheme, []).append(
            record["offchip"][scheme]
        )
        result.traffic.setdefault(scheme, []).append(
            record["traffic"][scheme]
        )
        result.energy.setdefault(scheme, []).append(record["energy"][scheme])


def _mix_point(
    config: SystemConfig,
    n_apps: int,
    seed: int,
    mix_id: int,
    multithreaded: bool,
) -> dict:
    """Job body: evaluate all standard schemes on one random mix."""
    if multithreaded:
        mix = random_multithreaded_mix(n_apps, seed, mix_id)
    else:
        mix = random_single_threaded_mix(n_apps, seed, mix_id)
    single = SweepResult(n_apps=n_apps, n_mixes=1)
    evaluate_mix(config, mix, single, seed=mix_id)
    return mix_record(single)


def sweep_jobs(
    config: SystemConfig,
    n_apps: int,
    n_mixes: int = 50,
    seed: int = 42,
    multithreaded: bool = False,
) -> list[Job]:
    """One :class:`Job` per mix of the standard-scheme sweep."""
    kind = "mt" if multithreaded else "st"
    return [
        Job(
            fn=_mix_point,
            kwargs=dict(
                config=config,
                n_apps=n_apps,
                seed=seed,
                mix_id=mix_id,
                multithreaded=multithreaded,
            ),
            seed=seed,
            label=f"sweep-{kind}-{n_apps}apps-mix{mix_id}",
        )
        for mix_id in range(n_mixes)
    ]


def run_sweep(
    config: SystemConfig,
    n_apps: int,
    n_mixes: int = 50,
    seed: int = 42,
    multithreaded: bool = False,
    schemes: list[NucaScheme] | None = None,
    system: AnalyticSystem | None = None,
    runner: ProcessPoolRunner | None = None,
) -> SweepResult:
    """Evaluate schemes over random mixes; returns aggregated results.

    With the default (standard) schemes, each mix runs as a runner job —
    pass *runner* for parallelism and caching.  Supplying custom *schemes*
    or a pre-built *system* keeps the legacy inline loop, since arbitrary
    scheme objects are not content-hashable job inputs.
    """
    result = SweepResult(n_apps=n_apps, n_mixes=n_mixes)
    if schemes is None and system is None:
        jobs = sweep_jobs(config, n_apps, n_mixes, seed, multithreaded)
        for record in run_jobs(jobs, runner):
            merge_mix_record(result, record)
        return result
    system = system or AnalyticSystem(config)
    for mix_id in range(n_mixes):
        if multithreaded:
            mix = random_multithreaded_mix(n_apps, seed, mix_id)
        else:
            mix = random_single_threaded_mix(n_apps, seed, mix_id)
        evaluate_mix(config, mix, result, seed=mix_id, schemes=schemes,
                     system=system)
    return result


def evaluate_mix(
    config: SystemConfig,
    mix: Mix,
    result: SweepResult,
    seed: int = 0,
    schemes: list[NucaScheme] | None = None,
    system: AnalyticSystem | None = None,
) -> dict[str, MixEvaluation]:
    """Evaluate one mix under every scheme, recording into *result*."""
    system = system or AnalyticSystem(config)
    scheme_list = schemes if schemes is not None else standard_schemes(seed)
    alone = system.alone_performance(mix)
    evaluations: dict[str, MixEvaluation] = {}
    for scheme in scheme_list:
        evaluations[scheme.name] = system.evaluate(mix, scheme)
    baseline = evaluations.get(BASELINE)
    if baseline is None:
        from repro.nuca.snuca import SNuca

        baseline = system.evaluate(mix, SNuca(seed))
        evaluations[BASELINE] = baseline
    for name, evaluation in evaluations.items():
        if name != BASELINE:
            result.speedups.setdefault(name, []).append(
                weighted_speedup(evaluation, baseline, alone)
            )
        _record(result, name, evaluation, config.cache.bank_latency)
    return evaluations
