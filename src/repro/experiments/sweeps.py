"""Mix sweeps: the workhorse behind Figs 11, 13, 14, 15, 16.

``run_sweep`` evaluates every scheme on N random mixes and collects
weighted speedups plus the latency / traffic / energy aggregates the
paper's figure panels report.  Single- and multi-threaded pools share the
same machinery.

Each mix is one :class:`repro.runner.Job` (:func:`sweep_jobs` builds the
job list, :func:`_mix_point` is the job body), so a sweep parallelizes
across ``--jobs`` workers and memoizes per-mix results in the runner's
cache; pass ``runner=`` to exploit that, or call ``run_sweep`` without one
for the classic serial in-process path — both produce identical numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.config import SystemConfig, default_config
from repro.experiments.results import ResultTable, RunRecord
from repro.experiments.spec import ExperimentSpec, Param, register
from repro.geometry.mesh import Mesh, seed_shared_geometry
from repro.model.metrics import gmean, inverse_cdf, weighted_speedup
from repro.model.system import AnalyticSystem, MixEvaluation
from repro.nuca import SCHEMES, standard_schemes
from repro.nuca.base import NucaScheme, build_problem
from repro.nuca.sharing import solve_sharing_plans
from repro.runner import Job, ProcessPoolRunner, register_batchable, run_jobs
from repro.util.hashing import content_digest
from repro.util.rng import reseed_global
from repro.workloads.mixes import (
    Mix,
    random_multithreaded_mix,
    random_single_threaded_mix,
)

BASELINE = "S-NUCA"


@dataclass
class SweepResult:
    """Aggregated results of one sweep."""

    n_apps: int
    n_mixes: int
    #: scheme -> weighted speedups, one per mix (vs S-NUCA).
    speedups: dict[str, list[float]] = field(default_factory=dict)
    #: scheme -> mean on-chip network latency per LLC access (cycles).
    onchip_latency: dict[str, list[float]] = field(default_factory=dict)
    #: scheme -> off-chip latency per kilo-instruction.
    offchip_latency: dict[str, list[float]] = field(default_factory=dict)
    #: scheme -> traffic breakdown (flit-hops/instr) per mix.
    traffic: dict[str, list[dict[str, float]]] = field(default_factory=dict)
    #: scheme -> energy-per-instruction breakdown (nJ) per mix.
    energy: dict[str, list[dict[str, float]]] = field(default_factory=dict)

    def gmean_speedup(self, scheme: str) -> float:
        return gmean(self.speedups[scheme])

    def max_speedup(self, scheme: str) -> float:
        return max(self.speedups[scheme])

    def speedup_cdf(self, scheme: str) -> list[float]:
        """Fig 11a presentation: speedups sorted descending."""
        return inverse_cdf(self.speedups[scheme])

    def mean_onchip(self, scheme: str) -> float:
        vals = self.onchip_latency[scheme]
        return sum(vals) / len(vals)

    def mean_offchip(self, scheme: str) -> float:
        vals = self.offchip_latency[scheme]
        return sum(vals) / len(vals)

    def mean_traffic(self, scheme: str) -> dict[str, float]:
        rows = self.traffic[scheme]
        keys = rows[0].keys()
        return {k: sum(r[k] for r in rows) / len(rows) for k in keys}

    def mean_energy(self, scheme: str) -> dict[str, float]:
        rows = self.energy[scheme]
        keys = rows[0].keys()
        return {k: sum(r[k] for r in rows) / len(rows) for k in keys}

    def schemes(self) -> list[str]:
        return [s for s in self.speedups if s != BASELINE]


def _record(
    result: SweepResult,
    name: str,
    evaluation: MixEvaluation,
    bank_latency: float,
) -> None:
    # Fig 11b reports *network* latency: subtract the bank lookup.
    result.onchip_latency.setdefault(name, []).append(
        evaluation.mean_onchip_latency_per_access() - bank_latency
    )
    result.offchip_latency.setdefault(name, []).append(
        evaluation.offchip_latency_per_kiloinstr()
    )
    result.traffic.setdefault(name, []).append(evaluation.traffic_per_instr())
    result.energy.setdefault(name, []).append(evaluation.energy.as_dict())


def mix_record(result: SweepResult, mix_index: int = 0) -> dict:
    """Extract one mix's rows from *result* as a plain, picklable dict.

    This is the payload a sweep job returns (and the cache persists):
    scheme-keyed scalars/breakdowns for exactly one evaluated mix.
    """
    return {
        "speedups": {s: v[mix_index] for s, v in result.speedups.items()},
        "onchip": {s: v[mix_index] for s, v in result.onchip_latency.items()},
        "offchip": {
            s: v[mix_index] for s, v in result.offchip_latency.items()
        },
        "traffic": {s: v[mix_index] for s, v in result.traffic.items()},
        "energy": {s: v[mix_index] for s, v in result.energy.items()},
    }


def merge_mix_record(result: SweepResult, record: dict) -> None:
    """Append one job's :func:`mix_record` payload onto *result*."""
    for scheme, value in record["speedups"].items():
        result.speedups.setdefault(scheme, []).append(value)
    for scheme, value in record["onchip"].items():
        result.onchip_latency.setdefault(scheme, []).append(value)
        result.offchip_latency.setdefault(scheme, []).append(
            record["offchip"][scheme]
        )
        result.traffic.setdefault(scheme, []).append(
            record["traffic"][scheme]
        )
        result.energy.setdefault(scheme, []).append(record["energy"][scheme])


def _mix_point(
    config: SystemConfig,
    n_apps: int,
    seed: int,
    mix_id: int,
    multithreaded: bool,
) -> dict:
    """Job body: evaluate all standard schemes on one random mix."""
    if multithreaded:
        mix = random_multithreaded_mix(n_apps, seed, mix_id)
    else:
        mix = random_single_threaded_mix(n_apps, seed, mix_id)
    single = SweepResult(n_apps=n_apps, n_mixes=1)
    evaluate_mix(config, mix, single, seed=mix_id)
    return mix_record(single)


# -- mega-batch job body ------------------------------------------------------

_SYSTEM_CACHE: dict[str, AnalyticSystem] = {}


def _sweep_system(config: SystemConfig) -> AnalyticSystem:
    """Process-memoized :class:`AnalyticSystem` per chip config.

    Batched sweeps reuse one system per config so the alone-performance
    cache stays warm across batches instead of being re-derived per job.
    Bitwise-safe: the system holds no mutable state beyond that cache,
    and cached alone values equal freshly computed ones (the alone
    evaluation is fully explicitly seeded).
    """
    key = content_digest(config)
    system = _SYSTEM_CACHE.get(key)
    if system is None:
        system = _SYSTEM_CACHE[key] = AnalyticSystem(config)
    return system


def _reseed_slice(digest: str, seed: int) -> None:
    """Reproduce :meth:`repro.runner.Job.execute`'s global reseeding for
    one slice of a batch, so per-slice RNG state matches the per-job path
    exactly (the deferred merged stages afterwards consume no RNG).
    Both paths share :func:`repro.util.rng.reseed_global` — the one
    sanctioned global-reseed site."""
    reseed_global(digest, seed)


def _mix_points_batched(
    slices: list[int],
    digests: list[str],
    *,
    config: SystemConfig,
    n_apps: int,
    seed: int,
    multithreaded: bool,
) -> list[dict]:
    """Mega-batch body for :func:`_mix_point`: many mix_ids in stacked passes.

    Three phases, each preserving the per-job float trajectory:

    1. per slice (reseeded like ``Job.execute``): build the mix, warm the
       alone cache, run each scheme up to its sharing solve — S-NUCA and
       R-NUCA *stage* their solves as :class:`SharingPlan`s, the
       placement schemes run fully;
    2. one :func:`solve_sharing_plans` call merges every staged solve
       into a single lockstep bisection, then each scheme's
       ``finish_sharing`` folds its occupancy slice back in;
    3. one :meth:`AnalyticSystem.evaluate_solutions_batch` call scores
       every (mix, scheme) placement, and the per-slice records assemble
       exactly as :func:`evaluate_mix` would.
    """
    system = _sweep_system(config)
    per_slice = []  # (mix, alone, entries); entry = [scheme, problem, result]
    staged = []     # (slice_idx, entry_idx, scheme, problem, context)
    plans = []
    for mix_id, digest in zip(slices, digests):
        _reseed_slice(digest, seed)
        if multithreaded:
            mix = random_multithreaded_mix(n_apps, seed, mix_id)
        else:
            mix = random_single_threaded_mix(n_apps, seed, mix_id)
        alone = system.alone_performance(mix)
        entries = []
        # One problem per slice: building it is deterministic in
        # (mix, config) and schemes treat it as read-only, so sharing the
        # object across the five schemes changes no values — only spares
        # four redundant constructions (and lets the evaluator group all
        # five solutions under one geometry object).
        problem = build_problem(mix, config)
        for scheme in standard_schemes(mix_id):
            stage = getattr(scheme, "sharing_stage", None)
            if stage is not None:
                plan, context = stage(problem)
                if plan is None:
                    entries.append([
                        scheme, problem,
                        scheme.finish_sharing(problem, context, np.zeros(0)),
                    ])
                else:
                    entries.append([scheme, problem, None])
                    staged.append(
                        (len(per_slice), len(entries) - 1, scheme, problem,
                         context)
                    )
                    plans.append(plan)
            else:
                entries.append([scheme, problem, scheme.run(problem)])
        per_slice.append((mix, alone, entries))

    for (s, e, scheme, problem, context), occupancies in zip(
        staged, solve_sharing_plans(plans)
    ):
        per_slice[s][2][e][2] = scheme.finish_sharing(
            problem, context, occupancies
        )

    items = [
        (mix, problem, result)
        for mix, _, entries in per_slice
        for _, problem, result in entries
    ]
    evaluations = iter(system.evaluate_solutions_batch(items))

    records = []
    for mix, alone, entries in per_slice:
        single = SweepResult(n_apps=n_apps, n_mixes=1)
        by_name = {scheme.name: next(evaluations) for scheme, _, _ in entries}
        baseline = by_name[BASELINE]
        for name, evaluation in by_name.items():
            if name != BASELINE:
                single.speedups.setdefault(name, []).append(
                    weighted_speedup(evaluation, baseline, alone)
                )
            _record(single, name, evaluation, config.cache.bank_latency)
        records.append(mix_record(single))
    return records


def _sweep_geometry_bank(shared_kwargs: Mapping) -> dict[str, np.ndarray]:
    """The sweep's hot read-only arrays: the chip's dense geometry
    matrices, published once per group instead of rebuilt per worker."""
    config = shared_kwargs["config"]
    topo = Mesh(config.mesh_width, config.mesh_height)
    if topo._shared_cache_key() is None or topo._geometry_is_lazy():
        return {}
    return {
        "distance": np.asarray(topo.distance_matrix),
        "order": np.asarray(topo.order_matrix),
        "sorted_distance": np.asarray(topo.sorted_distance_matrix),
    }


def _sweep_install_bank(
    shared_kwargs: Mapping, views: Mapping[str, np.ndarray]
) -> None:
    """Worker side: adopt the attached geometry views into the
    process-wide memo so nothing rebuilds them."""
    config = shared_kwargs["config"]
    topo = Mesh(config.mesh_width, config.mesh_height)
    key = topo._shared_cache_key()
    if key is not None:
        seed_shared_geometry(key, dict(views))


register_batchable(
    _mix_point,
    batch_fn=_mix_points_batched,
    slice_param="mix_id",
    array_bank=_sweep_geometry_bank,
    install_bank=_sweep_install_bank,
)


def sweep_jobs(
    config: SystemConfig,
    n_apps: int,
    n_mixes: int = 50,
    seed: int = 42,
    multithreaded: bool = False,
) -> list[Job]:
    """One :class:`Job` per mix of the standard-scheme sweep."""
    kind = "mt" if multithreaded else "st"
    return [
        Job(
            fn=_mix_point,
            kwargs=dict(
                config=config,
                n_apps=n_apps,
                seed=seed,
                mix_id=mix_id,
                multithreaded=multithreaded,
            ),
            seed=seed,
            label=f"sweep-{kind}-{n_apps}apps-mix{mix_id}",
        )
        for mix_id in range(n_mixes)
    ]


def reduce_sweep_records(
    records: list[dict], n_apps: int, n_mixes: int
) -> SweepResult:
    """Fold per-mix :func:`mix_record` payloads into one
    :class:`SweepResult` — the reducer behind both the spec registry and
    the legacy :func:`run_sweep`."""
    result = SweepResult(n_apps=n_apps, n_mixes=n_mixes)
    for record in records:
        merge_mix_record(result, record)
    return result


def run_sweep(
    config: SystemConfig,
    n_apps: int,
    n_mixes: int = 50,
    seed: int = 42,
    multithreaded: bool = False,
    schemes: list[NucaScheme] | None = None,
    system: AnalyticSystem | None = None,
    runner: ProcessPoolRunner | None = None,
) -> SweepResult:
    """Evaluate schemes over random mixes; returns aggregated results.

    Legacy entry point, kept for backward compatibility — the same sweep
    is registered as the ``fig11``/``fig13``/``fig14``/``fig15``/``fig16``
    specs (see :mod:`repro.experiments.spec` and :class:`repro.api.Session`),
    which share this function's job builder and reducer bitwise.

    With the default (standard) schemes, each mix runs as a runner job —
    pass *runner* for parallelism and caching.  Supplying custom *schemes*
    or a pre-built *system* keeps the legacy inline loop, since arbitrary
    scheme objects are not content-hashable job inputs.
    """
    if schemes is None and system is None:
        jobs = sweep_jobs(config, n_apps, n_mixes, seed, multithreaded)
        return reduce_sweep_records(run_jobs(jobs, runner), n_apps, n_mixes)
    result = SweepResult(n_apps=n_apps, n_mixes=n_mixes)
    system = system or AnalyticSystem(config)
    for mix_id in range(n_mixes):
        if multithreaded:
            mix = random_multithreaded_mix(n_apps, seed, mix_id)
        else:
            mix = random_single_threaded_mix(n_apps, seed, mix_id)
        evaluate_mix(config, mix, result, seed=mix_id, schemes=schemes,
                     system=system)
    return result


def evaluate_mix(
    config: SystemConfig,
    mix: Mix,
    result: SweepResult,
    seed: int = 0,
    schemes: list[NucaScheme] | None = None,
    system: AnalyticSystem | None = None,
) -> dict[str, MixEvaluation]:
    """Evaluate one mix under every scheme, recording into *result*."""
    system = system or AnalyticSystem(config)
    scheme_list = schemes if schemes is not None else standard_schemes(seed)
    alone = system.alone_performance(mix)
    evaluations: dict[str, MixEvaluation] = {}
    for scheme in scheme_list:
        evaluations[scheme.name] = system.evaluate(mix, scheme)
    baseline = evaluations.get(BASELINE)
    if baseline is None:
        from repro.nuca.snuca import SNuca

        baseline = system.evaluate(mix, SNuca(seed))
        evaluations[BASELINE] = baseline
    for name, evaluation in evaluations.items():
        if name != BASELINE:
            result.speedups.setdefault(name, []).append(
                weighted_speedup(evaluation, baseline, alone)
            )
        _record(result, name, evaluation, config.cache.bank_latency)
    return evaluations


# -- spec registry -----------------------------------------------------------

#: Occupancy points of the Fig 13 sweep.
FIG13_APP_COUNTS = (1, 2, 4, 8, 16, 32, 64)

_SWEEP_PARAMS = (
    Param("mixes", "int", 10, "random mixes per data point"),
    Param("seed", "int", 42, "base RNG seed"),
)


def _sweep_table(result: SweepResult, title: str) -> ResultTable:
    return ResultTable.make(
        title=title,
        headers=("Scheme", "gmean WS", "max WS"),
        rows=[
            (s, result.gmean_speedup(s), result.max_speedup(s))
            for s in SCHEMES
        ],
    )


def _register_sweep_spec(
    name: str, figure: str, n_apps: int, multithreaded: bool
) -> None:
    kind = "8-thread" if multithreaded else "single-threaded"

    def build_jobs(params: dict) -> list[Job]:
        return sweep_jobs(
            default_config(), n_apps, params["mixes"], params["seed"],
            multithreaded,
        )

    def reduce(records: list, params: dict) -> SweepResult:
        return reduce_sweep_records(records, n_apps, params["mixes"])

    def present(result: SweepResult, params: dict) -> RunRecord:
        title = f"{params['mixes']} mixes of {n_apps} {kind} apps"
        return RunRecord(
            experiment=name,
            params=params,
            tables=(_sweep_table(result, title),),
        )

    register(ExperimentSpec(
        name=name,
        summary=f"weighted speedups over {kind} {n_apps}-app mixes",
        figure=figure,
        params=_SWEEP_PARAMS,
        build_jobs=build_jobs,
        reduce=reduce,
        present=present,
    ))


_register_sweep_spec("fig11", "Fig 11", n_apps=64, multithreaded=False)
_register_sweep_spec("fig14", "Fig 14", n_apps=4, multithreaded=False)
_register_sweep_spec("fig15", "Fig 15", n_apps=8, multithreaded=True)
_register_sweep_spec("fig16", "Fig 16", n_apps=4, multithreaded=True)


def _fig13_jobs(params: dict) -> list[Job]:
    jobs: list[Job] = []
    for n_apps in FIG13_APP_COUNTS:
        jobs += sweep_jobs(
            default_config(), n_apps, params["mixes"], params["seed"]
        )
    return jobs


def _fig13_reduce(records: list, params: dict) -> dict[int, SweepResult]:
    n_mixes = params["mixes"]
    out: dict[int, SweepResult] = {}
    for i, n_apps in enumerate(FIG13_APP_COUNTS):
        chunk = records[i * n_mixes:(i + 1) * n_mixes]
        out[n_apps] = reduce_sweep_records(chunk, n_apps, n_mixes)
    return out


def _fig13_present(result: dict[int, SweepResult], params: dict) -> RunRecord:
    rows = [
        (f"{n_apps}", *(result[n_apps].gmean_speedup(s) for s in SCHEMES))
        for n_apps in FIG13_APP_COUNTS
    ]
    table = ResultTable.make(
        title="Fig 13: gmean WS vs occupancy",
        headers=("apps", *SCHEMES),
        rows=rows,
    )
    return RunRecord(experiment="fig13", params=params, tables=(table,))


register(ExperimentSpec(
    name="fig13",
    summary="gmean weighted speedup vs chip occupancy (1-64 apps)",
    figure="Fig 13",
    params=_SWEEP_PARAMS,
    build_jobs=_fig13_jobs,
    reduce=_fig13_reduce,
    present=_fig13_present,
))
