"""Alternative-placer comparison (Sec VI-C).

Compares CDCS's constructive placement against the expensive comparators:
LP-optimal data placement (the ILP stand-in), a 5000-round simulated-
annealing thread placer, and recursive-bisection graph partitioning.
The paper's findings to reproduce: all three are within ~0-1% of CDCS on
quality while costing orders of magnitude more runtime.

Each comparator runs as its own :class:`repro.runner.Job` (re-deriving the
cheap CDCS starting point locally), so the expensive placers fan out
across workers and memoize independently.  Note that ``wall_seconds`` is
part of the cached payload: a cache hit replays the timing measured when
the job actually ran.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.experiments.results import ResultTable, RunRecord
from repro.experiments.spec import ExperimentSpec, Param, register
from repro.model.metrics import weighted_speedup
from repro.model.system import AnalyticSystem
from repro.nuca.base import SchemeResult, build_problem
from repro.nuca.cdcs import Cdcs
from repro.nuca.snuca import SNuca
from repro.placers.annealing import anneal_thread_placement
from repro.placers.graph_partition import graph_partition_placement
from repro.placers.linear_program import lp_data_placement
from repro.runner import Job, ProcessPoolRunner, run_jobs
from repro.sched.cost_model import on_chip_latency
from repro.sched.problem import PlacementSolution
from repro.workloads.mixes import random_single_threaded_mix

#: The comparison's rows, in the paper's presentation order.
PLACERS = ("CDCS", "LP data placement", "Simulated annealing",
           "Graph partitioning")


@dataclass
class PlacerOutcome:
    name: str
    weighted_speedup: float
    onchip_cost: float
    wall_seconds: float


def _placer_point(
    config: SystemConfig,
    placer: str,
    n_apps: int,
    seed: int,
    mix_id: int,
    anneal_rounds: int,
) -> PlacerOutcome:
    """Job body: evaluate one placer on one mix.

    Every job recomputes CDCS's (cheap, deterministic) solution as the
    comparator's starting point; only the named placer's own runtime is
    reported as ``wall_seconds``.
    """
    system = AnalyticSystem(config)
    mix = random_single_threaded_mix(n_apps, seed, mix_id)
    problem = build_problem(mix, config)
    alone = system.alone_performance(mix)
    baseline = system.evaluate(mix, SNuca(mix_id))

    t0 = time.perf_counter()
    cdcs = Cdcs(seed=mix_id).run(problem)
    cdcs_wall = time.perf_counter() - t0

    if placer == "CDCS":
        solution, wall = cdcs.solution, cdcs_wall
    elif placer == "LP data placement":
        # LP-optimal data placement on CDCS's sizes and thread placement.
        t0 = time.perf_counter()
        lp_alloc = lp_data_placement(
            problem, cdcs.solution.vc_sizes, cdcs.solution.thread_cores
        )
        solution = PlacementSolution(
            vc_sizes={vc: sum(p.values()) for vc, p in lp_alloc.items()},
            vc_allocation=lp_alloc,
            thread_cores=dict(cdcs.solution.thread_cores),
        )
        wall = time.perf_counter() - t0
    elif placer == "Simulated annealing":
        # Annealed thread placement over CDCS's data placement.
        t0 = time.perf_counter()
        anneal = anneal_thread_placement(
            problem,
            cdcs.solution.vc_allocation,
            cdcs.solution.thread_cores,
            rounds=anneal_rounds,
            seed=seed,
        )
        solution = PlacementSolution(
            vc_sizes=dict(cdcs.solution.vc_sizes),
            vc_allocation={
                vc: dict(p) for vc, p in cdcs.solution.vc_allocation.items()
            },
            thread_cores=anneal.thread_cores,
        )
        wall = time.perf_counter() - t0
    elif placer == "Graph partitioning":
        # Joint graph partitioning from CDCS's sizes.
        t0 = time.perf_counter()
        graph_solution = graph_partition_placement(
            problem, cdcs.solution.vc_sizes, seed=seed
        )
        solution, wall = graph_solution, time.perf_counter() - t0
    else:
        raise ValueError(f"unknown placer {placer!r}")

    evaluation = system.evaluate_solution(
        mix, problem, SchemeResult(placer, solution)
    )
    return PlacerOutcome(
        name=placer,
        weighted_speedup=weighted_speedup(evaluation, baseline, alone),
        onchip_cost=on_chip_latency(problem, solution),
        wall_seconds=wall,
    )


def placer_jobs(
    config: SystemConfig,
    n_apps: int = 16,
    seed: int = 42,
    mix_id: int = 0,
    anneal_rounds: int = 5000,
) -> list[Job]:
    """One :class:`Job` per comparator in :data:`PLACERS`."""
    return [
        Job(
            fn=_placer_point,
            kwargs=dict(
                config=config,
                placer=placer,
                n_apps=n_apps,
                seed=seed,
                mix_id=mix_id,
                anneal_rounds=anneal_rounds,
            ),
            seed=seed,
            label=f"placer-{placer}",
        )
        for placer in PLACERS
    ]


def run_placer_comparison(
    config: SystemConfig,
    n_apps: int = 16,
    seed: int = 42,
    mix_id: int = 0,
    anneal_rounds: int = 5000,
    runner: ProcessPoolRunner | None = None,
) -> list[PlacerOutcome]:
    """Evaluate CDCS vs LP / annealing / graph partitioning on one mix."""
    jobs = placer_jobs(config, n_apps, seed, mix_id, anneal_rounds)
    return run_jobs(jobs, runner)


# -- spec registry -----------------------------------------------------------


def _placers_jobs(params: dict) -> list[Job]:
    from repro.config import default_config

    return placer_jobs(
        default_config(), n_apps=params["apps"], seed=params["seed"],
        anneal_rounds=params["anneal_rounds"],
    )


def _placers_reduce(records: list, params: dict) -> list[PlacerOutcome]:
    return records


def _placers_present(
    result: list[PlacerOutcome], params: dict
) -> RunRecord:
    table = ResultTable.make(
        title=f"Placer comparators on one {params['apps']}-app mix "
              f"(Sec VI-C)",
        headers=("Placer", "WS", "on-chip cost", "wall s"),
        rows=[
            (o.name, o.weighted_speedup, o.onchip_cost, o.wall_seconds)
            for o in result
        ],
    )
    return RunRecord(experiment="placers", params=params, tables=(table,))


register(ExperimentSpec(
    name="placers",
    summary="CDCS vs LP / annealing / graph-partitioning comparators",
    figure="Sec VI-C",
    params=(
        Param("apps", "int", 16, "apps in the evaluated mix"),
        Param("anneal_rounds", "int", 5000, "simulated-annealing rounds"),
        Param("seed", "int", 42, "mix RNG seed"),
    ),
    build_jobs=_placers_jobs,
    reduce=_placers_reduce,
    present=_placers_present,
))
